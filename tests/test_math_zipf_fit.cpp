// Zipf MLE fitter tests: recovery of known exponents, edge cases.
#include "math/zipf_fit.h"

#include <gtest/gtest.h>

#include "workload/zipf.h"

namespace spcache {
namespace {

std::vector<std::uint64_t> sample_counts(double exponent, std::size_t files,
                                         std::size_t accesses, std::uint64_t seed) {
  ZipfDistribution zipf(files, exponent);
  Rng rng(seed);
  std::vector<std::uint64_t> counts(files, 0);
  for (std::size_t i = 0; i < accesses; ++i) ++counts[zipf.sample(rng)];
  return counts;
}

class ZipfFitRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFitRecovery, RecoversTrueExponent) {
  const double s = GetParam();
  const auto counts = sample_counts(s, 300, 200000, 42);
  const auto fit = fit_zipf(counts);
  EXPECT_NEAR(fit.exponent, s, 0.05) << "true s = " << s;
  EXPECT_GT(fit.ranks, 100u);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfFitRecovery, ::testing::Values(0.8, 1.05, 1.1, 1.5));

TEST(ZipfFit, UniformCountsGiveNearZeroExponent) {
  std::vector<std::uint64_t> counts(100, 50);
  const auto fit = fit_zipf(counts);
  EXPECT_NEAR(fit.exponent, 0.0, 0.02);
}

TEST(ZipfFit, ExtremeSkew) {
  // One file with nearly all accesses: the MLE should push toward the cap.
  std::vector<std::uint64_t> counts{1000000, 1, 1, 1, 1};
  const auto fit = fit_zipf(counts, 6.0);
  EXPECT_GT(fit.exponent, 3.0);
}

TEST(ZipfFit, ZeroCountsDropped) {
  std::vector<std::uint64_t> counts{100, 0, 50, 0, 25};
  const auto fit = fit_zipf(counts);
  EXPECT_EQ(fit.ranks, 3u);
  EXPECT_GT(fit.exponent, 0.5);
}

TEST(ZipfFit, TooFewFilesThrows) {
  EXPECT_THROW(fit_zipf({5}), std::invalid_argument);
  EXPECT_THROW(fit_zipf({0, 0, 7}), std::invalid_argument);
}

TEST(ZipfFit, OrderIrrelevant) {
  auto counts = sample_counts(1.1, 100, 50000, 7);
  const auto sorted_fit = fit_zipf(counts);
  Rng rng(8);
  rng.shuffle(counts);
  const auto shuffled_fit = fit_zipf(counts);
  EXPECT_NEAR(sorted_fit.exponent, shuffled_fit.exponent, 1e-9);
}

TEST(ZipfFit, MasterCountsDriveTheFit) {
  // The intended workflow: SP-Master window counters -> skew estimate.
  const auto counts = sample_counts(1.05, 500, 100000, 9);
  const auto fit = fit_zipf(counts);
  // Close enough to feed Algorithm 1's popularity model.
  EXPECT_NEAR(fit.exponent, 1.05, 0.06);
}

}  // namespace
}  // namespace spcache
