// Algorithm 2 (repartition planning) tests.
#include "core/repartition.h"

#include <gtest/gtest.h>

#include <set>

#include "core/sp_cache.h"

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n) { return std::vector<Bandwidth>(n, gbps(1.0)); }

struct Layout {
  Catalog catalog;
  std::vector<std::size_t> k;
  std::vector<std::vector<std::uint32_t>> servers;
};

Layout make_layout(std::size_t n_files, std::uint64_t seed) {
  Layout layout;
  layout.catalog = make_uniform_catalog(n_files, 50 * kMB, 1.05, 10.0);
  SpCacheScheme sp;
  Rng rng(seed);
  sp.place(layout.catalog, uniform_bw(30), rng);
  layout.k = sp.partition_counts();
  layout.servers.reserve(n_files);
  for (const auto& p : sp.placements()) layout.servers.push_back(p.servers);
  return layout;
}

TEST(Repartition, NoShiftMeansNothingChanges) {
  auto layout = make_layout(100, 1);
  Rng rng(2);
  // Same catalog, same popularities: Algorithm 1 may choose a slightly
  // different alpha, but with identical inputs the k_i should mostly match.
  const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  EXPECT_LT(plan.changed_fraction(100), 0.25);
}

TEST(Repartition, ShiftTouchesOnlyChangedFiles) {
  auto layout = make_layout(150, 3);
  Rng rng(4);
  layout.catalog.shuffle_popularities(rng);
  const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  // Every listed file really changed count; every unlisted file kept it.
  std::set<FileId> changed(plan.changed_files.begin(), plan.changed_files.end());
  for (std::size_t i = 0; i < layout.catalog.size(); ++i) {
    if (changed.count(static_cast<FileId>(i))) {
      EXPECT_NE(plan.new_k[i], layout.k[i]) << "file " << i;
    } else {
      EXPECT_EQ(plan.new_k[i], layout.k[i]) << "file " << i;
    }
  }
}

TEST(Repartition, ChangedFilesGetDistinctServers) {
  auto layout = make_layout(150, 5);
  Rng rng(6);
  layout.catalog.shuffle_popularities(rng);
  const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  ASSERT_GT(plan.changed_files.size(), 0u);
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    EXPECT_EQ(plan.new_servers[j].size(), plan.new_k[f]);
    const std::set<std::uint32_t> distinct(plan.new_servers[j].begin(),
                                           plan.new_servers[j].end());
    EXPECT_EQ(distinct.size(), plan.new_servers[j].size());
  }
}

TEST(Repartition, ExecutorIsAnOldHolder) {
  auto layout = make_layout(150, 7);
  Rng rng(8);
  layout.catalog.shuffle_popularities(rng);
  const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    const auto& old = layout.servers[f];
    EXPECT_NE(std::find(old.begin(), old.end(), plan.executor[j]), old.end())
        << "executor must already hold a piece of file " << f;
  }
}

TEST(Repartition, GreedyPlacementBalancesPartitionCounts) {
  auto layout = make_layout(200, 9);
  Rng rng(10);
  layout.catalog.shuffle_popularities(rng);
  const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  // Count partitions per server in the post-plan layout.
  std::vector<std::size_t> per_server(30, 0);
  std::set<FileId> changed(plan.changed_files.begin(), plan.changed_files.end());
  for (std::size_t i = 0; i < layout.catalog.size(); ++i) {
    if (!changed.count(static_cast<FileId>(i))) {
      for (auto s : layout.servers[i]) ++per_server[s];
    }
  }
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    for (auto s : plan.new_servers[j]) ++per_server[s];
  }
  std::size_t mx = 0, mn = SIZE_MAX;
  for (auto c : per_server) {
    mx = std::max(mx, c);
    mn = std::min(mn, c);
  }
  // Greedy least-loaded placement keeps the spread tight.
  EXPECT_LE(mx - mn, 6u);
}

TEST(Repartition, FractionDecreasesWithCatalogSize) {
  // Fig. 17's trend: with more files, cold single-partition files dominate
  // and the changed fraction shrinks.
  double small_frac = 0.0, large_frac = 0.0;
  {
    auto layout = make_layout(100, 11);
    Rng rng(12);
    layout.catalog.shuffle_popularities(rng);
    const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k,
                                       layout.servers, ScaleFactorConfig{}, rng);
    small_frac = plan.changed_fraction(100);
  }
  {
    auto layout = make_layout(1000, 13);
    Rng rng(14);
    layout.catalog.shuffle_popularities(rng);
    const auto plan = plan_repartition(layout.catalog, uniform_bw(30), layout.k,
                                       layout.servers, ScaleFactorConfig{}, rng);
    large_frac = plan.changed_fraction(1000);
  }
  EXPECT_LT(large_frac, small_frac);
}

TEST(Repartition, AlphaRecomputedForNewPopularities) {
  auto layout = make_layout(100, 15);
  Rng rng(16);
  auto hot = layout.catalog;
  hot.set_total_rate(40.0);  // 4x the load
  const auto plan = plan_repartition(hot, uniform_bw(30), layout.k, layout.servers,
                                     ScaleFactorConfig{}, rng);
  EXPECT_GT(plan.alpha, 0.0);
  EXPECT_EQ(plan.new_k, partition_counts_for_alpha(hot, plan.alpha, 30));
}

}  // namespace
}  // namespace spcache
