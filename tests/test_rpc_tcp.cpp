// TcpTransport loopback tests: real sockets, framed envelopes, the same
// RpcNode/Bus/service machinery as production. Covers request/reply over
// TCP (small and multi-megabyte payloads), the full SP write/read flow
// bit-exact through daemon-style processes-in-miniature, dead and
// mid-call-disconnected peers surfacing as bounded errors (never hangs),
// and reconnect-on-failure after a peer restarts on its old port.
//
// Runs under the tsan preset too (tools/check.sh matches test_rpc_*), so
// the loop-thread/caller-thread handoffs are race-checked for real.
#include "rpc/tcp_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "fault/fault_injector.h"
#include "rpc/cache_service.h"

namespace spcache::rpc {
namespace {

using namespace std::chrono_literals;

constexpr MethodId kEcho = 42;

std::vector<std::uint8_t> pattern_payload(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(salt + i * 31);
  return p;
}

// One listening endpoint hosting an echo node, plus a client wired to it.
struct EchoPair {
  TcpTransport server_tcp;
  std::uint16_t port = 0;
  std::unique_ptr<Bus> server_bus;
  std::unique_ptr<RpcNode> echo;

  TcpTransport client_tcp;
  std::unique_ptr<Bus> client_bus;
  std::unique_ptr<RpcNode> caller;

  EchoPair() {
    port = server_tcp.listen("127.0.0.1", 0);
    server_bus = std::make_unique<Bus>(server_tcp);
    echo = std::make_unique<RpcNode>(*server_bus, 1, "echo");
    echo->handle(kEcho, [](BufferReader& r) {
      const auto body = r.bytes();
      BufferWriter w;
      w.bytes(body);
      return w.take();
    });
    echo->start();

    client_tcp.start();
    client_tcp.add_peer(1, "127.0.0.1", port);
    client_bus = std::make_unique<Bus>(client_tcp);
    caller = std::make_unique<RpcNode>(*client_bus, kFirstClientNode, "caller");
    caller->start();
  }
};

Reply echo_call(RpcNode& caller, std::size_t n, std::uint8_t salt,
                std::chrono::milliseconds timeout = 5000ms) {
  BufferWriter w;
  w.bytes(pattern_payload(n, salt));
  return caller.call_sync(1, kEcho, w.take(), timeout);
}

TEST(TcpTransport, RequestReplyOverLoopback) {
  EchoPair p;
  const Reply reply = echo_call(*p.caller, 100, 7);
  ASSERT_TRUE(reply.ok()) << reply.error_text();
  BufferReader r(reply.payload);
  EXPECT_EQ(r.bytes(), pattern_payload(100, 7));

  const auto c = p.client_tcp.counters();
  EXPECT_EQ(c.connects, 1u);
  EXPECT_EQ(c.framing_errors, 0u);
  EXPECT_GT(c.bytes_tx, 0u);
  EXPECT_GT(c.bytes_rx, 0u);
}

// Multi-megabyte payloads span many partial reads/writes — the framed
// stream must reassemble them exactly.
TEST(TcpTransport, LargePayloadRoundtrip) {
  EchoPair p;
  const std::size_t kBig = 3 * 1024 * 1024 + 137;
  const Reply reply = echo_call(*p.caller, kBig, 3, 20000ms);
  ASSERT_TRUE(reply.ok()) << reply.error_text();
  BufferReader r(reply.payload);
  EXPECT_EQ(r.bytes(), pattern_payload(kBig, 3));
}

// Sequential calls reuse the pooled connection instead of redialing.
TEST(TcpTransport, ConnectionIsPooled) {
  EchoPair p;
  for (int i = 0; i < 20; ++i) {
    const Reply reply = echo_call(*p.caller, 64, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(reply.ok()) << reply.error_text();
  }
  EXPECT_EQ(p.client_tcp.counters().connects, 1u);
  EXPECT_EQ(p.client_tcp.counters().reconnects, 0u);
}

// The acceptance scenario in miniature: master + 3 workers behind one
// listening transport, the real RpcSpClient on its own transport, every
// byte over loopback TCP — write, read back, verify bit-exact.
TEST(TcpTransport, WriteReadBitExactThroughServices) {
  TcpTransport cluster_tcp;
  const std::uint16_t port = cluster_tcp.listen("127.0.0.1", 0);
  Bus cluster_bus(cluster_tcp);
  MasterService master(cluster_bus);
  std::vector<std::unique_ptr<CacheWorkerService>> workers;
  std::vector<NodeId> worker_nodes;
  for (std::uint32_t s = 0; s < 3; ++s) {
    workers.push_back(std::make_unique<CacheWorkerService>(
        cluster_bus, kFirstWorkerNode + s, s, gbps(1.0)));
    worker_nodes.push_back(workers.back()->node_id());
  }

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(kMasterNode, "127.0.0.1", port);
  for (const NodeId w : worker_nodes) client_tcp.add_peer(w, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcSpClient client(client_bus, kFirstClientNode, kMasterNode, worker_nodes);

  std::vector<std::vector<std::uint8_t>> originals;
  for (FileId f = 0; f < 6; ++f) {
    originals.push_back(pattern_payload(96 * 1024 + f * 1000, static_cast<std::uint8_t>(f)));
    client.write(f, originals.back(), {0, 1, 2});
  }
  for (FileId f = 0; f < 6; ++f) {
    EXPECT_EQ(client.read(f), originals[f]) << "file " << f;
  }
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
}

// A peer that nobody is listening for: the connection fails, frames drop,
// and the caller gets a bounded error — not a hang.
TEST(TcpTransport, DeadPeerSurfacesAsBoundedError) {
  TcpTransport client_tcp;
  client_tcp.start();
  // Reserve a port, then close it so nothing listens there.
  std::uint16_t dead_port = 0;
  {
    TcpTransport probe;
    dead_port = probe.listen("127.0.0.1", 0);
    probe.shutdown();
  }
  client_tcp.add_peer(1, "127.0.0.1", dead_port);
  Bus bus(client_tcp);
  RpcNode caller(bus, kFirstClientNode, "caller");
  caller.start();

  BufferWriter w;
  w.bytes(pattern_payload(16, 1));
  const auto t0 = std::chrono::steady_clock::now();
  const Reply reply = caller.call_sync(1, kEcho, w.take(), 500ms);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(reply.ok());
  EXPECT_LT(elapsed, 5s);
  // An entirely unknown node (no address, no learned route) fails without
  // even burning the timeout.
  const Reply unknown = caller.call_sync(99, kEcho, {}, 500ms);
  EXPECT_FALSE(unknown.ok());
}

// Peer dies mid-call (request delivered, connection torn down before the
// reply): the caller's timeout fires — error, not a hang.
TEST(TcpTransport, MidCallDisconnectSurfacesAsError) {
  auto server_tcp = std::make_unique<TcpTransport>();
  const std::uint16_t port = server_tcp->listen("127.0.0.1", 0);
  auto server_bus = std::make_unique<Bus>(*server_tcp);
  auto sloth = std::make_unique<RpcNode>(*server_bus, 1, "sloth");
  sloth->handle(kEcho, [](BufferReader&) -> std::vector<std::uint8_t> {
    std::this_thread::sleep_for(1s);  // the reply will find the wire gone
    return {};
  });
  sloth->start();

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  auto pending = caller.call_tagged(1, kEcho, {});
  std::this_thread::sleep_for(200ms);  // let the request land in the handler
  // Kill the server's sockets out from under the in-flight call. (The node
  // and bus stay alive so the sleeping handler can finish harmlessly.)
  server_tcp->shutdown();

  const auto status = pending.reply.wait_for(1500ms);
  if (status != std::future_status::ready) {
    EXPECT_TRUE(caller.forget(pending.request_id));
  } else {
    EXPECT_FALSE(pending.reply.get().ok());
  }
}

// Peer restarts on its old port: the next sends notice the dead
// connection, redial, and complete — counted as transport.reconnects.
TEST(TcpTransport, ReconnectAfterPeerRestart) {
  std::uint16_t port = 0;
  auto server_tcp = std::make_unique<TcpTransport>();
  port = server_tcp->listen("127.0.0.1", 0);
  auto server_bus = std::make_unique<Bus>(*server_tcp);
  auto make_echo = [](Bus& bus) {
    auto node = std::make_unique<RpcNode>(bus, 1, "echo");
    node->handle(kEcho, [](BufferReader& r) {
      const auto body = r.bytes();
      BufferWriter w;
      w.bytes(body);
      return w.take();
    });
    node->start();
    return node;
  };
  auto echo = make_echo(*server_bus);

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  BufferWriter w1;
  w1.bytes(pattern_payload(64, 9));
  ASSERT_TRUE(caller.call_sync(1, kEcho, w1.take(), 5000ms).ok());

  // Restart: tear the whole server process-in-miniature down, then bring a
  // fresh one up on the same port (SO_REUSEADDR makes the rebind instant).
  echo.reset();
  server_bus.reset();
  server_tcp.reset();
  server_tcp = std::make_unique<TcpTransport>();
  ASSERT_EQ(server_tcp->listen("127.0.0.1", port), port);
  server_bus = std::make_unique<Bus>(*server_tcp);
  echo = make_echo(*server_bus);

  // The first send after the crash may ride the dead connection and drop;
  // retrying must land on a fresh one.
  bool recovered = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    BufferWriter w2;
    w2.bytes(pattern_payload(64, 11));
    if (caller.call_sync(1, kEcho, w2.take(), 500ms).ok()) {
      recovered = true;
      break;
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(client_tcp.counters().reconnects, 1u);
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
}

// A peer that accepts but never reads: the client's write queue backs up,
// crosses the high watermark, and further sends fail fast with
// kOverloaded — while the queue itself stays bounded at the 2x-high hard
// cap instead of growing without limit.
TEST(TcpTransport, SlowReaderHitsWatermarkAndFailsFast) {
  // A raw listening socket that accepts connections and then ignores them
  // completely — the TCP window closes and nothing drains.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  const int rcvbuf = 4096;  // tiny receive window: the kernel absorbs little
  ::setsockopt(listen_fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(listen_fd, 8), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  TcpTransportConfig cfg;
  cfg.wqueue_high = 128 * 1024;
  cfg.wqueue_low = 32 * 1024;
  TcpTransport client(cfg);
  client.start();
  client.add_peer(1, "127.0.0.1", port);

  const auto payload = pattern_payload(64 * 1024, 9);
  bool overloaded = false;
  for (int i = 0; i < 400 && !overloaded; ++i) {
    Envelope e;
    e.from = kFirstClientNode;
    e.to = 1;
    e.method = kEcho;
    e.request_id = static_cast<std::uint64_t>(i + 1);
    e.payload = payload;
    const SendStatus st = client.send(std::move(e));
    if (st == SendStatus::kOverloaded) overloaded = true;
    std::this_thread::sleep_for(1ms);  // let the loop thread queue + flush
  }
  EXPECT_TRUE(overloaded) << "send() never failed fast against a non-draining peer";

  const auto c = client.counters();
  EXPECT_GE(c.backpressure_events, 1u);
  EXPECT_GE(c.backpressure_rejects, 1u);
  EXPECT_GE(c.wqueue_peak, cfg.wqueue_high);
  // The bounded-memory claim: the queue never exceeded the hard cap.
  EXPECT_LE(c.wqueue_peak, 2 * cfg.wqueue_high);

  client.shutdown();
  ::close(listen_fd);
}

// Deadline propagation over the wire: a request that sits in the server's
// mailbox past its budget is shed with kDeadlineExpired — the handler
// never runs for it.
TEST(TcpTransport, DeadlineShedOverTcp) {
  TcpTransport server_tcp;
  const std::uint16_t port = server_tcp.listen("127.0.0.1", 0);
  Bus server_bus(server_tcp);
  RpcNode sloth(server_bus, 1, "sloth");
  sloth.handle(kEcho, [](BufferReader& r) {
    std::this_thread::sleep_for(300ms);  // holds the service thread
    const auto body = r.bytes();
    BufferWriter w;
    w.bytes(body);
    return w.take();
  });
  sloth.start();

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  // Call A occupies the service thread; call B queues behind it with a
  // 50ms budget that expires long before dispatch.
  BufferWriter wa;
  wa.bytes(pattern_payload(32, 1));
  auto a = caller.call_tagged(1, kEcho, wa.take());
  std::this_thread::sleep_for(50ms);  // A is in the handler by now
  BufferWriter wb;
  wb.bytes(pattern_payload(32, 2));
  auto b = caller.call_tagged(1, kEcho, wb.take(), 50ms);

  ASSERT_EQ(b.reply.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(b.reply.get().status, Status::kDeadlineExpired);
  ASSERT_EQ(a.reply.wait_for(5s), std::future_status::ready);
  EXPECT_TRUE(a.reply.get().ok());
}

// Consecutive connection failures open the per-peer circuit: sends fail
// fast with kCircuitOpen instead of burning a timeout each, and after the
// open window one half-open probe is admitted again.
TEST(TcpTransport, CircuitBreakerFastFailsAfterConsecutiveFailures) {
  // Reserve a port, then free it so every connect is refused.
  std::uint16_t dead_port = 0;
  {
    TcpTransport probe;
    dead_port = probe.listen("127.0.0.1", 0);
    probe.shutdown();
  }

  TcpTransportConfig cfg;
  cfg.breaker_threshold = 2;
  cfg.breaker_open = 200ms;
  TcpTransport client(cfg);
  client.start();
  client.add_peer(1, "127.0.0.1", dead_port);

  auto send_one = [&](std::uint64_t id) {
    Envelope e;
    e.from = kFirstClientNode;
    e.to = 1;
    e.method = kEcho;
    e.request_id = id;
    e.payload = pattern_payload(16, 3);
    return client.send(std::move(e));
  };

  bool circuit_open = false;
  for (int i = 0; i < 100 && !circuit_open; ++i) {
    if (send_one(static_cast<std::uint64_t>(i + 1)) == SendStatus::kCircuitOpen) {
      circuit_open = true;
      break;
    }
    std::this_thread::sleep_for(20ms);  // let the refused connect register
  }
  EXPECT_TRUE(circuit_open) << "circuit never opened against a refusing peer";
  EXPECT_GE(client.counters().circuit_opens, 1u);
  EXPECT_GE(client.counters().circuit_fast_fails, 1u);

  // After the open window a single probe is let through (and will fail
  // again here, re-arming the breaker — but it must not be refused).
  std::this_thread::sleep_for(cfg.breaker_open + 100ms);
  EXPECT_EQ(send_one(1000), SendStatus::kAccepted);
  client.shutdown();
}

// Seeded partial-write chaos: every flush pass is clamped to a few bytes,
// splitting each frame across many TCP segments — reassembly must still
// be bit-exact.
TEST(TcpTransport, ChaosPartialWritesStayBitExact) {
  fault::FaultConfig fc;
  fc.sock_partial_write_p = 1.0;
  fault::FaultInjector injector(42, fc);

  TcpTransport server_tcp;
  const std::uint16_t port = server_tcp.listen("127.0.0.1", 0);
  Bus server_bus(server_tcp);
  RpcNode echo(server_bus, 1, "echo");
  echo.handle(kEcho, [](BufferReader& r) {
    const auto body = r.bytes();
    BufferWriter w;
    w.bytes(body);
    return w.take();
  });
  echo.start();

  TcpTransport client_tcp;
  client_tcp.set_fault_injector(&injector);
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  BufferWriter w;
  w.bytes(pattern_payload(2048, 7));
  const Reply reply = caller.call_sync(1, kEcho, w.take(), 30000ms);
  ASSERT_TRUE(reply.ok()) << reply.error_text();
  BufferReader r(reply.payload);
  EXPECT_EQ(r.bytes(), pattern_payload(2048, 7));
  EXPECT_GT(injector.stats().sock_partial_writes, 0u);
  EXPECT_EQ(server_tcp.counters().framing_errors, 0u);
}

// Seeded reset chaos: connections are torn down with a hard RST mid-
// stream. Individual calls may fail, but nothing hangs, the stream never
// misframes, and the client keeps succeeding via reconnects.
TEST(TcpTransport, ChaosResetsRecoverViaReconnect) {
  fault::FaultConfig fc;
  fc.sock_reset_p = 0.05;
  fault::FaultInjector injector(7, fc);

  TcpTransport server_tcp;
  const std::uint16_t port = server_tcp.listen("127.0.0.1", 0);
  Bus server_bus(server_tcp);
  RpcNode echo(server_bus, 1, "echo");
  echo.handle(kEcho, [](BufferReader& r) {
    const auto body = r.bytes();
    BufferWriter w;
    w.bytes(body);
    return w.take();
  });
  echo.start();

  TcpTransport client_tcp;
  client_tcp.set_fault_injector(&injector);
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  std::size_t ok = 0;
  for (int i = 0; i < 60; ++i) {
    BufferWriter w;
    w.bytes(pattern_payload(4096, static_cast<std::uint8_t>(i)));
    const Reply reply = caller.call_sync(1, kEcho, w.take(), 1000ms);
    if (!reply.ok()) continue;
    BufferReader r(reply.payload);
    if (r.bytes() == pattern_payload(4096, static_cast<std::uint8_t>(i))) ++ok;
  }
  EXPECT_GT(injector.stats().sock_resets, 0u);
  EXPECT_GE(ok, 20u) << "too few calls survived seeded resets";
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
  EXPECT_EQ(server_tcp.counters().framing_errors, 0u);
}

// Shutdown with traffic in flight must not crash, leak, or deadlock.
// A multi-frame batch split by partial-write chaos at EVERY iovec
// boundary: with sock_partial_write_p = 1.0 each flush pass is clamped to
// 7 bytes, so the gathered stream (32-byte headers + payloads of every
// alignment) leaves the socket in slivers that cross header/payload and
// frame/frame boundaries at every offset mod 7. Both directions run
// chaotic — concurrent callers queue several request frames on the client
// connection while the echo replies queue on the server side — and every
// payload must come back bit-exact with zero framing errors.
TEST(TcpTransport, ChaosPartialWritesSplitMultiFrameBatchAtEveryBoundary) {
  fault::FaultConfig fc;
  fc.sock_partial_write_p = 1.0;
  fault::FaultInjector server_injector(7, fc);
  fault::FaultInjector client_injector(8, fc);

  EchoPair p;
  p.server_tcp.set_fault_injector(&server_injector);
  p.client_tcp.set_fault_injector(&client_injector);

  // Payload sizes chosen to land frame boundaries at every 7-byte phase:
  // empty, sub-header-sliver, exactly one clamp, and larger odd sizes.
  const std::size_t sizes[] = {0, 1, 6, 7, 8, 25, 33, 100, 501, 2048};
  std::vector<std::thread> callers;
  std::vector<Reply> replies(std::size(sizes));
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    callers.emplace_back([&, i] {
      replies[i] = echo_call(*p.caller, sizes[i], static_cast<std::uint8_t>(i + 1), 30000ms);
    });
  }
  for (auto& t : callers) t.join();

  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    ASSERT_TRUE(replies[i].ok()) << "size=" << sizes[i] << ": " << replies[i].error_text();
    BufferReader r(replies[i].payload);
    EXPECT_EQ(r.bytes(), pattern_payload(sizes[i], static_cast<std::uint8_t>(i + 1)))
        << "size=" << sizes[i];
  }
  EXPECT_GT(server_injector.stats().sock_partial_writes, 0u);
  EXPECT_GT(client_injector.stats().sock_partial_writes, 0u);
  EXPECT_EQ(p.server_tcp.counters().framing_errors, 0u);
  EXPECT_EQ(p.client_tcp.counters().framing_errors, 0u);
}

// The syscall-budget counters are exact on a quiet wire: N echo calls are
// N request frames out of the client and N reply frames out of the
// server, and every gathered writev moved at least one whole frame.
TEST(TcpTransport, WritevCountersTrackFramesExactly) {
  EchoPair p;
  constexpr std::size_t kCalls = 10;
  for (std::size_t i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(echo_call(*p.caller, 64 + i, static_cast<std::uint8_t>(i)).ok());
  }
  const auto server = p.server_tcp.counters();
  const auto client = p.client_tcp.counters();
  EXPECT_EQ(server.frames_sent, kCalls);
  EXPECT_EQ(client.frames_sent, kCalls);
  EXPECT_GE(server.writev_calls, 1u);
  EXPECT_LE(server.writev_calls, server.frames_sent);
  EXPECT_GE(server.frames_per_writev, 1.0);
  EXPECT_GT(server.bytes_per_syscall, 0.0);
}

// The --legacy-write-path arm (batch_writes=false) must reproduce the
// pre-batching wire behavior: bit-exact payloads, and never more than one
// frame per writev — that invariant is what makes it an honest baseline.
TEST(TcpTransport, LegacyWritePathStaysBitExactOneFramePerWritev) {
  TcpTransportConfig legacy;
  legacy.batch_writes = false;

  TcpTransport server_tcp(legacy);
  const std::uint16_t port = server_tcp.listen("127.0.0.1", 0);
  Bus server_bus(server_tcp);
  RpcNode echo(server_bus, 1, "echo");
  echo.handle(kEcho, [](BufferReader& r) {
    const auto body = r.bytes();
    BufferWriter w;
    w.bytes(body);
    return w.take();
  });
  echo.start();

  TcpTransport client_tcp(legacy);
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  std::vector<std::thread> callers;
  std::vector<Reply> replies(8);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    callers.emplace_back([&, i] {
      BufferWriter w;
      w.bytes(pattern_payload(256 + i, static_cast<std::uint8_t>(i)));
      replies[i] = caller.call_sync(1, kEcho, w.take(), 5000ms);
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_TRUE(replies[i].ok()) << replies[i].error_text();
    BufferReader r(replies[i].payload);
    EXPECT_EQ(r.bytes(), pattern_payload(256 + i, static_cast<std::uint8_t>(i)));
  }
  const auto server = server_tcp.counters();
  EXPECT_EQ(server.frames_sent, replies.size());
  EXPECT_GT(server.writev_calls, 0u);
  EXPECT_LE(server.frames_per_writev, 1.0);
  EXPECT_EQ(server.framing_errors, 0u);
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
}

TEST(TcpTransport, ShutdownIsIdempotentAndGraceful) {
  EchoPair p;
  ASSERT_TRUE(echo_call(*p.caller, 256, 5).ok());
  p.client_tcp.shutdown();
  p.client_tcp.shutdown();  // idempotent
  // Sends after shutdown are refused, not crashed.
  BufferWriter w;
  w.bytes(pattern_payload(8, 1));
  const Reply reply = p.caller->call_sync(1, kEcho, w.take(), 200ms);
  EXPECT_FALSE(reply.ok());
}

}  // namespace
}  // namespace spcache::rpc
