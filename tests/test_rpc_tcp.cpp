// TcpTransport loopback tests: real sockets, framed envelopes, the same
// RpcNode/Bus/service machinery as production. Covers request/reply over
// TCP (small and multi-megabyte payloads), the full SP write/read flow
// bit-exact through daemon-style processes-in-miniature, dead and
// mid-call-disconnected peers surfacing as bounded errors (never hangs),
// and reconnect-on-failure after a peer restarts on its old port.
//
// Runs under the tsan preset too (tools/check.sh matches test_rpc_*), so
// the loop-thread/caller-thread handoffs are race-checked for real.
#include "rpc/tcp_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "rpc/cache_service.h"

namespace spcache::rpc {
namespace {

using namespace std::chrono_literals;

constexpr MethodId kEcho = 42;

std::vector<std::uint8_t> pattern_payload(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(salt + i * 31);
  return p;
}

// One listening endpoint hosting an echo node, plus a client wired to it.
struct EchoPair {
  TcpTransport server_tcp;
  std::uint16_t port = 0;
  std::unique_ptr<Bus> server_bus;
  std::unique_ptr<RpcNode> echo;

  TcpTransport client_tcp;
  std::unique_ptr<Bus> client_bus;
  std::unique_ptr<RpcNode> caller;

  EchoPair() {
    port = server_tcp.listen("127.0.0.1", 0);
    server_bus = std::make_unique<Bus>(server_tcp);
    echo = std::make_unique<RpcNode>(*server_bus, 1, "echo");
    echo->handle(kEcho, [](BufferReader& r) {
      const auto body = r.bytes();
      BufferWriter w;
      w.bytes(body);
      return w.take();
    });
    echo->start();

    client_tcp.start();
    client_tcp.add_peer(1, "127.0.0.1", port);
    client_bus = std::make_unique<Bus>(client_tcp);
    caller = std::make_unique<RpcNode>(*client_bus, kFirstClientNode, "caller");
    caller->start();
  }
};

Reply echo_call(RpcNode& caller, std::size_t n, std::uint8_t salt,
                std::chrono::milliseconds timeout = 5000ms) {
  BufferWriter w;
  w.bytes(pattern_payload(n, salt));
  return caller.call_sync(1, kEcho, w.take(), timeout);
}

TEST(TcpTransport, RequestReplyOverLoopback) {
  EchoPair p;
  const Reply reply = echo_call(*p.caller, 100, 7);
  ASSERT_TRUE(reply.ok()) << reply.error_text();
  BufferReader r(reply.payload);
  EXPECT_EQ(r.bytes(), pattern_payload(100, 7));

  const auto c = p.client_tcp.counters();
  EXPECT_EQ(c.connects, 1u);
  EXPECT_EQ(c.framing_errors, 0u);
  EXPECT_GT(c.bytes_tx, 0u);
  EXPECT_GT(c.bytes_rx, 0u);
}

// Multi-megabyte payloads span many partial reads/writes — the framed
// stream must reassemble them exactly.
TEST(TcpTransport, LargePayloadRoundtrip) {
  EchoPair p;
  const std::size_t kBig = 3 * 1024 * 1024 + 137;
  const Reply reply = echo_call(*p.caller, kBig, 3, 20000ms);
  ASSERT_TRUE(reply.ok()) << reply.error_text();
  BufferReader r(reply.payload);
  EXPECT_EQ(r.bytes(), pattern_payload(kBig, 3));
}

// Sequential calls reuse the pooled connection instead of redialing.
TEST(TcpTransport, ConnectionIsPooled) {
  EchoPair p;
  for (int i = 0; i < 20; ++i) {
    const Reply reply = echo_call(*p.caller, 64, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(reply.ok()) << reply.error_text();
  }
  EXPECT_EQ(p.client_tcp.counters().connects, 1u);
  EXPECT_EQ(p.client_tcp.counters().reconnects, 0u);
}

// The acceptance scenario in miniature: master + 3 workers behind one
// listening transport, the real RpcSpClient on its own transport, every
// byte over loopback TCP — write, read back, verify bit-exact.
TEST(TcpTransport, WriteReadBitExactThroughServices) {
  TcpTransport cluster_tcp;
  const std::uint16_t port = cluster_tcp.listen("127.0.0.1", 0);
  Bus cluster_bus(cluster_tcp);
  MasterService master(cluster_bus);
  std::vector<std::unique_ptr<CacheWorkerService>> workers;
  std::vector<NodeId> worker_nodes;
  for (std::uint32_t s = 0; s < 3; ++s) {
    workers.push_back(std::make_unique<CacheWorkerService>(
        cluster_bus, kFirstWorkerNode + s, s, gbps(1.0)));
    worker_nodes.push_back(workers.back()->node_id());
  }

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(kMasterNode, "127.0.0.1", port);
  for (const NodeId w : worker_nodes) client_tcp.add_peer(w, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcSpClient client(client_bus, kFirstClientNode, kMasterNode, worker_nodes);

  std::vector<std::vector<std::uint8_t>> originals;
  for (FileId f = 0; f < 6; ++f) {
    originals.push_back(pattern_payload(96 * 1024 + f * 1000, static_cast<std::uint8_t>(f)));
    client.write(f, originals.back(), {0, 1, 2});
  }
  for (FileId f = 0; f < 6; ++f) {
    EXPECT_EQ(client.read(f), originals[f]) << "file " << f;
  }
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
}

// A peer that nobody is listening for: the connection fails, frames drop,
// and the caller gets a bounded error — not a hang.
TEST(TcpTransport, DeadPeerSurfacesAsBoundedError) {
  TcpTransport client_tcp;
  client_tcp.start();
  // Reserve a port, then close it so nothing listens there.
  std::uint16_t dead_port = 0;
  {
    TcpTransport probe;
    dead_port = probe.listen("127.0.0.1", 0);
    probe.shutdown();
  }
  client_tcp.add_peer(1, "127.0.0.1", dead_port);
  Bus bus(client_tcp);
  RpcNode caller(bus, kFirstClientNode, "caller");
  caller.start();

  BufferWriter w;
  w.bytes(pattern_payload(16, 1));
  const auto t0 = std::chrono::steady_clock::now();
  const Reply reply = caller.call_sync(1, kEcho, w.take(), 500ms);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(reply.ok());
  EXPECT_LT(elapsed, 5s);
  // An entirely unknown node (no address, no learned route) fails without
  // even burning the timeout.
  const Reply unknown = caller.call_sync(99, kEcho, {}, 500ms);
  EXPECT_FALSE(unknown.ok());
}

// Peer dies mid-call (request delivered, connection torn down before the
// reply): the caller's timeout fires — error, not a hang.
TEST(TcpTransport, MidCallDisconnectSurfacesAsError) {
  auto server_tcp = std::make_unique<TcpTransport>();
  const std::uint16_t port = server_tcp->listen("127.0.0.1", 0);
  auto server_bus = std::make_unique<Bus>(*server_tcp);
  auto sloth = std::make_unique<RpcNode>(*server_bus, 1, "sloth");
  sloth->handle(kEcho, [](BufferReader&) -> std::vector<std::uint8_t> {
    std::this_thread::sleep_for(1s);  // the reply will find the wire gone
    return {};
  });
  sloth->start();

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  auto pending = caller.call_tagged(1, kEcho, {});
  std::this_thread::sleep_for(200ms);  // let the request land in the handler
  // Kill the server's sockets out from under the in-flight call. (The node
  // and bus stay alive so the sleeping handler can finish harmlessly.)
  server_tcp->shutdown();

  const auto status = pending.reply.wait_for(1500ms);
  if (status != std::future_status::ready) {
    EXPECT_TRUE(caller.forget(pending.request_id));
  } else {
    EXPECT_FALSE(pending.reply.get().ok());
  }
}

// Peer restarts on its old port: the next sends notice the dead
// connection, redial, and complete — counted as transport.reconnects.
TEST(TcpTransport, ReconnectAfterPeerRestart) {
  std::uint16_t port = 0;
  auto server_tcp = std::make_unique<TcpTransport>();
  port = server_tcp->listen("127.0.0.1", 0);
  auto server_bus = std::make_unique<Bus>(*server_tcp);
  auto make_echo = [](Bus& bus) {
    auto node = std::make_unique<RpcNode>(bus, 1, "echo");
    node->handle(kEcho, [](BufferReader& r) {
      const auto body = r.bytes();
      BufferWriter w;
      w.bytes(body);
      return w.take();
    });
    node->start();
    return node;
  };
  auto echo = make_echo(*server_bus);

  TcpTransport client_tcp;
  client_tcp.start();
  client_tcp.add_peer(1, "127.0.0.1", port);
  Bus client_bus(client_tcp);
  RpcNode caller(client_bus, kFirstClientNode, "caller");
  caller.start();

  BufferWriter w1;
  w1.bytes(pattern_payload(64, 9));
  ASSERT_TRUE(caller.call_sync(1, kEcho, w1.take(), 5000ms).ok());

  // Restart: tear the whole server process-in-miniature down, then bring a
  // fresh one up on the same port (SO_REUSEADDR makes the rebind instant).
  echo.reset();
  server_bus.reset();
  server_tcp.reset();
  server_tcp = std::make_unique<TcpTransport>();
  ASSERT_EQ(server_tcp->listen("127.0.0.1", port), port);
  server_bus = std::make_unique<Bus>(*server_tcp);
  echo = make_echo(*server_bus);

  // The first send after the crash may ride the dead connection and drop;
  // retrying must land on a fresh one.
  bool recovered = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    BufferWriter w2;
    w2.bytes(pattern_payload(64, 11));
    if (caller.call_sync(1, kEcho, w2.take(), 500ms).ok()) {
      recovered = true;
      break;
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(client_tcp.counters().reconnects, 1u);
  EXPECT_EQ(client_tcp.counters().framing_errors, 0u);
}

// Shutdown with traffic in flight must not crash, leak, or deadlock.
TEST(TcpTransport, ShutdownIsIdempotentAndGraceful) {
  EchoPair p;
  ASSERT_TRUE(echo_call(*p.caller, 256, 5).ok());
  p.client_tcp.shutdown();
  p.client_tcp.shutdown();  // idempotent
  // Sends after shutdown are refused, not crashed.
  BufferWriter w;
  w.bytes(pattern_payload(8, 1));
  const Reply reply = p.caller->call_sync(1, kEcho, w.take(), 200ms);
  EXPECT_FALSE(reply.ok());
}

}  // namespace
}  // namespace spcache::rpc
