// Cross-module integration tests: the paper's headline orderings must
// emerge end-to-end from the catalog -> scheme -> simulator pipeline, and
// the analytic bound must actually bound the simulated system it models.
#include <gtest/gtest.h>

#include "core/ec_cache.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "math/latency_model.h"
#include "sim/simulation.h"

namespace spcache {
namespace {

constexpr std::size_t kServers = 30;

SimResult run_scheme(CachingScheme& scheme, const Catalog& catalog, std::size_t n_requests,
                     std::uint64_t seed, const StragglerModel& stragglers) {
  Rng rng(seed);
  scheme.place(catalog, std::vector<Bandwidth>(kServers, gbps(1.0)), rng);
  SimConfig cfg;
  cfg.n_servers = kServers;
  cfg.bandwidth = {gbps(1.0)};
  cfg.goodput = GoodputModel::calibrated(gbps(1.0));
  cfg.stragglers = stragglers;
  cfg.seed = seed + 1;
  Simulation sim(cfg);
  Rng arrival_rng(seed + 2);
  const auto arrivals = generate_poisson_arrivals(catalog, n_requests, arrival_rng);
  return sim.run(arrivals,
                 [&scheme](FileId f, Rng& r) { return scheme.plan_read(f, r); });
}

TEST(Integration, SpBeatsEcBeatsReplicationAtHighLoad) {
  // The Fig. 13 ordering at a heavy request rate.
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 18.0);
  SpCacheScheme sp;
  EcCacheScheme ec;
  SelectiveReplicationScheme sr;
  const auto none = StragglerModel::none();
  const auto r_sp = run_scheme(sp, cat, 6000, 1, none);
  const auto r_ec = run_scheme(ec, cat, 6000, 1, none);
  const auto r_sr = run_scheme(sr, cat, 6000, 1, none);
  EXPECT_LT(r_sp.mean_latency(), r_ec.mean_latency());
  EXPECT_LT(r_ec.mean_latency(), r_sr.mean_latency());
  // Tail ordering: SP below replication by a wide margin.
  EXPECT_LT(r_sp.tail_latency(), r_sr.tail_latency());
}

TEST(Integration, SpHasBestLoadBalance) {
  // The Fig. 12 ordering of imbalance factors.
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 18.0);
  SpCacheScheme sp;
  EcCacheScheme ec;
  SelectiveReplicationScheme sr;
  const auto none = StragglerModel::none();
  const auto r_sp = run_scheme(sp, cat, 8000, 2, none);
  const auto r_ec = run_scheme(ec, cat, 8000, 2, none);
  const auto r_sr = run_scheme(sr, cat, 8000, 2, none);
  EXPECT_LT(r_sp.imbalance(), r_ec.imbalance());
  EXPECT_LT(r_ec.imbalance(), r_sr.imbalance());
}

TEST(Integration, SpStillWinsUnderStragglers) {
  // Fig. 19: with injected stragglers at high load, SP-Cache keeps the
  // mean-latency lead.
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 18.0);
  SpCacheScheme sp;
  EcCacheScheme ec;
  const auto stragglers = StragglerModel::bing(0.05);
  const auto r_sp = run_scheme(sp, cat, 6000, 3, stragglers);
  const auto r_ec = run_scheme(ec, cat, 6000, 3, stragglers);
  EXPECT_LT(r_sp.mean_latency(), r_ec.mean_latency());
}

TEST(Integration, PartitioningBeatsStockUnderSkew) {
  // Fig. 5's premise: uniform partitioning crushes the no-partition layout
  // at high load.
  const auto cat = make_uniform_catalog(50, 40 * kMB, 1.1, 10.0);
  StockScheme stock;
  SimplePartitionScheme split(9);
  const auto none = StragglerModel::none();
  const auto r_stock = run_scheme(stock, cat, 4000, 4, none);
  const auto r_split = run_scheme(split, cat, 4000, 4, none);
  EXPECT_LT(r_split.mean_latency(), r_stock.mean_latency() / 3.0);
}

TEST(Integration, AnalyticBoundHoldsInModelRegime) {
  // In the exact regime the bound models (Poisson arrivals, exponential
  // transfers, no goodput loss, no stragglers, no decode), the simulated
  // mean latency must stay below the Eq. 8/9 upper bound.
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  SpCacheScheme sp;
  Rng rng(5);
  const std::vector<Bandwidth> bw(kServers, gbps(1.0));
  sp.place(cat, bw, rng);

  // Bound for this exact placement.
  LatencyModelInput input;
  input.bandwidth = bw;
  input.files.resize(cat.size());
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto& p = sp.placement(static_cast<FileId>(i));
    input.files[i].lambda = cat.file(static_cast<FileId>(i)).request_rate;
    input.files[i].partition_bytes =
        static_cast<double>(cat.file(static_cast<FileId>(i)).size) /
        static_cast<double>(p.servers.size());
    input.files[i].servers = p.servers;
  }
  const auto bound = fork_join_latency_bound(input);
  ASSERT_TRUE(bound.stable);

  SimConfig cfg;
  cfg.n_servers = kServers;
  cfg.bandwidth = {gbps(1.0)};
  cfg.goodput = GoodputModel{0.0, 0.0, 1.0};  // model regime: no goodput loss
  cfg.fetch_overhead = 0.0;
  cfg.client_nic_floor = false;
  cfg.client_setup_per_fetch = 0.0;
  cfg.seed = 6;
  Simulation sim(cfg);
  Rng arrival_rng(7);
  const auto arrivals = generate_poisson_arrivals(cat, 20000, arrival_rng);
  const auto result =
      sim.run(arrivals, [&sp](FileId f, Rng& r) { return sp.plan_read(f, r); });

  EXPECT_LE(result.mean_latency(), bound.mean_bound * 1.05);
  // And the bound is not vacuous: within a small factor of the measurement.
  EXPECT_LE(bound.mean_bound, result.mean_latency() * 3.0);
}

TEST(Integration, MemoryFootprintOrdering) {
  // SP-Cache uses 40% less memory than EC-Cache (the headline claim) and
  // less than selective replication.
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 8.0);
  SpCacheScheme sp;
  EcCacheScheme ec;
  SelectiveReplicationScheme sr;
  Rng rng(8);
  const std::vector<Bandwidth> bw(kServers, gbps(1.0));
  sp.place(cat, bw, rng);
  ec.place(cat, bw, rng);
  sr.place(cat, bw, rng);
  EXPECT_NEAR(static_cast<double>(sp.total_footprint()) /
                  static_cast<double>(ec.total_footprint()),
              1.0 / 1.4, 0.01);
  EXPECT_LT(sp.total_footprint(), sr.total_footprint());
}

TEST(Integration, HigherRateInflatesLatencyForEveryScheme) {
  const auto make_cat = [](double rate) {
    return make_uniform_catalog(100, 100 * kMB, 1.05, rate);
  };
  const auto none = StragglerModel::none();
  SpCacheScheme sp_low, sp_high;
  const auto low = run_scheme(sp_low, make_cat(6.0), 4000, 9, none);
  const auto high = run_scheme(sp_high, make_cat(20.0), 4000, 9, none);
  EXPECT_GT(high.mean_latency(), low.mean_latency());
}


// Parameterized robustness sweep: the SP-vs-EC mean-latency ordering must
// hold across skews and loads, not just at the headline operating point.
struct SweepCase {
  double zipf;
  double rate;
};

class SchemeOrderingSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchemeOrderingSweep, SpBeatsEcOnMeanLatency) {
  const auto [zipf, rate] = GetParam();
  const auto cat = make_uniform_catalog(300, 100 * kMB, zipf, rate);
  SpCacheScheme sp;
  EcCacheScheme ec;
  const auto none = StragglerModel::none();
  const auto r_sp = run_scheme(sp, cat, 5000, 42, none);
  const auto r_ec = run_scheme(ec, cat, 5000, 42, none);
  EXPECT_LT(r_sp.mean_latency(), r_ec.mean_latency())
      << "zipf=" << zipf << " rate=" << rate;
  EXPECT_LT(r_sp.imbalance(), r_ec.imbalance() + 0.05);
}

INSTANTIATE_TEST_SUITE_P(SkewAndLoad, SchemeOrderingSweep,
                         ::testing::Values(SweepCase{0.9, 10.0}, SweepCase{0.9, 18.0},
                                           SweepCase{1.05, 10.0}, SweepCase{1.05, 18.0},
                                           SweepCase{1.2, 10.0}, SweepCase{1.2, 18.0}));

}  // namespace
}  // namespace spcache
