// M/G/1 formula tests, anchored on the M/M/1 closed forms: with a single
// exponential class, Eq. 10 must reduce to W = 1/(mu - lambda) and Eq. 11 to
// Var = 1/(mu - lambda)^2.
#include "math/mg1.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spcache {
namespace {

TEST(Mg1, AggregateSingleClass) {
  const auto s = aggregate_server({{0.5, 0.8}});
  EXPECT_DOUBLE_EQ(s.lambda, 0.5);
  EXPECT_DOUBLE_EQ(s.mu, 0.8);
  EXPECT_DOUBLE_EQ(s.gamma2, 2 * 0.8 * 0.8);
  EXPECT_DOUBLE_EQ(s.gamma3, 6 * 0.8 * 0.8 * 0.8);
  EXPECT_DOUBLE_EQ(s.rho, 0.4);
  EXPECT_TRUE(s.stable());
}

TEST(Mg1, AggregateMixtureWeights) {
  // Two classes with rates 1 and 3; weights 0.25 / 0.75 (Eqs. 6, 12, 13).
  const auto s = aggregate_server({{1.0, 0.2}, {3.0, 0.1}});
  EXPECT_DOUBLE_EQ(s.lambda, 4.0);
  EXPECT_NEAR(s.mu, 0.25 * 0.2 + 0.75 * 0.1, 1e-12);
  EXPECT_NEAR(s.gamma2, 0.25 * 2 * 0.04 + 0.75 * 2 * 0.01, 1e-12);
  EXPECT_NEAR(s.gamma3, 0.25 * 6 * 0.008 + 0.75 * 6 * 0.001, 1e-12);
}

TEST(Mg1, EmptyServerIsIdle) {
  const auto s = aggregate_server({});
  EXPECT_DOUBLE_EQ(s.lambda, 0.0);
  EXPECT_DOUBLE_EQ(s.rho, 0.0);
  EXPECT_TRUE(s.stable());
}

class Mm1ReductionTest : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(Mm1ReductionTest, SojournMeanReducesToMm1) {
  const auto [lambda, service_mean] = GetParam();
  const auto s = aggregate_server({{lambda, service_mean}});
  ASSERT_TRUE(s.stable());
  const double expected = mm1_sojourn_mean(lambda, 1.0 / service_mean);
  EXPECT_NEAR(mg1_sojourn_mean(s, service_mean), expected, 1e-9);
}

TEST_P(Mm1ReductionTest, SojournVarianceReducesToMm1) {
  const auto [lambda, service_mean] = GetParam();
  const auto s = aggregate_server({{lambda, service_mean}});
  ASSERT_TRUE(s.stable());
  // M/M/1 FIFO sojourn time is Exp(mu - lambda): variance = mean^2.
  const double w = mm1_sojourn_mean(lambda, 1.0 / service_mean);
  EXPECT_NEAR(mg1_sojourn_variance(s, service_mean), w * w, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, Mm1ReductionTest,
                         ::testing::Values(std::pair{0.1, 1.0}, std::pair{0.5, 1.0},
                                           std::pair{0.9, 1.0}, std::pair{2.0, 0.25},
                                           std::pair{7.0, 0.1}));

TEST(Mg1, WaitGrowsWithUtilization) {
  double prev = 0.0;
  for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto s = aggregate_server({{lambda, 1.0}});
    const double w = mg1_sojourn_mean(s, 1.0);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Mg1, UnstableDetected) {
  const auto s = aggregate_server({{2.0, 1.0}});  // rho = 2
  EXPECT_FALSE(s.stable());
}

TEST(Mg1, MixtureWaitExceedsMm1WithSameMean) {
  // A hyperexponential mixture has a larger second moment than a pure
  // exponential with the same mean, so P-K predicts a longer queue wait.
  const double lambda = 0.8;
  const auto mixed = aggregate_server({{lambda / 2, 0.1}, {lambda / 2, 1.9}});  // mean 1.0
  const auto pure = aggregate_server({{lambda, 1.0}});
  ASSERT_TRUE(mixed.stable());
  ASSERT_TRUE(pure.stable());
  const double wait_mixed = mg1_sojourn_mean(mixed, 1.0) - 1.0;
  const double wait_pure = mg1_sojourn_mean(pure, 1.0) - 1.0;
  EXPECT_GT(wait_mixed, wait_pure);
}

}  // namespace
}  // namespace spcache
