// SP-Client / EC-Client end-to-end tests on real bytes: write-read
// roundtrips, parallel fetch, checksums, master bookkeeping, RS decode path.
#include "cluster/client.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

std::vector<std::uint32_t> first_servers(std::size_t k) {
  std::vector<std::uint32_t> s(k);
  for (std::size_t i = 0; i < k; ++i) s[i] = static_cast<std::uint32_t>(i);
  return s;
}

class ClientTest : public ::testing::Test {
 protected:
  Cluster cluster_{30, gbps(1.0)};
  Master master_;
  ThreadPool pool_{4};
  Rng rng_{17};
};

TEST_F(ClientTest, SpWriteReadRoundtrip) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(1 * kMB + 13, rng_);
  client.write(7, data, first_servers(5));
  const auto result = client.read(7);
  EXPECT_EQ(result.bytes, data);
  EXPECT_GT(result.network_time, 0.0);
  EXPECT_DOUBLE_EQ(result.compute_time, 0.0);
}

TEST_F(ClientTest, SpSinglePartitionFile) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(4096, rng_);
  client.write(1, data, {std::uint32_t{12}});
  EXPECT_EQ(client.read(1).bytes, data);
}

TEST_F(ClientTest, SpManyPartitions) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(100 * kKB + 1, rng_);
  client.write(2, data, first_servers(29));
  EXPECT_EQ(client.read(2).bytes, data);
}

TEST_F(ClientTest, SpPiecesLandOnAssignedServers) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(30 * kKB, rng_);
  const std::vector<std::uint32_t> servers{3, 9, 21};
  client.write(4, data, servers);
  for (std::size_t i = 0; i < servers.size(); ++i) {
    EXPECT_TRUE(cluster_.server(servers[i]).contains(BlockKey{4, static_cast<PieceIndex>(i)}));
  }
  // No stray copies anywhere else.
  std::size_t total_blocks = 0;
  for (std::size_t s = 0; s < cluster_.size(); ++s) total_blocks += cluster_.server(s).blocks_stored();
  EXPECT_EQ(total_blocks, 3u);
}

TEST_F(ClientTest, ReadUnknownFileThrows) {
  SpClient client(cluster_, master_, pool_);
  EXPECT_THROW(client.read(99), std::runtime_error);
}

TEST_F(ClientTest, MissingPieceDetected) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(10 * kKB, rng_);
  client.write(5, data, first_servers(4));
  cluster_.server(2).erase(BlockKey{5, 2});
  EXPECT_THROW(client.read(5), std::runtime_error);
}

TEST_F(ClientTest, AccessCountsBumpOnRead) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(kKB, rng_);
  client.write(6, data, first_servers(2));
  EXPECT_EQ(master_.access_count(6), 0u);
  client.read(6);
  client.read(6);
  client.read(6);
  // Cache-served reads tally locally; the popularity signal reaches the
  // master once the batch flushes (here: explicitly).
  client.flush_access_reports();
  EXPECT_EQ(master_.access_count(6), 3u);
}

TEST_F(ClientTest, OverwriteUpdatesLayout) {
  SpClient client(cluster_, master_, pool_);
  const auto v1 = random_bytes(10 * kKB, rng_);
  const auto v2 = random_bytes(20 * kKB, rng_);
  client.write(8, v1, first_servers(3));
  client.write(8, v2, {std::uint32_t{10}, std::uint32_t{11}});
  EXPECT_EQ(client.read(8).bytes, v2);
  EXPECT_EQ(master_.peek(8)->partitions(), 2u);
}

TEST_F(ClientTest, EcWriteReadRoundtrip) {
  EcClient client(cluster_, master_, pool_, 10, 14);
  const auto data = random_bytes(1 * kMB + 77, rng_);
  const auto w = client.write(3, data, first_servers(14));
  EXPECT_GT(w.compute_time, 0.0);  // real encode happened
  for (int trial = 0; trial < 10; ++trial) {
    const auto r = client.read(3, rng_);
    EXPECT_EQ(r.bytes, data);
  }
}

TEST_F(ClientTest, EcDecodePathWithParityShards) {
  // Repeated late-binding reads eventually pick parity-heavy subsets; all
  // must decode to the same bytes.
  EcClient client(cluster_, master_, pool_, 4, 8);
  const auto data = random_bytes(333 * kKB, rng_);
  client.write(9, data, first_servers(8));
  for (int trial = 0; trial < 25; ++trial) {
    EXPECT_EQ(client.read(9, rng_).bytes, data);
  }
}

TEST_F(ClientTest, EcWriteValidatesServerCount) {
  EcClient client(cluster_, master_, pool_, 10, 14);
  const auto data = random_bytes(kKB, rng_);
  EXPECT_THROW(client.write(1, data, first_servers(10)), std::invalid_argument);
}

TEST_F(ClientTest, EcStoresExactlyNShards) {
  EcClient client(cluster_, master_, pool_, 10, 14);
  const auto data = random_bytes(140 * kKB, rng_);
  client.write(2, data, first_servers(14));
  std::size_t total_blocks = 0;
  Bytes total_bytes = 0;
  for (std::size_t s = 0; s < cluster_.size(); ++s) {
    total_blocks += cluster_.server(s).blocks_stored();
    total_bytes += cluster_.server(s).bytes_stored();
  }
  EXPECT_EQ(total_blocks, 14u);
  // 40% memory overhead (up to per-shard padding).
  EXPECT_GE(total_bytes, data.size() * 14 / 10);
}

TEST_F(ClientTest, ConcurrentClientsOnSharedCluster) {
  SpClient client(cluster_, master_, pool_);
  // Write 20 files, then read them back concurrently from sibling threads.
  std::vector<std::vector<std::uint8_t>> originals(20);
  for (FileId f = 0; f < 20; ++f) {
    originals[f] = random_bytes(32 * kKB + f, rng_);
    client.write(f, originals[f], first_servers(3 + f % 5));
  }
  ThreadPool readers(6);
  readers.parallel_for(20, [&](std::size_t f) {
    SpClient local(cluster_, master_, pool_);
    const auto result = local.read(static_cast<FileId>(f));
    ASSERT_EQ(result.bytes, originals[f]);
  });
}

TEST_F(ClientTest, ModelledTimesScaleWithSize) {
  SpClient client(cluster_, master_, pool_);
  const auto small = random_bytes(10 * kKB, rng_);
  const auto large = random_bytes(1000 * kKB, rng_);
  const auto ws = client.write(11, small, first_servers(2));
  const auto wl = client.write(12, large, first_servers(2));
  EXPECT_GT(wl.network_time, ws.network_time);
  EXPECT_GT(client.read(12).network_time, client.read(11).network_time);
}


TEST_F(ClientTest, SizedWriteReadRoundtrip) {
  SpClient client(cluster_, master_, pool_);
  const auto data = random_bytes(1000 * kKB, rng_);
  // Pieces sized 2:1:1 as a bandwidth-weighted placement would produce.
  const std::vector<Bytes> sizes{500 * kKB, 250 * kKB, 250 * kKB};
  client.write_sized(20, data, {std::uint32_t{1}, std::uint32_t{2}, std::uint32_t{3}}, sizes);
  const auto meta = master_.peek(20);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->piece_sizes, sizes);
  EXPECT_EQ(cluster_.server(1).bytes_stored(), 500 * kKB);
  EXPECT_EQ(client.read(20).bytes, data);
}

}  // namespace
}  // namespace spcache
