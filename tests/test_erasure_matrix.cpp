// GF(256) matrix tests: identity, multiplication, Cauchy submatrix
// invertibility (the MDS property's foundation), Gauss-Jordan inversion.
#include "erasure/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "erasure/gf256.h"

namespace spcache {
namespace {

TEST(GfMatrix, IdentityMultiplication) {
  const auto id = GfMatrix::identity(4);
  GfMatrix m(4, 4);
  Rng rng(1);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.at(i, j) = static_cast<std::uint8_t>(rng.uniform_index(256));
    }
  }
  EXPECT_EQ(id.multiply(m), m);
  EXPECT_EQ(m.multiply(id), m);
}

TEST(GfMatrix, InverseOfIdentityIsIdentity) {
  const auto id = GfMatrix::identity(5);
  const auto inv = id.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, id);
}

TEST(GfMatrix, SingularMatrixReturnsNullopt) {
  GfMatrix m(2, 2);  // all zeros
  EXPECT_FALSE(m.inverse().has_value());
  // Duplicate rows.
  GfMatrix d(2, 2);
  d.at(0, 0) = 1;
  d.at(0, 1) = 2;
  d.at(1, 0) = 1;
  d.at(1, 1) = 2;
  EXPECT_FALSE(d.inverse().has_value());
}

TEST(GfMatrix, InverseTimesSelfIsIdentity) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    GfMatrix m(6, 6);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        m.at(i, j) = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
    }
    const auto inv = m.inverse();
    if (!inv.has_value()) continue;  // randomly singular: skip
    EXPECT_EQ(inv->multiply(m), GfMatrix::identity(6));
    EXPECT_EQ(m.multiply(*inv), GfMatrix::identity(6));
  }
}

TEST(GfMatrix, CauchyEntriesFormula) {
  const auto c = GfMatrix::cauchy(4, 10);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      const auto x = static_cast<std::uint8_t>(i);
      const auto y = static_cast<std::uint8_t>(4 + j);
      EXPECT_EQ(c.at(i, j), gf256::inv(gf256::add(x, y)));
    }
  }
}

TEST(GfMatrix, CauchySquareSubmatricesInvertible) {
  // Every square submatrix of a Cauchy matrix is nonsingular — the property
  // that makes [I ; C] an MDS generator. Sample row/column subsets.
  const auto c = GfMatrix::cauchy(8, 8);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t size = 1 + rng.uniform_index(8);
    const auto rows = rng.sample_without_replacement(8, size);
    const auto cols = rng.sample_without_replacement(8, size);
    GfMatrix sub(size, size);
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = 0; j < size; ++j) sub.at(i, j) = c.at(rows[i], cols[j]);
    }
    EXPECT_TRUE(sub.inverse().has_value()) << "trial " << trial << " size " << size;
  }
}

TEST(GfMatrix, SelectRows) {
  GfMatrix m(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) m.at(i, j) = static_cast<std::uint8_t>(10 * i + j);
  }
  const auto s = m.select_rows({2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.at(0, 0), 20);
  EXPECT_EQ(s.at(0, 1), 21);
  EXPECT_EQ(s.at(1, 0), 0);
}

TEST(GfMatrix, MultiplyDimensions) {
  GfMatrix a(2, 3), b(3, 4);
  const auto c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
}

}  // namespace
}  // namespace spcache
