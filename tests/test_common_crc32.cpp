// CRC-32 correctness: standard check value, incrementality, sensitivity.
#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace spcache {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Crc32, StandardCheckValue) {
  // The canonical CRC-32/IEEE test vector.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const auto whole = crc32(data);
  for (std::size_t cut = 0; cut <= data.size(); cut += 7) {
    auto state = crc32_init();
    state = crc32_update(state, std::span(data).subspan(0, cut));
    state = crc32_update(state, std::span(data).subspan(cut));
    EXPECT_EQ(crc32_final(state), whole) << "cut at " << cut;
  }
}

TEST(Crc32, SingleBitFlipDetected) {
  auto data = bytes_of("partition payload");
  const auto original = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(crc32(data), original) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
  EXPECT_EQ(crc32(data), original);
}

TEST(Crc32, DifferentLengthsDiffer) {
  const auto a = bytes_of("aaaa");
  const auto b = bytes_of("aaaaa");
  EXPECT_NE(crc32(a), crc32(b));
}

}  // namespace
}  // namespace spcache
