// GF(256) field-axiom tests (property-style over sampled triples) and bulk
// slice operation tests.
#include "erasure/gf256.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace spcache::gf256 {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, 1), x);
    EXPECT_EQ(mul(1, x), x);
    EXPECT_EQ(mul(x, 0), 0);
    EXPECT_EQ(mul(0, x), 0);
  }
}

TEST(Gf256, KnownAesProducts) {
  // Classic AES-field check values (polynomial 0x11B).
  EXPECT_EQ(mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(mul(0x02, 0x80), 0x1B);
  EXPECT_EQ(mul(0x57, 0x13), 0xFE);
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(mul(x, inv(x)), 1) << "a=" << a;
    EXPECT_EQ(div(x, x), 1);
  }
}

TEST(Gf256, DivIsMulByInverse) {
  Rng rng(1);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    EXPECT_EQ(div(a, b), mul(a, inv(b)));
  }
}

class Gf256AxiomsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Gf256AxiomsTest, CommutativeAssociativeDistributive) {
  Rng rng(GetParam());
  for (int t = 0; t < 3000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform_index(256));
    EXPECT_EQ(mul(a, b), mul(b, a));
    EXPECT_EQ(mul(a, mul(b, c)), mul(mul(a, b), c));
    EXPECT_EQ(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Gf256AxiomsTest, ::testing::Values(11, 22, 33, 44));

TEST(Gf256, PowMatchesRepeatedMul) {
  Rng rng(5);
  for (int t = 0; t < 500; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_index(256));
    const unsigned e = static_cast<unsigned>(rng.uniform_index(16));
    std::uint8_t expected = 1;
    for (unsigned i = 0; i < e; ++i) expected = mul(expected, a);
    EXPECT_EQ(pow(a, e), expected) << "a=" << int(a) << " e=" << e;
  }
}

TEST(Gf256, PowZeroExponent) {
  EXPECT_EQ(pow(0, 0), 1);
  EXPECT_EQ(pow(97, 0), 1);
}

TEST(Gf256, FermatLittleTheorem) {
  // a^255 == 1 for all nonzero a.
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(pow(static_cast<std::uint8_t>(a), 255), 1);
  }
}

TEST(Gf256, MulSliceMatchesScalar) {
  Rng rng(6);
  std::vector<std::uint8_t> src(257);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{0x53}, std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> dst(src.size());
    mul_slice(dst, src, c);
    for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(dst[i], mul(src[i], c));
  }
}

TEST(Gf256, MulAddSliceMatchesScalar) {
  Rng rng(7);
  std::vector<std::uint8_t> src(129), dst(129), expected(129);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  expected = dst;
  const std::uint8_t c = 0xA7;
  for (std::size_t i = 0; i < src.size(); ++i) expected[i] = add(expected[i], mul(src[i], c));
  mul_add_slice(dst, src, c);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256, MulAddSliceZeroCoefficientIsNoop) {
  std::vector<std::uint8_t> src{1, 2, 3}, dst{9, 8, 7};
  const auto before = dst;
  mul_add_slice(dst, src, 0);
  EXPECT_EQ(dst, before);
}

}  // namespace
}  // namespace spcache::gf256
