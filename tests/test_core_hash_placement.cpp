// Consistent-hash ring and hash-placement baseline tests.
#include "core/hash_placement.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/stats.h"

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n) { return std::vector<Bandwidth>(n, gbps(1.0)); }

TEST(HashRing, Deterministic) {
  ConsistentHashRing a(30), b(30);
  for (std::uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(a.server_for(key), b.server_for(key));
  }
}

TEST(HashRing, AllServersReachable) {
  ConsistentHashRing ring(10, 128);
  std::set<std::uint32_t> seen;
  for (std::uint64_t key = 0; key < 5000; ++key) seen.insert(ring.server_for(key));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HashRing, RoughKeyBalanceWithManyVnodes) {
  ConsistentHashRing ring(10, 256);
  std::map<std::uint32_t, int> counts;
  const int keys = 50000;
  for (std::uint64_t key = 0; key < keys; ++key) ++counts[ring.server_for(key)];
  for (const auto& [server, count] : counts) {
    // Within 2x of the fair share — hashing balances counts, not load.
    EXPECT_GT(count, keys / 10 / 2);
    EXPECT_LT(count, keys / 10 * 2);
  }
}

TEST(HashRing, ServersForDistinct) {
  ConsistentHashRing ring(30, 64);
  for (std::uint64_t key = 0; key < 100; ++key) {
    const auto servers = ring.servers_for(key, 14);
    const std::set<std::uint32_t> distinct(servers.begin(), servers.end());
    EXPECT_EQ(distinct.size(), 14u);
    EXPECT_EQ(servers.front(), ring.server_for(key));  // chain starts at owner
  }
}

TEST(HashRing, MinimalDisruptionWhenGrowing) {
  // Adding a server must not reshuffle the bulk of the keys — the defining
  // property of consistent hashing.
  ConsistentHashRing before(20, 64), after(21, 64);
  int moved = 0;
  const int keys = 20000;
  for (std::uint64_t key = 0; key < keys; ++key) {
    if (before.server_for(key) != after.server_for(key)) ++moved;
  }
  // Expected churn ~ 1/21 of keys; allow generous slack.
  EXPECT_LT(moved, keys / 5);
  EXPECT_GT(moved, 0);
}

TEST(HashPlacement, WholeFileOnRingOwner) {
  HashPlacementScheme scheme;
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  Rng rng(1);
  scheme.place(cat, uniform_bw(30), rng);
  const ConsistentHashRing ring(30, 64);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& p = scheme.placement(static_cast<FileId>(i));
    ASSERT_EQ(p.servers.size(), 1u);
    EXPECT_EQ(p.servers[0], ring.server_for(i));
    EXPECT_EQ(p.piece_bytes[0], 100 * kMB);
  }
  EXPECT_NEAR(scheme.memory_overhead(cat), 0.0, 1e-9);
}

TEST(HashPlacement, PopularityAgnosticImbalance) {
  // The Section 9 argument: perfect count balance != load balance. Hash
  // placement's per-server expected load variance is far above SP-Cache's
  // under skew.
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.1, 10.0);
  HashPlacementScheme hash;
  Rng rng(2);
  hash.place(cat, uniform_bw(30), rng);
  std::vector<double> loads(30, 0.0);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    loads[hash.placement(static_cast<FileId>(i)).servers[0]] +=
        cat.load(static_cast<FileId>(i));
  }
  // The hottest file alone pushes its server far above average.
  EXPECT_GT(imbalance_factor(loads), 1.0);
}

TEST(HashPlacement, ReadAndWritePlans) {
  HashPlacementScheme scheme;
  const auto cat = make_uniform_catalog(10, 10 * kMB, 1.0, 1.0);
  Rng rng(3);
  scheme.place(cat, uniform_bw(30), rng);
  const auto read = scheme.plan_read(4, rng);
  EXPECT_EQ(read.fetches.size(), 1u);
  EXPECT_EQ(read.needed, 1u);
  const auto write = scheme.plan_write(4, rng);
  EXPECT_EQ(write.stores.size(), 1u);
  EXPECT_EQ(write.stores[0].server, read.fetches[0].server);
}

}  // namespace
}  // namespace spcache
