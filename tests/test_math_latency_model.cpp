// System latency bound tests (Eqs. 8-13 wired together).
#include "math/latency_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/mg1.h"

namespace spcache {
namespace {

LatencyModelInput single_file_single_server(double lambda, double bytes, double bw) {
  LatencyModelInput in;
  in.bandwidth = {bw};
  LatencyModelInput::FileEntry f;
  f.lambda = lambda;
  f.partition_bytes = bytes;
  f.servers = {0};
  in.files.push_back(f);
  return in;
}

TEST(LatencyModel, SingleServerReducesToMm1) {
  // One file, one server: the fork-join bound over one branch is E[Q],
  // which for an exponential class is the M/M/1 sojourn 1/(mu - lambda).
  const double lambda = 0.5, bytes = 1e8, bw = 1e9;
  const double service_mean = bytes / bw;  // 0.1 s -> mu = 10
  const auto result = fork_join_latency_bound(single_file_single_server(lambda, bytes, bw));
  ASSERT_TRUE(result.stable);
  EXPECT_NEAR(result.mean_bound, 1.0 / (1.0 / service_mean - lambda), 1e-9);
  EXPECT_NEAR(result.utilization[0], lambda * service_mean, 1e-12);
}

TEST(LatencyModel, UnstableServerFlagged) {
  // rho = lambda * S/B = 20 * 0.1 = 2 > 1.
  const auto result = fork_join_latency_bound(single_file_single_server(20.0, 1e8, 1e9));
  EXPECT_FALSE(result.stable);
  EXPECT_TRUE(std::isinf(result.per_file_bound[0]));
}

TEST(LatencyModel, PopularityWeighting) {
  // Two files on two separate servers; system bound = rate-weighted mean.
  LatencyModelInput in;
  in.bandwidth = {1e9, 1e9};
  LatencyModelInput::FileEntry f0;
  f0.lambda = 3.0;
  f0.partition_bytes = 1e8;
  f0.servers = {0};
  LatencyModelInput::FileEntry f1;
  f1.lambda = 1.0;
  f1.partition_bytes = 2e8;
  f1.servers = {1};
  in.files = {f0, f1};
  const auto result = fork_join_latency_bound(in);
  ASSERT_TRUE(result.stable);
  const double expected =
      (3.0 * result.per_file_bound[0] + 1.0 * result.per_file_bound[1]) / 4.0;
  EXPECT_NEAR(result.mean_bound, expected, 1e-12);
}

TEST(LatencyModel, SplittingReducesBoundUnderLoad) {
  // A hot file on one server vs split across four servers: partitioning
  // must reduce the bound (that is the point of SP-Cache).
  LatencyModelInput whole;
  whole.bandwidth = std::vector<double>(4, 1e9);
  LatencyModelInput::FileEntry f;
  f.lambda = 8.0;
  f.partition_bytes = 1e8;
  f.servers = {0};
  whole.files = {f};

  LatencyModelInput split = whole;
  split.files[0].partition_bytes = 0.25e8;
  split.files[0].servers = {0, 1, 2, 3};

  const auto whole_result = fork_join_latency_bound(whole);
  const auto split_result = fork_join_latency_bound(split);
  ASSERT_TRUE(whole_result.stable);
  ASSERT_TRUE(split_result.stable);
  EXPECT_LT(split_result.mean_bound, whole_result.mean_bound);
}

TEST(LatencyModel, ZeroRateFileIgnored) {
  LatencyModelInput in = single_file_single_server(0.0, 1e8, 1e9);
  const auto result = fork_join_latency_bound(in);
  EXPECT_DOUBLE_EQ(result.per_file_bound[0], 0.0);
  EXPECT_DOUBLE_EQ(result.mean_bound, 0.0);
}

TEST(LatencyModel, SharedServerCreatesInterference) {
  // Two files sharing a server wait on each other; separating them onto
  // distinct servers lowers both bounds.
  LatencyModelInput shared;
  shared.bandwidth = {1e9, 1e9};
  LatencyModelInput::FileEntry f0;
  f0.lambda = 4.0;
  f0.partition_bytes = 1e8;
  f0.servers = {0};
  auto f1 = f0;
  shared.files = {f0, f1};  // both on server 0

  auto separated = shared;
  separated.files[1].servers = {1};

  const auto a = fork_join_latency_bound(shared);
  const auto b = fork_join_latency_bound(separated);
  ASSERT_TRUE(a.stable);
  ASSERT_TRUE(b.stable);
  EXPECT_GT(a.mean_bound, b.mean_bound);
}

}  // namespace
}  // namespace spcache
