// Straggler model tests: injection probability and slowdown profile.
#include "workload/straggler.h"

#include <gtest/gtest.h>

namespace spcache {
namespace {

TEST(Straggler, NoneAlwaysReturnsOne) {
  auto model = StragglerModel::none();
  Rng rng(1);
  EXPECT_FALSE(model.enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_DOUBLE_EQ(model.sample_slowdown(rng), 1.0);
}

TEST(Straggler, InjectionProbability) {
  auto model = StragglerModel::bing(0.05);
  Rng rng(2);
  int straggled = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.sample_slowdown(rng) > 1.0) ++straggled;
  }
  EXPECT_NEAR(straggled / static_cast<double>(n), 0.05, 0.005);
}

TEST(Straggler, SlowdownsAtLeastMinProfileFactor) {
  auto model = StragglerModel::bing(1.0);  // always straggle
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double s = model.sample_slowdown(rng);
    EXPECT_GE(s, 1.5);
    EXPECT_LE(s, 10.0);
  }
}

TEST(Straggler, ConditionalMeanMatchesEmpirical) {
  auto model = StragglerModel::bing(1.0);
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += model.sample_slowdown(rng);
  EXPECT_NEAR(sum / n, model.conditional_mean_slowdown(), 0.02);
}

TEST(Straggler, ProfileShapeIsHeavyHeaded) {
  // Most stragglers are mild (< 3x), few are extreme — the Mantri shape.
  auto model = StragglerModel::bing(1.0);
  Rng rng(5);
  int mild = 0, extreme = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double s = model.sample_slowdown(rng);
    if (s < 3.0) ++mild;
    if (s >= 8.0) ++extreme;
  }
  EXPECT_GT(mild / static_cast<double>(n), 0.6);
  EXPECT_LT(extreme / static_cast<double>(n), 0.05);
}

TEST(Straggler, CustomProfile) {
  StragglerModel model(0.5, {{2.0, 1.0}});
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double s = model.sample_slowdown(rng);
    EXPECT_TRUE(s == 1.0 || s == 2.0);
  }
  EXPECT_DOUBLE_EQ(model.conditional_mean_slowdown(), 2.0);
}

TEST(Straggler, DefaultBingProbability) {
  EXPECT_DOUBLE_EQ(StragglerModel::bing().probability(), 0.05);
}

}  // namespace
}  // namespace spcache
