// Binary serialization tests: roundtrips, endianness independence at the
// API level, truncation detection.
#include "rpc/serialize.h"

#include <gtest/gtest.h>

#include <limits>
#include <span>

#include "common/rng.h"

namespace spcache::rpc {
namespace {

TEST(Serialize, ScalarRoundtrip) {
  BufferWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-3.14159e42);
  BufferReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -3.14159e42);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, BytesAndStringRoundtrip) {
  Rng rng(1);
  std::vector<std::uint8_t> blob(1000);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  BufferWriter w;
  w.bytes(blob);
  w.str("sp-cache");
  w.bytes({});  // empty payload is legal
  BufferReader r(w.data());
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "sp-cache");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, LittleEndianWireFormat) {
  BufferWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.data().size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, TruncationDetected) {
  BufferWriter w;
  w.u64(7);
  const auto buf = w.data();
  {
    const std::span<const std::uint8_t> view(buf.data(), 4);
    BufferReader r(view);
    EXPECT_THROW(r.u64(), std::runtime_error);
  }
  {
    // Length prefix claims more bytes than exist.
    BufferWriter w2;
    w2.u32(100);  // fake length
    BufferReader r(w2.data());
    EXPECT_THROW(r.bytes(), std::runtime_error);
  }
}

TEST(Serialize, SequentialFieldsIndependent) {
  BufferWriter w;
  for (std::uint32_t i = 0; i < 100; ++i) w.u32(i * i);
  BufferReader r(w.data());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(r.u32(), i * i);
}

TEST(Serialize, SpecialDoubles) {
  BufferWriter w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::denorm_min());
  BufferReader r(w.data());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

}  // namespace
}  // namespace spcache::rpc
