// Metadata-light read path, in-process side: LayoutCache epoch rules,
// AccessAccumulator batching, cache-served SpClient reads, and stale-layout
// convergence when a repartition/repair erases the pieces a cached layout
// points at — including concurrent readers racing the re-placement (the
// TSan target for this subsystem).
#include "cluster/layout_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/client.h"
#include "common/rng.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

FileMeta meta_with_epoch(std::uint64_t epoch, std::uint32_t server = 0) {
  FileMeta meta;
  meta.size = 100;
  meta.servers = {server};
  meta.piece_sizes = {100};
  meta.epoch = epoch;
  return meta;
}

// Retries stay hot so convergence tests don't sleep through backoff.
fault::RetryPolicy hot_retries() {
  fault::RetryPolicy retry;
  retry.base_backoff = std::chrono::microseconds(0);
  retry.max_backoff = std::chrono::microseconds(0);
  return retry;
}

TEST(LayoutCache, NewerEpochWinsOnRace) {
  LayoutCache cache(64);
  cache.put(1, meta_with_epoch(5, 10));
  // A slow LOOKUP reply from before the refresh must not clobber it.
  cache.put(1, meta_with_epoch(3, 99));
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(cache.get(1)->epoch, 5u);
  EXPECT_EQ(cache.get(1)->servers[0], 10u);
  // Equal epoch refreshes (idempotent put), newer epoch replaces.
  cache.put(1, meta_with_epoch(6, 42));
  EXPECT_EQ(cache.get(1)->epoch, 6u);
  EXPECT_EQ(cache.get(1)->servers[0], 42u);
}

TEST(LayoutCache, InvalidateDropsEntryAndCounts) {
  LayoutCache cache(64);
  cache.put(7, meta_with_epoch(1));
  EXPECT_TRUE(cache.invalidate(7));
  EXPECT_FALSE(cache.get(7).has_value());
  EXPECT_FALSE(cache.invalidate(7));  // already gone; still counted
  EXPECT_EQ(cache.invalidations(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LayoutCache, BoundedByCapacity) {
  LayoutCache cache(32);
  for (FileId f = 0; f < 10'000; ++f) cache.put(f, meta_with_epoch(1));
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(AccessAccumulator, SignalsAtThresholdAndDrains) {
  AccessAccumulator acc(4);
  EXPECT_FALSE(acc.record(1));
  EXPECT_FALSE(acc.record(1));
  EXPECT_FALSE(acc.record(2));
  EXPECT_TRUE(acc.record(3));  // 4th pending access trips the threshold
  auto deltas = acc.drain();
  std::uint64_t total = 0;
  for (const auto& [id, delta] : deltas) total += delta;
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(acc.pending(), 0u);
  EXPECT_TRUE(acc.drain().empty());
}

TEST(ClientLayoutCache, CachedReadsSkipMasterLookup) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(21);
  SpClient client(cluster, master, pool, nullptr, hot_retries());
  const auto data = random_bytes(64 * kKB, rng);
  client.write(3, data, {0, 1, 2});

  for (int i = 0; i < 5; ++i) {
    const auto result = client.read(3);
    EXPECT_EQ(result.bytes, data);
    EXPECT_TRUE(result.layout_cached);  // own write warmed the cache
  }
  EXPECT_EQ(client.layout_cache().hits(), 5u);
  // The master saw no LOOKUP: popularity arrives only with the flush.
  EXPECT_EQ(master.access_count(3), 0u);
  EXPECT_EQ(client.flush_access_reports(), 5u);
  EXPECT_EQ(master.access_count(3), 5u);
}

TEST(ClientLayoutCache, DisabledCacheRestoresAlwaysLookup) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(22);
  ClientCacheConfig config;
  config.layout_cache = false;
  SpClient client(cluster, master, pool, nullptr, hot_retries(), GoodputModel{}, config);
  const auto data = random_bytes(16 * kKB, rng);
  client.write(4, data, {0, 1});
  for (int i = 0; i < 3; ++i) {
    const auto result = client.read(4);
    EXPECT_EQ(result.bytes, data);
    EXPECT_FALSE(result.layout_cached);
  }
  EXPECT_EQ(master.access_count(4), 3u);  // every read paid a LOOKUP
  EXPECT_EQ(client.layout_cache().hits(), 0u);
}

TEST(ClientLayoutCache, EpochBumpsOnEveryLayoutMutation) {
  Cluster cluster(4, gbps(1.0));
  Master master;
  ThreadPool pool(2);
  Rng rng(23);
  SpClient client(cluster, master, pool, nullptr, hot_retries());
  const auto data = random_bytes(8 * kKB, rng);
  EXPECT_EQ(master.file_epoch(9), 0u);  // unknown file
  client.write(9, data, {0, 1});
  const auto e1 = master.file_epoch(9);
  EXPECT_GE(e1, 1u);
  client.write(9, data, {2, 3});  // update_file path
  EXPECT_GT(master.file_epoch(9), e1);
}

TEST(ClientLayoutCache, StaleLayoutConvergesAfterReplacement) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(24);
  SpClient reader(cluster, master, pool, nullptr, hot_retries());
  SpClient writer(cluster, master, pool, nullptr, hot_retries());
  const auto data = random_bytes(48 * kKB, rng);
  writer.write(5, data, {0, 1});

  // Warm the reader's cache with the {0,1} layout.
  EXPECT_EQ(reader.read(5).bytes, data);
  ASSERT_TRUE(reader.layout_cache().contains(5));

  // A repartition moves the file to {4,5} and erases the old pieces —
  // exactly what execute_parallel_repartition / a repair does.
  writer.write(5, data, {4, 5});
  cluster.server(0).erase(BlockKey{5, 0});
  cluster.server(1).erase(BlockKey{5, 1});

  // The reader's cached layout is now a dangling pointer: pass 1 fails on
  // the missing pieces, invalidates, and pass 2's fresh LOOKUP converges.
  const auto result = reader.read(5);
  EXPECT_EQ(result.bytes, data);
  EXPECT_FALSE(result.layout_cached);
  EXPECT_GE(result.retries, 1u);
  EXPECT_GE(reader.layout_cache().invalidations(), 1u);
  // And the refreshed layout serves the next read from cache again.
  EXPECT_TRUE(reader.read(5).layout_cached);
}

TEST(ClientLayoutCache, ConcurrentCachedReadersSurviveReplacementChurn) {
  // TSan target: reader threads serve from their shared client's layout
  // cache while the main thread repeatedly re-places the file and erases
  // the old generation, with a seeded injector flaking fetches. Readers
  // must converge through invalidate + re-LOOKUP and never return wrong
  // bytes.
  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kReplacements = 12;
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(25);
  fault::FaultConfig fault_config;
  fault_config.fetch_fail_p = 0.05;
  fault::FaultInjector injector(77, fault_config);
  injector.arm();
  cluster.set_fault_injector(&injector);

  SpClient writer(cluster, master, pool, nullptr, hot_retries());
  const auto data = random_bytes(32 * kKB, rng);
  writer.write(6, data, {0, 1});

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> good_reads{0};
  std::atomic<std::size_t> transient_failures{0};
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ThreadPool fetch_pool(2);
      SpClient client(cluster, master, fetch_pool, nullptr, hot_retries());
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const auto result = client.read(6);
          EXPECT_EQ(result.bytes, data);
          good_reads.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error&) {
          transient_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      client.flush_access_reports();
      (void)t;
    });
  }

  // Bounce the layout between server pairs, erasing the old generation.
  std::vector<std::uint32_t> prev{0, 1};
  for (std::size_t round = 0; round < kReplacements; ++round) {
    const std::uint32_t base = static_cast<std::uint32_t>(2 + 2 * (round % 3));
    writer.write(6, data, {base, base + 1});
    for (std::uint32_t i = 0; i < 2; ++i) {
      if (prev[i] != base && prev[i] != base + 1) {
        cluster.server(prev[i]).erase(BlockKey{6, static_cast<PieceIndex>(i)});
      }
    }
    prev = {base, base + 1};
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(good_reads.load(), 0u);
  // Popularity survives the cached path: flushed reports landed at the
  // master as access counts.
  EXPECT_GT(master.access_count(6), 0u);
}

}  // namespace
}  // namespace spcache
