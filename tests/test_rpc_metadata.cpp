// Metadata-light read path over RPC: epoch-validated layout caching
// (kWrongEpoch convergence after a repartition), per-worker multi-GET
// coalescing, single-flight dedup of concurrent same-file reads, batched
// kReportAccess popularity, and kLookupBatch cache warmup.
#include "rpc/cache_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/sp_cache.h"
#include "obs/metrics.h"
#include "rpc/repartitioner_service.h"

namespace spcache::rpc {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

fault::RetryPolicy hot_retries() {
  fault::RetryPolicy retry;
  retry.base_backoff = std::chrono::microseconds(0);
  retry.max_backoff = std::chrono::microseconds(0);
  return retry;
}

class RpcMetadataTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 6;

  RpcMetadataTest() {
    master_ = std::make_unique<MasterService>(bus_);
    for (std::size_t s = 0; s < kWorkers; ++s) {
      workers_.push_back(std::make_unique<CacheWorkerService>(
          bus_, kFirstWorkerNode + static_cast<NodeId>(s), static_cast<std::uint32_t>(s),
          gbps(1.0)));
      worker_nodes_.push_back(workers_.back()->node_id());
    }
    client_ = std::make_unique<RpcSpClient>(bus_, kFirstClientNode, kMasterNode, worker_nodes_,
                                            hot_retries());
    bus_.attach_observability(&registry_);
    client_->attach_observability(&registry_);
    master_->master().attach_observability(&registry_);
  }

  std::uint64_t counter(std::string_view name) { return registry_.counter(name).value(); }

  Bus bus_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<MasterService> master_;
  std::vector<std::unique_ptr<CacheWorkerService>> workers_;
  std::vector<NodeId> worker_nodes_;
  std::unique_ptr<RpcSpClient> client_;
  Rng rng_{31};
};

TEST_F(RpcMetadataTest, CachedReadsSkipLookupAndCoalesceEnvelopes) {
  const auto data = random_bytes(120 * kKB, rng_);
  // Two pieces on worker 0, one on worker 1: the coalesced read needs two
  // envelopes where the per-piece baseline needs three.
  client_->write(1, data, {0, 0, 1});

  for (int i = 0; i < 4; ++i) {
    const auto stats = client_->read_with_stats(1);
    EXPECT_EQ(stats.bytes, data);
    EXPECT_TRUE(stats.layout_cached);  // the write warmed the cache
  }
  namespace n = obs::names;
  EXPECT_EQ(counter(n::kClientLayoutHits), 4u);
  EXPECT_EQ(counter(n::kClientLayoutMisses), 0u);
  // Each read saved one envelope (pieces 0+1 shared worker 0's multi-GET).
  EXPECT_EQ(counter(n::kBusEnvelopesCoalesced), 4u);
  // No LOOKUP reached the master until the batch flush.
  EXPECT_EQ(client_->access_count(1), 0u);
  EXPECT_EQ(client_->flush_access_reports(), 4u);
  EXPECT_EQ(client_->access_count(1), 4u);
  EXPECT_EQ(counter(n::kMasterLookupsSaved), 4u);
}

TEST_F(RpcMetadataTest, WrongEpochRejectsStaleMultiGet) {
  const auto data = random_bytes(60 * kKB, rng_);
  client_->write(2, data, {0, 1});
  EXPECT_EQ(client_->read(2), data);  // caches the epoch-1 layout

  // A second writer bumps the layout generation on an overlapping worker:
  // worker 0 now remembers a newer epoch than the cached layout carries.
  RpcSpClient writer(bus_, kFirstClientNode + 1, kMasterNode, worker_nodes_, hot_retries());
  writer.write(2, data, {0, 2});

  // The stale multi-GET draws kWrongEpoch; the client invalidates and the
  // next pass re-LOOKUPs the fresh layout.
  const auto stats = client_->read_with_stats(2);
  EXPECT_EQ(stats.bytes, data);
  EXPECT_GE(stats.passes, 2u);
  EXPECT_FALSE(stats.layout_cached);
  EXPECT_GE(client_->layout_cache().invalidations(), 1u);
  EXPECT_GE(counter(obs::names::kClientLayoutInvalidations), 1u);
  // Converged: the refreshed layout serves from cache again.
  EXPECT_TRUE(client_->read_with_stats(2).layout_cached);
}

TEST_F(RpcMetadataTest, StaleCacheConvergesAfterRpcRepartition) {
  const auto data = random_bytes(90 * kKB, rng_);
  client_->write(3, data, {0, 1, 2});
  EXPECT_EQ(client_->read(3), data);

  // Full Fig. 9b flow: a repartitioner assembles the file, erases the old
  // pieces, re-splits onto {3, 4}, and registers the new layout.
  RepartitionerService repartitioner(bus_, kFirstRepartitionerNode, 3, kMasterNode,
                                     worker_nodes_);
  RpcNode coordinator(bus_, kFirstClientNode + 7, "coordinator");
  coordinator.start();
  BufferWriter w;
  w.u32(3);
  w.u32(3);
  for (std::uint32_t s : {0u, 1u, 2u}) w.u32(s);
  w.u32(2);
  for (std::uint32_t s : {3u, 4u}) w.u32(s);
  const auto reply = coordinator.call_sync(repartitioner.node_id(), kRepartitionFile, w.take());
  ASSERT_TRUE(reply.ok()) << reply.error_text();

  // The cached 3-piece layout is gone from the cluster; the read must
  // invalidate and converge on the 2-piece layout.
  const auto stats = client_->read_with_stats(3);
  EXPECT_EQ(stats.bytes, data);
  EXPECT_GE(stats.passes, 2u);
  EXPECT_TRUE(client_->read_with_stats(3).layout_cached);
}

TEST_F(RpcMetadataTest, SingleFlightSharesConcurrentReads) {
  const auto data = random_bytes(512 * kKB, rng_);
  client_->write(4, data, {0, 1, 2, 3});

  constexpr std::size_t kThreads = 6;
  std::atomic<std::size_t> correct{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const auto stats = client_->read_with_stats(4);
      if (stats.bytes == data) correct.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(correct.load(), kThreads);
  // Every read either performed the fetch (client.reads) or shared a
  // leader's (client.singleflight_shared) — the split is timing-dependent,
  // the sum is not.
  namespace n = obs::names;
  EXPECT_EQ(counter(n::kClientReads) + counter(n::kClientSingleFlightShared), kThreads);
}

TEST_F(RpcMetadataTest, LookupBatchWarmsCacheInOneEnvelope) {
  std::vector<std::vector<std::uint8_t>> blobs;
  for (FileId f = 10; f < 14; ++f) {
    blobs.push_back(random_bytes(20 * kKB + f, rng_));
    client_->write(f, blobs.back(), {static_cast<std::uint32_t>(f % kWorkers)});
  }
  // A second client with a cold cache warms it with one kLookupBatch.
  RpcSpClient fresh(bus_, kFirstClientNode + 2, kMasterNode, worker_nodes_, hot_retries());
  fresh.attach_observability(&registry_);
  EXPECT_EQ(fresh.prefetch_layouts({10, 11, 12, 13, 99}), 4u);  // 99 unknown
  for (FileId f = 10; f < 14; ++f) {
    const auto stats = fresh.read_with_stats(f);
    EXPECT_EQ(stats.bytes, blobs[f - 10]);
    EXPECT_TRUE(stats.layout_cached);
  }
}

TEST_F(RpcMetadataTest, BaselineConfigDisablesTheWholePath) {
  ClientCacheConfig baseline;
  baseline.layout_cache = false;
  baseline.coalesce = false;
  baseline.single_flight = false;
  RpcSpClient plain(bus_, kFirstClientNode + 3, kMasterNode, worker_nodes_, hot_retries(),
                    std::chrono::milliseconds(1000), baseline);
  const auto data = random_bytes(50 * kKB, rng_);
  plain.write(20, data, {0, 0, 1});
  const auto before = counter(obs::names::kBusEnvelopesCoalesced);
  for (int i = 0; i < 3; ++i) {
    const auto stats = plain.read_with_stats(20);
    EXPECT_EQ(stats.bytes, data);
    EXPECT_FALSE(stats.layout_cached);
    EXPECT_FALSE(stats.shared);
  }
  EXPECT_EQ(counter(obs::names::kBusEnvelopesCoalesced), before);  // nothing coalesced
  EXPECT_EQ(plain.access_count(20), 3u);  // every read paid a LOOKUP
}

}  // namespace
}  // namespace spcache::rpc
