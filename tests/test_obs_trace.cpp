// TraceRecorder properties: bounded ring semantics, replay determinism,
// and completeness against the IoResult telemetry.
//
// The two load-bearing guarantees (see src/obs/trace.h):
//
//   * determinism — a chaos run with a seeded FaultInjector and a
//     single-threaded client produces an event sequence that is a pure
//     function of the seed; replaying it yields same_shape-identical
//     traces (timestamps and global seq excluded);
//   * completeness — every retry and every degraded piece the IoResult
//     counters report has a matching trace event: the trace never
//     silently drops a fault the counters saw.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/client.h"
#include "cluster/stable_store.h"
#include "core/sp_cache.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

struct ChaosRun {
  std::vector<obs::TraceEvent> events;
  std::uint64_t reads_completed = 0;
  std::uint64_t total_retries = 0;  // piece refetches + extra whole-read passes
  std::uint64_t total_degraded_pieces = 0;
};

std::uint64_t count_kind(const std::vector<obs::TraceEvent>& events, obs::TraceKind kind) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += (e.kind == kind) ? 1 : 0;
  return n;
}

// One deterministic chaos run: 8 files on 8 servers, a seeded injector
// failing ~30% of piece fetches, a single-worker pool and zero backoff so
// the event order is a pure function of the seed.
ChaosRun run_chaos(std::uint64_t seed) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(1);
  StableStore stable;
  Rng rng(2026);

  constexpr std::size_t kFiles = 8;
  constexpr Bytes kFileSize = 64 * kKB;
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, pool);
  for (FileId f = 0; f < kFiles; ++f) {
    writer.write(f, pattern_bytes(kFileSize, f), sp.placement(f).servers);
    stable.checkpoint(f, pattern_bytes(kFileSize, f));
  }

  fault::FaultConfig fcfg;
  fcfg.fetch_fail_p = 0.3;
  fault::FaultInjector injector(seed, fcfg);
  injector.disarm();  // no decisions consumed until the read phase

  fault::RetryPolicy retry;
  retry.piece_attempts = 2;
  retry.base_backoff = std::chrono::microseconds(0);
  retry.max_backoff = std::chrono::microseconds(0);
  SpClient client(cluster, master, pool, &stable, retry);

  obs::MetricsRegistry registry;
  obs::TraceRecorder trace;
  client.attach_observability(&registry, &trace);
  cluster.set_fault_injector(&injector);
  injector.arm();

  ChaosRun out;
  for (int round = 0; round < 4; ++round) {
    for (FileId f = 0; f < kFiles; ++f) {
      const auto result = client.read(f);
      ++out.reads_completed;
      out.total_retries += result.retries;
      out.total_degraded_pieces += result.degraded_pieces;
    }
  }
  cluster.set_fault_injector(nullptr);
  out.events = trace.snapshot();
  return out;
}

TEST(TraceRecorder, RingBoundsRetentionAndCountsDrops) {
  obs::TraceRecorder trace(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    trace.record(obs::TraceKind::kPieceFetch, /*op=*/i, /*file=*/i);
  }
  EXPECT_EQ(trace.recorded(), 20u);
  EXPECT_EQ(trace.dropped(), 12u);
  const auto events = trace.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, newest retained, seq monotone and never reused.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].op, 12 + i);
  }
  trace.clear();
  EXPECT_EQ(trace.snapshot().size(), 0u);
  // Seq space survives clear(): no reuse of old sequence numbers.
  trace.record(obs::TraceKind::kReadStart);
  EXPECT_GE(trace.snapshot().front().seq, 20u);
}

TEST(TraceRecorder, OpIdsAreUniqueAndOneBased) {
  obs::TraceRecorder trace;
  EXPECT_EQ(trace.begin_op(), 1u);
  EXPECT_EQ(trace.begin_op(), 2u);
  EXPECT_EQ(trace.begin_op(), 3u);
}

TEST(TraceRecorder, TimestampsAreMonotone) {
  obs::TraceRecorder trace;
  for (int i = 0; i < 100; ++i) trace.record(obs::TraceKind::kReadStart, i);
  const auto events = trace.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_ns, events[i - 1].t_ns);
  }
}

TEST(TraceChaos, SeededRunReplaysWithIdenticalShape) {
  const auto a = run_chaos(1234);
  const auto b = run_chaos(1234);
  EXPECT_GT(a.total_retries, 0u) << "chaos config fired no faults; test is vacuous";
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(a.events[i].same_shape(b.events[i]))
        << "event " << i << " diverged: kind " << static_cast<int>(a.events[i].kind) << " vs "
        << static_cast<int>(b.events[i].kind);
  }
  // A different seed produces a different schedule.
  const auto c = run_chaos(99);
  bool identical = a.events.size() == c.events.size();
  for (std::size_t i = 0; identical && i < a.events.size(); ++i) {
    identical = a.events[i].same_shape(c.events[i]);
  }
  EXPECT_FALSE(identical) << "two different seeds produced identical traces";
}

TEST(TraceChaos, TraceIsCompleteAgainstIoResultTelemetry) {
  const auto run = run_chaos(777);
  // Every retry the IoResult counters saw appears in the trace: piece-level
  // retries as kPieceRetry, whole-read repeat passes as kReadRepeatPass.
  EXPECT_EQ(count_kind(run.events, obs::TraceKind::kPieceRetry) +
                count_kind(run.events, obs::TraceKind::kReadRepeatPass),
            run.total_retries);
  EXPECT_EQ(count_kind(run.events, obs::TraceKind::kPieceDegraded),
            run.total_degraded_pieces);
  EXPECT_EQ(count_kind(run.events, obs::TraceKind::kReadStart), run.reads_completed);
  EXPECT_EQ(count_kind(run.events, obs::TraceKind::kReadDone), run.reads_completed);
  EXPECT_EQ(count_kind(run.events, obs::TraceKind::kReadFailed), 0u);
}

TEST(TraceChaos, EveryEventCarriesItsOpContext) {
  const auto run = run_chaos(4242);
  for (const auto& e : run.events) {
    switch (e.kind) {
      case obs::TraceKind::kReadStart:
      case obs::TraceKind::kReadDone:
      case obs::TraceKind::kPieceFetch:
      case obs::TraceKind::kPieceRetry:
      case obs::TraceKind::kPieceDegraded:
        EXPECT_GT(e.op, 0u) << "read-path event without an op id";
        break;
      default:
        break;
    }
  }
}

TEST(TraceRecorder, ToJsonEmitsNewestEvents) {
  obs::TraceRecorder trace;
  const auto op = trace.begin_op();
  trace.record(obs::TraceKind::kReadStart, op, /*file=*/7);
  trace.record(obs::TraceKind::kReadDone, op, /*file=*/7, /*server=*/0, /*piece=*/0,
               /*value=*/0.001);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("read_start"), std::string::npos);
  EXPECT_NE(json.find("read_done"), std::string::npos);
  EXPECT_NE(json.find("\"file\": 7"), std::string::npos);
}

}  // namespace
}  // namespace spcache
