// Chaos test: concurrent readers racing online adjustments, failures, and
// recovery on one shared cluster. The invariants: no crashes or deadlocks,
// transient read failures are retryable, and at quiescence every file is
// bit-exact.
#include <gtest/gtest.h>

#include <atomic>

#include "cluster/client.h"
#include "cluster/online_adjust.h"
#include "cluster/stable_store.h"
#include "core/sp_cache.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

TEST(ClusterChaos, ReadersSurviveOnlineAdjustmentsAndRecovery) {
  constexpr std::size_t kFiles = 24;
  constexpr Bytes kFileSize = 96 * kKB;
  Cluster cluster(16, gbps(1.0));
  Master master;
  ThreadPool io_pool(4);
  StableStore stable;
  Rng rng(2024);

  // Populate + checkpoint.
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, io_pool);
  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f] = pattern_bytes(kFileSize, f);
    writer.write(f, originals[f], sp.placement(f).servers);
    stable.checkpoint(f, originals[f]);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> good_reads{0};
  std::atomic<std::size_t> transient_failures{0};
  std::atomic<std::size_t> corruptions{0};

  // Reader threads: random files, tolerate transient errors (a read can
  // race a split's re-indexing window), but never tolerate wrong bytes.
  auto reader_loop = [&](std::uint64_t seed) {
    Rng local(seed);
    ThreadPool fetch_pool(2);
    SpClient client(cluster, master, fetch_pool);
    while (!stop.load()) {
      const auto f = static_cast<FileId>(local.uniform_index(kFiles));
      try {
        const auto bytes = client.read(f).bytes;
        if (bytes != originals[f]) {
          corruptions.fetch_add(1);
        } else {
          good_reads.fetch_add(1);
        }
      } catch (const std::exception&) {
        transient_failures.fetch_add(1);
      }
    }
  };
  std::thread r1(reader_loop, 1), r2(reader_loop, 2);

  // Chaos driver: bursts of online splits/merges and one failure+recovery.
  Rng chaos(7);
  for (int round = 0; round < 6; ++round) {
    auto live = catalog;
    live.shuffle_popularities(chaos);
    OnlineAdjustConfig cfg;
    cfg.alpha = 4.0 / live.max_load();
    cfg.max_ops_per_file = 2;
    const auto plan = plan_online_adjust(live, master, cluster.size(), cfg);
    execute_online_adjust(cluster, master, plan);
  }
  {
    // Crash a server mid-traffic and repair it.
    cluster.server(3).clear();
    RecoveryManager recovery(cluster, master, stable);
    recovery.repair_after_server_loss(3);
  }

  stop.store(true);
  r1.join();
  r2.join();

  EXPECT_EQ(corruptions.load(), 0u) << "readers must never see wrong bytes";
  EXPECT_GT(good_reads.load(), 0u);

  // Quiescent state: every file reassembles bit-exactly.
  SpClient verifier(cluster, master, io_pool);
  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(verifier.read(f).bytes, originals[f]) << "file " << f;
  }
}

}  // namespace
}  // namespace spcache
