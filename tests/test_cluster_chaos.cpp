// Chaos test: concurrent readers racing online adjustments, failures, and
// recovery on one shared cluster. The invariants: no crashes or deadlocks,
// transient read failures are retryable, and at quiescence every file is
// bit-exact.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/client.h"
#include "cluster/health_monitor.h"
#include "cluster/online_adjust.h"
#include "cluster/stable_store.h"
#include "core/sp_cache.h"
#include "fault/fault_injector.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

TEST(ClusterChaos, ReadersSurviveOnlineAdjustmentsAndRecovery) {
  constexpr std::size_t kFiles = 24;
  constexpr Bytes kFileSize = 96 * kKB;
  Cluster cluster(16, gbps(1.0));
  Master master;
  ThreadPool io_pool(4);
  StableStore stable;
  Rng rng(2024);

  // Populate + checkpoint.
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, io_pool);
  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f] = pattern_bytes(kFileSize, f);
    writer.write(f, originals[f], sp.placement(f).servers);
    stable.checkpoint(f, originals[f]);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> good_reads{0};
  std::atomic<std::size_t> transient_failures{0};
  std::atomic<std::size_t> corruptions{0};

  // Reader threads: random files, tolerate transient errors (a read can
  // race a split's re-indexing window), but never tolerate wrong bytes.
  auto reader_loop = [&](std::uint64_t seed) {
    Rng local(seed);
    ThreadPool fetch_pool(2);
    SpClient client(cluster, master, fetch_pool);
    while (!stop.load()) {
      const auto f = static_cast<FileId>(local.uniform_index(kFiles));
      try {
        const auto bytes = client.read(f).bytes;
        if (bytes != originals[f]) {
          corruptions.fetch_add(1);
        } else {
          good_reads.fetch_add(1);
        }
      } catch (const std::exception&) {
        transient_failures.fetch_add(1);
      }
    }
  };
  std::thread r1(reader_loop, 1), r2(reader_loop, 2);

  // Chaos driver: bursts of online splits/merges and one failure+recovery.
  Rng chaos(7);
  for (int round = 0; round < 6; ++round) {
    auto live = catalog;
    live.shuffle_popularities(chaos);
    OnlineAdjustConfig cfg;
    cfg.alpha = 4.0 / live.max_load();
    cfg.max_ops_per_file = 2;
    const auto plan = plan_online_adjust(live, master, cluster.size(), cfg);
    execute_online_adjust(cluster, master, plan);
  }
  {
    // Crash a server mid-traffic and repair it.
    cluster.server(3).clear();
    RecoveryManager recovery(cluster, master, stable);
    recovery.repair_after_server_loss(3);
  }

  // The chaos phase above can complete in single-digit milliseconds; keep
  // the (now healthy) cluster under reader traffic until at least one read
  // lands so the good_reads gate checks correctness, not scheduling luck.
  // Bounded: a genuine read outage still fails below.
  for (int i = 0; i < 5000 && good_reads.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true);
  r1.join();
  r2.join();

  EXPECT_EQ(corruptions.load(), 0u) << "readers must never see wrong bytes";
  EXPECT_GT(good_reads.load(), 0u);

  // Quiescent state: every file reassembles bit-exactly.
  SpClient verifier(cluster, master, io_pool);
  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(verifier.read(f).bytes, originals[f]) << "file " << f;
  }
}

// The acceptance scenario: a seeded FaultInjector drives transient fetch
// failures, wire corruption, and scheduled whole-server kill/revive storms
// against 16 servers while readers hammer the cluster. The HealthMonitor —
// not the test — detects each death from missed heartbeats and triggers
// RecoveryManager repair. Invariants: readers never observe wrong bytes,
// ≥99% of reads complete (the rest ride through as degraded reads, not
// errors), and the cluster quiesces to all-healthy with every file
// bit-exact.
TEST(ClusterChaos, InjectorDrivenKillReviveStormSelfHeals) {
  constexpr std::size_t kFiles = 24;
  constexpr Bytes kFileSize = 64 * kKB;
  constexpr std::uint32_t kServers = 16;
  Cluster cluster(kServers, gbps(1.0));
  Master master;
  ThreadPool io_pool(4);
  StableStore stable;
  Rng rng(2025);

  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, io_pool);
  std::vector<std::vector<std::uint8_t>> originals(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    originals[f] = pattern_bytes(kFileSize, f);
    writer.write(f, originals[f], sp.placement(f).servers);
    stable.checkpoint(f, originals[f]);
  }

  // Seeded chaos: low-rate transient faults on every fetch, plus two
  // scheduled whole-server outages applied by the driver loop below.
  fault::FaultConfig fault_cfg;
  fault_cfg.fetch_fail_p = 0.02;
  fault_cfg.corrupt_read_p = 0.01;
  fault::FaultInjector injector(20260805, fault_cfg);
  injector.schedule({20, 5, fault::CrashEvent::Action::kKill});
  injector.schedule({120, 5, fault::CrashEvent::Action::kRevive});
  injector.schedule({60, 11, fault::CrashEvent::Action::kKill});
  injector.schedule({160, 11, fault::CrashEvent::Action::kRevive});
  cluster.set_fault_injector(&injector);

  // Self-healing pipeline: heartbeats -> death declared after K misses ->
  // automatic repair_after_server_loss. The test never calls repair.
  RecoveryManager recovery(cluster, master, stable);
  HealthMonitorConfig mon_cfg;
  mon_cfg.heartbeat_interval = std::chrono::milliseconds(1);
  mon_cfg.missed_beats_to_declare_dead = 3;
  mon_cfg.auto_repair = true;
  HealthMonitor monitor(cluster, recovery, mon_cfg);
  monitor.start();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> attempted{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> degraded{0};
  std::atomic<std::size_t> corruptions{0};

  fault::RetryPolicy retry;
  retry.piece_attempts = 3;
  retry.read_attempts = 5;
  retry.base_backoff = std::chrono::microseconds(100);
  retry.max_backoff = std::chrono::milliseconds(2);

  auto reader_loop = [&](std::uint64_t seed) {
    Rng local(seed);
    ThreadPool fetch_pool(2);
    SpClient client(cluster, master, fetch_pool, &stable, retry);
    while (!stop.load()) {
      const auto f = static_cast<FileId>(local.uniform_index(kFiles));
      attempted.fetch_add(1);
      try {
        const auto result = client.read(f);
        if (result.bytes != originals[f]) {
          corruptions.fetch_add(1);
        } else {
          completed.fetch_add(1);
          if (result.degraded) degraded.fetch_add(1);
        }
      } catch (const std::exception&) {
        // Counted against the >=99% completion bar below.
      }
    }
  };
  std::thread r1(reader_loop, 11), r2(reader_loop, 22), r3(reader_loop, 33);

  // Driver: one step per millisecond; scheduled crash events fire at their
  // step and are applied through Cluster::kill / Cluster::revive.
  for (std::uint64_t step = 0; step <= 200; ++step) {
    for (const auto& event : injector.due(step)) {
      if (event.action == fault::CrashEvent::Action::kKill) {
        cluster.kill(event.server);
      } else {
        cluster.revive(event.server);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(injector.scheduled_remaining(), 0u);

  // Quiesce: stop injecting faults, let the monitor confirm all-healthy.
  injector.disarm();
  const bool healthy = monitor.wait_all_healthy(std::chrono::seconds(5));
  stop.store(true);
  r1.join();
  r2.join();
  r3.join();
  monitor.stop();
  cluster.set_fault_injector(nullptr);

  EXPECT_TRUE(healthy) << "cluster never quiesced to all-healthy";
  EXPECT_EQ(corruptions.load(), 0u) << "a reader saw corrupted bytes";
  ASSERT_GT(attempted.load(), 0u);
  const double completion =
      static_cast<double>(completed.load()) / static_cast<double>(attempted.load());
  EXPECT_GE(completion, 0.99) << completed.load() << "/" << attempted.load()
                              << " reads completed";

  // The self-healing pipeline actually ran: both outages were detected
  // from heartbeats and repaired without the test touching recovery.
  const auto hs = monitor.stats();
  EXPECT_GE(hs.deaths_declared, 2u);
  EXPECT_GE(hs.repairs_completed, 2u);
  EXPECT_EQ(hs.repair_failures, 0u);
  EXPECT_GT(hs.pieces_recovered, 0u);
  EXPECT_GE(hs.revivals_observed, 2u);
  const auto fs = injector.stats();
  EXPECT_GT(fs.decisions, 0u) << "the injector was never consulted";

  // Quiescent state: every file reassembles bit-exactly, and nothing is
  // left on a layout that still references a failed server.
  SpClient verifier(cluster, master, io_pool);
  for (FileId f = 0; f < kFiles; ++f) {
    const auto result = verifier.read(f);
    EXPECT_EQ(result.bytes, originals[f]) << "file " << f;
    EXPECT_FALSE(result.degraded) << "file " << f << " still reads degraded after repair";
  }
}

}  // namespace
}  // namespace spcache
