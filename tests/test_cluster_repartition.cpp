// Repartition execution tests: data integrity across sequential and
// parallel repartition, layout post-conditions, relative cost (the Fig. 16
// mechanism: parallel moves less data and finishes earlier).
#include "cluster/repartition_exec.h"

#include <gtest/gtest.h>

#include <set>

#include "cluster/client.h"
#include "core/sp_cache.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

struct TestBed {
  Cluster cluster{30, gbps(1.0)};
  Master master;
  ThreadPool pool{4};
  Rng rng{23};
  Catalog catalog;
  std::vector<std::size_t> k;
  std::vector<std::vector<std::uint32_t>> servers;
  std::vector<std::vector<std::uint8_t>> originals;

  // Populate the cluster with an SP-Cache layout over `n_files` files of
  // `file_size` bytes each.
  void populate(std::size_t n_files, Bytes file_size) {
    catalog = make_uniform_catalog(n_files, file_size, 1.05, 10.0);
    SpCacheScheme sp;
    sp.place(catalog, cluster.bandwidths(), rng);
    k = sp.partition_counts();
    SpClient client(cluster, master, pool);
    originals.resize(n_files);
    servers.clear();
    for (FileId f = 0; f < n_files; ++f) {
      originals[f] = random_bytes(file_size, rng);
      client.write(f, originals[f], sp.placement(f).servers);
      servers.push_back(sp.placement(f).servers);
    }
  }

  RepartitionPlan make_plan() {
    catalog.shuffle_popularities(rng);
    return plan_repartition(catalog, cluster.bandwidths(), k, servers, ScaleFactorConfig{}, rng);
  }

  void verify_all_files_intact() {
    SpClient client(cluster, master, pool);
    for (FileId f = 0; f < originals.size(); ++f) {
      EXPECT_EQ(client.read(f).bytes, originals[f]) << "file " << f;
    }
  }
};

TEST(RepartitionExec, ParallelPreservesEveryFile) {
  TestBed bed;
  bed.populate(40, 256 * kKB);
  const auto plan = bed.make_plan();
  ASSERT_GT(plan.changed_files.size(), 0u);
  const auto stats = execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
  EXPECT_EQ(stats.files_touched, plan.changed_files.size());
  bed.verify_all_files_intact();
}

TEST(RepartitionExec, SequentialPreservesEveryFile) {
  TestBed bed;
  bed.populate(30, 256 * kKB);
  const auto plan = bed.make_plan();
  const auto stats =
      execute_sequential_repartition(bed.cluster, bed.master, plan, gbps(1.0), bed.rng);
  EXPECT_EQ(stats.files_touched, 30u);  // sequential touches every file
  bed.verify_all_files_intact();
}

TEST(RepartitionExec, ParallelUpdatesLayoutToPlan) {
  TestBed bed;
  bed.populate(40, 128 * kKB);
  const auto plan = bed.make_plan();
  execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    const auto meta = bed.master.peek(f);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->partitions(), plan.new_k[f]);
    EXPECT_EQ(meta->servers, plan.new_servers[j]);
    // New pieces really exist where the plan says.
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      EXPECT_TRUE(bed.cluster.server(meta->servers[i])
                      .contains(BlockKey{f, static_cast<PieceIndex>(i)}));
    }
  }
}

TEST(RepartitionExec, NoOrphanedBlocksAfterParallel) {
  TestBed bed;
  bed.populate(25, 100 * kKB);
  const Bytes total_before = [&bed] {
    Bytes t = 0;
    for (std::size_t s = 0; s < bed.cluster.size(); ++s) {
      t += bed.cluster.server(s).bytes_stored();
    }
    return t;
  }();
  const auto plan = bed.make_plan();
  execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
  Bytes total_after = 0;
  std::size_t blocks_after = 0;
  for (std::size_t s = 0; s < bed.cluster.size(); ++s) {
    total_after += bed.cluster.server(s).bytes_stored();
    blocks_after += bed.cluster.server(s).blocks_stored();
  }
  // Redundancy-free before and after: same bytes, block count = sum new_k.
  EXPECT_EQ(total_after, total_before);
  std::size_t expected_blocks = 0;
  for (auto ki : plan.new_k) expected_blocks += ki;
  EXPECT_EQ(blocks_after, expected_blocks);
}

TEST(RepartitionExec, ParallelMovesLessDataThanSequential) {
  TestBed bed_p, bed_s;
  bed_p.populate(40, 200 * kKB);
  bed_s.populate(40, 200 * kKB);
  const auto plan_p = bed_p.make_plan();
  const auto plan_s = bed_s.make_plan();
  const auto stats_p =
      execute_parallel_repartition(bed_p.cluster, bed_p.master, plan_p, bed_p.pool);
  const auto stats_s =
      execute_sequential_repartition(bed_s.cluster, bed_s.master, plan_s, gbps(1.0), bed_s.rng);
  EXPECT_LT(stats_p.bytes_moved, stats_s.bytes_moved);
  EXPECT_LT(stats_p.modelled_time, stats_s.modelled_time);
}

TEST(RepartitionExec, EmptyPlanIsNoOp) {
  TestBed bed;
  bed.populate(10, 64 * kKB);
  RepartitionPlan plan;
  plan.new_k = bed.k;
  const auto stats = execute_parallel_repartition(bed.cluster, bed.master, plan, bed.pool);
  EXPECT_EQ(stats.files_touched, 0u);
  EXPECT_EQ(stats.bytes_moved, 0u);
  EXPECT_DOUBLE_EQ(stats.modelled_time, 0.0);
  bed.verify_all_files_intact();
}

// --- Delta executor (byte-range transfers + epoch cutover) --------------

TEST(RepartitionExec, DeltaPreservesEveryFile) {
  TestBed bed;
  bed.populate(40, 256 * kKB);
  const auto plan = bed.make_plan();
  ASSERT_GT(plan.changed_files.size(), 0u);
  const auto stats = execute_delta_repartition(bed.cluster, bed.master, plan, bed.pool);
  EXPECT_EQ(stats.files_touched, plan.changed_files.size());
  bed.verify_all_files_intact();
  // No staged pieces left behind: every staging epoch was published or
  // discarded.
  for (std::size_t s = 0; s < bed.cluster.size(); ++s) {
    EXPECT_EQ(bed.cluster.server(s).staged_count(), 0u) << "server " << s;
  }
}

TEST(RepartitionExec, DeltaUpdatesLayoutAndBumpsEpoch) {
  TestBed bed;
  bed.populate(40, 128 * kKB);
  std::vector<std::uint64_t> epoch_before(bed.originals.size());
  for (FileId f = 0; f < bed.originals.size(); ++f) {
    epoch_before[f] = bed.master.peek(f)->epoch;
  }
  const auto plan = bed.make_plan();
  execute_delta_repartition(bed.cluster, bed.master, plan, bed.pool);
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    const auto meta = bed.master.peek(f);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->partitions(), plan.new_k[f]);
    EXPECT_EQ(meta->servers, plan.new_servers[j]);
    // The cutover published under a strictly newer epoch, so readers with
    // a stale layout can detect the change.
    EXPECT_GT(meta->epoch, epoch_before[f]) << "file " << f;
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      EXPECT_TRUE(bed.cluster.server(meta->servers[i])
                      .contains(BlockKey{f, static_cast<PieceIndex>(i)}));
    }
  }
}

TEST(RepartitionExec, DeltaNoOrphanedBlocks) {
  TestBed bed;
  bed.populate(25, 100 * kKB);
  const Bytes total_before = [&bed] {
    Bytes t = 0;
    for (std::size_t s = 0; s < bed.cluster.size(); ++s) {
      t += bed.cluster.server(s).bytes_stored();
    }
    return t;
  }();
  const auto plan = bed.make_plan();
  execute_delta_repartition(bed.cluster, bed.master, plan, bed.pool);
  Bytes total_after = 0;
  std::size_t blocks_after = 0;
  for (std::size_t s = 0; s < bed.cluster.size(); ++s) {
    total_after += bed.cluster.server(s).bytes_stored();
    blocks_after += bed.cluster.server(s).blocks_stored();
    EXPECT_EQ(bed.cluster.server(s).staged_count(), 0u) << "server " << s;
  }
  // Lazy GC must still leave the store redundancy-free: same bytes, block
  // count = sum new_k, nothing orphaned in the staging area.
  EXPECT_EQ(total_after, total_before);
  std::size_t expected_blocks = 0;
  for (auto ki : plan.new_k) expected_blocks += ki;
  EXPECT_EQ(blocks_after, expected_blocks);
}

TEST(RepartitionExec, DeltaMovesLessDataThanParallel) {
  TestBed bed_d, bed_p;
  bed_d.populate(40, 200 * kKB);
  bed_p.populate(40, 200 * kKB);
  const auto plan_d = bed_d.make_plan();
  const auto plan_p = bed_p.make_plan();
  const auto stats_d = execute_delta_repartition(bed_d.cluster, bed_d.master, plan_d, bed_d.pool);
  const auto stats_p =
      execute_parallel_repartition(bed_p.cluster, bed_p.master, plan_p, bed_p.pool);
  // Same seed => identical plans; range transfers move strictly less than
  // assemble-and-rewrite, and every byte is accounted moved-or-saved.
  EXPECT_LT(stats_d.bytes_moved, stats_p.bytes_moved);
  Bytes changed_bytes = 0;
  for (const FileId f : plan_d.changed_files) changed_bytes += bed_d.originals[f].size();
  EXPECT_EQ(stats_d.bytes_moved + stats_d.bytes_saved, changed_bytes);
  EXPECT_GT(stats_d.max_cutover_time, 0.0);
  bed_d.verify_all_files_intact();
}

}  // namespace
}  // namespace spcache
