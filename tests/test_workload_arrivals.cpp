// Arrival process tests: Poisson statistics and MMPP burstiness.
#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include <map>

namespace spcache {
namespace {

TEST(PoissonArrivals, TimesAreSortedAndPositive) {
  Rng rng(1);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 5.0);
  const auto arrivals = generate_poisson_arrivals(cat, 1000, rng);
  ASSERT_EQ(arrivals.size(), 1000u);
  EXPECT_GT(arrivals.front().time, 0.0);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
  }
}

TEST(PoissonArrivals, RateMatchesCatalog) {
  Rng rng(2);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 8.0);
  const auto arrivals = generate_poisson_arrivals(cat, 20000, rng);
  // 20000 arrivals at 8/s should span ~2500 s.
  EXPECT_NEAR(arrivals.back().time, 2500.0, 125.0);
}

TEST(PoissonArrivals, FilesFollowPopularity) {
  Rng rng(3);
  const auto cat = make_uniform_catalog(5, kMB, 1.5, 4.0);
  const auto arrivals = generate_poisson_arrivals(cat, 100000, rng);
  std::map<FileId, int> counts;
  for (const auto& a : arrivals) ++counts[a.file];
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto id = static_cast<FileId>(i);
    EXPECT_NEAR(counts[id] / 100000.0, cat.popularity(id), 0.01);
  }
}

TEST(PoissonArrivals, DispersionNearOne) {
  Rng rng(4);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 10.0);
  const auto arrivals = generate_poisson_arrivals(cat, 50000, rng);
  const double iod = index_of_dispersion(arrivals, 10.0);
  EXPECT_NEAR(iod, 1.0, 0.25);  // Poisson: variance == mean
}

TEST(MmppArrivals, AverageRateFormula) {
  MmppParams p;
  p.calm_rate = 5.0;
  p.burst_rate = 50.0;
  p.mean_calm_time = 20.0;
  p.mean_burst_time = 2.0;
  // (20*5 + 2*50) / 22 = 200/22.
  EXPECT_NEAR(p.average_rate(), 200.0 / 22.0, 1e-9);
}

TEST(MmppArrivals, EmpiricalRateMatchesAverage) {
  Rng rng(5);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 1.0);
  MmppParams p;
  const auto arrivals = generate_mmpp_arrivals(cat, p, 50000, rng);
  const double empirical_rate = 50000.0 / arrivals.back().time;
  EXPECT_NEAR(empirical_rate, p.average_rate(), p.average_rate() * 0.1);
}

TEST(MmppArrivals, BurstierThanPoisson) {
  Rng rng(6);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 1.0);
  MmppParams p;
  const auto mmpp = generate_mmpp_arrivals(cat, p, 50000, rng);
  const double iod = index_of_dispersion(mmpp, 10.0);
  EXPECT_GT(iod, 2.0);  // strongly over-dispersed
}

TEST(MmppArrivals, SortedTimes) {
  Rng rng(7);
  const auto cat = make_uniform_catalog(3, kMB, 1.0, 1.0);
  const auto arrivals = generate_mmpp_arrivals(cat, MmppParams{}, 5000, rng);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].time, arrivals[i - 1].time);
  }
}

TEST(IndexOfDispersion, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(index_of_dispersion({}, 1.0), 0.0);
  // A single short stream with < 2 windows.
  std::vector<Arrival> a{{0.5, 0}};
  EXPECT_DOUBLE_EQ(index_of_dispersion(a, 10.0), 0.0);
}

}  // namespace
}  // namespace spcache
