// Wire-framing tests: encode/decode round-trips under every split of the
// byte stream, plus defensive decoding — truncation at every byte offset,
// corrupted length fields, bad magic/version — must yield nullopt or a
// FramingError, never a crash, an over-read, or a bogus envelope.
#include "rpc/frame.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace spcache::rpc {
namespace {

Envelope make_envelope(Rng& rng, std::size_t payload_len) {
  Envelope e;
  e.from = static_cast<NodeId>(rng.uniform_index(2000));
  e.to = static_cast<NodeId>(rng.uniform_index(2000));
  e.request_id = rng.next_u64();
  e.is_reply = rng.uniform_index(2) == 1;
  e.method = static_cast<MethodId>(rng.uniform_index(0x10000));
  e.deadline_ms = static_cast<std::uint32_t>(rng.uniform_index(120000));
  e.payload.resize(payload_len);
  for (auto& b : e.payload) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return e;
}

void expect_same(const Envelope& a, const Envelope& b) {
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.to, b.to);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.is_reply, b.is_reply);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(Framing, RoundtripSingle) {
  Rng rng(1);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{1000}}) {
    const Envelope e = make_envelope(rng, len);
    const auto bytes = encode_frame(e);
    ASSERT_EQ(bytes.size(), kFrameHeaderSize + len);
    FrameDecoder d;
    d.feed(bytes);
    const auto out = d.next();
    ASSERT_TRUE(out.has_value());
    expect_same(e, *out);
    EXPECT_FALSE(d.next().has_value());
    EXPECT_EQ(d.buffered(), 0u);
    EXPECT_EQ(d.stream_offset(), bytes.size());
  }
}

// TCP hands the receiver arbitrary chunkings of the stream. Feed a batch
// of frames one byte at a time and verify each envelope materializes
// exactly when its last byte arrives.
TEST(Framing, RoundtripByteAtATime) {
  Rng rng(2);
  std::vector<Envelope> sent;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(make_envelope(rng, rng.uniform_index(300)));
    encode_frame(sent.back(), stream);
  }
  FrameDecoder d;
  std::vector<Envelope> got;
  for (const std::uint8_t byte : stream) {
    d.feed(std::span(&byte, 1));
    while (auto e = d.next()) got.push_back(std::move(*e));
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) expect_same(sent[i], got[i]);
}

// Random chunk sizes (the realistic case) across many frames.
TEST(Framing, RoundtripRandomChunks) {
  Rng rng(3);
  std::vector<Envelope> sent;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 50; ++i) {
    sent.push_back(make_envelope(rng, rng.uniform_index(2000)));
    encode_frame(sent.back(), stream);
  }
  FrameDecoder d;
  std::vector<Envelope> got;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(stream.size() - pos, 1 + rng.uniform_index(997));
    d.feed(std::span(stream.data() + pos, n));
    pos += n;
    while (auto e = d.next()) got.push_back(std::move(*e));
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) expect_same(sent[i], got[i]);
}

// Every strict prefix of a valid frame decodes to "not yet" — nullopt, no
// throw, no envelope. This covers every truncation point of header and
// payload alike.
TEST(Framing, EveryTruncationPointIsIncomplete) {
  Rng rng(4);
  const Envelope e = make_envelope(rng, 37);
  const auto bytes = encode_frame(e);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder d;
    d.feed(std::span(bytes.data(), cut));
    EXPECT_FALSE(d.next().has_value()) << "prefix of " << cut << " bytes produced an envelope";
    EXPECT_EQ(d.buffered(), cut);
  }
}

// The v2 header carries the relative deadline at offset 24 (little
// endian), ahead of the payload length at 28 — pin the exact wire bytes
// so an accidental layout change cannot pass as a refactor.
TEST(Framing, DeadlineRidesAtOffset24) {
  Rng rng(11);
  Envelope e = make_envelope(rng, 5);
  e.deadline_ms = 0x0A0B0C0Du;
  const auto bytes = encode_frame(e);
  ASSERT_GE(bytes.size(), kFrameHeaderSize);
  EXPECT_EQ(bytes[24], 0x0D);
  EXPECT_EQ(bytes[25], 0x0C);
  EXPECT_EQ(bytes[26], 0x0B);
  EXPECT_EQ(bytes[27], 0x0A);
  FrameDecoder d;
  d.feed(bytes);
  const auto out = d.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->deadline_ms, 0x0A0B0C0Du);
}

TEST(Framing, BadMagicRejected) {
  Rng rng(5);
  auto bytes = encode_frame(make_envelope(rng, 16));
  for (std::size_t i = 0; i < 4; ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0xFF;
    FrameDecoder d;
    d.feed(corrupt);
    EXPECT_THROW(d.next(), FramingError) << "magic byte " << i;
  }
}

TEST(Framing, BadVersionRejected) {
  Rng rng(6);
  auto bytes = encode_frame(make_envelope(rng, 16));
  bytes[4] = kFrameVersion + 1;
  FrameDecoder d;
  d.feed(bytes);
  EXPECT_THROW(d.next(), FramingError);
}

// A corrupted length field must be rejected *before* the decoder waits
// for (or allocates) the bytes it demands.
TEST(Framing, OversizedLengthRejectedEagerly) {
  Rng rng(7);
  auto bytes = encode_frame(make_envelope(rng, 16));
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  std::memcpy(bytes.data() + 28, &huge, sizeof(huge));
  FrameDecoder d;
  // Feed only the header: the length is invalid, so the decoder must not
  // sit waiting for a gigabyte that will never come.
  d.feed(std::span(bytes.data(), kFrameHeaderSize));
  EXPECT_THROW(d.next(), FramingError);
}

// After a framing error the decoder is poisoned: the stream position is
// unrecoverable, so every further call must keep throwing (the transport
// reacts by dropping the connection).
TEST(Framing, PoisonedAfterError) {
  Rng rng(8);
  auto bytes = encode_frame(make_envelope(rng, 8));
  bytes[0] ^= 0xFF;
  FrameDecoder d;
  d.feed(bytes);
  EXPECT_THROW(d.next(), FramingError);
  d.feed(encode_frame(make_envelope(rng, 8)));  // a pristine frame can't revive it
  EXPECT_THROW(d.next(), FramingError);
}

// Fuzz the header: flip random bytes of random frames and interleave with
// clean frames. Every next() either yields an envelope, says "incomplete",
// or throws FramingError — and a fresh decoder on the clean tail still
// works. No crash, no over-read (ASan/TSan presets watch for that).
TEST(Framing, HeaderFuzzNeverCrashes) {
  Rng rng(9);
  for (int round = 0; round < 200; ++round) {
    auto bytes = encode_frame(make_envelope(rng, rng.uniform_index(64)));
    const std::size_t flips = 1 + rng.uniform_index(4);
    for (std::size_t i = 0; i < flips; ++i) {
      bytes[rng.uniform_index(bytes.size())] ^= static_cast<std::uint8_t>(
          1 + rng.uniform_index(255));
    }
    FrameDecoder d;
    d.feed(bytes);
    try {
      while (d.next()) {
      }
    } catch (const FramingError&) {
      // acceptable outcome; decoder is poisoned from here on
    }
  }
}

// The error message carries the stream offset of the offending frame —
// satellite requirement for wire debugging.
TEST(Framing, ErrorsCarryStreamOffset) {
  Rng rng(10);
  std::vector<std::uint8_t> stream = encode_frame(make_envelope(rng, 10));
  const std::size_t bad_at = stream.size();
  auto bad = encode_frame(make_envelope(rng, 10));
  bad[1] ^= 0x55;
  stream.insert(stream.end(), bad.begin(), bad.end());
  FrameDecoder d;
  d.feed(stream);
  ASSERT_TRUE(d.next().has_value());
  try {
    d.next();
    FAIL() << "corrupted second frame decoded";
  } catch (const FramingError& e) {
    EXPECT_NE(std::string(e.what()).find(std::to_string(bad_at)), std::string::npos)
        << "error text missing offset " << bad_at << ": " << e.what();
  }
}

// The header-only encode is what the scatter-gather write path uses: the
// header rides one iovec, the payload another. Byte-for-byte equal to the
// contiguous encoding or the two paths would disagree on the wire.
TEST(Framing, HeaderOnlyEncodeMatchesFullEncode) {
  Rng rng(11);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{4096}}) {
    const Envelope e = make_envelope(rng, len);
    const auto full = encode_frame(e);
    const auto header = encode_frame_header(e, e.payload.size());
    ASSERT_EQ(full.size(), kFrameHeaderSize + len);
    EXPECT_EQ(0, std::memcmp(header.data(), full.data(), kFrameHeaderSize));
  }
}

// Direct (zero-copy) receive must produce the identical envelope no matter
// where the stream is split between buffered feed() bytes and bytes read
// straight into the direct window — including splits inside the header,
// exactly at the header/payload boundary, and mid-payload.
TEST(Framing, DirectModeBitExactAtEverySplitPoint) {
  Rng rng(12);
  const Envelope e = make_envelope(rng, FrameDecoder::kDirectPayloadThreshold + 137);
  const auto stream = encode_frame(e);
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder d;
    d.feed(std::span(stream.data(), split));
    std::optional<Envelope> out = d.next();
    if (!out.has_value() && d.try_begin_direct()) {
      // Push the rest through the writable window in ragged chunks so the
      // commit accounting is exercised at every boundary too.
      std::size_t off = split;
      std::size_t chunk = 1;
      while (!out.has_value()) {
        auto window = d.direct_window();
        ASSERT_FALSE(window.empty()) << "split=" << split;
        const std::size_t n = std::min({chunk, window.size(), stream.size() - off});
        std::memcpy(window.data(), stream.data() + off, n);
        off += n;
        out = d.commit_direct(n);
        chunk = chunk * 3 + 1;  // 1, 4, 13, 40, ... ragged on purpose
      }
      EXPECT_EQ(off, stream.size()) << "split=" << split;
      EXPECT_FALSE(d.in_direct()) << "split=" << split;
    } else if (!out.has_value()) {
      // Too little buffered to engage (mid-header) — finish buffered.
      d.feed(std::span(stream.data() + split, stream.size() - split));
      out = d.next();
    }
    ASSERT_TRUE(out.has_value()) << "split=" << split;
    expect_same(e, *out);
    EXPECT_EQ(d.buffered(), 0u) << "split=" << split;
    EXPECT_EQ(d.stream_offset(), stream.size()) << "split=" << split;
  }
}

// Small payloads stay on the buffered path — tracking a direct window for
// them would cost more than the copy it saves.
TEST(Framing, DirectModeRefusesSmallPayloads) {
  Rng rng(13);
  const Envelope e = make_envelope(rng, FrameDecoder::kDirectPayloadThreshold - 1);
  const auto stream = encode_frame(e);
  FrameDecoder d;
  d.feed(std::span(stream.data(), kFrameHeaderSize + 10));
  EXPECT_FALSE(d.try_begin_direct());
  EXPECT_FALSE(d.in_direct());
  d.feed(std::span(stream.data() + kFrameHeaderSize + 10, stream.size() - kFrameHeaderSize - 10));
  const auto out = d.next();
  ASSERT_TRUE(out.has_value());
  expect_same(e, *out);
}

// A direct-mode frame in the middle of a stream: buffered frames before
// and after it must decode unchanged, with the stream offset continuous
// across the zero-copy handoff.
TEST(Framing, DirectModeInterleavesWithBufferedFrames) {
  Rng rng(14);
  const Envelope before = make_envelope(rng, 64);
  const Envelope big = make_envelope(rng, FrameDecoder::kDirectPayloadThreshold * 2);
  const Envelope after = make_envelope(rng, 64);
  const auto big_bytes = encode_frame(big);

  FrameDecoder d;
  d.feed(encode_frame(before));
  // Partial big frame: header + a sliver of payload.
  const std::size_t sliver = kFrameHeaderSize + 100;
  d.feed(std::span(big_bytes.data(), sliver));

  auto out = d.next();
  ASSERT_TRUE(out.has_value());
  expect_same(before, *out);
  ASSERT_FALSE(d.next().has_value());

  ASSERT_TRUE(d.try_begin_direct());
  std::size_t off = sliver;
  std::optional<Envelope> got;
  while (!got.has_value()) {
    auto window = d.direct_window();
    const std::size_t n = std::min(window.size(), big_bytes.size() - off);
    std::memcpy(window.data(), big_bytes.data() + off, n);
    off += n;
    got = d.commit_direct(n);
  }
  expect_same(big, *got);

  d.feed(encode_frame(after));
  out = d.next();
  ASSERT_TRUE(out.has_value());
  expect_same(after, *out);
  EXPECT_EQ(d.stream_offset(),
            encode_frame(before).size() + big_bytes.size() + encode_frame(after).size());
}

// try_begin_direct validates the header exactly like next(): a corrupt
// header throws (and poisons) instead of sizing a bogus payload.
TEST(Framing, DirectModeRejectsCorruptHeader) {
  Rng rng(15);
  auto stream = encode_frame(make_envelope(rng, FrameDecoder::kDirectPayloadThreshold + 1));
  stream[0] ^= 0xFF;  // bad magic
  FrameDecoder d;
  d.feed(std::span(stream.data(), kFrameHeaderSize + 5));
  EXPECT_THROW(d.try_begin_direct(), FramingError);
  EXPECT_THROW(d.next(), FramingError);  // poisoned
}

}  // namespace
}  // namespace spcache::rpc
