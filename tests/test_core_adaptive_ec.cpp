// Adaptive EC-Cache tests: budgeted greedy parity allocation, dual read
// paths, memory accounting.
#include "core/adaptive_ec.h"

#include <gtest/gtest.h>

#include <set>

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n) { return std::vector<Bandwidth>(n, gbps(1.0)); }

TEST(AdaptiveEc, OverheadStaysWithinBudget) {
  AdaptiveEcScheme ec({10, 4, 0.15, {}});
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 10.0);
  Rng rng(1);
  ec.place(cat, uniform_bw(30), rng);
  // Shards are padded (ceil(S/k)), so allow a sliver above the raw budget.
  EXPECT_LE(ec.memory_overhead(cat), 0.16);
  EXPECT_GT(ec.memory_overhead(cat), 0.10);  // the budget is actually used
}

TEST(AdaptiveEc, HottestFilesGetParityFirst) {
  AdaptiveEcScheme ec({10, 4, 0.15, {}});
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 10.0);
  Rng rng(2);
  ec.place(cat, uniform_bw(30), rng);
  // Parity counts are non-increasing along the load ranking (uniform sizes
  // => rank order == load order), and the head strictly out-provisions the
  // tail.
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_GE(ec.parity_count(static_cast<FileId>(i - 1)),
              ec.parity_count(static_cast<FileId>(i)));
  }
  EXPECT_GT(ec.parity_count(0), ec.parity_count(199));
  EXPECT_EQ(ec.parity_count(199), 0u);
}

TEST(AdaptiveEc, GenerousBudgetReachesUniform1014) {
  AdaptiveEcScheme ec({10, 4, 0.40, {}});
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 10.0);
  Rng rng(3);
  ec.place(cat, uniform_bw(30), rng);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(ec.parity_count(static_cast<FileId>(i)), 4u);
    EXPECT_EQ(ec.placement(static_cast<FileId>(i)).servers.size(), 14u);
  }
}

TEST(AdaptiveEc, CodedReadUsesLateBindingAndDecode) {
  AdaptiveEcScheme ec({10, 4, 0.15, {}});
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 10.0);
  Rng rng(4);
  ec.place(cat, uniform_bw(30), rng);
  ASSERT_GT(ec.parity_count(0), 0u);
  const auto plan = ec.plan_read(0, rng);
  EXPECT_EQ(plan.fetches.size(), 11u);
  EXPECT_EQ(plan.needed, 10u);
  EXPECT_GT(plan.post_process, 0.0);
}

TEST(AdaptiveEc, UncodedReadIsPlainSplit) {
  AdaptiveEcScheme ec({10, 4, 0.05, {}});  // tight budget: tail uncoded
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 10.0);
  Rng rng(5);
  ec.place(cat, uniform_bw(30), rng);
  ASSERT_EQ(ec.parity_count(99), 0u);
  const auto plan = ec.plan_read(99, rng);
  EXPECT_EQ(plan.fetches.size(), 10u);
  EXPECT_EQ(plan.needed, 10u);
  EXPECT_DOUBLE_EQ(plan.post_process, 0.0);  // no decode without parity
}

TEST(AdaptiveEc, PlacementsDistinct) {
  AdaptiveEcScheme ec;
  const auto cat = make_uniform_catalog(80, 100 * kMB, 1.05, 10.0);
  Rng rng(6);
  ec.place(cat, uniform_bw(30), rng);
  for (const auto& p : ec.placements()) {
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), p.servers.size());
    EXPECT_GE(p.servers.size(), 10u);
    EXPECT_LE(p.servers.size(), 14u);
  }
}

TEST(AdaptiveEc, WriteEncodeCostOnlyWithParity) {
  AdaptiveEcScheme ec({10, 4, 0.05, {}});
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 10.0);
  Rng rng(7);
  ec.place(cat, uniform_bw(30), rng);
  EXPECT_GT(ec.plan_write(0, rng).pre_process, 0.0);
  EXPECT_DOUBLE_EQ(ec.plan_write(99, rng).pre_process, 0.0);
}

TEST(AdaptiveEc, InvalidGeometryThrows) {
  EXPECT_THROW(AdaptiveEcScheme({0, 4, 0.15, {}}), std::invalid_argument);
  AdaptiveEcScheme too_wide({28, 4, 0.15, {}});
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 1.0);
  Rng rng(8);
  EXPECT_THROW(too_wide.place(cat, uniform_bw(30), rng), std::invalid_argument);
}

}  // namespace
}  // namespace spcache
