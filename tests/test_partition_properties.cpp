// Property/invariant suite for Eq. 1, k_i = ceil(alpha * S_i * P_i).
//
// The selective-partition law is the paper's core mechanism; these tests
// lock in its algebraic properties across random catalogs rather than
// spot-checking single values:
//
//   * exactness    k_i matches the closed form, clamped to [1, N];
//   * monotonicity k_i is non-decreasing in alpha, in S_i, and in P_i
//                  (and raising one file's popularity can only *lower*
//                  everyone else's k_j, never raise it);
//   * publication  the partition counts SpCacheScheme computes are the
//                  ones the placement carries and the ones the Master
//                  publishes after a write — the formula, the placement,
//                  and the serving layout never disagree.
#include "math/scale_factor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/client.h"
#include "common/rng.h"
#include "core/sp_cache.h"

namespace spcache {
namespace {

constexpr std::size_t kN = 30;  // servers

// A random catalog with independently varying sizes and rates, so load
// L_i = S_i * P_i takes no special structure.
Catalog random_catalog(std::size_t n, Rng& rng) {
  std::vector<FileInfo> files(n);
  for (std::size_t i = 0; i < n; ++i) {
    files[i].id = static_cast<FileId>(i);
    files[i].size = static_cast<Bytes>(1 + rng.next_u64() % (200 * kMB));
    files[i].request_rate = 0.01 + 10.0 * rng.uniform();
  }
  return Catalog(std::move(files));
}

std::size_t expected_k(double alpha, double load, std::size_t n) {
  const double raw = std::ceil(alpha * load);
  if (!(raw >= 1.0)) return 1;
  if (raw >= static_cast<double>(n)) return n;
  return static_cast<std::size_t>(raw);
}

TEST(PartitionProperties, MatchesClosedFormForRandomCatalogs) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cat = random_catalog(64, rng);
    // Sweep alpha over ~12 decades so every clamp regime is visited.
    for (double alpha = 1e-12; alpha < 1e1; alpha *= 10.0) {
      const auto k = partition_counts_for_alpha(cat, alpha, kN);
      ASSERT_EQ(k.size(), cat.size());
      for (std::size_t i = 0; i < k.size(); ++i) {
        EXPECT_EQ(k[i], expected_k(alpha, cat.load(static_cast<FileId>(i)), kN))
            << "trial " << trial << " alpha " << alpha << " file " << i;
      }
    }
  }
}

TEST(PartitionProperties, AlwaysClampedToOneAndServerCount) {
  Rng rng(43);
  const auto cat = random_catalog(128, rng);
  for (double alpha : {0.0, 1e-30, 1e-9, 1e-6, 1e-3, 1.0, 1e9}) {
    for (const auto ki : partition_counts_for_alpha(cat, alpha, kN)) {
      EXPECT_GE(ki, 1u);
      EXPECT_LE(ki, kN);
    }
  }
}

TEST(PartitionProperties, MonotoneInAlpha) {
  Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cat = random_catalog(64, rng);
    std::vector<std::size_t> prev(cat.size(), 1);
    for (double alpha = 1e-11; alpha < 1e-2; alpha *= 1.7) {
      const auto k = partition_counts_for_alpha(cat, alpha, kN);
      for (std::size_t i = 0; i < k.size(); ++i) {
        EXPECT_GE(k[i], prev[i]) << "k_i decreased when alpha grew (file " << i << ")";
      }
      prev = k;
    }
  }
}

TEST(PartitionProperties, MonotoneInFileSize) {
  // Growing one file's size (rates fixed, so every P_i is unchanged) can
  // only grow that file's partition count and leaves the others alone.
  Rng rng(53);
  const auto base = random_catalog(32, rng);
  const double alpha = 2.0 / base.max_load();
  const auto k0 = partition_counts_for_alpha(base, alpha, kN);
  for (std::size_t grown = 0; grown < base.size(); grown += 7) {
    auto files = base.files();
    files[grown].size *= 3;
    const auto k1 = partition_counts_for_alpha(Catalog(files), alpha, kN);
    EXPECT_GE(k1[grown], k0[grown]);
    for (std::size_t i = 0; i < k0.size(); ++i) {
      if (i != grown) EXPECT_EQ(k1[i], k0[i]) << "file " << i << " moved when " << grown << " grew";
    }
  }
}

TEST(PartitionProperties, MonotoneInPopularity) {
  // Raising one file's request rate raises its popularity share and dilutes
  // everyone else's: k_i for the boosted file never drops, k_j for every
  // other file never rises.
  Rng rng(59);
  const auto base = random_catalog(32, rng);
  const double alpha = 2.0 / base.max_load();
  const auto k0 = partition_counts_for_alpha(base, alpha, kN);
  for (std::size_t boosted = 0; boosted < base.size(); boosted += 5) {
    auto files = base.files();
    files[boosted].request_rate *= 4.0;
    const auto k1 = partition_counts_for_alpha(Catalog(files), alpha, kN);
    EXPECT_GE(k1[boosted], k0[boosted]);
    for (std::size_t i = 0; i < k0.size(); ++i) {
      if (i != boosted) EXPECT_LE(k1[i], k0[i]);
    }
  }
}

TEST(PartitionProperties, SchemeCountsMatchFormulaAndPlacement) {
  Rng rng(61);
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 10.0);
  SpCacheConfig cfg;
  cfg.fixed_alpha = 4.0 / cat.max_load();  // hottest file gets 4 partitions
  SpCacheScheme sp(cfg);
  sp.place(cat, std::vector<Bandwidth>(kN, gbps(1.0)), rng);

  const auto expected = partition_counts_for_alpha(cat, sp.alpha(), kN);
  ASSERT_EQ(sp.partition_counts(), expected);
  for (FileId f = 0; f < cat.size(); ++f) {
    const auto& p = sp.placement(f);
    EXPECT_EQ(p.servers.size(), expected[f]) << "file " << f;
    // No two partitions of a file may share a server (Section 5.1).
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), p.servers.size()) << "file " << f;
  }
}

TEST(PartitionProperties, MasterPublishedLayoutMatchesPlacement) {
  // Write through the real cluster and check the Master's published layout
  // carries exactly the Eq. 1 partition counts and conserves every byte.
  Rng rng(67);
  constexpr std::size_t kFiles = 24;
  constexpr Bytes kFileSize = 64 * kKB;
  const auto cat = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheConfig cfg;
  cfg.fixed_alpha = 6.0 / cat.max_load();
  SpCacheScheme sp(cfg);

  Cluster cluster(16, gbps(1.0));
  Master master;
  ThreadPool pool(2);
  sp.place(cat, cluster.bandwidths(), rng);
  SpClient writer(cluster, master, pool);
  std::vector<std::uint8_t> data(kFileSize, 0x5a);
  for (FileId f = 0; f < kFiles; ++f) writer.write(f, data, sp.placement(f).servers);

  const auto expected = partition_counts_for_alpha(cat, sp.alpha(), 16);
  std::size_t total_published = 0;
  for (FileId f = 0; f < kFiles; ++f) {
    const auto meta = master.peek(f);
    ASSERT_TRUE(meta.has_value()) << "file " << f;
    EXPECT_EQ(meta->partitions(), expected[f]) << "file " << f;
    EXPECT_EQ(meta->servers, sp.placement(f).servers) << "file " << f;
    Bytes sum = 0;
    for (const Bytes b : meta->piece_sizes) sum += b;
    EXPECT_EQ(sum, kFileSize) << "file " << f;
    total_published += meta->partitions();
  }
  std::size_t total_expected = 0;
  for (const auto ki : expected) total_expected += ki;
  EXPECT_EQ(total_published, total_expected);
}

TEST(PartitionProperties, BatchedAccessReportsMatchPerReadLookups) {
  // Popularity parity: Eq. 1's P_i input must be identical whether clients
  // LOOKUP per read (baseline) or serve layouts from their cache and ship
  // batched kReportAccess deltas. Two identical clusters run the same
  // Zipf-ish read schedule; after the caching client flushes, every file's
  // access count — and therefore every partition count Eq. 1 would derive —
  // must match the baseline exactly.
  constexpr std::size_t kFiles = 16;
  constexpr std::size_t kReads = 400;
  Rng schedule_rng(73);
  std::vector<FileId> schedule(kReads);
  for (auto& f : schedule) {
    // Skewed-ish: low ids drawn more often, like a Zipf head.
    const auto a = schedule_rng.uniform_index(kFiles);
    const auto b = schedule_rng.uniform_index(kFiles);
    f = static_cast<FileId>(std::min(a, b));
  }

  ClientCacheConfig baseline_config;
  baseline_config.layout_cache = false;
  ClientCacheConfig cached_config;  // defaults: cache on, batched reports

  Cluster baseline_cluster(8, gbps(1.0));
  Master baseline_master;
  Cluster cached_cluster(8, gbps(1.0));
  Master cached_master;
  ThreadPool pool(4);
  SpClient baseline(baseline_cluster, baseline_master, pool, nullptr, fault::RetryPolicy{},
                    GoodputModel{}, baseline_config);
  SpClient cached(cached_cluster, cached_master, pool, nullptr, fault::RetryPolicy{},
                  GoodputModel{}, cached_config);

  std::vector<std::uint8_t> data(32 * kKB, 0x3c);
  for (FileId f = 0; f < kFiles; ++f) {
    const std::vector<std::uint32_t> servers{static_cast<std::uint32_t>(f % 8),
                                             static_cast<std::uint32_t>((f + 1) % 8)};
    baseline.write(f, data, servers);
    cached.write(f, data, servers);
  }

  for (const auto f : schedule) {
    baseline.read(f);
    cached.read(f);
  }
  cached.flush_access_reports();

  std::uint64_t total_baseline = 0;
  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(cached_master.access_count(f), baseline_master.access_count(f)) << "file " << f;
    total_baseline += baseline_master.access_count(f);
  }
  EXPECT_EQ(total_baseline, kReads);
  // The cached run actually exercised the metadata-light path.
  EXPECT_GT(cached.layout_cache().hits(), 0u);
}

}  // namespace
}  // namespace spcache
