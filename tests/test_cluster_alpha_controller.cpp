// AlphaController: the online observe -> decide -> act loop.
//
// The properties pinned here are the ones the closed loop's correctness
// rests on: (1) the incremental Algorithm 1 (refine_scale_factor) lands on
// the same elbow as a from-scratch run over the same catalog and placement
// seed, regardless of where the warm start sits; (2) hysteresis — cooldown
// + alpha deadband — bounds how often oscillating rates can thrash the
// layout; (3) the Eq. 1 alpha is mandatory at the plan entry point; and
// (4) end to end, a burst on a cold file makes the controller split it.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "cluster/alpha_controller.h"
#include "cluster/client.h"
#include "cluster/online_adjust.h"
#include "math/scale_factor.h"
#include "workload/popularity_tracker.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

// Property: warm-started refine matches from-scratch Algorithm 1 on the
// same catalog + placement seed, within one grid step (both searches walk
// the identical alpha^1 * 1.5^j grid; the warm start only moves the entry
// point, so any gap means the stopping rules diverged).
TEST(RefineScaleFactor, IncrementalMatchesScratchAcrossSeeds) {
  const std::vector<double> bandwidths(12, gbps(1.0));
  const ScaleFactorConfig config;
  const double warm_perturbations[] = {0.5, 0.8, 1.0, 1.3, 2.2};

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto catalog = make_uniform_catalog(30, 2 * kMB, 1.05 + 0.05 * (seed % 3), 20.0);
    Rng shuffle_rng(seed * 77);
    catalog.shuffle_popularities(shuffle_rng);

    Rng scratch_rng(seed);
    const auto scratch = find_scale_factor(catalog, bandwidths, config, scratch_rng);
    ASSERT_GT(scratch.alpha, 0.0);
    // find_scale_factor draws the placement seed as its first u64.
    const std::uint64_t placement_seed = Rng(seed).next_u64();

    for (const double perturb : warm_perturbations) {
      const auto refined = refine_scale_factor(catalog, bandwidths, config, placement_seed,
                                               scratch.alpha * perturb);
      const double ratio = refined.alpha / scratch.alpha;
      EXPECT_GT(ratio, 1.0 / (config.inflation + 0.01))
          << "seed=" << seed << " perturb=" << perturb;
      EXPECT_LT(ratio, config.inflation + 0.01)
          << "seed=" << seed << " perturb=" << perturb;
      // The bound at the refined elbow must be as good as scratch's (same
      // grid, so a worse bound means refine stopped short of the elbow).
      EXPECT_LE(refined.bound, scratch.bound * 1.10)
          << "seed=" << seed << " perturb=" << perturb;
      // Warm starts near the elbow converge in far fewer evaluations than
      // the full exponential sweep.
      EXPECT_LE(refined.iterations, scratch.iterations + 2 * config.patience);
    }
  }
}

class AlphaControllerTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kServers = 10;
  static constexpr std::size_t kFiles = 16;
  static constexpr Bytes kFileSize = 32 * kKB;

  AlphaControllerTest()
      : cluster_(kServers, gbps(1.0)), pool_(1), tracker_(/*half_life=*/5.0) {}

  // Lay every file out on `k` servers with pattern bytes.
  void populate(std::size_t k) {
    SpClient writer(cluster_, master_, pool_);
    Rng place(42);
    sizes_.assign(kFiles, kFileSize);
    for (FileId f = 0; f < kFiles; ++f) {
      const auto sampled = place.sample_without_replacement(kServers, k);
      std::vector<std::uint32_t> servers(sampled.begin(), sampled.end());
      writer.write(f, pattern_bytes(kFileSize, f), servers);
    }
  }

  Cluster cluster_;
  Master master_;
  ThreadPool pool_;
  PopularityTracker tracker_;
  std::vector<Bytes> sizes_;
};

TEST_F(AlphaControllerTest, MandatoryAlphaAtPlanEntry) {
  populate(2);
  Catalog catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  OnlineAdjustConfig config;  // alpha left at the 0.0 default
  EXPECT_THROW(plan_online_adjust(catalog, master_, kServers, config), std::invalid_argument);
  config.alpha = -1.0;
  EXPECT_THROW(plan_online_adjust(catalog, master_, kServers, config), std::invalid_argument);
  config.alpha = 0.5;
  EXPECT_NO_THROW(plan_online_adjust(catalog, master_, kServers, config));
}

TEST_F(AlphaControllerTest, RejectsNonPositiveInitialAlpha) {
  AlphaControllerConfig config;
  EXPECT_THROW(AlphaController(cluster_, master_, tracker_, config, 0.0, 1), std::invalid_argument);
}

// Hysteresis: oscillating traffic that keeps the windowed eta above the
// trigger cannot adapt faster than the cooldown allows, and a re-run whose
// elbow did not move keeps alpha bit-identical (deadband).
TEST_F(AlphaControllerTest, HysteresisPreventsThrash) {
  populate(2);
  AlphaControllerConfig config;
  config.eta_trigger = 0.5;
  config.cooldown = 10.0;
  config.alpha_deadband = 0.2;

  obs::MetricsRegistry registry;
  AlphaController controller(cluster_, master_, tracker_, config, /*initial_alpha=*/0.8, 7);
  controller.attach_observability(&registry, nullptr);

  // Oscillating rates: the hot file alternates between 0 and 1 every
  // observation, keeping the tracker busy and the elbow roughly fixed.
  Seconds now = 0.0;
  std::vector<double> cumulative(kServers, 0.0);
  std::size_t adaptations = 0;
  std::size_t triggers = 0;
  double alpha_after_first = 0.0;
  for (int step = 0; step < 40; ++step) {
    const FileId hot = (step % 2 == 0) ? 0 : 1;
    for (int r = 0; r < 20; ++r) tracker_.record(hot, now + 0.01 * r);
    // Synthetic imbalanced window: one server takes nearly all the bytes.
    cumulative[step % 2] += 1000.0;
    for (std::size_t s = 2; s < kServers; ++s) cumulative[s] += 10.0;
    const auto outcome = controller.observe(cumulative, sizes_, now);
    triggers += outcome.triggered ? 1 : 0;
    adaptations += outcome.adapted ? 1 : 0;
    if (adaptations == 1 && alpha_after_first == 0.0) alpha_after_first = outcome.alpha_after;
    now += 0.5;
  }
  // 40 observations over 20 virtual seconds: the first call only baselines
  // the window; nearly every later one triggers...
  EXPECT_GE(triggers, 30u);
  // ...but the 10 s cooldown caps adaptation at twice (t=0.5 and t>=10.5).
  EXPECT_LE(adaptations, 3u);
  EXPECT_GE(adaptations, 1u);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter_value(obs::names::kControllerAdaptations), adaptations);
  EXPECT_GT(snap.counter_value(obs::names::kControllerSkippedCooldown), 0u);
}

// Deadband: two back-to-back forced adaptations on identical rates — the
// second re-run's elbow matches the first, so alpha must not move.
TEST_F(AlphaControllerTest, DeadbandKeepsAlphaStableOnUnchangedRates) {
  populate(2);
  AlphaControllerConfig config;
  config.cooldown = 0.0;
  obs::MetricsRegistry registry;
  AlphaController controller(cluster_, master_, tracker_, config, /*initial_alpha=*/0.9, 11);
  controller.attach_observability(&registry, nullptr);

  Seconds now = 0.0;
  Rng traffic(5);
  Catalog shape = make_uniform_catalog(kFiles, kFileSize, 1.1, 40.0);
  for (int i = 0; i < 800; ++i) {
    now += traffic.exponential(1.0 / shape.total_rate());
    tracker_.record(shape.sample_file(traffic), now);
  }
  const auto first = controller.adapt_now(sizes_, now);
  ASSERT_TRUE(first.adapted);
  const auto second = controller.adapt_now(sizes_, now + 0.1);
  EXPECT_EQ(second.alpha_after, first.alpha_after);
  const auto snap = registry.snapshot();
  EXPECT_GE(snap.counter_value(obs::names::kControllerSkippedDeadband), 1u);
}

// End to end: a burst on a cold file raises its tracked rate; the next
// adaptation must split it (Eq. 1 target above its current partitions).
TEST_F(AlphaControllerTest, BurstOnColdFileGetsSplit) {
  populate(1);  // every file starts unsplit
  AlphaControllerConfig config;
  config.cooldown = 0.0;
  config.max_ops_per_file = 8;
  obs::TraceRecorder trace;
  AlphaController controller(cluster_, master_, tracker_, config, /*initial_alpha=*/0.5, 3);
  controller.attach_observability(nullptr, &trace);

  constexpr FileId kViral = 13;
  Seconds now = 0.0;
  // Background trickle on everything, then a hard burst on the cold file.
  for (FileId f = 0; f < kFiles; ++f) tracker_.record(f, now);
  Rng burst(9);
  while (now < 10.0) {
    now += burst.exponential(1.0 / 50.0);
    tracker_.record(kViral, now);
  }
  const std::size_t before = master_.peek(kViral)->partitions();
  const auto outcome = controller.adapt_now(sizes_, now);
  ASSERT_TRUE(outcome.adapted);
  EXPECT_GT(outcome.splits, 0u);
  const std::size_t after = master_.peek(kViral)->partitions();
  EXPECT_GT(after, before);

  // The viral file still reads back bit-exact through the split layout.
  SpClient reader(cluster_, master_, pool_);
  EXPECT_EQ(reader.read(kViral).bytes, pattern_bytes(kFileSize, kViral));

  // The adaptation left its trace event.
  bool saw_adapted = false;
  for (const auto& e : trace.snapshot()) {
    if (e.kind == obs::TraceKind::kAlphaAdapted) saw_adapted = true;
  }
  EXPECT_TRUE(saw_adapted);
}

}  // namespace
}  // namespace spcache
