// Network and codec model tests: goodput calibration (Fig. 6), transfer
// sampling, codec time scaling (Fig. 4 inputs).
#include "net/network_model.h"

#include <gtest/gtest.h>

namespace spcache {
namespace {

TEST(Goodput, SingleConnectionIsFullGoodput) {
  GoodputModel g;
  EXPECT_DOUBLE_EQ(g.factor(1), 1.0);
}

TEST(Goodput, MonotoneNonIncreasing) {
  GoodputModel g;
  double prev = 1.0;
  for (std::size_t c = 1; c <= 200; ++c) {
    const double f = g.factor(c);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

TEST(Goodput, CalibratedToPaperAtOneGbps) {
  // Fig. 6 at 1 Gbps: ~20% loss with 20 partitions, ~40% with 100.
  const auto g = GoodputModel::calibrated(gbps(1.0));
  EXPECT_NEAR(g.factor(20), 0.80, 0.03);
  EXPECT_NEAR(g.factor(100), 0.60, 0.04);
}

TEST(Goodput, SlowerLinkDecaysMoreGently) {
  const auto fast = GoodputModel::calibrated(gbps(1.0));
  const auto slow = GoodputModel::calibrated(mbps(500));
  for (std::size_t c : {5u, 20u, 50u, 100u}) {
    EXPECT_GE(slow.factor(c), fast.factor(c));
  }
  // But the slow link still degrades noticeably by 100 connections.
  EXPECT_LT(slow.factor(100), 0.8);
}

TEST(Goodput, FloorRespected) {
  GoodputModel g;
  g.floor = 0.5;
  EXPECT_GE(g.factor(100000), 0.5);
}

TEST(Transfer, MeanMatchesBytesOverEffectiveBandwidth) {
  TransferModel t{gbps(1.0), GoodputModel{}, false};
  // 125 MB at 1 Gbps = 1 s with one connection.
  EXPECT_NEAR(t.mean_transfer(125000000, 1), 1.0, 1e-9);
  // With goodput loss the transfer takes longer.
  EXPECT_GT(t.mean_transfer(125000000, 50), 1.0);
}

TEST(Transfer, DeterministicWithoutJitter) {
  TransferModel t{gbps(1.0), GoodputModel{}, false};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(t.sample(1000000, 1, rng), t.mean_transfer(1000000, 1));
}

TEST(Transfer, JitteredSamplesAverageToMean) {
  TransferModel t{gbps(1.0), GoodputModel{}, true};
  Rng rng(2);
  const double mean = t.mean_transfer(50 * kMB, 4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += t.sample(50 * kMB, 4, rng);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Codec, TimesScaleWithSize) {
  CodecModel c;
  EXPECT_LT(c.decode_time(10 * kMB), c.decode_time(100 * kMB));
  EXPECT_LT(c.encode_time(10 * kMB), c.encode_time(100 * kMB));
  // Fixed overhead dominates tiny files.
  EXPECT_GE(c.decode_time(0), c.fixed_overhead);
}

TEST(Codec, DecodeOverheadInPaperRangeFor100MB) {
  // Fig. 4: decoding delays reads of >=100 MB files by ~15-30% at 1 Gbps.
  CodecModel c;
  const Bytes size = 100 * kMB;
  const double read_time = static_cast<double>(size) / gbps(1.0);
  const double overhead = c.decode_time(size) / read_time;
  EXPECT_GT(overhead, 0.12);
  EXPECT_LT(overhead, 0.35);
}

TEST(Codec, ComputeOptimizedIsFaster) {
  CodecModel base;
  const auto fast = CodecModel::compute_optimized();
  EXPECT_LT(fast.decode_time(100 * kMB), base.decode_time(100 * kMB));
  EXPECT_LT(fast.encode_time(100 * kMB), base.encode_time(100 * kMB));
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(1.0), 125000000.0);
  EXPECT_DOUBLE_EQ(mbps(500), 62500000.0);
  EXPECT_EQ(megabytes(100), 100 * kMB);
  EXPECT_NEAR(transfer_seconds(125000000, gbps(1.0)), 1.0, 1e-12);
}

}  // namespace
}  // namespace spcache
