// Tests for the linear and logarithmic histograms.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace spcache {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, ValuesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(3.9);
  h.add(4.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, OutOfRangeClamped) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightsAndFractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
}

TEST(Histogram, EmptyFractionsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(LogHistogram, BucketBoundaries) {
  LogHistogram h(10.0, 4);  // [0,10), [10,100), [100,1000), [1000,inf)
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 1000.0);
  EXPECT_TRUE(std::isinf(h.bucket_hi(3)));
}

TEST(LogHistogram, PlacementMatchesFig1Buckets) {
  // Fig. 1's categories: < 10 accesses (cold), >= 100 (hot).
  LogHistogram h(10.0, 3);  // [0,10), [10,100), [100,inf)
  h.add(3.0);   // cold
  h.add(9.99);  // cold
  h.add(10.0);  // warm
  h.add(99.0);  // warm
  h.add(100.0); // hot
  h.add(5000.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 2.0);
}

TEST(LogHistogram, OverflowGoesToLastBucket) {
  LogHistogram h(2.0, 3);  // [0,2), [2,4), [4,inf)
  h.add(1e12);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
}

TEST(LogHistogram, Labels) {
  LogHistogram h(10.0, 2);
  EXPECT_EQ(h.bucket_label(0), "[0, 10)");
  EXPECT_EQ(h.bucket_label(1), ">=10");
}

}  // namespace
}  // namespace spcache
