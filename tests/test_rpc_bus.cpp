// RPC bus tests: request/reply matching, error propagation, timeouts,
// concurrency across service threads.
#include "rpc/bus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace spcache::rpc {
namespace {

TEST(RpcBus, EchoRoundtrip) {
  Bus bus;
  RpcNode server(bus, 1, "echo");
  server.handle(7, [](BufferReader& r) {
    BufferWriter w;
    w.str("echo: " + r.str());
    return w.take();
  });
  server.start();

  RpcNode client(bus, 2, "client");
  client.start();
  BufferWriter w;
  w.str("hello");
  const auto reply = client.call_sync(1, 7, w.take());
  ASSERT_TRUE(reply.ok());
  BufferReader r(reply.payload);
  EXPECT_EQ(r.str(), "echo: hello");
}

TEST(RpcBus, HandlerExceptionBecomesErrorReply) {
  Bus bus;
  RpcNode server(bus, 1, "thrower");
  server.handle(1, [](BufferReader&) -> std::vector<std::uint8_t> {
    throw std::runtime_error("kaboom");
  });
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();
  const auto reply = client.call_sync(1, 1, {});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status, Status::kError);
  EXPECT_EQ(reply.error_text(), "kaboom");
}

TEST(RpcBus, UnknownMethodRejected) {
  Bus bus;
  RpcNode server(bus, 1, "empty");
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();
  const auto reply = client.call_sync(1, 99, {});
  EXPECT_EQ(reply.status, Status::kNoSuchMethod);
}

TEST(RpcBus, UnknownNodeFailsImmediately) {
  Bus bus;
  RpcNode client(bus, 2, "client");
  client.start();
  const auto reply = client.call_sync(42, 1, {});
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.error_text(), "no such node");
}

TEST(RpcBus, SlowHandlerTimesOut) {
  Bus bus;
  RpcNode server(bus, 1, "slow");
  server.handle(1, [](BufferReader&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return std::vector<std::uint8_t>{};
  });
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();
  const auto reply = client.call_sync(1, 1, {}, std::chrono::milliseconds(30));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.error_text(), "rpc timeout");
}

TEST(RpcBus, ManyOutstandingCallsMatchCorrectly) {
  Bus bus;
  RpcNode server(bus, 1, "square");
  server.handle(1, [](BufferReader& r) {
    const auto x = r.u64();
    BufferWriter w;
    w.u64(x * x);
    return w.take();
  });
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();

  std::vector<std::future<Reply>> futures;
  for (std::uint64_t x = 0; x < 200; ++x) {
    BufferWriter w;
    w.u64(x);
    futures.push_back(client.call(1, 1, w.take()));
  }
  for (std::uint64_t x = 0; x < 200; ++x) {
    const auto reply = futures[x].get();
    ASSERT_TRUE(reply.ok());
    BufferReader r(reply.payload);
    EXPECT_EQ(r.u64(), x * x) << "request " << x;
  }
}

TEST(RpcBus, ConcurrentClientsShareOneServer) {
  Bus bus;
  std::atomic<int> handled{0};
  RpcNode server(bus, 1, "counter");
  server.handle(1, [&handled](BufferReader&) {
    handled.fetch_add(1);
    return std::vector<std::uint8_t>{};
  });
  server.start();

  constexpr int kClients = 5;
  std::vector<std::unique_ptr<RpcNode>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<RpcNode>(bus, static_cast<NodeId>(100 + c), "c"));
    clients.back()->start();
  }
  std::vector<std::future<Reply>> futures;
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < 50; ++i) futures.push_back(clients[c]->call(1, 1, {}));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(handled.load(), kClients * 50);
}

TEST(RpcBus, TimeoutErasesThePendingSlot) {
  // A timed-out call_sync must not leak its pending_ entry: the slot is
  // forgotten on timeout, and the reply that eventually arrives is a
  // counted no-op instead of a resolve on a dead promise.
  Bus bus;
  RpcNode server(bus, 1, "slow");
  server.handle(1, [](BufferReader&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    return std::vector<std::uint8_t>{};
  });
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();

  const auto reply = client.call_sync(1, 1, {}, std::chrono::milliseconds(10));
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.error_text(), "rpc timeout");
  EXPECT_EQ(client.pending_calls(), 0u) << "timeout leaked a pending slot";

  // Let the slow handler finish and send its (now unwanted) reply.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(client.late_replies(), 1u) << "the late reply was not counted as a no-op";
  EXPECT_EQ(client.pending_calls(), 0u);

  // The node is still fully usable after the leak-free timeout.
  server.handle(2, [](BufferReader&) { return std::vector<std::uint8_t>{1, 2, 3}; });
  const auto ok = client.call_sync(1, 2, {});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.payload.size(), 3u);
}

TEST(RpcBus, ForgetIsANoOpOnceTheReplyLanded) {
  Bus bus;
  RpcNode server(bus, 1, "echo");
  server.handle(1, [](BufferReader&) { return std::vector<std::uint8_t>{42}; });
  server.start();
  RpcNode client(bus, 2, "client");
  client.start();

  auto pending = client.call_tagged(1, 1, {});
  const auto reply = pending.reply.get();  // resolved -> slot already gone
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(client.forget(pending.request_id)) << "forget after resolve must report false";
  EXPECT_EQ(client.pending_calls(), 0u);
  EXPECT_EQ(client.late_replies(), 0u);
}

TEST(RpcBus, NodeDestructionFailsPendingCalls) {
  Bus bus;
  RpcNode client(bus, 2, "client");
  client.start();
  std::future<Reply> orphan;
  {
    RpcNode server(bus, 1, "vanishing");
    server.handle(1, [](BufferReader&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return std::vector<std::uint8_t>{};
    });
    server.start();
    orphan = client.call(1, 1, {});
    // Server destructor drains its mailbox, so the in-flight request is
    // either answered or (if not yet delivered) dropped with the node.
  }
  const auto status = orphan.wait_for(std::chrono::milliseconds(500));
  // Either the reply arrived before teardown or the call is simply never
  // answered (real networks drop packets too) — both are acceptable; what
  // must NOT happen is a crash or a hang beyond the wait above.
  if (status == std::future_status::ready) {
    (void)orphan.get();
  }
  SUCCEED();
}

}  // namespace
}  // namespace spcache::rpc
