// MetricsRegistry / LatencyHistogram invariants under concurrency.
//
// The observability layer's contract is "lock-cheap and never wrong":
// counters are exact under parallel writers, histogram snapshots are
// tear-free (total always equals the sum of the bucket counts, even while
// sixteen writers are mid-record), merge is exact bucket arithmetic, and
// percentiles are monotone in the quantile. Run under TSan via the `tsan`
// preset (tools/check.sh obs stage).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace spcache::obs {
namespace {

constexpr std::size_t kWriters = 16;
constexpr std::size_t kOpsPerWriter = 20'000;

// Deterministic per-thread latency values spanning several histogram
// decades (SplitMix64 keeps threads independent without a shared RNG).
double sample_seconds(std::uint64_t thread_id, std::uint64_t i) {
  std::uint64_t x = (thread_id << 32 | i) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  // 1us .. ~1s, log-uniform-ish.
  const double u = static_cast<double>(x % 1'000'000) / 1'000'000.0;
  return 1e-6 * std::pow(10.0, 6.0 * u);
}

TEST(MetricsRegistry, CountersExactUnderConcurrentWriters) {
  MetricsRegistry registry;
  auto& shared = registry.counter("test.shared");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&registry, &shared, t] {
      auto& mine = registry.counter(names::server_metric(static_cast<std::uint32_t>(t), "ops"));
      for (std::size_t i = 0; i < kOpsPerWriter; ++i) {
        shared.add(1);
        mine.add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(shared.value(), kWriters * kOpsPerWriter);
  const auto snap = registry.snapshot();
  for (std::size_t t = 0; t < kWriters; ++t) {
    EXPECT_EQ(snap.counter_value(names::server_metric(static_cast<std::uint32_t>(t), "ops")),
              kOpsPerWriter);
  }
  EXPECT_EQ(snap.counter_suffix_sum(".ops"), kWriters * kOpsPerWriter);
}

TEST(MetricsRegistry, RegistryHandsBackTheSameInstrument) {
  MetricsRegistry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_EQ(&registry.gauge("g"), &registry.gauge("g"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
  registry.counter("a").add(3);
  registry.counter("a").add(4);
  EXPECT_EQ(registry.counter("a").value(), 7u);
  registry.gauge("g").set(5.0);
  registry.gauge("g").add(2.0);
  registry.gauge("g").sub(3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 4.0);
}

TEST(MetricsRegistry, HistogramCountEqualsOpsAfterConcurrentRecording) {
  // Shared histogram + one private histogram per writer, fed the same
  // values: the shared count must equal the sum of ops, and the bucket-wise
  // merge of the private snapshots must reproduce the shared one exactly.
  MetricsRegistry registry;
  auto& shared = registry.histogram("test.latency");
  std::vector<LatencyHistogram> private_hists(kWriters);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kWriters; ++t) {
    threads.emplace_back([&shared, &private_hists, t] {
      for (std::size_t i = 0; i < kOpsPerWriter; ++i) {
        const double v = sample_seconds(t, i);
        shared.record(v);
        private_hists[t].record(v);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = shared.snapshot();
  EXPECT_EQ(snap.total, kWriters * kOpsPerWriter);

  HistogramSnapshot merged;
  for (const auto& h : private_hists) merged.merge(h.snapshot());
  EXPECT_EQ(merged.total, snap.total);
  EXPECT_EQ(merged.counts, snap.counts);
  EXPECT_NEAR(merged.sum_seconds, snap.sum_seconds, 1e-9 * snap.sum_seconds + 1e-12);
  EXPECT_DOUBLE_EQ(merged.percentile(0.95), snap.percentile(0.95));
}

TEST(MetricsRegistry, SnapshotsAreTearFreeWhileWritersRace) {
  // While writers hammer the histogram, every snapshot must be internally
  // consistent: total == sum of bucket counts (it is *derived* from the
  // copied buckets, so a torn read is structurally impossible — this pins
  // that contract), and totals observed by a single reader are monotone.
  LatencyHistogram hist;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&hist, &stop, t] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) hist.record(sample_seconds(t, i++));
    });
  }

  std::uint64_t prev_total = 0;
  for (int round = 0; round < 2'000; ++round) {
    const auto snap = hist.snapshot();
    std::uint64_t bucket_sum = 0;
    for (const auto c : snap.counts) bucket_sum += c;
    ASSERT_EQ(snap.total, bucket_sum) << "torn snapshot at round " << round;
    ASSERT_GE(snap.total, prev_total) << "total went backwards at round " << round;
    prev_total = snap.total;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

TEST(MetricsRegistry, PercentilesMonotoneInQuantile) {
  LatencyHistogram hist;
  for (std::size_t i = 0; i < 50'000; ++i) hist.record(sample_seconds(7, i));
  const auto snap = hist.snapshot();
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double p = snap.percentile(q);
    EXPECT_GE(p, prev) << "percentile decreased at q=" << q;
    prev = p;
  }
  // And the extremes bracket every recorded value's bucket.
  EXPECT_GT(snap.percentile(1.0), snap.percentile(0.0));
}

TEST(MetricsRegistry, SingleValueLandsInItsBucket) {
  for (const double v : {5e-7, 3.1e-4, 0.0421, 1.7}) {
    LatencyHistogram hist;
    hist.record(v);
    const auto snap = hist.snapshot();
    ASSERT_EQ(snap.total, 1u);
    const std::size_t b = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(snap.counts[b], 1u);
    const double p50 = snap.percentile(0.5);
    EXPECT_GE(p50, LatencyHistogram::bucket_lo(b) * 0.999);
    EXPECT_LE(p50, LatencyHistogram::bucket_hi(b) * 1.001);
  }
}

TEST(MetricsRegistry, MinusRecoversPerPhaseDeltas) {
  LatencyHistogram hist;
  for (std::size_t i = 0; i < 1'000; ++i) hist.record(1e-3);
  const auto before = hist.snapshot();
  for (std::size_t i = 0; i < 500; ++i) hist.record(1e-2);
  const auto after = hist.snapshot();

  const auto delta = after.minus(before);
  EXPECT_EQ(delta.total, 500u);
  EXPECT_EQ(delta.counts[LatencyHistogram::bucket_index(1e-2)], 500u);
  EXPECT_EQ(delta.counts[LatencyHistogram::bucket_index(1e-3)], 0u);
  EXPECT_NEAR(delta.sum_seconds, 5.0, 1e-6);
}

TEST(MetricsRegistry, RegistrySnapshotSeesConcurrentRegistration) {
  // Instruments may be registered while other threads snapshot; the
  // snapshot must be a consistent map (no crashes, every returned counter
  // value is one the instrument actually held).
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread registrar([&registry, &stop] {
    std::uint32_t id = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.counter(names::server_metric(id % 64, "gets")).add(1);
      registry.histogram(names::server_metric(id % 64, "service_s")).record(1e-4);
      ++id;
    }
  });
  for (int round = 0; round < 500; ++round) {
    const auto snap = registry.snapshot();
    std::uint64_t sum = snap.counter_suffix_sum(".gets");
    EXPECT_LE(sum, 1u << 30);  // sanity: a real count, not garbage
  }
  stop.store(true);
  registrar.join();
}

}  // namespace
}  // namespace spcache::obs
