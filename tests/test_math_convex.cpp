// Golden-section minimizer tests.
#include "math/convex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spcache {
namespace {

TEST(GoldenSection, Quadratic) {
  const auto r = golden_section_minimize([](double x) { return (x - 3.0) * (x - 3.0) + 2.0; },
                                         -10.0, 10.0);
  EXPECT_NEAR(r.x, 3.0, 1e-6);
  EXPECT_NEAR(r.fx, 2.0, 1e-10);
}

TEST(GoldenSection, AbsoluteValueKink) {
  const auto r = golden_section_minimize([](double x) { return std::abs(x - 1.5); }, -5.0, 5.0);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
  EXPECT_NEAR(r.fx, 0.0, 1e-6);
}

TEST(GoldenSection, MinimumAtBoundary) {
  const auto r = golden_section_minimize([](double x) { return x; }, 2.0, 8.0);
  EXPECT_NEAR(r.x, 2.0, 1e-5);
}

TEST(GoldenSection, FlatFunction) {
  const auto r = golden_section_minimize([](double) { return 4.0; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r.fx, 4.0);
}

TEST(GoldenSection, ToleranceRespected) {
  const auto r = golden_section_minimize([](double x) { return x * x; }, -100.0, 100.0, 1e-3);
  EXPECT_NEAR(r.x, 0.0, 1e-3);
}

TEST(GoldenSection, FJBoundShapedObjective) {
  // The Eq. 9 objective for two branches with mean 1 and 2, variance 0.25:
  // convex, minimum strictly between the means region.
  auto f = [](double z) {
    double obj = z;
    for (double m : {1.0, 2.0}) {
      const double d = m - z;
      obj += 0.5 * d + 0.5 * std::sqrt(d * d + 0.25);
    }
    return obj;
  };
  const auto r = golden_section_minimize(f, -10.0, 10.0);
  // Verify first-order optimality numerically.
  const double h = 1e-5;
  EXPECT_NEAR((f(r.x + h) - f(r.x - h)) / (2 * h), 0.0, 1e-3);
}

}  // namespace
}  // namespace spcache
