// Tests for the deterministic PRNG and its distribution helpers.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace spcache {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexBoundsAndCoverage) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto x = rng.uniform_index(10);
    ASSERT_LT(x, 10u);
    ++counts[static_cast<std::size_t>(x)];
  }
  // Each bucket ~10000; allow +/-5%.
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIndexOne) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialPositive) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(41);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalMean) {
  Rng rng(43);
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
  const double mu = 1.0, sigma = 0.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + 0.5 * sigma * sigma), 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(47);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto x = static_cast<double>(rng.poisson(4.0));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 4.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.15);  // Poisson: var == mean
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(53);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(59);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoTailAndSupport) {
  Rng rng(61);
  int above2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 1.5);
    EXPECT_GE(x, 1.0);
    if (x > 2.0) ++above2;
  }
  // P(X > 2) = (1/2)^1.5 ~ 0.3536.
  EXPECT_NEAR(static_cast<double>(above2) / n, std::pow(0.5, 1.5), 0.01);
}

TEST(Rng, SampleCumulativeRespectsWeights) {
  Rng rng(67);
  const std::vector<double> cum{1.0, 1.0, 4.0};  // weights 1, 0, 3
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.sample_cumulative(cum)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(71);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctInRangeCorrectCount) {
  const auto [n, k] = GetParam();
  Rng rng(73 + n * 131 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_without_replacement(n, k);
    ASSERT_EQ(s.size(), k);
    std::set<std::size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), k);
    for (auto x : s) EXPECT_LT(x, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampleWithoutReplacementTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{10, 10},
                                           std::pair<std::size_t, std::size_t>{30, 14},
                                           std::pair<std::size_t, std::size_t>{100, 3},
                                           std::pair<std::size_t, std::size_t>{5000, 7},
                                           std::pair<std::size_t, std::size_t>{5000, 4999}));

TEST(Rng, SampleWithoutReplacementUniform) {
  // Each element of [0, 20) should appear in a size-5 sample w.p. 5/20.
  Rng rng(79);
  std::vector<int> counts(20, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (auto x : rng.sample_without_replacement(20, 5)) ++counts[x];
  }
  for (int c : counts) EXPECT_NEAR(c / static_cast<double>(trials), 0.25, 0.02);
}

TEST(Rng, WeightedSampleDistinctAndInRange) {
  Rng rng(89);
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  for (int t = 0; t < 200; ++t) {
    const auto s = rng.sample_weighted_without_replacement(w, 4);
    ASSERT_EQ(s.size(), 4u);
    std::set<std::size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (auto i : s) EXPECT_LT(i, w.size());
  }
}

TEST(Rng, WeightedSampleZeroWeightNeverChosen) {
  Rng rng(97);
  const std::vector<double> w{1.0, 0.0, 2.0, 0.0, 3.0};
  for (int t = 0; t < 500; ++t) {
    for (auto i : rng.sample_weighted_without_replacement(w, 3)) {
      EXPECT_NE(i, 1u);
      EXPECT_NE(i, 3u);
    }
  }
}

TEST(Rng, WeightedSampleFirstDrawFollowsWeights) {
  // With k = 1 the sample reduces to a single weighted draw.
  Rng rng(101);
  const std::vector<double> w{1.0, 3.0};
  int hits1 = 0;
  const int n = 100000;
  for (int t = 0; t < n; ++t) {
    if (rng.sample_weighted_without_replacement(w, 1)[0] == 1) ++hits1;
  }
  EXPECT_NEAR(hits1 / static_cast<double>(n), 0.75, 0.01);
}

TEST(Rng, WeightedSampleInclusionSkewsTowardHeavy) {
  // Heavier indices appear in the sample more often.
  Rng rng(103);
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0, 4.0};
  int heavy = 0;
  const int n = 20000;
  for (int t = 0; t < n; ++t) {
    for (auto i : rng.sample_weighted_without_replacement(w, 2)) {
      if (i == 4) ++heavy;
    }
  }
  // Inclusion probability of the weight-4 item is well above the 0.4 of a
  // uniform 2-of-5 draw.
  EXPECT_GT(heavy / static_cast<double>(n), 0.6);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(83);
  Rng child = a.split();
  // The child stream should not be identical to the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace spcache
