// CSV trace I/O tests: roundtrips and malformed-input rejection.
#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spcache {
namespace {

TEST(TraceIo, CatalogRoundtrip) {
  Rng rng(1);
  const auto original = make_yahoo_catalog(200, 1.1, 12.5, YahooSizeModel{}, rng);
  std::stringstream buffer;
  save_catalog_csv(original, buffer);
  const auto loaded = load_catalog_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.file(static_cast<FileId>(i)).size,
              original.file(static_cast<FileId>(i)).size);
    EXPECT_DOUBLE_EQ(loaded.file(static_cast<FileId>(i)).request_rate,
                     original.file(static_cast<FileId>(i)).request_rate);
  }
  EXPECT_DOUBLE_EQ(loaded.total_rate(), original.total_rate());
}

TEST(TraceIo, ArrivalsRoundtrip) {
  Rng rng(2);
  const auto cat = make_uniform_catalog(50, kMB, 1.05, 10.0);
  const auto original = generate_poisson_arrivals(cat, 1000, rng);
  std::stringstream buffer;
  save_arrivals_csv(original, buffer);
  const auto loaded = load_arrivals_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, original[i].time);
    EXPECT_EQ(loaded[i].file, original[i].file);
  }
}

TEST(TraceIo, EmptyCatalog) {
  std::stringstream buffer;
  save_catalog_csv(Catalog{}, buffer);
  EXPECT_EQ(load_catalog_csv(buffer).size(), 0u);
}

TEST(TraceIo, MissingHeaderRejected) {
  std::stringstream c("0,100,1.0\n");
  EXPECT_THROW(load_catalog_csv(c), std::runtime_error);
  std::stringstream a("0.5,3\n");
  EXPECT_THROW(load_arrivals_csv(a), std::runtime_error);
}

TEST(TraceIo, MalformedRowsRejected) {
  {
    std::stringstream s("file_id,size_bytes,request_rate\n0,100\n");
    EXPECT_THROW(load_catalog_csv(s), std::runtime_error);  // field count
  }
  {
    std::stringstream s("file_id,size_bytes,request_rate\n0,abc,1.0\n");
    EXPECT_THROW(load_catalog_csv(s), std::runtime_error);  // non-integer
  }
  {
    std::stringstream s("file_id,size_bytes,request_rate\n0,100,-2.0\n");
    EXPECT_THROW(load_catalog_csv(s), std::runtime_error);  // negative rate
  }
  {
    std::stringstream s("file_id,size_bytes,request_rate\n1,100,1.0\n");
    EXPECT_THROW(load_catalog_csv(s), std::runtime_error);  // non-dense ids
  }
  {
    std::stringstream s("time_seconds,file_id\n2.0,1\n1.0,2\n");
    EXPECT_THROW(load_arrivals_csv(s), std::runtime_error);  // out of order
  }
  {
    std::stringstream s("time_seconds,file_id\n1.0,1.5\n");
    EXPECT_THROW(load_arrivals_csv(s), std::runtime_error);  // fractional id
  }
}

TEST(TraceIo, BlankLinesTolerated) {
  std::stringstream s("file_id,size_bytes,request_rate\n0,100,1.0\n\n1,200,2.0\n");
  const auto cat = load_catalog_csv(s);
  EXPECT_EQ(cat.size(), 2u);
}

TEST(TraceIo, FileRoundtrip) {
  Rng rng(3);
  const auto cat = make_uniform_catalog(20, kMB, 1.0, 5.0);
  const auto arrivals = generate_poisson_arrivals(cat, 100, rng);
  const std::string dir = ::testing::TempDir();
  save_catalog_csv_file(cat, dir + "/cat.csv");
  save_arrivals_csv_file(arrivals, dir + "/arr.csv");
  EXPECT_EQ(load_catalog_csv_file(dir + "/cat.csv").size(), 20u);
  EXPECT_EQ(load_arrivals_csv_file(dir + "/arr.csv").size(), 100u);
  EXPECT_THROW(load_catalog_csv_file(dir + "/does_not_exist.csv"), std::runtime_error);
}

}  // namespace
}  // namespace spcache
