// Synthetic Yahoo trace: the generated population must match the marginals
// the paper reports for Fig. 1 (~78% cold, ~2% hot, hot files 15-30x larger).
#include "workload/trace.h"

#include <gtest/gtest.h>

namespace spcache {
namespace {

TEST(YahooTrace, ColdFractionNearPaper) {
  Rng rng(1);
  YahooTraceModel model;
  const auto records = generate_yahoo_trace(100000, model, rng);
  const auto s = summarize_trace(records, model);
  EXPECT_NEAR(s.cold_fraction, 0.78, 0.08);
}

TEST(YahooTrace, HotFractionNearPaper) {
  Rng rng(2);
  YahooTraceModel model;
  const auto records = generate_yahoo_trace(100000, model, rng);
  const auto s = summarize_trace(records, model);
  EXPECT_NEAR(s.hot_fraction, 0.02, 0.015);
}

TEST(YahooTrace, HotFilesMuchLarger) {
  Rng rng(3);
  YahooTraceModel model;
  const auto records = generate_yahoo_trace(100000, model, rng);
  const auto s = summarize_trace(records, model);
  EXPECT_GT(s.hot_to_cold_size_ratio, 10.0);
  EXPECT_LT(s.hot_to_cold_size_ratio, 45.0);
}

TEST(YahooTrace, CountsBoundedAndPositive) {
  Rng rng(4);
  YahooTraceModel model;
  model.max_count = 5000;
  const auto records = generate_yahoo_trace(10000, model, rng);
  for (const auto& r : records) {
    EXPECT_GE(r.access_count, 1u);
    EXPECT_LE(r.access_count, 5000u);
    EXPECT_GE(r.size, 64 * kKB);
  }
}

TEST(YahooTrace, SummaryOfEmptyPopulation) {
  const auto s = summarize_trace({}, YahooTraceModel{});
  EXPECT_DOUBLE_EQ(s.cold_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.hot_fraction, 0.0);
}

TEST(YahooTrace, DeterministicForSeed) {
  YahooTraceModel model;
  Rng r1(42), r2(42);
  const auto a = generate_yahoo_trace(1000, model, r1);
  const auto b = generate_yahoo_trace(1000, model, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].access_count, b[i].access_count);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

}  // namespace
}  // namespace spcache
