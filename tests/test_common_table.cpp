// Table rendering tests.
#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spcache {
namespace {

TEST(Table, PrintsHeaderAndRows) {
  Table t({"scheme", "mean_s", "tail_s"});
  t.add_row({std::string("SP-Cache"), 0.5, 0.9});
  t.add_row({std::string("EC-Cache"), 0.8, 1.4});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("scheme"), std::string::npos);
  EXPECT_NE(out.find("SP-Cache"), std::string::npos);
  EXPECT_NE(out.find("0.8"), std::string::npos);
}

TEST(Table, CsvFormat) {
  Table t({"a", "b"});
  t.add_row({static_cast<long long>(1), 2.5});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2.5\n");
}

TEST(Table, CsvEscaping) {
  Table t({"name"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, PrecisionControlsDigits) {
  Table t({"x"});
  t.set_precision(2);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({1.0});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(ExperimentHeader, ContainsArtifactName) {
  std::ostringstream os;
  print_experiment_header(os, "Fig. 13", "Mean and tail latencies");
  EXPECT_NE(os.str().find("=== Fig. 13 ==="), std::string::npos);
  EXPECT_NE(os.str().find("Mean and tail"), std::string::npos);
}

}  // namespace
}  // namespace spcache
