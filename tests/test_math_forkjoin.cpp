// Fork-join upper bound (Eq. 9) tests: exactness for one branch, convexity,
// bound validity against Monte-Carlo maxima of independent branches.
#include "math/forkjoin_bound.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace spcache {
namespace {

TEST(ForkJoin, SingleBranchIsExactMean) {
  EXPECT_DOUBLE_EQ(fork_join_upper_bound({{2.5, 100.0}}), 2.5);
}

TEST(ForkJoin, ObjectiveConvexInZ) {
  const std::vector<QueueStat> stats{{1.0, 0.5}, {2.0, 1.0}, {0.5, 0.25}};
  // Midpoint convexity sampled on a grid.
  for (double a = -5.0; a < 5.0; a += 0.7) {
    for (double b = a + 0.3; b < 6.0; b += 0.9) {
      const double mid = fork_join_objective(stats, 0.5 * (a + b));
      const double avg =
          0.5 * (fork_join_objective(stats, a) + fork_join_objective(stats, b));
      EXPECT_LE(mid, avg + 1e-9);
    }
  }
}

TEST(ForkJoin, BoundAtLeastMaxOfMeans) {
  // E[max] >= max of expectations; the bound must respect that too.
  const std::vector<QueueStat> stats{{1.0, 0.2}, {3.0, 0.2}, {2.0, 0.2}};
  EXPECT_GE(fork_join_upper_bound(stats), 3.0 - 1e-9);
}

TEST(ForkJoin, ZeroVarianceDeterministicBranches) {
  // With no variance the max is deterministic: the largest mean.
  const std::vector<QueueStat> stats{{1.0, 0.0}, {4.0, 0.0}, {2.5, 0.0}};
  EXPECT_NEAR(fork_join_upper_bound(stats), 4.0, 1e-6);
}

TEST(ForkJoin, MonotoneInVariance) {
  const double lo = fork_join_upper_bound({{1.0, 0.1}, {1.0, 0.1}});
  const double hi = fork_join_upper_bound({{1.0, 2.0}, {1.0, 2.0}});
  EXPECT_GT(hi, lo);
}

TEST(ForkJoin, MonotoneInBranchCount) {
  std::vector<QueueStat> stats;
  double prev = 0.0;
  for (int k = 1; k <= 8; ++k) {
    stats.push_back({1.0, 1.0});
    const double b = fork_join_upper_bound(stats);
    EXPECT_GE(b, prev - 1e-9);
    prev = b;
  }
}

class ForkJoinMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(ForkJoinMonteCarloTest, UpperBoundsEmpiricalMaxOfExponentials) {
  // k iid Exp(1) branches: E[max] = H_k. The bound must sit above the
  // Monte-Carlo estimate for every k.
  const int k = GetParam();
  std::vector<QueueStat> stats(static_cast<std::size_t>(k), QueueStat{1.0, 1.0});
  const double bound = fork_join_upper_bound(stats);

  Rng rng(1000 + static_cast<std::uint64_t>(k));
  double sum = 0.0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    double mx = 0.0;
    for (int j = 0; j < k; ++j) mx = std::max(mx, rng.exponential(1.0));
    sum += mx;
  }
  const double empirical = sum / trials;
  EXPECT_GE(bound, empirical - 0.01) << "k=" << k;
  // The split-merge bound is known to be reasonably tight for iid
  // exponential branches; sanity-check it is not wildly loose either.
  EXPECT_LE(bound, empirical * 2.0 + 0.5) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(BranchCounts, ForkJoinMonteCarloTest, ::testing::Values(1, 2, 3, 5, 10, 20));


TEST(ForkJoin, TwoBranchExponentialClosedForm) {
  // E[max(X1, X2)] for independent exponentials with means m1, m2:
  //   m1 + m2 - 1/(1/m1 + 1/m2).
  // The split-merge bound must dominate it but stay within ~40% for this
  // benign case (its known looseness at small fan-out).
  for (const auto [m1, m2] : {std::pair{1.0, 1.0}, std::pair{1.0, 3.0}, std::pair{0.2, 2.0}}) {
    const double exact = m1 + m2 - 1.0 / (1.0 / m1 + 1.0 / m2);
    const double bound =
        fork_join_upper_bound({{m1, m1 * m1}, {m2, m2 * m2}});
    EXPECT_GE(bound, exact - 1e-9) << m1 << "," << m2;
    EXPECT_LE(bound, exact * 1.45) << m1 << "," << m2;
  }
}

TEST(ForkJoin, HeterogeneousBranches) {
  // One slow branch dominates: the bound should be near its mean when the
  // other branches are tiny.
  const std::vector<QueueStat> stats{{10.0, 0.01}, {0.1, 0.001}, {0.1, 0.001}};
  const double b = fork_join_upper_bound(stats);
  EXPECT_GE(b, 10.0 - 1e-6);
  EXPECT_LE(b, 10.5);
}

}  // namespace
}  // namespace spcache
