// Theorem 1 tests: closed-form load variances vs Monte Carlo, and the
// asymptotic ratio of Eq. 2.
#include "math/variance.h"

#include <gtest/gtest.h>

#include "math/scale_factor.h"

namespace spcache {
namespace {

TEST(Variance, SpClosedFormMatchesMonteCarlo) {
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  const std::size_t N = 30;
  const double alpha = 1.0 / cat.max_load() * 10.0;
  const auto k = partition_counts_for_alpha(cat, alpha, N);
  const double closed = sp_load_variance(cat, k, N);
  Rng rng(1);
  const double mc = monte_carlo_sp_variance(cat, k, N, 200000, rng);
  EXPECT_NEAR(mc, closed, closed * 0.05);
}

TEST(Variance, EcClosedFormMatchesMonteCarlo) {
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  const std::size_t N = 30;
  const double closed = ec_load_variance(cat, 10, N);
  Rng rng(2);
  const double mc = monte_carlo_ec_variance(cat, 10, 14, N, 200000, rng);
  EXPECT_NEAR(mc, closed, closed * 0.05);
}

TEST(Variance, SpBeatsEcUnderSkew) {
  // The headline of Theorem 1: SP-Cache's per-server load variance is far
  // below EC-Cache's under skewed popularity. The theorem's regime is
  // N >> k_i (large cluster) with alpha big enough that hot files split
  // finely (per-partition load 1/alpha small); there SP's variance must be
  // below EC's, consistent with Eq. 2's ratio exceeding 1.
  const auto cat = make_uniform_catalog(500, 100 * kMB, 1.1, 18.0);
  const std::size_t N = 300;
  const double alpha = 50.0 / cat.max_load();  // hottest file: 50 partitions
  const auto k = partition_counts_for_alpha(cat, alpha, N);
  EXPECT_GT(theorem1_asymptotic_ratio(cat, alpha, 10), 1.0);
  EXPECT_LT(sp_load_variance(cat, k, N), ec_load_variance(cat, 10, N));
}

TEST(Variance, RatioGrowsWithAlpha) {
  // Finer partitioning strictly improves SP's balance relative to EC.
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.1, 10.0);
  const std::size_t N = 300;
  double prev = 0.0;
  for (double mult : {5.0, 15.0, 45.0}) {
    const double alpha = mult / cat.max_load();
    const auto k = partition_counts_for_alpha(cat, alpha, N);
    const double ratio = ec_load_variance(cat, 10, N) / sp_load_variance(cat, k, N);
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
}

TEST(Variance, AsymptoticRatioFormula) {
  // Hand-computable catalog: two files, loads L0 and L1.
  std::vector<FileInfo> files(2);
  files[0].size = 100 * kMB;
  files[0].request_rate = 3.0;
  files[1].size = 100 * kMB;
  files[1].request_rate = 1.0;
  const Catalog cat(std::move(files));
  const double l0 = cat.load(0), l1 = cat.load(1);
  const double alpha = 1e-6;
  const double expected = alpha / 10.0 * (l0 * l0 + l1 * l1) / (l0 + l1);
  EXPECT_NEAR(theorem1_asymptotic_ratio(cat, alpha, 10), expected, expected * 1e-9);
}

TEST(Variance, RatioApproachesAsymptoteInLargeClusters) {
  // In a large cluster (N >> k_i), the finite-N variance ratio should be
  // close to Eq. 2's limit — within the (1 - k/N) correction factors.
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 10.0);
  const std::size_t N = 2000;
  const double alpha = 5.0 / cat.max_load();
  const auto k = partition_counts_for_alpha(cat, alpha, N);

  const double ratio = ec_load_variance(cat, 10, N) / sp_load_variance(cat, k, N);
  // Eq. 2's limit, evaluated with the actual (ceiled) k_i so only the
  // (1 - k/N) finite-size corrections differ:
  //   EC: sum (L/10)^2 * 11/N ; SP: sum (L/k)^2 * k/N = sum L^2/(k N)
  double ec = 0.0, sp = 0.0;
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const double load = cat.load(static_cast<FileId>(i));
    ec += load * load / 100.0 * 11.0;
    sp += load * load / static_cast<double>(k[i]);
  }
  EXPECT_NEAR(ratio, ec / sp, ec / sp * 0.02);
}

TEST(Variance, ZeroTrafficCatalog) {
  std::vector<FileInfo> files(3);
  for (auto& f : files) f.size = kMB;
  const Catalog cat(std::move(files));
  EXPECT_DOUBLE_EQ(theorem1_asymptotic_ratio(cat, 1.0, 10), 0.0);
}

TEST(Variance, MoreSkewRaisesRatio) {
  // Heavier skew concentrates load -> larger sum L^2 / sum L -> larger
  // advantage for SP-Cache (the O(L_max) claim).
  const auto mild = make_uniform_catalog(200, 100 * kMB, 0.5, 10.0);
  const auto heavy = make_uniform_catalog(200, 100 * kMB, 1.5, 10.0);
  const double alpha = 1e-7;
  EXPECT_GT(theorem1_asymptotic_ratio(heavy, alpha, 10),
            theorem1_asymptotic_ratio(mild, alpha, 10));
}

}  // namespace
}  // namespace spcache
