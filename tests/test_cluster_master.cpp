// SP-Master metadata service unit tests (registration, lookup semantics,
// popularity snapshots, concurrency).
#include "cluster/master.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace spcache {
namespace {

FileMeta make_meta(Bytes size, std::vector<std::uint32_t> servers) {
  FileMeta meta;
  meta.size = size;
  meta.piece_sizes.assign(servers.size(), size / servers.size());
  meta.servers = std::move(servers);
  meta.file_crc = 0xABCD1234;
  return meta;
}

TEST(Master, RegisterAndPeek) {
  Master m;
  m.register_file(1, make_meta(100 * kKB, {0, 1}));
  const auto meta = m.peek(1);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->size, 100 * kKB);
  EXPECT_EQ(meta->partitions(), 2u);
  EXPECT_FALSE(m.peek(2).has_value());
  EXPECT_EQ(m.file_count(), 1u);
}

TEST(Master, PeekDoesNotBumpCount) {
  Master m;
  m.register_file(1, make_meta(kKB, {0}));
  m.peek(1);
  m.peek(1);
  EXPECT_EQ(m.access_count(1), 0u);
}

TEST(Master, LookupBumpsCount) {
  Master m;
  m.register_file(1, make_meta(kKB, {0}));
  EXPECT_TRUE(m.lookup_for_read(1).has_value());
  EXPECT_TRUE(m.lookup_for_read(1).has_value());
  EXPECT_EQ(m.access_count(1), 2u);
  EXPECT_FALSE(m.lookup_for_read(9).has_value());  // unknown: no count
  EXPECT_EQ(m.access_count(9), 0u);
}

TEST(Master, UpdatePreservesCounts) {
  Master m;
  m.register_file(3, make_meta(kKB, {0}));
  m.lookup_for_read(3);
  m.update_file(3, make_meta(2 * kKB, {1, 2}));
  EXPECT_EQ(m.access_count(3), 1u);
  EXPECT_EQ(m.peek(3)->partitions(), 2u);
}

TEST(Master, RemoveFile) {
  Master m;
  m.register_file(4, make_meta(kKB, {0}));
  EXPECT_TRUE(m.remove_file(4));
  EXPECT_FALSE(m.remove_file(4));
  EXPECT_FALSE(m.peek(4).has_value());
  EXPECT_EQ(m.file_count(), 0u);
}

TEST(Master, FileIdsSorted) {
  Master m;
  for (FileId f : {FileId{5}, FileId{1}, FileId{3}}) m.register_file(f, make_meta(kKB, {0}));
  EXPECT_EQ(m.file_ids(), (std::vector<FileId>{1, 3, 5}));
}

TEST(Master, SnapshotCatalogRatesFromCounts) {
  Master m;
  m.register_file(0, make_meta(10 * kKB, {0}));
  m.register_file(1, make_meta(20 * kKB, {1}));
  for (int i = 0; i < 120; ++i) m.lookup_for_read(0);
  for (int i = 0; i < 30; ++i) m.lookup_for_read(1);
  // 120 and 30 accesses over a 60 s window -> 2 and 0.5 req/s.
  const auto cat = m.snapshot_catalog(60.0);
  ASSERT_EQ(cat.size(), 2u);
  EXPECT_DOUBLE_EQ(cat.file(0).request_rate, 2.0);
  EXPECT_DOUBLE_EQ(cat.file(1).request_rate, 0.5);
  EXPECT_EQ(cat.file(1).size, 20 * kKB);
}

TEST(Master, SnapshotFloorsUnseenFiles) {
  Master m;
  m.register_file(0, make_meta(kKB, {0}));
  const auto cat = m.snapshot_catalog(10.0, 1e-3);
  EXPECT_DOUBLE_EQ(cat.file(0).request_rate, 1e-3);
}

TEST(Master, ResetAccessCounts) {
  Master m;
  m.register_file(0, make_meta(kKB, {0}));
  m.lookup_for_read(0);
  m.reset_access_counts();
  EXPECT_EQ(m.access_count(0), 0u);
}

TEST(Master, ConcurrentLookupsCountExactly) {
  Master m;
  m.register_file(7, make_meta(kKB, {0}));
  ThreadPool pool(8);
  pool.parallel_for(400, [&m](std::size_t) { (void)m.lookup_for_read(7); });
  EXPECT_EQ(m.access_count(7), 400u);
}

TEST(Master, ConcurrentRegistrationsAllLand) {
  Master m;
  ThreadPool pool(8);
  pool.parallel_for(200, [&m](std::size_t i) {
    m.register_file(static_cast<FileId>(i), make_meta(kKB, {static_cast<std::uint32_t>(i % 8)}));
  });
  EXPECT_EQ(m.file_count(), 200u);
}

}  // namespace
}  // namespace spcache
