// Algorithm 1 (scale-factor search) tests.
#include "math/scale_factor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n, Bandwidth bw = gbps(1.0)) {
  return std::vector<Bandwidth>(n, bw);
}

TEST(PartitionCounts, FollowsEquationOne) {
  // k_i = ceil(alpha * L_i), clamped to [1, N].
  const auto cat = make_uniform_catalog(10, 100 * kMB, 1.1, 8.0);
  const double alpha = 1.0 / (10 * kMB);  // 1 partition per 10 MB of load
  const auto k = partition_counts_for_alpha(cat, alpha, 30);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const double load = cat.load(static_cast<FileId>(i));
    const auto expected =
        std::clamp<std::size_t>(static_cast<std::size_t>(std::ceil(alpha * load)), 1, 30);
    EXPECT_EQ(k[i], expected) << "file " << i;
  }
}

TEST(PartitionCounts, ColdFilesGetOnePartition) {
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.1, 8.0);
  // Tiny alpha: nobody splits.
  const auto k = partition_counts_for_alpha(cat, 1e-12, 30);
  for (auto ki : k) EXPECT_EQ(ki, 1u);
}

TEST(PartitionCounts, CapAtServerCount) {
  const auto cat = make_uniform_catalog(5, 100 * kMB, 1.1, 8.0);
  const auto k = partition_counts_for_alpha(cat, 1e6, 30);  // absurdly large alpha
  for (auto ki : k) EXPECT_EQ(ki, 30u);
}

TEST(PartitionCounts, MonotoneInLoad) {
  // More load -> at least as many partitions.
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.1, 10.0);
  const auto k = partition_counts_for_alpha(cat, 3e-7, 30);
  for (std::size_t i = 1; i < k.size(); ++i) EXPECT_GE(k[i - 1], k[i]);
}

TEST(ScaleFactor, InitialAlphaGivesHottestFileThirdOfServers) {
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  ScaleFactorConfig cfg;
  cfg.max_iterations = 1;  // stop immediately: result is alpha^1
  Rng rng(1);
  const auto res = find_scale_factor(cat, uniform_bw(30), cfg, rng);
  const auto k = partition_counts_for_alpha(cat, res.alpha, 30);
  EXPECT_EQ(k[0], 10u);  // N/3 partitions for the hottest file
}

TEST(ScaleFactor, SearchTerminatesAndReturnsPositiveAlpha) {
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  Rng rng(2);
  const auto res = find_scale_factor(cat, uniform_bw(30), ScaleFactorConfig{}, rng);
  EXPECT_GT(res.alpha, 0.0);
  EXPECT_GE(res.iterations, 1u);
  EXPECT_LE(res.iterations, ScaleFactorConfig{}.max_iterations);
  EXPECT_TRUE(std::isfinite(res.bound));
  EXPECT_GT(res.bound, 0.0);
}

TEST(ScaleFactor, ReturnsNearMinimalBoundOnSearchPath) {
  // The search keeps the earliest alpha within the improvement threshold of
  // the minimum (a later point must beat the incumbent by >1% to replace
  // it, which also biases toward fewer partitions at equal quality).
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  Rng rng(3);
  ScaleFactorConfig cfg;
  const auto res = find_scale_factor(cat, uniform_bw(30), cfg, rng);
  double min_bound = res.history.front().second;
  for (const auto& [a, b] : res.history) min_bound = std::min(min_bound, b);
  EXPECT_LE(res.bound, min_bound * (1.0 + cfg.improvement_threshold) + 1e-12);
  // The reported bound really is the bound at the reported alpha.
  bool found = false;
  for (const auto& [a, b] : res.history) {
    if (a == res.alpha) {
      EXPECT_DOUBLE_EQ(b, res.bound);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ScaleFactor, TerminatesForAKnownReason) {
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  Rng rng(33);
  ScaleFactorConfig cfg;
  const auto res = find_scale_factor(cat, uniform_bw(30), cfg, rng);
  if (res.iterations < cfg.max_iterations) {
    // Stopped early: either patience ran out / the bound diverged past the
    // elbow, or every file saturated at N partitions.
    std::size_t after_best = 0;
    bool diverged = false;
    for (const auto& [a, b] : res.history) {
      if (a > res.alpha) {
        ++after_best;
        if (b > res.bound * cfg.divergence_factor) diverged = true;
      }
    }
    const auto last_k =
        partition_counts_for_alpha(cat, res.history.back().first, 30);
    const bool saturated =
        std::all_of(last_k.begin(), last_k.end(), [](std::size_t k) { return k == 30; });
    EXPECT_TRUE(after_best >= cfg.patience || diverged || saturated);
  }
}

TEST(ScaleFactor, AlphaInflatesGeometrically) {
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  Rng rng(4);
  const auto res = find_scale_factor(cat, uniform_bw(30), ScaleFactorConfig{}, rng);
  for (std::size_t t = 1; t < res.history.size(); ++t) {
    EXPECT_NEAR(res.history[t].first / res.history[t - 1].first, 1.5, 1e-9);
  }
}

TEST(ScaleFactor, BoundNearSweepMinimum) {
  // The chosen alpha's bound should be close to the best bound over a wide
  // alpha sweep — the "elbow" property of Fig. 8.
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  const auto bw = uniform_bw(30);
  Rng rng(5);
  const auto res = find_scale_factor(cat, bw, ScaleFactorConfig{}, rng);

  double best = res.bound;
  for (double alpha = res.alpha / 16.0; alpha <= res.alpha * 16.0; alpha *= 1.3) {
    best = std::min(best, latency_bound_for_alpha(cat, bw, alpha, ScaleFactorConfig{}, 77));
  }
  EXPECT_LE(res.bound, best * 1.3);  // within 30% of the sweep optimum
}

TEST(ScaleFactor, PartitionCountsMatchChosenAlpha) {
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 8.0);
  Rng rng(6);
  const auto res = find_scale_factor(cat, uniform_bw(30), ScaleFactorConfig{}, rng);
  EXPECT_EQ(res.partition_counts, partition_counts_for_alpha(cat, res.alpha, 30));
}

TEST(ScaleFactor, HottestFileAlwaysWellSplit) {
  // The search only ever inflates alpha from alpha^1, so the hottest file
  // is split into at least N * initial_fraction partitions at any load.
  for (double rate : {6.0, 8.0, 14.0, 20.0}) {
    auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, rate);
    Rng rng(7);
    const auto res = find_scale_factor(cat, uniform_bw(30), ScaleFactorConfig{}, rng);
    EXPECT_GE(res.partition_counts[0], 10u) << "rate " << rate;
  }
}

}  // namespace
}  // namespace spcache
