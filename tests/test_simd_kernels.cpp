// Cross-ISA equivalence suite for the src/simd kernel layer.
//
// Every kernel (GF(256) mul / mul-add, CRC-32 update, fused copy+CRC) is
// fuzz-compared against the scalar tier — and against an independent
// bit-by-bit reference — across odd lengths, unaligned offsets, and
// head/tail remainders, at every level the host CPU supports. The sanitizer
// presets force SPCACHE_SIMD=scalar through tools/check.sh, so the scalar
// tier is additionally exercised under TSan/ASan.
#include "simd/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/crc32.h"

namespace spcache {
namespace {

// Deterministic data, independent of any library RNG.
std::vector<std::uint8_t> fuzz_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v[i] = static_cast<std::uint8_t>(x);
  }
  return v;
}

// Independent GF(256) reference: Russian-peasant multiply over 0x11B,
// sharing no tables with src/simd.
std::uint8_t gf_ref_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t aa = a;
  for (std::uint8_t bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11B;
  }
  return static_cast<std::uint8_t>(acc);
}

// Independent bitwise CRC-32 (reflected IEEE), raw-state convention.
std::uint32_t crc_ref_update(std::uint32_t state, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    state ^= p[i];
    for (int b = 0; b < 8; ++b) {
      state = (state >> 1) ^ (0xEDB88320u & (0u - (state & 1u)));
    }
  }
  return state;
}

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out;
  for (const auto level : {simd::Level::kScalar, simd::Level::kSsse3, simd::Level::kAvx2}) {
    if (simd::level_supported(level)) out.push_back(level);
  }
  return out;
}

// Lengths chosen to hit every remainder path: empty, sub-vector, one
// vector, vector±1, the AVX2 64-byte unroll boundary, the PCLMUL 64-byte
// minimum, and multi-KB bodies with ragged tails.
constexpr std::size_t kLengths[] = {0,  1,  2,   3,   15,  16,  17,   31,   32,  33,
                                    48, 63, 64,  65,  127, 128, 129,  255,  256, 511,
                                    1024, 4095, 4096, 4097, 65521};
constexpr std::size_t kOffsets[] = {0, 1, 3, 7};

TEST(SimdKernels, LevelPlumbing) {
  EXPECT_TRUE(simd::level_supported(simd::Level::kScalar));
  const auto detected = simd::detected_level();
  EXPECT_GE(static_cast<int>(detected), static_cast<int>(simd::Level::kScalar));
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");

  // force_level clamps to the detected ceiling and is reversible.
  simd::force_level(simd::Level::kAvx2);
  EXPECT_LE(static_cast<int>(simd::active_level()), static_cast<int>(detected));
  simd::force_level(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::kernels().level, simd::Level::kScalar);
  simd::force_level(detected);
  EXPECT_EQ(simd::active_level(), detected);
}

TEST(SimdKernels, Gf256MulMatchesReferenceAcrossLevels) {
  const auto levels = supported_levels();
  const auto src_all = fuzz_bytes(70000, 11);
  // Coefficients covering the special cases (0, 1) and both table paths.
  const std::uint8_t coeffs[] = {0, 1, 2, 3, 91, 142, 253, 255};
  for (const auto level : levels) {
    const auto& k = simd::kernels_for(level);
    ASSERT_EQ(k.level, level);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        for (const std::uint8_t c : coeffs) {
          const std::uint8_t* src = src_all.data() + off;
          std::vector<std::uint8_t> dst(n, 0xA5);
          k.gf256_mul(dst.data(), src, n, c);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(dst[i], gf_ref_mul(src[i], c))
                << simd::level_name(level) << " mul n=" << n << " off=" << off
                << " c=" << int(c) << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, Gf256MulAddMatchesReferenceAcrossLevels) {
  const auto levels = supported_levels();
  const auto src_all = fuzz_bytes(70000, 23);
  const auto base_all = fuzz_bytes(70000, 29);
  const std::uint8_t coeffs[] = {0, 1, 2, 91, 255};
  for (const auto level : levels) {
    const auto& k = simd::kernels_for(level);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        for (const std::uint8_t c : coeffs) {
          const std::uint8_t* src = src_all.data() + off;
          std::vector<std::uint8_t> dst(base_all.begin(),
                                        base_all.begin() + static_cast<std::ptrdiff_t>(n));
          k.gf256_mul_add(dst.data(), src, n, c);
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t want =
                static_cast<std::uint8_t>(base_all[i] ^ gf_ref_mul(src[i], c));
            ASSERT_EQ(dst[i], want)
                << simd::level_name(level) << " mul_add n=" << n << " off=" << off
                << " c=" << int(c) << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, Gf256MulAdd2MatchesReferenceAcrossLevels) {
  const auto src0_all = fuzz_bytes(70000, 67);
  const auto src1_all = fuzz_bytes(70000, 71);
  const auto base_all = fuzz_bytes(70000, 73);
  // Pairs hitting the degenerate coefficients on either side.
  const std::pair<std::uint8_t, std::uint8_t> coeff_pairs[] = {
      {0, 0}, {0, 91}, {91, 0}, {1, 255}, {255, 1}, {2, 3}, {91, 142}, {253, 254}};
  for (const auto level : supported_levels()) {
    const auto& k = simd::kernels_for(level);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        for (const auto& [c0, c1] : coeff_pairs) {
          const std::uint8_t* s0 = src0_all.data() + off;
          const std::uint8_t* s1 = src1_all.data() + off;
          std::vector<std::uint8_t> dst(base_all.begin(),
                                        base_all.begin() + static_cast<std::ptrdiff_t>(n));
          k.gf256_mul_add2(dst.data(), s0, c0, s1, c1, n);
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t want = static_cast<std::uint8_t>(
                base_all[i] ^ gf_ref_mul(s0[i], c0) ^ gf_ref_mul(s1[i], c1));
            ASSERT_EQ(dst[i], want)
                << simd::level_name(level) << " mul_add2 n=" << n << " off=" << off
                << " c0=" << int(c0) << " c1=" << int(c1) << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(SimdKernels, Gf256MulExactAliasingIsSupported) {
  for (const auto level : supported_levels()) {
    const auto& k = simd::kernels_for(level);
    for (const std::size_t n : {std::size_t{33}, std::size_t{4097}}) {
      auto buf = fuzz_bytes(n, 37);
      auto expect = buf;
      k.gf256_mul(expect.data(), expect.data(), n, 177);  // dst == src
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], gf_ref_mul(buf[i], 177)) << simd::level_name(level);
      }
    }
  }
}

TEST(SimdKernels, Crc32UpdateMatchesReferenceAcrossLevels) {
  const auto data_all = fuzz_bytes(70000, 41);
  for (const auto level : supported_levels()) {
    const auto& k = simd::kernels_for(level);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        const std::uint8_t* p = data_all.data() + off;
        const std::uint32_t got = k.crc32_update(0xFFFFFFFFu, p, n);
        const std::uint32_t want = crc_ref_update(0xFFFFFFFFu, p, n);
        ASSERT_EQ(got, want) << simd::level_name(level) << " crc n=" << n
                             << " off=" << off;
        // Split-state equivalence: resuming mid-buffer must match one shot.
        const std::size_t cut = n / 3;
        const std::uint32_t split =
            k.crc32_update(k.crc32_update(0xFFFFFFFFu, p, cut), p + cut, n - cut);
        ASSERT_EQ(split, want);
      }
    }
  }
}

TEST(SimdKernels, Crc32CopyUpdateCopiesAndChecksumsAcrossLevels) {
  const auto data_all = fuzz_bytes(70000, 53);
  for (const auto level : supported_levels()) {
    const auto& k = simd::kernels_for(level);
    for (const std::size_t n : kLengths) {
      for (const std::size_t off : kOffsets) {
        const std::uint8_t* src = data_all.data() + off;
        std::vector<std::uint8_t> dst(n + 1, 0xEE);  // +1 canary
        const std::uint32_t got = k.crc32_copy_update(0xFFFFFFFFu, dst.data(), src, n);
        ASSERT_EQ(got, crc_ref_update(0xFFFFFFFFu, src, n))
            << simd::level_name(level) << " n=" << n << " off=" << off;
        ASSERT_EQ(std::memcmp(dst.data(), src, n), 0);
        ASSERT_EQ(dst[n], 0xEE) << "copy overran the destination";
      }
    }
  }
}

TEST(SimdKernels, PublicCrcApiAgreesWithActiveKernels) {
  const auto data = fuzz_bytes(9001, 61);
  const std::uint32_t whole = crc32(data);
  EXPECT_EQ(whole, crc_ref_update(0xFFFFFFFFu, data.data(), data.size()) ^ 0xFFFFFFFFu);

  // Incremental + fused public wrappers.
  std::uint32_t st = crc32_init();
  std::vector<std::uint8_t> copy(data.size());
  st = crc32_copy_update(st, copy, data);
  EXPECT_EQ(crc32_final(st), whole);
  EXPECT_EQ(copy, data);

  // Combine: per-piece CRCs stitched into the whole-file CRC.
  const std::size_t cut = 2718;
  const std::uint32_t a =
      crc32(std::span<const std::uint8_t>(data.data(), cut));
  const std::uint32_t b =
      crc32(std::span<const std::uint8_t>(data.data() + cut, data.size() - cut));
  EXPECT_EQ(crc32_combine(a, b, data.size() - cut), whole);
  Crc32Combiner combiner;
  for (int rep = 0; rep < 3; ++rep) {  // cached-operator path
    EXPECT_EQ(combiner.combine(a, b, data.size() - cut), whole);
  }
  EXPECT_EQ(crc32_combine(a, b, 0), a ^ b);

  // The built operator must carry its length: it is the combiner's cache
  // key, and losing it (e.g. via gf2_compose resetting the field) silently
  // degrades every cached combine into a full matrix rebuild.
  EXPECT_EQ(crc32_zeros_op(data.size() - cut).len, data.size() - cut);
  EXPECT_EQ(crc32_zeros_op(1).len, 1u);
}

}  // namespace
}  // namespace spcache
