// EWMA popularity tracker tests.
#include "workload/popularity_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spcache {
namespace {

TEST(PopularityTracker, UnknownFileHasZeroRate) {
  PopularityTracker t(60.0);
  EXPECT_DOUBLE_EQ(t.rate(42, 100.0), 0.0);
}

TEST(PopularityTracker, SteadyPoissonStreamEstimatesRate) {
  PopularityTracker t(300.0);
  Rng rng(1);
  // 5 req/s for 30 minutes.
  Seconds now = 0.0;
  while (now < 1800.0) {
    now += rng.exponential(0.2);
    t.record(7, now);
  }
  EXPECT_NEAR(t.rate(7, now), 5.0, 0.8);
}

TEST(PopularityTracker, RateDecaysWithHalfLife) {
  PopularityTracker t(100.0);
  Rng rng(2);
  Seconds now = 0.0;
  while (now < 1000.0) {
    now += rng.exponential(0.5);  // 2 req/s
    t.record(3, now);
  }
  const double at_end = t.rate(3, now);
  EXPECT_NEAR(t.rate(3, now + 100.0), at_end / 2.0, at_end * 0.01);
  EXPECT_NEAR(t.rate(3, now + 200.0), at_end / 4.0, at_end * 0.01);
}

TEST(PopularityTracker, DetectsBurst) {
  PopularityTracker t(60.0);
  Rng rng(3);
  // Cold file: one access a minute for 20 minutes.
  Seconds now = 0.0;
  while (now < 1200.0) {
    now += 60.0;
    t.record(1, now);
  }
  const double cold_rate = t.rate(1, now);
  EXPECT_LT(cold_rate, 0.1);
  // Burst: 10 req/s for one minute.
  while (now < 1260.0) {
    now += 0.1;
    t.record(1, now);
  }
  EXPECT_GT(t.rate(1, now), cold_rate * 20.0);
  EXPECT_NEAR(t.rate(1, now), 10.0, 5.0);  // approaching the burst rate
}

TEST(PopularityTracker, IndependentFiles) {
  PopularityTracker t(60.0);
  t.record(1, 10.0);
  t.record(1, 11.0);
  t.record(2, 11.0);
  EXPECT_GT(t.rate(1, 11.0), t.rate(2, 11.0));
  EXPECT_EQ(t.tracked_files(), 2u);
}

TEST(PopularityTracker, SnapshotBuildsCatalog) {
  PopularityTracker t(120.0);
  Rng rng(4);
  Seconds now = 0.0;
  for (int i = 0; i < 2000; ++i) {
    now += rng.exponential(0.25);  // 4 req/s on file 0
    t.record(0, now);
  }
  const std::vector<Bytes> sizes{100 * kMB, 50 * kMB};
  const auto cat = t.snapshot(sizes, now, 1e-6);
  ASSERT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.file(0).size, 100 * kMB);
  EXPECT_NEAR(cat.file(0).request_rate, 4.0, 1.0);
  EXPECT_DOUBLE_EQ(cat.file(1).request_rate, 1e-6);  // floor for unseen file
  EXPECT_GT(cat.popularity(0), 0.99);
}

TEST(PopularityTracker, OutOfOrderTimesTolerated) {
  PopularityTracker t(60.0);
  t.record(5, 100.0);
  t.record(5, 99.5);  // slightly stale timestamp within a batch
  EXPECT_GT(t.rate(5, 100.0), 0.0);
}

}  // namespace
}  // namespace spcache
