// Tests for RunningStats, Sample, and the paper's summary metrics
// (CV, imbalance factor eta, latency improvement).
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spcache {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squares = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStats, SingleValueVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.add(x);
    (i < 37 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean);
}

TEST(RunningStats, CvDefinition) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-12);
}

TEST(Sample, PercentileKnownArray) {
  Sample s;
  for (double x : {15.0, 20.0, 35.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 35.0);
  // Linear interpolation (numpy type-7): 0.25 -> 20 + 0*(35-20)... position
  // = 0.25 * 4 = 1.0 exactly -> 20.
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 20.0);
  // position 0.95 * 4 = 3.8 -> 40 + 0.8 * 10 = 48.
  EXPECT_NEAR(s.percentile(0.95), 48.0, 1e-12);
}

TEST(Sample, PercentileSingleValue) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.95), 7.0);
}

TEST(Sample, EmptyIsZero) {
  Sample s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.cdf(1.0), 0.0);
}

TEST(Sample, MeanStddevMatchRunningStats) {
  Sample s;
  RunningStats r;
  for (int i = 0; i < 1000; ++i) {
    const double x = std::cos(i) * 5 + 2;
    s.add(x);
    r.add(x);
  }
  EXPECT_NEAR(s.mean(), r.mean(), 1e-9);
  EXPECT_NEAR(s.stddev(), r.stddev(), 1e-9);
  EXPECT_NEAR(s.cv(), r.cv(), 1e-9);
}

TEST(Sample, CdfMonotoneAndCorrect) {
  Sample s;
  for (double x : {1.0, 2.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf(10.0), 1.0);
}

TEST(Sample, SortInvalidationAfterAdd) {
  Sample s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);  // re-sorts after mutation
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(ImbalanceFactor, PerfectBalanceIsZero) {
  EXPECT_DOUBLE_EQ(imbalance_factor({5.0, 5.0, 5.0}), 0.0);
}

TEST(ImbalanceFactor, KnownSkew) {
  // max = 10, avg = 5 -> eta = 1.
  EXPECT_DOUBLE_EQ(imbalance_factor({10.0, 5.0, 0.0}), 1.0);
}

TEST(ImbalanceFactor, EmptyAndZeros) {
  EXPECT_DOUBLE_EQ(imbalance_factor({}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_factor({0.0, 0.0}), 0.0);
}

TEST(LatencyImprovement, Definition) {
  // Eq. 14: (D - D_SP) / D * 100.
  EXPECT_DOUBLE_EQ(latency_improvement_percent(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(latency_improvement_percent(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(latency_improvement_percent(1.0, 2.0), -100.0);
  EXPECT_DOUBLE_EQ(latency_improvement_percent(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace spcache
