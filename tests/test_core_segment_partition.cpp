// Segment-level selective partition tests (Section 8 extension).
#include "core/segment_partition.h"

#include <gtest/gtest.h>

#include <set>

namespace spcache {
namespace {

SegmentedFile parquet_like() {
  // A columnar file: one hot column group, two lukewarm, many cold.
  SegmentedFile f;
  f.segments.push_back({40 * kMB, 50.0});  // hot key column
  f.segments.push_back({30 * kMB, 5.0});
  f.segments.push_back({20 * kMB, 3.0});
  for (int i = 0; i < 5; ++i) f.segments.push_back({10 * kMB, 0.2});
  return f;
}

TEST(SegmentedFile, Totals) {
  const auto f = parquet_like();
  EXPECT_EQ(f.total_bytes(), (40 + 30 + 20 + 50) * kMB);
  EXPECT_NEAR(f.total_rate(), 59.0, 1e-12);
}

TEST(SegmentedFile, SegmentLoadDefinition) {
  const auto f = parquet_like();
  EXPECT_NEAR(f.segment_load(0), 40.0 * kMB * (50.0 / 59.0), 1.0);
  EXPECT_NEAR(f.segment_load(3), 10.0 * kMB * (0.2 / 59.0), 1.0);
}

TEST(SegmentPlan, HotSegmentsSplitFinest) {
  const auto f = parquet_like();
  Rng rng(1);
  const double alpha = 8.0 / f.segment_load(0);  // hot segment -> 8 pieces
  const auto plan = plan_segment_partition(f, alpha, 30, rng);
  ASSERT_EQ(plan.partitions.size(), f.segments.size());
  EXPECT_EQ(plan.partitions[0], 8u);
  // Cold column groups stay whole.
  for (std::size_t j = 3; j < f.segments.size(); ++j) EXPECT_EQ(plan.partitions[j], 1u);
  // Counts follow the load ordering.
  EXPECT_GE(plan.partitions[0], plan.partitions[1]);
  EXPECT_GE(plan.partitions[1], plan.partitions[2]);
}

TEST(SegmentPlan, ServersDistinctPerSegment) {
  const auto f = parquet_like();
  Rng rng(2);
  const auto plan = plan_segment_partition(f, 10.0 / f.segment_load(0), 30, rng);
  for (std::size_t j = 0; j < plan.servers.size(); ++j) {
    ASSERT_EQ(plan.servers[j].size(), plan.partitions[j]);
    const std::set<std::uint32_t> distinct(plan.servers[j].begin(), plan.servers[j].end());
    EXPECT_EQ(distinct.size(), plan.servers[j].size());
  }
}

TEST(SegmentPlan, FewerFetchesPerAccessAtSameBalance) {
  // The extension's selling point: a reader touching one column group only
  // fetches that group's pieces. At equal per-partition load, segment-wise
  // splitting serves the popularity-weighted access with fewer fetches than
  // whole-file splitting (whose every read touches all k pieces).
  const auto f = parquet_like();
  Rng rng(3);
  const double alpha = 8.0 / f.segment_load(0);
  const auto seg_plan = plan_segment_partition(f, alpha, 30, rng);
  const double seg_balance = max_partition_load(f, seg_plan);

  // Whole-file pieces needed for the same balance.
  std::size_t k_whole = 1;
  while (k_whole < 30 && max_partition_load_whole(f, k_whole) > seg_balance) ++k_whole;

  double seg_fetches = 0.0;  // expected fetches per access
  for (std::size_t j = 0; j < f.segments.size(); ++j) {
    seg_fetches += f.segments[j].request_rate / f.total_rate() *
                   static_cast<double>(seg_plan.partitions[j]);
  }
  EXPECT_LT(seg_fetches, static_cast<double>(k_whole));
  // Cold-column readers in particular touch a single piece.
  EXPECT_EQ(seg_plan.partitions.back(), 1u);
}

TEST(SegmentPlan, UniformSegmentsReduceToWholeFileBehaviour) {
  SegmentedFile f;
  for (int i = 0; i < 4; ++i) f.segments.push_back({25 * kMB, 1.0});
  Rng rng(4);
  const double alpha = 2.0 / f.segment_load(0);
  const auto plan = plan_segment_partition(f, alpha, 30, rng);
  for (auto k : plan.partitions) EXPECT_EQ(k, 2u);
  EXPECT_EQ(plan.total_pieces(), 8u);
  EXPECT_EQ(whole_file_partitions(f, alpha, 30), 8u);
}

TEST(SegmentPlan, ClampedToServerCount) {
  SegmentedFile f;
  f.segments.push_back({100 * kMB, 100.0});
  Rng rng(5);
  const auto plan = plan_segment_partition(f, 1.0, 10, rng);  // absurd alpha
  EXPECT_EQ(plan.partitions[0], 10u);
}

TEST(SegmentPlan, ZeroRateFile) {
  SegmentedFile f;
  f.segments.push_back({10 * kMB, 0.0});
  EXPECT_DOUBLE_EQ(f.segment_load(0), 0.0);
  Rng rng(6);
  const auto plan = plan_segment_partition(f, 1.0, 10, rng);
  EXPECT_EQ(plan.partitions[0], 1u);
}

}  // namespace
}  // namespace spcache
