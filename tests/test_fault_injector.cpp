// FaultInjector: determinism (same seed ⇒ same fault schedule), rate
// sanity, the scheduled crash/restart list, and stats accounting.
#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spcache::fault {
namespace {

FaultConfig chaos_config() {
  FaultConfig cfg;
  cfg.bus_drop_p = 0.10;
  cfg.bus_delay_p = 0.20;
  cfg.bus_duplicate_p = 0.05;
  cfg.fetch_fail_p = 0.15;
  cfg.corrupt_read_p = 0.08;
  return cfg;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultInjector a(42, chaos_config());
  FaultInjector b(42, chaos_config());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.drop_envelope(), b.drop_envelope()) << "drop decision " << i;
    EXPECT_EQ(a.delay_envelope(), b.delay_envelope()) << "delay decision " << i;
    EXPECT_EQ(a.duplicate_envelope(), b.duplicate_envelope()) << "dup decision " << i;
    EXPECT_EQ(a.fail_fetch(3), b.fail_fetch(3)) << "fetch decision " << i;
    EXPECT_EQ(a.corrupt_read(7), b.corrupt_read(7)) << "corrupt decision " << i;
  }
  EXPECT_EQ(a.stats(), b.stats());
}

TEST(FaultInjector, ScheduleIsIndependentOfThreadInterleaving) {
  // The n-th decision at a site is a pure function of (seed, site, n):
  // consume one site's stream from many threads, then compare the *count*
  // of fired faults with a serial replay — identical, because the same
  // decision indices fire regardless of who consumed them.
  constexpr int kPerThread = 500;
  constexpr int kThreads = 8;
  FaultInjector parallel_inj(99, chaos_config());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) (void)parallel_inj.fail_fetch(5);
    });
  }
  for (auto& t : threads) t.join();

  FaultInjector serial_inj(99, chaos_config());
  for (int i = 0; i < kPerThread * kThreads; ++i) (void)serial_inj.fail_fetch(5);
  EXPECT_EQ(parallel_inj.stats().fetch_failures, serial_inj.stats().fetch_failures);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(1, chaos_config());
  FaultInjector b(2, chaos_config());
  int differing = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.drop_envelope() != b.drop_envelope()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  FaultInjector inj(7, chaos_config());
  const int n = 20000;
  int drops = 0;
  for (int i = 0; i < n; ++i) drops += inj.drop_envelope() ? 1 : 0;
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, 0.10, 0.02);
}

TEST(FaultInjector, ZeroProbabilityNeverFires) {
  FaultInjector inj(7, FaultConfig{});  // all probabilities zero
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.drop_envelope());
    EXPECT_FALSE(inj.fail_fetch(0));
    EXPECT_FALSE(inj.corrupt_read(0));
  }
  // Zero-probability sites never even consume a decision.
  EXPECT_EQ(inj.stats().decisions, 0u);
}

TEST(FaultInjector, DisarmSuppressesAndPreservesTheSchedule) {
  FaultInjector armed(13, chaos_config());
  FaultInjector paused(13, chaos_config());
  // Burn the same prefix on both.
  for (int i = 0; i < 100; ++i) {
    (void)armed.fail_fetch(1);
    (void)paused.fail_fetch(1);
  }
  // While disarmed, decisions do not advance the stream.
  paused.disarm();
  for (int i = 0; i < 500; ++i) EXPECT_FALSE(paused.fail_fetch(1));
  paused.arm();
  // The suffix matches the uninterrupted injector exactly.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(armed.fail_fetch(1), paused.fail_fetch(1)) << "post-rearm decision " << i;
  }
}

TEST(FaultInjector, CrashScheduleFiresOnceInOrder) {
  FaultInjector inj(5);
  inj.schedule({30, 2, CrashEvent::Action::kRevive});
  inj.schedule({10, 2, CrashEvent::Action::kKill});
  inj.schedule({20, 4, CrashEvent::Action::kKill});
  EXPECT_EQ(inj.scheduled_remaining(), 3u);

  EXPECT_TRUE(inj.due(5).empty());
  const auto first = inj.due(15);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].server, 2u);
  EXPECT_EQ(first[0].action, CrashEvent::Action::kKill);

  const auto rest = inj.due(100);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].at_step, 20u);
  EXPECT_EQ(rest[1].at_step, 30u);
  EXPECT_EQ(rest[1].action, CrashEvent::Action::kRevive);

  EXPECT_TRUE(inj.due(1000).empty());  // each event hands out exactly once
  EXPECT_EQ(inj.scheduled_remaining(), 0u);
}

TEST(FaultInjector, StatsCountFiredFaults) {
  FaultInjector inj(11, chaos_config());
  for (int i = 0; i < 5000; ++i) {
    (void)inj.drop_envelope();
    (void)inj.fail_fetch(0);
  }
  const auto s = inj.stats();
  EXPECT_GT(s.bus_drops, 0u);
  EXPECT_GT(s.fetch_failures, 0u);
  EXPECT_EQ(s.decisions, 10000u);
  EXPECT_EQ(s.bus_delays, 0u);  // site never consulted
}

}  // namespace
}  // namespace spcache::fault
