// Multi-threaded stress tests for the shard-per-core cluster substrate:
// concurrent readers + writers + a repartitioner + an online adjuster over
// the sharded master and striped block stores.
//
// The assertions pin down the concurrency contract:
//   * read-your-writes: a writer that rewrote its own file (and nobody
//     else writes it) always reads back the exact bytes;
//   * CRC integrity: a read that *returns* is bit-exact end to end — a
//     read racing a layout change may throw (missing piece / checksum
//     conflict, which real clients retry), but never yields torn data;
//   * exact access-count totals: the relaxed atomic counters lose no
//     bumps under contention;
//   * per-file linearizability: repartition and split/merge RMWs on the
//     same file serialize via Master::lock_file, so the layout and the
//     stored pieces never diverge.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/client.h"
#include "cluster/master.h"
#include "cluster/online_adjust.h"
#include "cluster/repartition_exec.h"
#include "cluster/stable_store.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> payload(FileId id, std::uint32_t version, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(mix64((static_cast<std::uint64_t>(id) << 40) ^
                                           (static_cast<std::uint64_t>(version) << 20) ^ i));
  }
  return v;
}

std::vector<std::uint32_t> distinct_servers(Rng& rng, std::size_t n_servers, std::size_t k) {
  const auto picks = rng.sample_without_replacement(n_servers, k);
  return std::vector<std::uint32_t>(picks.begin(), picks.end());
}

TEST(ClusterConcurrency, ReadYourWritesUnderContention) {
  constexpr std::size_t kServers = 8;
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kFilesPerWriter = 6;
  constexpr std::size_t kIterations = 25;
  constexpr std::size_t kFileSize = 8 * 1024;

  Cluster cluster(kServers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  SpClient client(cluster, master, pool);

  // Each writer owns a disjoint file range; nobody else writes those ids,
  // so every write must be immediately readable, bit-exact.
  std::vector<std::thread> threads;
  std::atomic<std::size_t> failures{0};
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (std::uint32_t it = 0; it < kIterations; ++it) {
        for (std::size_t f = 0; f < kFilesPerWriter; ++f) {
          const FileId id = static_cast<FileId>(w * kFilesPerWriter + f);
          const auto data = payload(id, it, kFileSize);
          client.write(id, data, distinct_servers(rng, kServers, 3));
          const auto result = client.read(id);
          if (result.bytes != data) failures.fetch_add(1);
        }
      }
    });
  }
  // Concurrent foreign readers: they may race a rewrite and throw (a
  // conflict a real client retries) but must never crash or return data
  // that fails verification (read() CRC-checks internally).
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> foreign_ok{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      while (!stop.load()) {
        const FileId id =
            static_cast<FileId>(rng.uniform_index(kWriters * kFilesPerWriter));
        try {
          const auto result = client.read(id);
          if (!result.bytes.empty()) foreign_ok.fetch_add(1);
        } catch (const std::runtime_error&) {
          // unknown file / mid-rewrite conflict: acceptable, retried
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(foreign_ok.load(), 0u);
  EXPECT_EQ(master.file_count(), kWriters * kFilesPerWriter);
}

TEST(ClusterConcurrency, ExactAccessCountTotalsUnderContention) {
  constexpr std::size_t kFiles = 64;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookupsPerThread = 4000;

  Master master;
  for (FileId id = 0; id < kFiles; ++id) {
    FileMeta meta;
    meta.size = 100;
    meta.servers = {0};
    meta.piece_sizes = {100};
    master.register_file(id, meta);
  }

  // Every thread tallies its own lookups; the master's relaxed atomic
  // counters must agree exactly with the summed tallies.
  std::vector<std::vector<std::uint64_t>> tallies(kThreads,
                                                  std::vector<std::uint64_t>(kFiles, 0));
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(42 + t);
      for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
        const FileId id = static_cast<FileId>(rng.uniform_index(kFiles));
        ASSERT_TRUE(master.lookup_for_read(id).has_value());
        ++tallies[t][id];
      }
    });
  }
  // A snapshotter runs alongside: shard-by-shard walks must not stall or
  // corrupt the counters.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load()) {
      const auto cat = master.snapshot_catalog(60.0);
      ASSERT_LE(cat.size(), kFiles);
      ASSERT_EQ(master.file_ids().size(), kFiles);
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  snapshotter.join();

  for (FileId id = 0; id < kFiles; ++id) {
    std::uint64_t expected = 0;
    for (std::size_t t = 0; t < kThreads; ++t) expected += tallies[t][id];
    EXPECT_EQ(master.access_count(id), expected) << "file " << id;
  }
  master.reset_access_counts();
  for (FileId id = 0; id < kFiles; ++id) EXPECT_EQ(master.access_count(id), 0u);
}

TEST(ClusterConcurrency, RepartitionerAndAdjusterVsReadersIntegrity) {
  constexpr std::size_t kServers = 8;
  constexpr std::size_t kFiles = 16;
  constexpr std::size_t kFileSize = 12 * 1024;
  constexpr std::size_t kRounds = 6;

  Cluster cluster(kServers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  SpClient client(cluster, master, pool);

  // Fixed content per file: repartition and split/merge move bytes around
  // but never change them, so EVERY successful read must be bit-exact.
  std::vector<std::vector<std::uint8_t>> golden(kFiles);
  Rng setup_rng(7);
  for (FileId id = 0; id < kFiles; ++id) {
    golden[id] = payload(id, 0, kFileSize);
    client.write(id, golden[id], distinct_servers(setup_rng, kServers, 3));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn_reads{0};
  std::atomic<std::size_t> ok_reads{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(300 + r);
      while (!stop.load()) {
        const FileId id = static_cast<FileId>(rng.uniform_index(kFiles));
        try {
          const auto result = client.read(id);
          if (result.bytes == golden[id]) {
            ok_reads.fetch_add(1);
          } else {
            torn_reads.fetch_add(1);  // passed CRC but wrong bytes: impossible
          }
        } catch (const std::runtime_error&) {
          // read raced a layout change; a real client retries
        }
      }
    });
  }

  // Repartitioner: flips every file between k=3 and k=4 layouts through
  // Algorithm 2's executor path (guarded per-file RMW).
  std::thread repartitioner([&] {
    Rng rng(500);
    for (std::size_t round = 0; round < kRounds; ++round) {
      const std::size_t new_k = 3 + (round % 2);
      RepartitionPlan plan;
      plan.new_k.assign(kFiles, new_k);
      for (FileId id = 0; id < kFiles; ++id) {
        plan.changed_files.push_back(id);
        plan.new_servers.push_back(distinct_servers(rng, kServers, new_k));
        plan.executor.push_back(plan.new_servers.back().front());
      }
      execute_parallel_repartition(cluster, master, plan, pool);
    }
  });

  // Online adjuster: split piece 0, then merge it back, racing the
  // repartitioner on the same files. The per-file guard serializes each
  // RMW; range/state conflicts surface as exceptions, never corruption.
  std::thread adjuster([&] {
    Rng rng(700);
    for (std::size_t round = 0; round < kRounds * 4; ++round) {
      const FileId id = static_cast<FileId>(rng.uniform_index(kFiles));
      try {
        execute_split(cluster, master,
                      SplitOp{id, 0, static_cast<std::uint32_t>(rng.uniform_index(kServers))});
        execute_merge(cluster, master, MergeOp{id, 0});
      } catch (const std::runtime_error&) {
        // piece vanished / index out of range after a concurrent
        // repartition won the guard first: acceptable, the op is dropped
      }
    }
  });

  repartitioner.join();
  adjuster.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn_reads.load(), 0u);
  EXPECT_GT(ok_reads.load(), 0u);

  // Quiescent state: every file reassembles bit-exactly, and layout
  // metadata matches the resident pieces.
  for (FileId id = 0; id < kFiles; ++id) {
    const auto result = client.read(id);
    EXPECT_EQ(result.bytes, golden[id]) << "file " << id;
    const auto meta = master.peek(id);
    ASSERT_TRUE(meta.has_value());
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      EXPECT_TRUE(cluster.server(meta->servers[i])
                      .contains(BlockKey{id, static_cast<PieceIndex>(i)}));
    }
  }
}

// The ISSUE-5 acceptance bar for delta repartitioning: readers hammering a
// file *during* an epoch cutover, under seeded fetch faults, must never
// fail a read. The delta executor stages new pieces off the read path and
// publishes in one short critical section; a fault-tolerant client with
// stable-storage failover absorbs everything else (missing pieces after
// GC, stale layouts, injected fetch failures). Unlike the integrity test
// above — where racing reads may throw and "a real client retries" — here
// the client IS the retrying client, so any escape is a bug.
TEST(ClusterConcurrency, ReadersNeverFailDuringDeltaRepartition) {
  constexpr std::size_t kServers = 8;
  constexpr std::size_t kFiles = 12;
  constexpr std::size_t kFileSize = 16 * 1024;
  constexpr std::size_t kRounds = 8;

  Cluster cluster(kServers, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  fault::FaultInjector injector(91, fault::FaultConfig{.fetch_fail_p = 0.02});
  cluster.set_fault_injector(&injector);
  StableStore stable;
  SpClient client(cluster, master, pool, &stable, fault::RetryPolicy{});

  std::vector<std::vector<std::uint8_t>> golden(kFiles);
  Rng setup_rng(17);
  for (FileId id = 0; id < kFiles; ++id) {
    golden[id] = payload(id, 0, kFileSize);
    stable.checkpoint(id, golden[id]);
    client.write(id, golden[id], distinct_servers(setup_rng, kServers, 3));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failed_reads{0};
  std::atomic<std::size_t> wrong_reads{0};
  std::atomic<std::size_t> ok_reads{0};
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(900 + r);
      while (!stop.load()) {
        const FileId id = static_cast<FileId>(rng.uniform_index(kFiles));
        try {
          const auto result = client.read(id);
          (result.bytes == golden[id] ? ok_reads : wrong_reads).fetch_add(1);
        } catch (const std::runtime_error&) {
          failed_reads.fetch_add(1);
        }
      }
    });
  }

  // Delta repartitioner: flips every file between k=3 and k=4 while the
  // readers run. Each round stages under epoch+1, publishes, lazily GCs.
  std::thread repartitioner([&] {
    Rng rng(1100);
    for (std::size_t round = 0; round < kRounds; ++round) {
      const std::size_t new_k = 3 + (round % 2);
      RepartitionPlan plan;
      plan.new_k.assign(kFiles, new_k);
      for (FileId id = 0; id < kFiles; ++id) {
        plan.changed_files.push_back(id);
        plan.new_servers.push_back(distinct_servers(rng, kServers, new_k));
        plan.executor.push_back(plan.new_servers.back().front());
      }
      execute_delta_repartition(cluster, master, plan, pool);
    }
  });

  repartitioner.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failed_reads.load(), 0u);
  EXPECT_EQ(wrong_reads.load(), 0u);
  EXPECT_GT(ok_reads.load(), 0u);

  // Quiescent: bit-exact content, no staged residue anywhere.
  cluster.set_fault_injector(nullptr);
  for (FileId id = 0; id < kFiles; ++id) {
    EXPECT_EQ(client.read(id).bytes, golden[id]) << "file " << id;
  }
  for (std::size_t s = 0; s < kServers; ++s) {
    EXPECT_EQ(cluster.server(s).staged_count(), 0u) << "server " << s;
  }
}

TEST(ClusterConcurrency, StripedStoreExactLoadAccounting) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 500;
  constexpr std::size_t kBlockSize = 256;

  CacheServer server(0, gbps(1.0));
  // Pre-populate a disjoint key range per thread, then hammer get():
  // bytes_served must equal reads * block size exactly (no lost updates in
  // the relaxed counter), and reset must be race-free afterwards.
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < 8; ++i) {
      server.put(BlockKey{static_cast<FileId>(t), static_cast<PieceIndex>(i)},
                 payload(static_cast<FileId>(t), static_cast<std::uint32_t>(i), kBlockSize));
    }
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const auto block = server.get(
            BlockKey{static_cast<FileId>(t), static_cast<PieceIndex>(rng.uniform_index(8))});
        ASSERT_TRUE(block != nullptr);
        ASSERT_EQ(block->bytes.size(), kBlockSize);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(server.bytes_served(),
                   static_cast<double>(kThreads * kOpsPerThread * kBlockSize));
  server.reset_load_counters();
  EXPECT_DOUBLE_EQ(server.bytes_served(), 0.0);
  EXPECT_EQ(server.blocks_stored(), kThreads * 8);
}

}  // namespace
}  // namespace spcache
