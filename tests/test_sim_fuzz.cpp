// Simulator fuzz invariants: across random workloads, schemes, and seeds,
// the discrete-event engine must conserve work, complete every request,
// and stay deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/ec_cache.h"
#include "core/fixed_chunking.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"
#include "core/sp_cache.h"
#include "sim/simulation.h"
#include "workload/arrivals.h"

namespace spcache {
namespace {

std::unique_ptr<CachingScheme> random_scheme(Rng& rng) {
  switch (rng.uniform_index(5)) {
    case 0: return std::make_unique<SpCacheScheme>();
    case 1: return std::make_unique<EcCacheScheme>();
    case 2: return std::make_unique<SelectiveReplicationScheme>();
    case 3: return std::make_unique<FixedChunkingScheme>(FixedChunkingConfig{8 * kMB});
    default: return std::make_unique<SimplePartitionScheme>(1 + rng.uniform_index(12));
  }
}

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, InvariantsHoldForRandomConfigurations) {
  Rng meta_rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    const std::size_t n_files = 20 + meta_rng.uniform_index(180);
    const double zipf = meta_rng.uniform(0.5, 1.3);
    const double rate = meta_rng.uniform(2.0, 12.0);
    const auto cat = make_uniform_catalog(n_files, (20 + meta_rng.uniform_index(80)) * kMB,
                                          zipf, rate);
    auto scheme = random_scheme(meta_rng);
    Rng place_rng(meta_rng.next_u64());
    scheme->place(cat, std::vector<Bandwidth>(30, gbps(1.0)), place_rng);

    SimConfig cfg;
    cfg.n_servers = 30;
    cfg.bandwidth = {gbps(1.0)};
    cfg.goodput = GoodputModel::calibrated(gbps(1.0));
    if (meta_rng.bernoulli(0.5)) cfg.stragglers = StragglerModel::bing(0.05);
    cfg.seed = meta_rng.next_u64();

    Rng arrival_rng(meta_rng.next_u64());
    const std::size_t n_requests = 300 + meta_rng.uniform_index(700);
    const auto arrivals = generate_poisson_arrivals(cat, n_requests, arrival_rng);

    // Track the exact bytes every plan requests so conservation is checkable
    // even for randomized plans (late binding, replica choice).
    double planned_bytes = 0.0;
    auto planner = [&](FileId f, Rng& r) {
      auto plan = scheme->plan_read(f, r);
      for (const auto& fetch : plan.fetches) planned_bytes += static_cast<double>(fetch.bytes);
      return plan;
    };

    Simulation sim(cfg);
    const auto result = sim.run(arrivals, planner);

    // Invariant 1: every request completes.
    EXPECT_EQ(result.completed, n_requests);
    EXPECT_EQ(result.latencies.count(), n_requests);
    // Invariant 2: work conservation — servers served exactly the bytes
    // the plans requested.
    double served = 0.0;
    for (double b : result.server_bytes) served += b;
    EXPECT_NEAR(served, planned_bytes, planned_bytes * 1e-12 + 1.0);
    // Invariant 3: latencies are finite, positive, ordered sanely.
    EXPECT_GT(result.latencies.min(), 0.0);
    EXPECT_TRUE(std::isfinite(result.latencies.max()));
    EXPECT_LE(result.mean_latency(), result.latencies.max());
    EXPECT_GE(result.tail_latency(), result.latencies.percentile(0.5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull));

TEST(SimFuzz, DeterministicAcrossRuns) {
  // A full random configuration replayed twice must match exactly.
  const auto cat = make_uniform_catalog(100, 50 * kMB, 1.1, 8.0);
  auto run_once = [&cat] {
    SpCacheScheme sp;
    Rng place_rng(99);
    sp.place(cat, std::vector<Bandwidth>(30, gbps(1.0)), place_rng);
    SimConfig cfg;
    cfg.n_servers = 30;
    cfg.bandwidth = {gbps(1.0)};
    cfg.stragglers = StragglerModel::bing(0.05);
    cfg.seed = 7;
    Simulation sim(cfg);
    Rng arrival_rng(8);
    const auto arrivals = generate_poisson_arrivals(cat, 2000, arrival_rng);
    return sim.run(arrivals, [&sp](FileId f, Rng& r) { return sp.plan_read(f, r); });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.latencies.values(), b.latencies.values());
  EXPECT_EQ(a.server_bytes, b.server_bytes);
}

}  // namespace
}  // namespace spcache
