// Thread-pool correctness: results, exceptions, concurrency.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace spcache {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 7; });
  auto f2 = pool.submit([](int x) { return x * 2; }, 21);
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), 42);
}

TEST(ThreadPool, SizeAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("unlucky");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManySmallTasksSumCorrectly) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPool, TasksRunConcurrentlyAcrossWorkers) {
  // With 4 workers and 4 tasks that wait for each other, completion proves
  // concurrency (a single-threaded pool would deadlock, so guard with a
  // generous completion flag instead of blocking forever).
  ThreadPool pool(4);
  std::atomic<int> arrived{0};
  pool.parallel_for(4, [&](std::size_t) {
    arrived.fetch_add(1);
    // Spin until all four tasks have started (bounded).
    for (int spin = 0; spin < 100000000 && arrived.load() < 4; ++spin) {
    }
  });
  EXPECT_EQ(arrived.load(), 4);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace spcache
