// SP-Cache scheme tests: Eq. 1 partition counts, selective behaviour
// (only hot files split — the Fig. 11 property), placement invariants,
// plan structure, redundancy-freeness.
#include "core/sp_cache.h"

#include <gtest/gtest.h>

#include <set>

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n) { return std::vector<Bandwidth>(n, gbps(1.0)); }

TEST(SpCache, PartitionCountsFollowEquationOne) {
  SpCacheConfig cfg;
  cfg.fixed_alpha = 5.0 / 1e7;  // deterministic alpha
  SpCacheScheme sp(cfg);
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  Rng rng(1);
  sp.place(cat, uniform_bw(30), rng);
  const auto expected = partition_counts_for_alpha(cat, *cfg.fixed_alpha, 30);
  EXPECT_EQ(sp.partition_counts(), expected);
  EXPECT_DOUBLE_EQ(sp.alpha(), *cfg.fixed_alpha);
}

TEST(SpCache, AlgorithmOneRunsWhenNoFixedAlpha) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(300, 100 * kMB, 1.05, 8.0);
  Rng rng(2);
  sp.place(cat, uniform_bw(30), rng);
  EXPECT_GT(sp.alpha(), 0.0);
  ASSERT_TRUE(sp.search_result().has_value());
  EXPECT_GE(sp.search_result()->iterations, 1u);
}

TEST(SpCache, PartitioningIsSelectiveInLoad) {
  // The Fig. 11 property: partition granularity follows the load ranking —
  // the hottest files are split the finest, and counts decay monotonically
  // toward the cold tail. (The absolute split fraction depends on the
  // network cost model; see EXPERIMENTS.md for the calibration note.)
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  Rng rng(3);
  sp.place(cat, uniform_bw(30), rng);
  const auto& k = sp.partition_counts();
  for (std::size_t i = 1; i < k.size(); ++i) {
    EXPECT_LE(k[i], k[i - 1]) << "partition counts must decay with rank";
  }
  EXPECT_GT(k[0], k[99]);
  EXPECT_GE(k[0], 2u * k[99]);  // the head is split markedly finer
}

TEST(SpCache, PartitionsOnDistinctServers) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.05, 10.0);
  Rng rng(4);
  sp.place(cat, uniform_bw(30), rng);
  for (const auto& p : sp.placements()) {
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), p.servers.size());
    for (std::uint32_t s : p.servers) EXPECT_LT(s, 30u);
  }
}

TEST(SpCache, PieceSizesSumToFileSize) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(50, 100 * kMB + 7, 1.05, 10.0);
  Rng rng(5);
  sp.place(cat, uniform_bw(30), rng);
  for (const auto& p : sp.placements()) {
    Bytes total = 0;
    Bytes mx = 0, mn = ~Bytes{0};
    for (Bytes b : p.piece_bytes) {
      total += b;
      mx = std::max(mx, b);
      mn = std::min(mn, b);
    }
    EXPECT_EQ(total, 100 * kMB + 7);
    EXPECT_LE(mx - mn, 1u);  // near-equal split
  }
}

TEST(SpCache, RedundancyFree) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  Rng rng(6);
  sp.place(cat, uniform_bw(30), rng);
  EXPECT_NEAR(sp.memory_overhead(cat), 0.0, 1e-9);
  EXPECT_EQ(sp.total_footprint(), cat.total_bytes());
}

TEST(SpCache, ReadPlanForksToAllPartitionsNoDecode) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  Rng rng(7);
  sp.place(cat, uniform_bw(30), rng);
  for (FileId f : {FileId{0}, FileId{50}, FileId{99}}) {
    const auto plan = sp.plan_read(f, rng);
    EXPECT_EQ(plan.fetches.size(), sp.partition_counts()[f]);
    EXPECT_EQ(plan.needed, plan.fetches.size());
    EXPECT_DOUBLE_EQ(plan.post_process, 0.0);
  }
}

TEST(SpCache, WritePlanMatchesPlacement) {
  SpCacheScheme sp;
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  Rng rng(8);
  sp.place(cat, uniform_bw(30), rng);
  const auto plan = sp.plan_write(0, rng);
  const auto& p = sp.placement(0);
  ASSERT_EQ(plan.stores.size(), p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    EXPECT_EQ(plan.stores[i].server, p.servers[i]);
    EXPECT_EQ(plan.stores[i].bytes, p.piece_bytes[i]);
  }
  EXPECT_DOUBLE_EQ(plan.pre_process, 0.0);  // no encode step
}

TEST(SpCache, InitialWriteIsUnsplit) {
  SpCacheScheme sp;
  Rng rng(9);
  const auto plan = sp.plan_initial_write(100 * kMB, 30, rng);
  ASSERT_EQ(plan.stores.size(), 1u);
  EXPECT_EQ(plan.stores[0].bytes, 100 * kMB);
  EXPECT_LT(plan.stores[0].server, 30u);
}

TEST(SpCache, HottestFileWellSplitAtAnyLoad) {
  // Algorithm 1 starts at alpha^1 = (N/3)/L_max and only inflates, so the
  // hottest file is always split at least N/3 ways.
  const auto bw = uniform_bw(30);
  for (double rate : {6.0, 22.0}) {
    auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, rate);
    SpCacheScheme sp;
    Rng rng(10);
    sp.place(cat, bw, rng);
    EXPECT_GE(sp.partition_counts()[0], 10u) << "rate " << rate;
  }
}

TEST(SpCache, UniformLoadPerPartition) {
  // Section 5.1: L_i / k_i ~ 1/alpha across all split files.
  SpCacheConfig cfg;
  SpCacheScheme sp(cfg);
  const auto cat = make_uniform_catalog(200, 100 * kMB, 1.1, 10.0);
  Rng rng(11);
  sp.place(cat, uniform_bw(30), rng);
  const double alpha = sp.alpha();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto k = sp.partition_counts()[i];
    if (k > 1 && k < 30) {  // not clamped
      const double per_partition = cat.load(static_cast<FileId>(i)) / static_cast<double>(k);
      // ceil(alpha L) partitions => per-partition load in (1/alpha * k/(k+1), 1/alpha].
      EXPECT_LE(per_partition, 1.0 / alpha + 1e-9);
      EXPECT_GT(per_partition, 1.0 / alpha * 0.5);
    }
  }
}


TEST(SpCache, WeightedPlacementSizesPiecesByBandwidth) {
  // Heterogeneous extension: pieces on fast servers are proportionally
  // larger, so every piece transfers in the same time.
  SpCacheConfig cfg;
  cfg.fixed_alpha = 1e-4;  // split everything widely
  cfg.bandwidth_weighted_placement = true;
  SpCacheScheme sp(cfg);
  std::vector<Bandwidth> bw(30);
  for (std::size_t s = 0; s < 30; ++s) bw[s] = s < 15 ? gbps(1.0) : mbps(500);
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 10.0);
  Rng rng(21);
  sp.place(cat, bw, rng);
  for (const auto& p : sp.placements()) {
    Bytes total = 0;
    double max_transfer = 0.0, min_transfer = 1e18;
    for (std::size_t i = 0; i < p.servers.size(); ++i) {
      total += p.piece_bytes[i];
      const double t = static_cast<double>(p.piece_bytes[i]) / bw[p.servers[i]];
      max_transfer = std::max(max_transfer, t);
      min_transfer = std::min(min_transfer, t);
    }
    EXPECT_EQ(total, 100 * kMB);  // exact byte conservation
    if (p.servers.size() > 1) {
      // Equal transfer times up to rounding.
      EXPECT_LT((max_transfer - min_transfer) / max_transfer, 0.01);
    }
  }
}

TEST(SpCache, WeightedPlacementFavorsFastServers) {
  SpCacheConfig cfg;
  cfg.fixed_alpha = 2e-6;  // moderate splitting so choice matters
  cfg.bandwidth_weighted_placement = true;
  SpCacheScheme sp(cfg);
  std::vector<Bandwidth> bw(30);
  for (std::size_t s = 0; s < 30; ++s) bw[s] = s < 15 ? gbps(1.0) : mbps(500);
  const auto cat = make_uniform_catalog(400, 100 * kMB, 1.05, 10.0);
  Rng rng(22);
  sp.place(cat, bw, rng);
  double fast_bytes = 0.0, slow_bytes = 0.0;
  for (const auto& p : sp.placements()) {
    for (std::size_t i = 0; i < p.servers.size(); ++i) {
      (p.servers[i] < 15 ? fast_bytes : slow_bytes) += static_cast<double>(p.piece_bytes[i]);
    }
  }
  // Fast half should hold close to 2x the bytes of the slow half.
  EXPECT_GT(fast_bytes / slow_bytes, 1.5);
}

}  // namespace
}  // namespace spcache
