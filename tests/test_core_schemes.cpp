// Baseline caching-scheme tests: placement invariants, plan structure,
// memory-overhead accounting for EC-Cache, selective replication, fixed
// chunking, and simple partition.
#include <gtest/gtest.h>

#include <set>

#include "core/ec_cache.h"
#include "core/fixed_chunking.h"
#include "core/selective_replication.h"
#include "core/simple_partition.h"

namespace spcache {
namespace {

std::vector<Bandwidth> uniform_bw(std::size_t n) { return std::vector<Bandwidth>(n, gbps(1.0)); }

// ---------------------------------------------------------------- EC-Cache

TEST(EcCache, PlacementHasNDistinctServers) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  Rng rng(1);
  ec.place(cat, uniform_bw(30), rng);
  for (const auto& p : ec.placements()) {
    EXPECT_EQ(p.servers.size(), 14u);
    EXPECT_EQ(p.data_pieces, 10u);
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), 14u);
  }
}

TEST(EcCache, MemoryOverheadIsFortyPercent) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.05, 8.0);
  Rng rng(2);
  ec.place(cat, uniform_bw(30), rng);
  EXPECT_NEAR(ec.memory_overhead(cat), 0.4, 0.001);
  EXPECT_NEAR(ec.code_overhead(), 0.4, 1e-12);
}

TEST(EcCache, ReadPlanIsLateBinding) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(10, 100 * kMB, 1.05, 8.0);
  Rng rng(3);
  ec.place(cat, uniform_bw(30), rng);
  const auto plan = ec.plan_read(0, rng);
  EXPECT_EQ(plan.fetches.size(), 11u);  // k + 1
  EXPECT_EQ(plan.needed, 10u);          // join on k
  EXPECT_GT(plan.post_process, 0.0);    // decode cost
  // All fetched servers belong to the file's placement.
  const auto& p = ec.placement(0);
  const std::set<std::uint32_t> placed(p.servers.begin(), p.servers.end());
  for (const auto& f : plan.fetches) EXPECT_TRUE(placed.count(f.server));
}

TEST(EcCache, LateBindingSamplesVary) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(1, 100 * kMB, 1.0, 1.0);
  Rng rng(4);
  ec.place(cat, uniform_bw(30), rng);
  std::set<std::uint32_t> seen;
  for (int t = 0; t < 50; ++t) {
    for (const auto& f : ec.plan_read(0, rng).fetches) seen.insert(f.server);
  }
  // Over 50 draws of 11-of-14 we should see all 14 shard servers.
  EXPECT_EQ(seen.size(), 14u);
}

TEST(EcCache, DecodeCostGrowsWithFileSize) {
  EcCacheScheme ec;
  std::vector<FileInfo> files(2);
  files[0].size = 10 * kMB;
  files[0].request_rate = 1.0;
  files[1].size = 200 * kMB;
  files[1].request_rate = 1.0;
  const Catalog cat(std::move(files));
  Rng rng(5);
  ec.place(cat, uniform_bw(30), rng);
  EXPECT_LT(ec.plan_read(0, rng).post_process, ec.plan_read(1, rng).post_process);
}

TEST(EcCache, WritePlanStoresAllShardsWithEncodeCost) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(5, 100 * kMB, 1.0, 1.0);
  Rng rng(6);
  ec.place(cat, uniform_bw(30), rng);
  const auto plan = ec.plan_write(0, rng);
  EXPECT_EQ(plan.stores.size(), 14u);
  EXPECT_GT(plan.pre_process, 0.0);
}

TEST(EcCache, RejectsTooFewServers) {
  EcCacheScheme ec;
  const auto cat = make_uniform_catalog(5, 100 * kMB, 1.0, 1.0);
  Rng rng(7);
  EXPECT_THROW(ec.place(cat, uniform_bw(10), rng), std::invalid_argument);
}

TEST(EcCache, InvalidConfigThrows) {
  EXPECT_THROW(EcCacheScheme(EcCacheConfig{0, 4, {}, 1}), std::invalid_argument);
  EXPECT_THROW(EcCacheScheme(EcCacheConfig{5, 4, {}, 1}), std::invalid_argument);
}

// ------------------------------------------------- Selective replication

TEST(SelectiveReplication, TopFilesGetReplicas) {
  SelectiveReplicationScheme sr;  // top 10% x4
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.1, 8.0);
  Rng rng(8);
  sr.place(cat, uniform_bw(30), rng);
  // Files 0..9 carry the highest loads (uniform sizes, Zipf rates).
  for (FileId f = 0; f < 10; ++f) EXPECT_EQ(sr.replica_count(f), 4u);
  for (FileId f = 10; f < 100; ++f) EXPECT_EQ(sr.replica_count(f), 1u);
}

TEST(SelectiveReplication, ReplicasOnDistinctServers) {
  SelectiveReplicationScheme sr;
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.1, 8.0);
  Rng rng(9);
  sr.place(cat, uniform_bw(30), rng);
  for (const auto& p : sr.placements()) {
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), p.servers.size());
    for (Bytes b : p.piece_bytes) EXPECT_EQ(b, 100 * kMB);  // full copies
  }
}

TEST(SelectiveReplication, MemoryOverheadMatchesConfig) {
  // Equal sizes: overhead = top_fraction * (replicas - 1) = 0.1 * 3 = 30%.
  SelectiveReplicationScheme sr;
  const auto cat = make_uniform_catalog(100, 100 * kMB, 1.1, 8.0);
  Rng rng(10);
  sr.place(cat, uniform_bw(30), rng);
  EXPECT_NEAR(sr.memory_overhead(cat), 0.3, 0.001);
}

TEST(SelectiveReplication, ReadPicksSingleReplica) {
  SelectiveReplicationScheme sr;
  const auto cat = make_uniform_catalog(20, 100 * kMB, 1.1, 8.0);
  Rng rng(11);
  sr.place(cat, uniform_bw(30), rng);
  std::set<std::uint32_t> seen;
  for (int t = 0; t < 100; ++t) {
    const auto plan = sr.plan_read(0, rng);
    ASSERT_EQ(plan.fetches.size(), 1u);
    EXPECT_EQ(plan.needed, 1u);
    EXPECT_DOUBLE_EQ(plan.post_process, 0.0);
    seen.insert(plan.fetches[0].server);
  }
  EXPECT_EQ(seen.size(), 4u);  // load spread over all 4 replicas
}

TEST(SelectiveReplication, WriteStoresAllReplicas) {
  SelectiveReplicationScheme sr;
  const auto cat = make_uniform_catalog(20, 100 * kMB, 1.1, 8.0);
  Rng rng(12);
  sr.place(cat, uniform_bw(30), rng);
  EXPECT_EQ(sr.plan_write(0, rng).stores.size(), 4u);
  EXPECT_EQ(sr.plan_write(19, rng).stores.size(), 1u);
}

TEST(SelectiveReplication, RanksBySizeTimesPopularity) {
  // A huge lukewarm file can out-load a hot small one; ranking is by L_i.
  std::vector<FileInfo> files(10);
  for (std::size_t i = 0; i < 10; ++i) {
    files[i].size = 10 * kMB;
    files[i].request_rate = 1.0;
  }
  files[7].size = 10 * kGB;  // dominates load despite average popularity
  const Catalog cat(std::move(files));
  SelectiveReplicationScheme sr({0.1, 4});
  Rng rng(13);
  sr.place(cat, uniform_bw(30), rng);
  EXPECT_EQ(sr.replica_count(7), 4u);
}

// ------------------------------------------------------- Fixed chunking

TEST(FixedChunking, ChunkCountCeilsSize) {
  FixedChunkingScheme fc({8 * kMB});
  std::vector<FileInfo> files(3);
  files[0].size = 8 * kMB;       // 1 chunk
  files[1].size = 8 * kMB + 1;   // 2 chunks
  files[2].size = 100 * kMB;     // 13 chunks
  for (auto& f : files) f.request_rate = 1.0;
  const Catalog cat(std::move(files));
  Rng rng(14);
  fc.place(cat, uniform_bw(30), rng);
  EXPECT_EQ(fc.placement(0).servers.size(), 1u);
  EXPECT_EQ(fc.placement(1).servers.size(), 2u);
  EXPECT_EQ(fc.placement(2).servers.size(), 13u);
}

TEST(FixedChunking, ChunkSizesSumToFile) {
  FixedChunkingScheme fc({8 * kMB});
  const auto cat = make_uniform_catalog(20, 100 * kMB, 1.05, 8.0);
  Rng rng(15);
  fc.place(cat, uniform_bw(30), rng);
  for (const auto& p : fc.placements()) {
    Bytes total = 0;
    for (Bytes b : p.piece_bytes) {
      EXPECT_LE(b, 8 * kMB);
      total += b;
    }
    EXPECT_EQ(total, 100 * kMB);
  }
}

TEST(FixedChunking, NoRedundancy) {
  FixedChunkingScheme fc({4 * kMB});
  const auto cat = make_uniform_catalog(20, 100 * kMB, 1.05, 8.0);
  Rng rng(16);
  fc.place(cat, uniform_bw(30), rng);
  EXPECT_NEAR(fc.memory_overhead(cat), 0.0, 1e-9);
}

TEST(FixedChunking, WrapsWhenChunksExceedServers) {
  FixedChunkingScheme fc({kMB});
  std::vector<FileInfo> files(1);
  files[0].size = 50 * kMB;  // 50 chunks > 30 servers
  files[0].request_rate = 1.0;
  const Catalog cat(std::move(files));
  Rng rng(17);
  fc.place(cat, uniform_bw(30), rng);
  const auto& p = fc.placement(0);
  EXPECT_EQ(p.servers.size(), 50u);
  const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
  EXPECT_EQ(distinct.size(), 30u);  // all servers used, some twice
}

TEST(FixedChunking, NameEncodesChunkSize) {
  EXPECT_EQ(FixedChunkingScheme({4 * kMB}).name(), "Fixed chunking (4 MB)");
}

// ----------------------------------------------------- Simple partition

TEST(SimplePartition, UniformPartitionCount) {
  SimplePartitionScheme sp(9);
  const auto cat = make_uniform_catalog(20, 40 * kMB, 1.1, 10.0);
  Rng rng(18);
  sp.place(cat, uniform_bw(30), rng);
  for (const auto& p : sp.placements()) {
    EXPECT_EQ(p.servers.size(), 9u);
    const std::set<std::uint32_t> distinct(p.servers.begin(), p.servers.end());
    EXPECT_EQ(distinct.size(), 9u);
    Bytes total = 0;
    for (Bytes b : p.piece_bytes) total += b;
    EXPECT_EQ(total, 40 * kMB);
  }
}

TEST(SimplePartition, ReadJoinsOnAll) {
  SimplePartitionScheme sp(5);
  const auto cat = make_uniform_catalog(5, 40 * kMB, 1.1, 10.0);
  Rng rng(19);
  sp.place(cat, uniform_bw(30), rng);
  const auto plan = sp.plan_read(2, rng);
  EXPECT_EQ(plan.fetches.size(), 5u);
  EXPECT_EQ(plan.needed, 5u);
  EXPECT_DOUBLE_EQ(plan.post_process, 0.0);
}

TEST(StockScheme, SinglePieceNoSplit) {
  StockScheme stock;
  const auto cat = make_uniform_catalog(10, 40 * kMB, 1.1, 10.0);
  Rng rng(20);
  stock.place(cat, uniform_bw(30), rng);
  for (const auto& p : stock.placements()) {
    EXPECT_EQ(p.servers.size(), 1u);
    EXPECT_EQ(p.piece_bytes[0], 40 * kMB);
  }
  EXPECT_EQ(stock.name(), "Stock (no partition)");
  EXPECT_NEAR(stock.memory_overhead(cat), 0.0, 1e-9);
}

}  // namespace
}  // namespace spcache
