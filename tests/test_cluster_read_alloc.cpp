// Steady-state allocation audit for SpClient::read(id, scratch).
//
// The data-plane contract (DESIGN.md "Data plane kernels"): after one
// warming read, a cached-layout read of a same-or-smaller file performs
// ZERO heap allocations — the reassembly buffer, layout copy, arena spans,
// and CRC combine operators all live in the caller's ReadScratch. This
// test replaces the global operator new to count every allocation on every
// thread (pool workers included) and pins that count across a run of warm
// reads. It also pins Arena::fallback_allocs() == 0: nothing spilled past
// the scratch arena.
//
// Under ASan/TSan the sanitizer runtime owns the allocator and its
// interceptors allocate internally, so the strict zero-alloc assertion is
// relaxed there; the functional roundtrip and the arena invariant still run.
#include "cluster/client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <new>
#include <vector>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

// Replacement global allocation functions (must live at global scope).
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace spcache {
namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kStrictAllocCheck = false;
#else
constexpr bool kStrictAllocCheck = true;
#endif

std::vector<std::uint8_t> pattern_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + (i >> 8));
  }
  return v;
}

TEST(ReadAlloc, SteadyStateCachedReadIsAllocationFree) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  ClientCacheConfig cache;
  // Keep the access accumulator from draining mid-measurement (a drain
  // builds the batch vector; it is amortized, not per-read).
  cache.report_flush_threshold = std::size_t{1} << 30;
  SpClient client(cluster, master, pool, /*stable=*/nullptr, fault::RetryPolicy{},
                  GoodputModel{}, cache);

  const auto data = pattern_bytes(256 * kKB + 7);
  client.write(42, data, {0, 1, 2, 3});

  // Warm: sizes the reassembly buffer, layout vectors, arena, combiner
  // cache, and the accumulator's node for file 42.
  ReadScratch scratch;
  for (int i = 0; i < 3; ++i) {
    const IoResult& r = client.read(42, scratch);
    ASSERT_EQ(r.bytes, data);
    ASSERT_TRUE(r.layout_cached);  // write-through layout cache serves pass 1
    ASSERT_FALSE(r.degraded);
  }
  ASSERT_EQ(scratch.arena.fallback_allocs(), 0u);

  // Measure: no gtest assertions inside the window (their failure paths
  // allocate; keep even the success paths out of the count).
  constexpr int kReads = 50;
  bool all_ok = true;
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kReads; ++i) {
    const IoResult& r = client.read(42, scratch);
    all_ok = all_ok && r.bytes == data && r.layout_cached && !r.degraded;
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(scratch.arena.fallback_allocs(), 0u)
      << "a read spilled past its 16 KiB arena to the heap";
  if (kStrictAllocCheck) {
    EXPECT_EQ(after - before, 0u)
        << "steady-state cached-layout reads must not touch the heap ("
        << (after - before) << " allocations across " << kReads << " reads)";
  }
}

TEST(ReadAlloc, ScratchReuseAcrossFilesReusesCapacity) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(2);
  ClientCacheConfig cache;
  cache.report_flush_threshold = std::size_t{1} << 30;
  SpClient client(cluster, master, pool, /*stable=*/nullptr, fault::RetryPolicy{},
                  GoodputModel{}, cache);

  // Largest file first: every later (smaller, fewer-piece) read fits the
  // warmed buffers.
  const auto big = pattern_bytes(128 * kKB);
  const auto mid = pattern_bytes(64 * kKB + 3);
  const auto small = pattern_bytes(9 * kKB + 1);
  client.write(1, big, {0, 1, 2, 3, 4});
  client.write(2, mid, {5, 6, 7});
  client.write(3, small, {2});

  ReadScratch scratch;
  ASSERT_EQ(client.read(1, scratch).bytes, big);
  ASSERT_EQ(client.read(2, scratch).bytes, mid);
  ASSERT_EQ(client.read(3, scratch).bytes, small);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  bool all_ok = true;
  for (int i = 0; i < 10; ++i) {
    all_ok = all_ok && client.read(3, scratch).bytes == small;
    all_ok = all_ok && client.read(2, scratch).bytes == mid;
    all_ok = all_ok && client.read(1, scratch).bytes == big;
  }
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  EXPECT_TRUE(all_ok);
  EXPECT_EQ(scratch.arena.fallback_allocs(), 0u);
  if (kStrictAllocCheck) {
    EXPECT_EQ(after - before, 0u)
        << "cycling warmed files through one scratch must not allocate";
  }
}

}  // namespace
}  // namespace spcache
