// ClusterObserver aggregation: hand-computed registry state must come back
// out as the paper's headline statistics (Eq. 15 imbalance, latency
// percentiles, hit ratio), and an end-to-end run on the threaded cluster
// must reconcile with the client's own accounting.
#include "obs/cluster_observer.h"

#include <gtest/gtest.h>

#include <string>

#include "cluster/client.h"
#include "core/sp_cache.h"
#include "obs/metrics.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

TEST(ClusterObserver, AggregatesHandComputedRegistryState) {
  obs::MetricsRegistry registry;
  registry.counter(obs::names::kClientReads).add(10);
  registry.counter(obs::names::kClientRetries).add(5);
  registry.counter(obs::names::kClientDegradedReads).add(2);
  registry.counter(obs::names::kClientDegradedPieces).add(3);
  auto& hist = registry.histogram(obs::names::kClientReadLatency);
  for (int i = 0; i < 90; ++i) hist.record(1e-3);
  for (int i = 0; i < 10; ++i) hist.record(1e-2);
  // Two servers: 20 attempts total, 4 misses, 1 error -> 15/20 hits.
  registry.counter(obs::names::server_metric(0, obs::names::kServerGets)).add(8);
  registry.counter(obs::names::server_metric(0, obs::names::kServerMisses)).add(4);
  registry.counter(obs::names::server_metric(1, obs::names::kServerGets)).add(12);
  registry.counter(obs::names::server_metric(1, obs::names::kServerErrors)).add(1);

  obs::ClusterObserver observer(registry);
  const auto stats = observer.collect({100.0, 200.0, 300.0, 400.0});

  EXPECT_DOUBLE_EQ(stats.load_max, 400.0);
  EXPECT_DOUBLE_EQ(stats.load_mean, 250.0);
  EXPECT_DOUBLE_EQ(stats.load_imbalance, 1.6);
  EXPECT_DOUBLE_EQ(stats.load_eta, 0.6);  // Eq. 15: (max - mean)/mean

  EXPECT_EQ(stats.reads, 10u);
  EXPECT_EQ(stats.retries, 5u);
  EXPECT_EQ(stats.degraded_reads, 2u);
  EXPECT_EQ(stats.degraded_pieces, 3u);
  EXPECT_DOUBLE_EQ(stats.retry_rate, 0.5);
  EXPECT_DOUBLE_EQ(stats.degraded_read_rate, 0.2);

  // 90% of reads at ~1 ms, 10% at ~10 ms: p50 sits in the 1 ms bucket,
  // p95/p99 in the 10 ms bucket.
  EXPECT_EQ(stats.read_latency.total, 100u);
  EXPECT_GT(stats.read_p50_s, 5e-4);
  EXPECT_LT(stats.read_p50_s, 2e-3);
  EXPECT_GT(stats.read_p95_s, 5e-3);
  EXPECT_LT(stats.read_p99_s, 2e-2);
  EXPECT_GE(stats.read_p99_s, stats.read_p95_s);
  EXPECT_GE(stats.read_p95_s, stats.read_p50_s);

  EXPECT_DOUBLE_EQ(stats.hit_ratio, 15.0 / 20.0);
}

TEST(ClusterObserver, EmptyRegistryYieldsZeroedStats) {
  obs::MetricsRegistry registry;
  obs::ClusterObserver observer(registry);
  const auto stats = observer.collect({});
  EXPECT_EQ(stats.reads, 0u);
  EXPECT_DOUBLE_EQ(stats.load_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(stats.read_p99_s, 0.0);
}

TEST(ClusterObserver, JsonCarriesTheDashboard) {
  obs::MetricsRegistry registry;
  registry.counter(obs::names::kClientReads).add(4);
  registry.histogram(obs::names::kClientReadLatency).record(2e-3);
  obs::ClusterObserver observer(registry);
  const std::string json = observer.to_json({10.0, 30.0});
  for (const char* key : {"\"load\"", "\"max\"", "\"mean\"", "\"eta\"", "\"per_server\"",
                          "\"read_latency_s\"", "\"p50\"", "\"p95\"", "\"p99\"",
                          "\"hit_ratio\"", "\"retry_rate\"", "\"degraded_pieces\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

TEST(ClusterObserver, EndToEndReconcilesWithClientAccounting) {
  Cluster cluster(8, gbps(1.0));
  Master master;
  ThreadPool pool(2);
  Rng rng(91);
  obs::MetricsRegistry registry;

  constexpr std::size_t kFiles = 12;
  constexpr Bytes kFileSize = 32 * kKB;
  auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
  SpCacheScheme sp;
  sp.place(catalog, cluster.bandwidths(), rng);
  SpClient client(cluster, master, pool);
  for (FileId f = 0; f < kFiles; ++f) {
    client.write(f, pattern_bytes(kFileSize, f), sp.placement(f).servers);
  }

  cluster.attach_observability(&registry);
  client.attach_observability(&registry);
  cluster.reset_load_counters();

  constexpr std::size_t kReads = 60;
  for (std::size_t i = 0; i < kReads; ++i) (void)client.read(i % kFiles);

  obs::ClusterObserver observer(registry);
  const auto stats = observer.collect(cluster.served_bytes());

  EXPECT_EQ(stats.reads, kReads);
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_EQ(stats.degraded_reads, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio, 1.0);  // healthy cluster: every GET hits
  EXPECT_EQ(stats.read_latency.total, kReads);
  EXPECT_GT(stats.read_p50_s, 0.0);
  EXPECT_GE(stats.load_imbalance, 1.0);
  EXPECT_NEAR(stats.load_eta, stats.load_imbalance - 1.0, 1e-12);
  // All bytes served are accounted: total load == reads * file size.
  double total = 0.0;
  for (const double l : stats.server_loads) total += l;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kReads * kFileSize));
}

}  // namespace
}  // namespace spcache
