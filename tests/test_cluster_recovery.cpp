// Stable-store checkpointing and failure recovery tests (Section 8
// "Fault Tolerance" extension).
#include "cluster/stable_store.h"

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "core/sp_cache.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void populate(std::size_t n_files, Bytes size) {
    catalog_ = make_uniform_catalog(n_files, size, 1.05, 10.0);
    SpCacheScheme sp;
    sp.place(catalog_, cluster_.bandwidths(), rng_);
    SpClient client(cluster_, master_, pool_);
    originals_.resize(n_files);
    for (FileId f = 0; f < n_files; ++f) {
      originals_[f] = random_bytes(size, rng_);
      client.write(f, originals_[f], sp.placement(f).servers);
      stable_.checkpoint(f, originals_[f]);  // Alluxio-style checkpoint
    }
  }

  Cluster cluster_{30, gbps(1.0)};
  Master master_;
  ThreadPool pool_{4};
  StableStore stable_;
  Rng rng_{77};
  Catalog catalog_;
  std::vector<std::vector<std::uint8_t>> originals_;
};

TEST_F(RecoveryTest, StableStoreRoundtrip) {
  Rng rng(1);
  const auto data = random_bytes(123456, rng);
  StableStore store;
  EXPECT_FALSE(store.contains(9));
  store.checkpoint(9, data);
  EXPECT_TRUE(store.contains(9));
  EXPECT_EQ(*store.restore(9), data);
  EXPECT_EQ(store.file_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), data.size());
  EXPECT_FALSE(store.restore(10).has_value());
}

TEST_F(RecoveryTest, RepairSingleLostPiece) {
  populate(10, 200 * kKB);
  RecoveryManager recovery(cluster_, master_, stable_);
  const auto meta = master_.peek(0);
  ASSERT_GE(meta->partitions(), 2u);
  // Lose one piece.
  cluster_.server(meta->servers[1]).erase(BlockKey{0, 1});
  SpClient client(cluster_, master_, pool_);
  EXPECT_THROW(client.read(0), std::runtime_error);

  const auto stats = recovery.repair_file(0);
  EXPECT_EQ(stats.pieces_recovered, 1u);
  EXPECT_EQ(stats.bytes_restored, 200 * kKB);
  EXPECT_GT(stats.modelled_time, 0.0);
  EXPECT_EQ(client.read(0).bytes, originals_[0]);
}

TEST_F(RecoveryTest, RepairIsIdempotent) {
  populate(5, 100 * kKB);
  RecoveryManager recovery(cluster_, master_, stable_);
  const auto stats = recovery.repair_file(2);  // nothing missing
  EXPECT_EQ(stats.pieces_recovered, 0u);
  EXPECT_EQ(stats.bytes_restored, 0u);
}

TEST_F(RecoveryTest, RepairUncheckpointedFileThrows) {
  populate(3, 100 * kKB);
  StableStore empty;
  RecoveryManager recovery(cluster_, master_, empty);
  const auto meta = master_.peek(0);
  cluster_.server(meta->servers[0]).erase(BlockKey{0, 0});
  EXPECT_THROW(recovery.repair_file(0), std::runtime_error);
}

TEST_F(RecoveryTest, WholeServerLossRecovered) {
  populate(20, 150 * kKB);
  RecoveryManager recovery(cluster_, master_, stable_);

  // Crash server 5: all its blocks vanish.
  const std::uint32_t failed = 5;
  cluster_.server(failed).clear();
  const auto stats = recovery.repair_after_server_loss(failed);
  EXPECT_GT(stats.pieces_recovered, 0u);

  // Every file is readable and bit-exact; nothing lives on the dead server.
  SpClient client(cluster_, master_, pool_);
  for (FileId f = 0; f < 20; ++f) {
    EXPECT_EQ(client.read(f).bytes, originals_[f]) << "file " << f;
    const auto meta = master_.peek(f);
    for (std::uint32_t s : meta->servers) EXPECT_NE(s, failed);
  }
  EXPECT_EQ(cluster_.server(failed).blocks_stored(), 0u);
}

TEST_F(RecoveryTest, ServerLossReplacementsSpread) {
  populate(30, 100 * kKB);
  RecoveryManager recovery(cluster_, master_, stable_);
  cluster_.server(0).clear();
  recovery.repair_after_server_loss(0);
  // The re-placed pieces should not all pile onto one replacement server.
  std::vector<std::size_t> pieces(cluster_.size(), 0);
  for (FileId f = 0; f < 30; ++f) {
    const auto meta = master_.peek(f);
    for (std::uint32_t s : meta->servers) ++pieces[s];
  }
  std::size_t mx = 0, total = 0;
  for (std::size_t s = 1; s < cluster_.size(); ++s) {
    mx = std::max(mx, pieces[s]);
    total += pieces[s];
  }
  const double avg = static_cast<double>(total) / static_cast<double>(cluster_.size() - 1);
  // Discreteness dominates with ~2 pieces/server; allow a small absolute
  // slack over the average rather than a tight multiplicative bound.
  EXPECT_LE(static_cast<double>(mx), avg + 4.0);
}

TEST_F(RecoveryTest, RecoveryTimeScalesWithBackingBandwidth) {
  populate(5, 500 * kKB);
  StableStore slow(mbps(100));
  StableStore fast(mbps(1000));
  for (FileId f = 0; f < 5; ++f) {
    slow.checkpoint(f, originals_[f]);
    fast.checkpoint(f, originals_[f]);
  }
  const auto meta = master_.peek(1);
  cluster_.server(meta->servers[0]).erase(BlockKey{1, 0});
  RecoveryManager slow_rec(cluster_, master_, slow);
  const auto s1 = slow_rec.repair_file(1);
  // Re-erase and repair with the fast store.
  cluster_.server(meta->servers[0]).erase(BlockKey{1, 0});
  RecoveryManager fast_rec(cluster_, master_, fast);
  const auto s2 = fast_rec.repair_file(1);
  EXPECT_GT(s1.modelled_time, s2.modelled_time);
}

}  // namespace
}  // namespace spcache
