// Scenario driver: replay determinism and the adversarial invariants.
//
// The suite pins the properties check.sh's scenario stage depends on:
// same seed + script replays to an identical trace (TraceEvent::same_shape
// over the full ring) and identical per-phase reports; the flash-crowd
// script makes the adaptive controller raise the hot file's partition
// count within the phase; the frozen arm never touches the layout; and
// every scripted scenario completes all reads bit-exactly.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/driver.h"
#include "scenario/script.h"

namespace spcache::scenario {
namespace {

// Shrink a script for unit-test runtimes (the bench runs the full sizes).
ScenarioScript shrink(ScenarioScript script, std::size_t requests_per_phase) {
  for (auto& phase : script.phases) {
    phase.requests = requests_per_phase;
    if (phase.kill_hot_holders) {
      phase.kill_at = requests_per_phase / 8;
      phase.repair_at = requests_per_phase / 2;
    }
  }
  return script;
}

ScenarioDriverConfig test_config(bool adaptive) {
  ScenarioDriverConfig config;
  config.n_servers = 8;
  config.threads = 1;  // deterministic trace ordering
  config.adaptive = adaptive;
  return config;
}

TEST(ScenarioDriver, ReplayDeterminism) {
  const auto script = shrink(make_flash_crowd_scenario(), 160);

  obs::TraceRecorder trace_a, trace_b;
  ScenarioDriver driver_a(script, test_config(true));
  ScenarioDriver driver_b(script, test_config(true));
  const auto report_a = driver_a.run(nullptr, &trace_a);
  const auto report_b = driver_b.run(nullptr, &trace_b);

  ASSERT_EQ(report_a.phases.size(), report_b.phases.size());
  for (std::size_t p = 0; p < report_a.phases.size(); ++p) {
    const auto& a = report_a.phases[p];
    const auto& b = report_b.phases[p];
    EXPECT_EQ(a.requests, b.requests) << "phase " << p;
    EXPECT_EQ(a.failures, b.failures) << "phase " << p;
    EXPECT_EQ(a.splits, b.splits) << "phase " << p;
    EXPECT_EQ(a.merges, b.merges) << "phase " << p;
    EXPECT_EQ(a.adaptations, b.adaptations) << "phase " << p;
    EXPECT_DOUBLE_EQ(a.eta, b.eta) << "phase " << p;
    EXPECT_DOUBLE_EQ(a.alpha_end, b.alpha_end) << "phase " << p;
    EXPECT_EQ(a.hot_partitions_end, b.hot_partitions_end) << "phase " << p;
  }

  const auto events_a = trace_a.snapshot();
  const auto events_b = trace_b.snapshot();
  ASSERT_EQ(events_a.size(), events_b.size());
  for (std::size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_TRUE(events_a[i].same_shape(events_b[i])) << "event " << i;
  }
  EXPECT_EQ(trace_a.recorded(), trace_b.recorded());
}

TEST(ScenarioDriver, FlashCrowdRaisesHotFilePartitionCount) {
  const auto script = shrink(make_flash_crowd_scenario(), 250);
  ScenarioDriver driver(script, test_config(true));
  obs::MetricsRegistry registry;
  const auto report = driver.run(&registry, nullptr);

  ASSERT_EQ(report.phases.size(), 3u);
  const auto& flash = report.phases[1];
  EXPECT_EQ(flash.name, "flash");
  // The viral file started cold (few partitions); the controller must
  // split it within the phase.
  EXPECT_GT(flash.hot_partitions_end, flash.hot_partitions_start);
  EXPECT_GT(flash.splits, 0u);
  EXPECT_GT(flash.triggers, 0u);
  EXPECT_EQ(report.total_failures(), 0u);
  EXPECT_EQ(report.total_mismatches(), 0u);

  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter_value(obs::names::kControllerTriggers), 0u);
  EXPECT_GT(snap.counter_value(obs::names::kControllerAdaptations), 0u);
}

TEST(ScenarioDriver, FrozenModeNeverAdjustsTheLayout) {
  const auto script = shrink(make_flash_crowd_scenario(), 160);
  ScenarioDriver driver(script, test_config(false));
  const auto report = driver.run(nullptr, nullptr);

  for (const auto& phase : report.phases) {
    EXPECT_EQ(phase.splits, 0u);
    EXPECT_EQ(phase.merges, 0u);
    EXPECT_EQ(phase.adaptations, 0u);
    EXPECT_EQ(phase.triggers, 0u);
    EXPECT_DOUBLE_EQ(phase.alpha_end, report.initial_alpha);
    EXPECT_EQ(phase.hot_partitions_end, phase.hot_partitions_start);
  }
  EXPECT_EQ(report.total_failures(), 0u);
  EXPECT_EQ(report.total_mismatches(), 0u);
}

TEST(ScenarioDriver, CorrelatedFailurePhaseDegradesButStaysBitExact) {
  auto script = shrink(make_correlated_failure_scenario(8), 200);
  ScenarioDriver driver(script, test_config(true));
  const auto report = driver.run(nullptr, nullptr);

  ASSERT_EQ(report.phases.size(), 3u);
  const auto& loss = report.phases[1];
  EXPECT_EQ(loss.name, "rack-loss");
  EXPECT_GT(loss.kills, 0u);
  EXPECT_GT(loss.repairs, 0u);
  // Reads between the kill and the repair are served degraded from stable
  // storage — and every single read in every phase stayed bit-exact.
  EXPECT_GT(loss.degraded_reads, 0u);
  EXPECT_EQ(report.total_failures(), 0u);
  EXPECT_EQ(report.total_mismatches(), 0u);
}

TEST(ScenarioDriver, AllScenariosCompleteCleanly) {
  for (auto script : all_scenarios(8)) {
    script = shrink(std::move(script), 120);
    ScenarioDriver driver(script, test_config(true));
    const auto report = driver.run(nullptr, nullptr);
    EXPECT_EQ(report.total_failures(), 0u) << script.name;
    EXPECT_EQ(report.total_mismatches(), 0u) << script.name;
    EXPECT_EQ(report.phases.size(), script.phases.size()) << script.name;
    for (const auto& phase : report.phases) {
      EXPECT_EQ(phase.requests, 120u) << script.name << "/" << phase.name;
    }
  }
}

}  // namespace
}  // namespace spcache::scenario
