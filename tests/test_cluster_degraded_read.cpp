// Degraded reads: per-piece retry with backoff, failover to an inline
// StableStore restore, and the IoResult degradation telemetry — for both
// the threaded SpClient and the RPC client.
#include <gtest/gtest.h>

#include "cluster/client.h"
#include "cluster/stable_store.h"
#include "core/sp_cache.h"
#include "fault/fault_injector.h"
#include "rpc/cache_service.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
  return v;
}

fault::RetryPolicy fast_retry() {
  fault::RetryPolicy policy;
  policy.piece_attempts = 3;
  policy.read_attempts = 6;
  policy.base_backoff = std::chrono::microseconds(50);
  policy.max_backoff = std::chrono::microseconds(500);
  return policy;
}

class DegradedReadTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kFiles = 8;
  static constexpr Bytes kFileSize = 64 * kKB;

  void populate() {
    auto catalog = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
    SpCacheScheme sp;
    sp.place(catalog, cluster_.bandwidths(), rng_);
    SpClient writer(cluster_, master_, pool_);
    originals_.resize(kFiles);
    for (FileId f = 0; f < kFiles; ++f) {
      originals_[f] = pattern_bytes(kFileSize, f);
      writer.write(f, originals_[f], sp.placement(f).servers);
      stable_.checkpoint(f, originals_[f]);
    }
  }

  Cluster cluster_{8, gbps(1.0)};
  Master master_;
  ThreadPool pool_{4};
  StableStore stable_;
  Rng rng_{2026};
  std::vector<std::vector<std::uint8_t>> originals_;
};

TEST_F(DegradedReadTest, MissingPieceFailsOverToStable) {
  populate();
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto meta = master_.peek(0);
  ASSERT_GE(meta->partitions(), 1u);
  cluster_.server(meta->servers[0]).erase(BlockKey{0, 0});

  const auto result = client.read(0);
  EXPECT_EQ(result.bytes, originals_[0]);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degraded_pieces, 1u);
  EXPECT_GT(result.retries, 0u) << "the missing piece should have been retried before failover";
  EXPECT_GT(result.network_time, 0.0);
}

TEST_F(DegradedReadTest, KilledServerFailsOverToStable) {
  populate();
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto meta = master_.peek(1);
  const std::uint32_t victim = meta->servers[0];
  cluster_.kill(victim);

  const auto result = client.read(1);
  EXPECT_EQ(result.bytes, originals_[1]);
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(result.degraded_pieces, 1u);
  cluster_.revive(victim);
}

TEST_F(DegradedReadTest, DegradedReadPaysStableBandwidth) {
  populate();
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto healthy = client.read(2);
  ASSERT_FALSE(healthy.degraded);

  const auto meta = master_.peek(2);
  cluster_.server(meta->servers[0]).erase(BlockKey{2, 0});
  const auto degraded = client.read(2);
  ASSERT_TRUE(degraded.degraded);
  // The stable store is far slower than the cluster network, and a
  // failover restores the whole file through it.
  EXPECT_GT(degraded.network_time, healthy.network_time);
}

TEST_F(DegradedReadTest, WithoutStableStoreThrowsAfterRetries) {
  populate();
  SpClient client(cluster_, master_, pool_, nullptr, fast_retry());
  const auto meta = master_.peek(3);
  cluster_.server(meta->servers[0]).erase(BlockKey{3, 0});
  EXPECT_THROW(client.read(3), std::runtime_error);
}

TEST_F(DegradedReadTest, HealthyReadReportsNoDegradation) {
  populate();
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto result = client.read(4);
  EXPECT_EQ(result.bytes, originals_[4]);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.degraded_pieces, 0u);
  EXPECT_EQ(result.retries, 0u);
}

TEST_F(DegradedReadTest, InjectedFetchFailuresAreRetriedAway) {
  populate();
  fault::FaultConfig cfg;
  cfg.fetch_fail_p = 0.30;
  fault::FaultInjector injector(1234, cfg);
  cluster_.set_fault_injector(&injector);

  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  std::size_t retries = 0;
  for (FileId f = 0; f < kFiles; ++f) {
    const auto result = client.read(f);
    EXPECT_EQ(result.bytes, originals_[f]) << "file " << f;
    retries += result.retries;
  }
  EXPECT_GT(retries, 0u) << "a 30% fetch-failure rate must surface as retries";
  EXPECT_GT(injector.stats().fetch_failures, 0u);
  cluster_.set_fault_injector(nullptr);
}

TEST_F(DegradedReadTest, InjectedCorruptionNeverReachesTheCaller) {
  populate();
  fault::FaultConfig cfg;
  cfg.corrupt_read_p = 0.15;
  fault::FaultInjector injector(77, cfg);
  cluster_.set_fault_injector(&injector);

  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  for (int round = 0; round < 4; ++round) {
    for (FileId f = 0; f < kFiles; ++f) {
      const auto result = client.read(f);
      // The whole-file CRC catches every injected flip; the read retries
      // until it passes verification, so the caller only ever sees
      // bit-exact data.
      EXPECT_EQ(result.bytes, originals_[f]) << "file " << f;
    }
  }
  EXPECT_GT(injector.stats().corrupt_reads, 0u) << "the corruption site never fired";
  cluster_.set_fault_injector(nullptr);
}

TEST_F(DegradedReadTest, HeterogeneousPieceSizesFailOverCorrectly) {
  // write_sized layouts have unequal pieces; the stable failover must
  // slice the restored file by the recorded sizes, not an even split.
  const auto data = pattern_bytes(90 * kKB, 5);
  SpClient writer(cluster_, master_, pool_);
  const std::vector<std::uint32_t> servers{0, 1, 2};
  const std::vector<Bytes> sizes{10 * kKB, 30 * kKB, 50 * kKB};
  writer.write_sized(99, data, servers, sizes);
  stable_.checkpoint(99, data);

  cluster_.server(1).erase(BlockKey{99, 1});
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto result = client.read(99);
  EXPECT_EQ(result.bytes, data);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.degraded_pieces, 1u);
}

TEST_F(DegradedReadTest, CorrelatedFailureDegradesEveryReadWhileRepairConverges) {
  // A rack loss: ceil(N/3) = 3 of the 8 servers die together, all of them
  // holding pieces of the same hot file. Every read — of the hot file and
  // of innocent bystanders with pieces on the dead servers — must complete
  // degraded-but-bit-exact from stable storage, and the repair sweep must
  // converge to a fully live layout under that traffic.
  populate();
  constexpr FileId kHot = 0;
  // Re-lay the hot file across 5 distinct servers so a 3-server loss hits
  // it multiple times while leaving enough live non-holders for repair to
  // re-place every lost slot (no two pieces of a file may share a server).
  SpClient writer(cluster_, master_, pool_);
  writer.write(kHot, originals_[kHot], {0, 1, 2, 3, 4});

  const auto meta = master_.peek(kHot);
  ASSERT_EQ(meta->partitions(), 5u);
  const std::size_t n_kill = (cluster_.size() + 2) / 3;  // ceil(8/3) = 3
  std::vector<std::uint32_t> victims(meta->servers.begin(),
                                     meta->servers.begin() + static_cast<long>(n_kill));
  for (const std::uint32_t v : victims) cluster_.kill(v);

  // Phase 1: the outage window. Every file still reads bit-exact; the hot
  // file is necessarily degraded (three of its holders are gone).
  SpClient client(cluster_, master_, pool_, &stable_, fast_retry());
  const auto hot_read = client.read(kHot);
  EXPECT_EQ(hot_read.bytes, originals_[kHot]);
  EXPECT_TRUE(hot_read.degraded);
  EXPECT_GE(hot_read.degraded_pieces, n_kill);
  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(client.read(f).bytes, originals_[f]) << "file " << f << " during the outage";
  }

  // Phase 2: repair converges while the servers are still dead — every
  // slot on a dead server moves to a live replacement and is restored
  // from stable storage before the layout is published.
  RecoveryManager recovery(cluster_, master_, stable_);
  for (const std::uint32_t v : victims) recovery.repair_after_server_loss(v);

  for (FileId f = 0; f < kFiles; ++f) {
    const auto repaired = master_.peek(f);
    ASSERT_TRUE(repaired.has_value());
    for (const std::uint32_t s : repaired->servers) {
      EXPECT_TRUE(cluster_.is_alive(s))
          << "file " << f << " still references dead server " << s << " after repair";
    }
    const auto result = client.read(f);
    EXPECT_EQ(result.bytes, originals_[f]) << "file " << f << " after repair";
    EXPECT_FALSE(result.degraded) << "file " << f << " should read clean after repair";
  }
  for (const std::uint32_t v : victims) cluster_.revive(v);
}

TEST(RpcDegradedRead, RetriesRideThroughInjectedBusFaults) {
  rpc::Bus bus;
  fault::FaultConfig cfg;
  cfg.bus_drop_p = 0.05;
  cfg.bus_duplicate_p = 0.05;
  cfg.bus_delay_p = 0.10;
  cfg.bus_delay = std::chrono::microseconds(100);
  fault::FaultInjector injector(4321, cfg);

  rpc::MasterService master(bus);
  std::vector<rpc::NodeId> workers;
  std::vector<std::unique_ptr<rpc::CacheWorkerService>> services;
  for (std::uint32_t s = 0; s < 4; ++s) {
    services.push_back(std::make_unique<rpc::CacheWorkerService>(
        bus, rpc::kFirstWorkerNode + s, s, gbps(1.0)));
    workers.push_back(services.back()->node_id());
  }

  fault::RetryPolicy retry;
  retry.piece_attempts = 4;
  retry.read_attempts = 6;
  retry.base_backoff = std::chrono::microseconds(100);
  retry.max_backoff = std::chrono::milliseconds(1);
  rpc::RpcSpClient client(bus, rpc::kFirstClientNode, rpc::kMasterNode, workers, retry,
                          std::chrono::milliseconds(100));

  std::vector<std::vector<std::uint8_t>> originals;
  for (FileId f = 0; f < 6; ++f) {
    originals.push_back(pattern_bytes(32 * kKB, f));
    client.write(f, originals.back(), {0, 1, 2, 3});
  }

  // Chaos on: every envelope may be dropped, delayed, or duplicated.
  bus.set_fault_injector(&injector);
  std::size_t total_retries = 0;
  for (int round = 0; round < 3; ++round) {
    for (FileId f = 0; f < 6; ++f) {
      const auto stats = client.read_with_stats(f);
      EXPECT_EQ(stats.bytes, originals[f]) << "file " << f;
      total_retries += stats.retries;
    }
  }
  bus.set_fault_injector(nullptr);

  const auto fs = injector.stats();
  EXPECT_GT(fs.bus_drops + fs.bus_duplicates + fs.bus_delays, 0u);
  if (fs.bus_drops > 0) {
    EXPECT_GT(total_retries, 0u) << "dropped envelopes must surface as retries";
  }
}

}  // namespace
}  // namespace spcache
