// Property tests for the delta repartition plan algebra (randomized):
//   * the range transfer plan covers every byte of the file exactly once,
//     in order, with piece sizes matching split_plain's rule;
//   * a range is local iff source server == destination server — the plan
//     never emits a same-server network transfer;
//   * bytes_moved + bytes_saved == file_size;
//   * executing a randomized plan against a live cluster reassembles every
//     file bit-exactly and leaves no staged residue.
#include "core/repartition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cluster/client.h"
#include "cluster/repartition_exec.h"
#include "erasure/rs_code.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

// k distinct servers drawn from [0, n_servers).
std::vector<std::uint32_t> distinct_servers(Rng& rng, std::size_t n_servers, std::size_t k) {
  std::vector<std::uint32_t> all(n_servers);
  std::iota(all.begin(), all.end(), 0u);
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(all[i], all[i + rng.uniform_index(n_servers - i)]);
  }
  all.resize(k);
  return all;
}

// A random composition of `size` into `k` non-negative parts (old layouts
// need not follow split_plain's rounding — write_sized layouts don't).
std::vector<Bytes> random_composition(Rng& rng, Bytes size, std::size_t k) {
  std::vector<Bytes> cuts;
  for (std::size_t i = 0; i + 1 < k; ++i) cuts.push_back(rng.uniform_index(size + 1));
  cuts.push_back(0);
  cuts.push_back(size);
  std::sort(cuts.begin(), cuts.end());
  std::vector<Bytes> sizes;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) sizes.push_back(cuts[i + 1] - cuts[i]);
  return sizes;
}

TEST(RepartitionProperties, PlainOffsetsMatchSplitPlain) {
  Rng rng(401);
  for (int trial = 0; trial < 200; ++trial) {
    const Bytes size = 1 + rng.uniform_index(4096);
    const std::size_t k = 1 + rng.uniform_index(16);
    const auto data = random_bytes(size, rng);
    const auto pieces = split_plain(data, k);
    ASSERT_EQ(pieces.size(), k);
    EXPECT_EQ(plain_piece_offset(size, k, 0), 0u);
    EXPECT_EQ(plain_piece_offset(size, k, k), size);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(plain_piece_offset(size, k, i + 1) - plain_piece_offset(size, k, i),
                pieces[i].size())
          << "size=" << size << " k=" << k << " i=" << i;
    }
  }
}

TEST(RepartitionProperties, PlanCoversEveryByteExactlyOnce) {
  Rng rng(402);
  constexpr std::size_t kServers = 20;
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes size = 1 + rng.uniform_index(200 * 1024);
    const std::size_t k_old = 1 + rng.uniform_index(16);
    const std::size_t k_new = 1 + rng.uniform_index(16);
    const auto old_sizes = random_composition(rng, size, k_old);
    // Old servers need not be distinct between pieces of different files,
    // but within one file the planner may assume distinctness — honor it.
    const auto old_servers = distinct_servers(rng, kServers, k_old);
    const auto new_servers = distinct_servers(rng, kServers, k_new);

    const auto plan = plan_range_transfer(size, old_sizes, old_servers, new_servers);
    ASSERT_EQ(plan.pieces.size(), k_new);
    EXPECT_EQ(plan.file_size, size);
    EXPECT_EQ(plan.bytes_moved + plan.bytes_saved, size);

    std::vector<Bytes> old_start(k_old + 1, 0);
    for (std::size_t i = 0; i < k_old; ++i) old_start[i + 1] = old_start[i] + old_sizes[i];

    Bytes pos = 0;  // running cursor over the file: ranges must be in order
    Bytes moved = 0, saved = 0;
    for (std::size_t p = 0; p < k_new; ++p) {
      const auto& piece = plan.pieces[p];
      EXPECT_EQ(piece.new_piece, p);
      EXPECT_EQ(piece.dst_server, new_servers[p]);
      EXPECT_EQ(piece.piece_size,
                plain_piece_offset(size, k_new, p + 1) - plain_piece_offset(size, k_new, p));
      Bytes filled = 0;
      for (const auto& r : piece.sources) {
        ASSERT_LT(r.old_piece, k_old);
        EXPECT_GT(r.length, 0u);
        // Contiguous, in order, and consistent between the two offsets.
        EXPECT_EQ(r.offset_in_file, pos);
        EXPECT_EQ(r.offset_in_file, old_start[r.old_piece] + r.offset_in_piece);
        EXPECT_LE(r.offset_in_piece + r.length, old_sizes[r.old_piece]);
        EXPECT_EQ(r.src_server, old_servers[r.old_piece]);
        // Local iff same server — a remote range with src == dst would be
        // a pointless network transfer, a local range with src != dst
        // would lose bytes.
        EXPECT_EQ(r.local, r.src_server == piece.dst_server);
        (r.local ? saved : moved) += r.length;
        pos += r.length;
        filled += r.length;
      }
      EXPECT_EQ(filled, piece.piece_size);
    }
    EXPECT_EQ(pos, size);  // union of all ranges covers [0, size) exactly
    EXPECT_EQ(moved, plan.bytes_moved);
    EXPECT_EQ(saved, plan.bytes_saved);
  }
}

TEST(RepartitionProperties, UnchangedPlacementIsAllLocal) {
  Rng rng(403);
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes size = 1 + rng.uniform_index(64 * 1024);
    const std::size_t k = 1 + rng.uniform_index(12);
    const auto servers = distinct_servers(rng, 20, k);
    // Old layout already follows split_plain's rounding on the same
    // servers: the "repartition" is a no-op byte-wise, so zero bytes move.
    std::vector<Bytes> old_sizes;
    for (std::size_t i = 0; i < k; ++i) {
      old_sizes.push_back(plain_piece_offset(size, k, i + 1) - plain_piece_offset(size, k, i));
    }
    const auto plan = plan_range_transfer(size, old_sizes, servers, servers);
    EXPECT_EQ(plan.bytes_moved, 0u);
    EXPECT_EQ(plan.bytes_saved, size);
  }
}

// End-to-end on a live cluster: random files, random old/new placements,
// the delta executor must reassemble every file bit-exactly under the new
// layout with a bumped epoch and an empty staging area.
TEST(RepartitionProperties, RandomizedDeltaRepartitionIsBitExact) {
  Cluster cluster(12, gbps(1.0));
  Master master;
  ThreadPool pool(4);
  Rng rng(404);
  SpClient client(cluster, master, pool);

  constexpr std::size_t kFiles = 20;
  std::vector<std::vector<std::uint8_t>> originals;
  RepartitionPlan plan;
  plan.new_k.resize(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    const Bytes size = 1 + rng.uniform_index(96 * 1024);
    const std::size_t k_old = 1 + rng.uniform_index(6);
    originals.push_back(random_bytes(size, rng));
    const auto old = distinct_servers(rng, cluster.size(), k_old);
    client.write(f, originals[f], old);

    const std::size_t k_new = 1 + rng.uniform_index(6);
    plan.new_k[f] = k_new;
    plan.changed_files.push_back(f);
    plan.new_servers.push_back(distinct_servers(rng, cluster.size(), k_new));
    plan.executor.push_back(old[rng.uniform_index(old.size())]);
  }

  std::vector<std::uint64_t> epoch_before(kFiles);
  for (FileId f = 0; f < kFiles; ++f) epoch_before[f] = master.peek(f)->epoch;

  const auto stats = execute_delta_repartition(cluster, master, plan, pool);
  EXPECT_EQ(stats.files_touched, kFiles);

  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(client.read(f).bytes, originals[f]) << "file " << f;
    const auto meta = master.peek(f);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->servers, plan.new_servers[f]);
    EXPECT_GT(meta->epoch, epoch_before[f]);
  }
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    EXPECT_EQ(cluster.server(s).staged_count(), 0u) << "server " << s;
  }
}

}  // namespace
}  // namespace spcache
