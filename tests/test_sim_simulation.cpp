// Discrete-event simulator tests: M/M/1 validation against queueing theory,
// fork-join join semantics, determinism, load conservation, stragglers.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/mg1.h"

namespace spcache {
namespace {

// A planner that always reads one piece of `bytes` from server 0.
Simulation::Planner single_server_planner(Bytes bytes) {
  return [bytes](FileId, Rng&) {
    ReadPlan plan;
    plan.fetches.push_back(PartitionFetch{0, bytes});
    plan.needed = 1;
    return plan;
  };
}

SimConfig basic_config(std::size_t n_servers, bool jitter = true) {
  SimConfig cfg;
  cfg.n_servers = n_servers;
  cfg.bandwidth = {gbps(1.0)};
  cfg.goodput = GoodputModel{0.0, 0.0, 1.0};  // disable goodput loss
  cfg.exponential_jitter = jitter;
  cfg.fetch_overhead = 0.0;   // pure-queueing regime for analytic checks
  cfg.client_nic_floor = false;
  cfg.client_setup_per_fetch = 0.0;
  cfg.seed = 42;
  return cfg;
}

std::vector<Arrival> poisson_stream(double rate, std::size_t n, std::uint64_t seed) {
  const auto cat = make_uniform_catalog(1, kMB, 1.0, rate);
  Rng rng(seed);
  return generate_poisson_arrivals(cat, n, rng);
}

TEST(Simulation, Mm1MeanSojournMatchesTheory) {
  // lambda = 5/s, service = Exp(mean 0.1 s) -> W = 1/(10 - 5) = 0.2 s.
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  Simulation sim(basic_config(1));
  const auto arrivals = poisson_stream(5.0, 60000, 7);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  EXPECT_EQ(result.completed, arrivals.size());
  EXPECT_NEAR(result.mean_latency(), 0.2, 0.02);
}

TEST(Simulation, Mm1HighLoad) {
  // rho = 0.9: W = 1/(10 - 9) = 1.0 s. Longer run for the heavier tail.
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  Simulation sim(basic_config(1));
  const auto arrivals = poisson_stream(9.0, 150000, 8);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  EXPECT_NEAR(result.mean_latency(), 1.0, 0.15);
}

TEST(Simulation, Md1WaitsHalfOfMm1) {
  // Deterministic service: M/D/1 queueing delay is half the M/M/1 delay.
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  auto cfg = basic_config(1, /*jitter=*/false);
  Simulation sim(cfg);
  const auto arrivals = poisson_stream(5.0, 60000, 9);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  // M/D/1: W = s + rho*s / (2(1-rho)) = 0.1 + 0.05 = 0.15.
  EXPECT_NEAR(result.mean_latency(), 0.15, 0.01);
}

TEST(Simulation, DeterministicForFixedSeed) {
  const Bytes bytes = static_cast<Bytes>(0.05 * gbps(1.0));
  const auto arrivals = poisson_stream(5.0, 5000, 10);
  Simulation a(basic_config(1)), b(basic_config(1));
  const auto ra = a.run(arrivals, single_server_planner(bytes));
  const auto rb = b.run(arrivals, single_server_planner(bytes));
  ASSERT_EQ(ra.latencies.count(), rb.latencies.count());
  EXPECT_EQ(ra.latencies.values(), rb.latencies.values());
}

TEST(Simulation, LoadConservation) {
  // Total bytes served must equal bytes requested across all fetches.
  SimConfig cfg = basic_config(4);
  Simulation sim(cfg);
  const auto arrivals = poisson_stream(2.0, 1000, 11);
  const Bytes piece = 250 * kKB;
  auto planner = [piece](FileId, Rng&) {
    ReadPlan plan;
    for (std::uint32_t s = 0; s < 4; ++s) plan.fetches.push_back(PartitionFetch{s, piece});
    plan.needed = 4;
    return plan;
  };
  const auto result = sim.run(arrivals, planner);
  double total = 0.0;
  for (double b : result.server_bytes) total += b;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(1000 * 4 * piece));
  // Uniform plan -> near-uniform per-server bytes.
  for (double b : result.server_bytes) EXPECT_DOUBLE_EQ(b, 1000.0 * piece);
}

TEST(Simulation, ForkJoinWaitsForSlowest) {
  // Two deterministic fetches of different sizes on idle servers: latency
  // equals the larger transfer.
  auto cfg = basic_config(2, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}};
  auto planner = [](FileId, Rng&) {
    ReadPlan plan;
    plan.fetches.push_back(PartitionFetch{0, static_cast<Bytes>(0.1 * gbps(1.0))});
    plan.fetches.push_back(PartitionFetch{1, static_cast<Bytes>(0.4 * gbps(1.0))});
    plan.needed = 2;
    return plan;
  };
  const auto result = sim.run(arrivals, planner);
  ASSERT_EQ(result.completed, 1u);
  EXPECT_NEAR(result.latencies.values()[0], 0.4, 1e-9);
}

TEST(Simulation, LateBindingJoinsOnKFastest) {
  // needed = 1 of 2: latency equals the *smaller* transfer.
  auto cfg = basic_config(2, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}};
  auto planner = [](FileId, Rng&) {
    ReadPlan plan;
    plan.fetches.push_back(PartitionFetch{0, static_cast<Bytes>(0.1 * gbps(1.0))});
    plan.fetches.push_back(PartitionFetch{1, static_cast<Bytes>(0.4 * gbps(1.0))});
    plan.needed = 1;
    return plan;
  };
  const auto result = sim.run(arrivals, planner);
  EXPECT_NEAR(result.latencies.values()[0], 0.1, 1e-9);
}

TEST(Simulation, ExtraLateBindingFetchStillConsumesServer) {
  // The abandoned (k+1)-th fetch occupies its server: a second request to
  // that server queues behind it.
  auto cfg = basic_config(2, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}, {0.0, 1}};
  int call = 0;
  auto planner = [&call](FileId, Rng&) {
    ReadPlan plan;
    if (call++ == 0) {
      // Request A: late-binding read, fast piece on server 0, slow on 1.
      plan.fetches.push_back(PartitionFetch{0, static_cast<Bytes>(0.1 * gbps(1.0))});
      plan.fetches.push_back(PartitionFetch{1, static_cast<Bytes>(0.5 * gbps(1.0))});
      plan.needed = 1;
    } else {
      // Request B: must wait for A's abandoned slow fetch on server 1.
      plan.fetches.push_back(PartitionFetch{1, static_cast<Bytes>(0.1 * gbps(1.0))});
      plan.needed = 1;
    }
    return plan;
  };
  const auto result = sim.run(arrivals, planner);
  ASSERT_EQ(result.completed, 2u);
  // B's latency = 0.5 (queueing behind A's abandoned fetch) + 0.1.
  EXPECT_NEAR(result.latencies.values()[1], 0.6, 1e-9);
}

TEST(Simulation, PostProcessAddsToLatency) {
  auto cfg = basic_config(1, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}};
  auto planner = [](FileId, Rng&) {
    ReadPlan plan;
    plan.fetches.push_back(PartitionFetch{0, static_cast<Bytes>(0.1 * gbps(1.0))});
    plan.needed = 1;
    plan.post_process = 0.25;
    return plan;
  };
  const auto result = sim.run(arrivals, planner);
  EXPECT_NEAR(result.latencies.values()[0], 0.35, 1e-9);
}

TEST(Simulation, StragglersRaiseMeanLatency) {
  const Bytes bytes = static_cast<Bytes>(0.05 * gbps(1.0));
  auto clean_cfg = basic_config(1);
  auto straggle_cfg = basic_config(1);
  straggle_cfg.stragglers = StragglerModel::bing(0.3);
  const auto arrivals = poisson_stream(3.0, 30000, 12);
  const auto clean = Simulation(clean_cfg).run(arrivals, single_server_planner(bytes));
  const auto slow = Simulation(straggle_cfg).run(arrivals, single_server_planner(bytes));
  EXPECT_GT(slow.mean_latency(), clean.mean_latency() * 1.1);
}

TEST(Simulation, LatencyScaleApplied) {
  auto cfg = basic_config(1, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}, {10.0, 0}};
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  const auto result = sim.run(arrivals, single_server_planner(bytes),
                              [](std::size_t i) { return i == 1 ? 3.0 : 1.0; });
  EXPECT_NEAR(result.latencies.values()[0], 0.1, 1e-9);
  EXPECT_NEAR(result.latencies.values()[1], 0.3, 1e-9);  // cache miss: 3x
}

TEST(Simulation, GoodputDegradationSlowsManyConnectionReads) {
  // Same bytes, split over more connections with goodput loss enabled.
  SimConfig cfg = basic_config(16, /*jitter=*/false);
  cfg.goodput = GoodputModel::calibrated(gbps(1.0));
  const std::vector<Arrival> arrivals{{0.0, 0}};
  auto make_planner = [](std::size_t k) {
    return [k](FileId, Rng&) {
      ReadPlan plan;
      const Bytes piece = static_cast<Bytes>(1.6 * gbps(1.0) / static_cast<double>(k));
      for (std::uint32_t s = 0; s < k; ++s) plan.fetches.push_back(PartitionFetch{s, piece});
      plan.needed = k;
      return plan;
    };
  };
  const auto r1 = Simulation(cfg).run(arrivals, make_planner(1));
  const auto r16 = Simulation(cfg).run(arrivals, make_planner(16));
  // 16-way split: per-piece transfer is 1/16th but runs at degraded
  // goodput; the *parallel* read is still much faster overall...
  EXPECT_LT(r16.latencies.values()[0], r1.latencies.values()[0]);
  // ...but slower than the ideal 1/16 of the single-read time.
  EXPECT_GT(r16.latencies.values()[0], r1.latencies.values()[0] / 16.0 * 1.05);
}


TEST(Simulation, WarmupExcludedFromLatencySample) {
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  auto cfg = basic_config(1, /*jitter=*/false);
  cfg.warmup_requests = 1;
  Simulation sim(cfg);
  // Two back-to-back arrivals: the second queues behind the first.
  const std::vector<Arrival> arrivals{{0.0, 0}, {0.0, 0}};
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  EXPECT_EQ(result.completed, 2u);           // both simulated...
  ASSERT_EQ(result.latencies.count(), 1u);   // ...one recorded
  EXPECT_NEAR(result.latencies.values()[0], 0.2, 1e-9);  // queued behind #0
}


TEST(Simulation, MetricsTimeSeries) {
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  auto cfg = basic_config(1);
  cfg.metrics_window = 10.0;
  Simulation sim(cfg);
  const auto arrivals = poisson_stream(4.0, 4000, 21);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  ASSERT_GT(result.window_mean_latency.size(), 5u);
  EXPECT_EQ(result.window_mean_latency.size(), result.window_completions.size());
  // Completions are conserved across windows.
  std::size_t total = 0;
  for (auto c : result.window_completions) total += c;
  EXPECT_EQ(total, result.completed);
  // Window means are consistent with the aggregate mean.
  double weighted = 0.0;
  for (std::size_t w = 0; w < result.window_mean_latency.size(); ++w) {
    weighted += result.window_mean_latency[w] * static_cast<double>(result.window_completions[w]);
  }
  EXPECT_NEAR(weighted / static_cast<double>(total), result.mean_latency(), 1e-9);
}

TEST(Simulation, MetricsSeriesDisabledByDefault) {
  const Bytes bytes = static_cast<Bytes>(0.05 * gbps(1.0));
  Simulation sim(basic_config(1));
  const auto arrivals = poisson_stream(2.0, 100, 22);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  EXPECT_TRUE(result.window_mean_latency.empty());
}


TEST(Simulation, UtilizationMatchesOfferedLoad) {
  // M/M/1 at rho = 0.5: the server must be busy ~half the horizon.
  const Bytes bytes = static_cast<Bytes>(0.1 * gbps(1.0));
  Simulation sim(basic_config(1));
  const auto arrivals = poisson_stream(5.0, 40000, 31);
  const auto result = sim.run(arrivals, single_server_planner(bytes));
  ASSERT_EQ(result.server_busy_seconds.size(), 1u);
  EXPECT_GT(result.horizon, 0.0);
  EXPECT_NEAR(result.utilization()[0], 0.5, 0.03);
}

TEST(Simulation, IdleServersHaveZeroUtilization) {
  auto cfg = basic_config(3, /*jitter=*/false);
  Simulation sim(cfg);
  const std::vector<Arrival> arrivals{{0.0, 0}};
  const auto result = sim.run(arrivals, single_server_planner(1000));
  const auto util = result.utilization();
  EXPECT_GT(util[0], 0.0);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
  EXPECT_DOUBLE_EQ(util[2], 0.0);
}

TEST(SimResult, MetricAccessors) {
  SimResult r;
  r.latencies.add(1.0);
  r.latencies.add(3.0);
  r.server_bytes = {10.0, 0.0};
  EXPECT_DOUBLE_EQ(r.mean_latency(), 2.0);
  EXPECT_DOUBLE_EQ(r.tail_latency(1.0), 3.0);
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
}

}  // namespace
}  // namespace spcache
