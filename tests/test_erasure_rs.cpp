// Reed-Solomon codec tests: systematic layout, any-k-of-n reconstruction
// (parameterized over code geometry), padding edge cases, error handling,
// and the plain splitting helpers used by SP-Cache.
#include "erasure/rs_code.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

TEST(ReedSolomon, GeometryAndOverhead) {
  const ReedSolomon rs(10, 14);
  EXPECT_EQ(rs.data_shards(), 10u);
  EXPECT_EQ(rs.parity_shards(), 4u);
  EXPECT_EQ(rs.total_shards(), 14u);
  EXPECT_NEAR(rs.memory_overhead(), 0.4, 1e-12);  // the paper's 40%
}

TEST(ReedSolomon, InvalidGeometryThrows) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 300), std::invalid_argument);
}

TEST(ReedSolomon, SystematicDataShardsAreVerbatim) {
  Rng rng(1);
  const auto data = random_bytes(1000, rng);
  const ReedSolomon rs(4, 6);
  const auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), 6u);
  const std::size_t len = rs.shard_size(data.size());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(shards[i].index, i);
    ASSERT_EQ(shards[i].bytes.size(), len);
    for (std::size_t b = 0; b < len; ++b) {
      const std::size_t pos = i * len + b;
      const std::uint8_t expected = pos < data.size() ? data[pos] : 0;
      ASSERT_EQ(shards[i].bytes[b], expected);
    }
  }
}

TEST(ReedSolomon, AllDataShardsFastPath) {
  Rng rng(2);
  const auto data = random_bytes(12345, rng);
  const ReedSolomon rs(10, 14);
  auto shards = rs.encode(data);
  shards.resize(10);  // keep only data shards
  EXPECT_EQ(rs.decode(shards, data.size()), data);
}

struct LossCase {
  std::size_t k, n, losses;
};

class RsReconstructionTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(RsReconstructionTest, AnyKofNReconstructs) {
  const auto [k, n, losses] = GetParam();
  ASSERT_LE(losses, n - k);
  Rng rng(100 + k * 7 + n * 13 + losses);
  const auto data = random_bytes(4096 + 17, rng);
  const ReedSolomon rs(k, n);
  const auto shards = rs.encode(data);

  for (int trial = 0; trial < 10; ++trial) {
    // Drop `losses` random shards, decode from the survivors.
    const auto dropped = rng.sample_without_replacement(n, losses);
    std::vector<Shard> survivors;
    for (const auto& s : shards) {
      if (std::find(dropped.begin(), dropped.end(), s.index) == dropped.end()) {
        survivors.push_back(s);
      }
    }
    EXPECT_EQ(rs.decode(survivors, data.size()), data) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsReconstructionTest,
    ::testing::Values(LossCase{10, 14, 4}, LossCase{10, 14, 1}, LossCase{10, 14, 2},
                      LossCase{4, 6, 2}, LossCase{1, 3, 2}, LossCase{2, 4, 2},
                      LossCase{16, 20, 4}, LossCase{6, 9, 3}));

TEST(ReedSolomon, DecodeFromExactlyParityHeavySubset) {
  // Force the matrix-inversion path: lose as many data shards as possible.
  Rng rng(3);
  const auto data = random_bytes(999, rng);
  const ReedSolomon rs(4, 8);
  const auto shards = rs.encode(data);
  // Keep data shard 2 and parity shards 4, 5, 6.
  const std::vector<Shard> subset{shards[2], shards[4], shards[5], shards[6]};
  EXPECT_EQ(rs.decode(subset, data.size()), data);
}

TEST(ReedSolomon, PaddingEdgeCases) {
  Rng rng(4);
  const ReedSolomon rs(10, 14);
  for (std::size_t size : {std::size_t{1}, std::size_t{9}, std::size_t{10}, std::size_t{11},
                           std::size_t{100}, std::size_t{1009}}) {
    const auto data = random_bytes(size, rng);
    auto shards = rs.encode(data);
    // Decode from a parity-including subset to exercise the full path.
    std::vector<Shard> subset(shards.begin() + 2, shards.begin() + 12);
    EXPECT_EQ(rs.decode(subset, data.size()), data) << "size " << size;
  }
}

TEST(ReedSolomon, EmptyFile) {
  const ReedSolomon rs(3, 5);
  const auto shards = rs.encode({});
  EXPECT_EQ(rs.decode(shards, 0).size(), 0u);
}

TEST(ReedSolomon, KEqualsNIsPlainSplitWithPadding) {
  // (k, k): no parity, decode requires all shards.
  Rng rng(5);
  const auto data = random_bytes(100, rng);
  const ReedSolomon rs(4, 4);
  const auto shards = rs.encode(data);
  EXPECT_EQ(shards.size(), 4u);
  EXPECT_DOUBLE_EQ(rs.memory_overhead(), 0.0);
  EXPECT_EQ(rs.decode(shards, data.size()), data);
}

TEST(ReedSolomon, DecodeErrorHandling) {
  Rng rng(6);
  const auto data = random_bytes(64, rng);
  const ReedSolomon rs(4, 6);
  const auto shards = rs.encode(data);

  // Too few shards.
  EXPECT_THROW(rs.decode({shards[0], shards[1]}, data.size()), std::invalid_argument);
  // Duplicate indices.
  EXPECT_THROW(rs.decode({shards[0], shards[0], shards[1], shards[2]}, data.size()),
               std::invalid_argument);
  // Wrong shard length.
  auto bad = shards;
  bad[1].bytes.pop_back();
  EXPECT_THROW(rs.decode({bad[0], bad[1], bad[2], bad[3]}, data.size()), std::invalid_argument);
  // Out-of-range index.
  auto oob = shards[0];
  oob.index = 99;
  EXPECT_THROW(rs.decode({oob, shards[1], shards[2], shards[3], shards[4]}, data.size()),
               std::invalid_argument);
}

TEST(ReedSolomon, EncodeParityMatchesFullEncode) {
  Rng rng(7);
  const auto data = random_bytes(4000, rng);
  const ReedSolomon rs(10, 14);
  const auto full = rs.encode(data);
  std::vector<std::span<const std::uint8_t>> data_views;
  for (std::size_t i = 0; i < 10; ++i) data_views.emplace_back(full[i].bytes);
  const auto parity = rs.encode_parity(data_views);
  ASSERT_EQ(parity.size(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(parity[p].index, 10 + p);
    EXPECT_EQ(parity[p].bytes, full[10 + p].bytes);
  }
}

TEST(ReedSolomon, EncodeParityValidation) {
  const ReedSolomon rs(3, 5);
  std::vector<std::uint8_t> a(4), b(4), c(3);
  EXPECT_THROW(rs.encode_parity({std::span<const std::uint8_t>(a)}), std::invalid_argument);
  EXPECT_THROW(rs.encode_parity({std::span<const std::uint8_t>(a),
                                 std::span<const std::uint8_t>(b),
                                 std::span<const std::uint8_t>(c)}),
               std::invalid_argument);
}

TEST(SplitPlain, RoundTripAndSizes) {
  Rng rng(8);
  for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{10}, std::size_t{101},
                           std::size_t{1000}}) {
    const auto data = random_bytes(size, rng);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      const auto pieces = split_plain(data, k);
      ASSERT_EQ(pieces.size(), k);
      // Piece sizes differ by at most one byte and sum to the total.
      std::size_t total = 0, mx = 0, mn = SIZE_MAX;
      for (const auto& p : pieces) {
        total += p.size();
        mx = std::max(mx, p.size());
        mn = std::min(mn, p.size());
      }
      EXPECT_EQ(total, size);
      EXPECT_LE(mx - mn, 1u);
      EXPECT_EQ(join_plain(pieces), data);
    }
  }
}


TEST(SplitSized, ExactSizesAndRoundtrip) {
  Rng rng(9);
  const auto data = random_bytes(1000, rng);
  const std::vector<Bytes> sizes{300, 500, 200};
  const auto pieces = split_sized(data, sizes);
  ASSERT_EQ(pieces.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(pieces[i].size(), sizes[i]);
  EXPECT_EQ(join_plain(pieces), data);
}

TEST(SplitSized, MismatchedTotalThrows) {
  Rng rng(10);
  const auto data = random_bytes(100, rng);
  EXPECT_THROW(split_sized(data, {50, 40}), std::invalid_argument);
  EXPECT_THROW(split_sized(data, {50, 60}), std::invalid_argument);
}

TEST(SplitSized, ZeroSizedPieceAllowed) {
  Rng rng(11);
  const auto data = random_bytes(10, rng);
  const auto pieces = split_sized(data, {0, 10, 0});
  EXPECT_TRUE(pieces[0].empty());
  EXPECT_TRUE(pieces[2].empty());
  EXPECT_EQ(join_plain(pieces), data);
}

}  // namespace
}  // namespace spcache
