// LRU cache tests: hit/miss accounting, eviction order, budget invariants.
#include "sim/lru_cache.h"

#include <gtest/gtest.h>

namespace spcache {
namespace {

TEST(Lru, MissThenHit) {
  LruCache cache(100);
  EXPECT_FALSE(cache.access(1, 10));
  EXPECT_TRUE(cache.access(1, 10));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_ratio(), 0.5);
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache cache(30);
  cache.access(1, 10);
  cache.access(2, 10);
  cache.access(3, 10);
  cache.access(1, 10);  // touch 1 -> LRU order is 2, 3, 1
  cache.access(4, 10);  // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Lru, BudgetNeverExceeded) {
  LruCache cache(100);
  for (FileId f = 0; f < 50; ++f) {
    cache.access(f, 7 + (f % 13));
    EXPECT_LE(cache.used(), cache.budget());
  }
}

TEST(Lru, OversizedFileNotAdmitted) {
  LruCache cache(50);
  cache.access(1, 20);
  EXPECT_FALSE(cache.access(2, 60));  // larger than the whole budget
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));  // nothing evicted for it
  EXPECT_FALSE(cache.access(2, 60));  // still a miss every time
}

TEST(Lru, LargeFileEvictsMultiple) {
  LruCache cache(100);
  cache.access(1, 40);
  cache.access(2, 40);
  cache.access(3, 90);  // must evict both
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_EQ(cache.used(), 90u);
}

TEST(Lru, UsedTracksResidents) {
  LruCache cache(100);
  cache.access(1, 30);
  cache.access(2, 20);
  EXPECT_EQ(cache.used(), 50u);
  EXPECT_EQ(cache.resident_files(), 2u);
}

TEST(Lru, HitDoesNotChangeUsage) {
  LruCache cache(100);
  cache.access(1, 30);
  cache.access(1, 30);
  cache.access(1, 30);
  EXPECT_EQ(cache.used(), 30u);
}

TEST(Lru, ResetCountersKeepsContents) {
  LruCache cache(100);
  cache.access(1, 10);
  cache.access(1, 10);
  cache.reset_counters();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.access(1, 10));  // warm hit after reset
}

TEST(Lru, EmptyHitRatioZero) {
  LruCache cache(10);
  EXPECT_DOUBLE_EQ(cache.hit_ratio(), 0.0);
}

TEST(Lru, ZipfStreamFavorsSmallFootprintScheme) {
  // The Fig. 20 mechanism in miniature: identical access stream, two
  // footprints (1.0x for SP-Cache vs 1.4x for EC-Cache). The
  // redundancy-free footprint must achieve the higher hit ratio.
  const auto cat = make_uniform_catalog(200, 10, 1.1, 1.0);  // 10-byte "files"
  Rng rng(3);
  LruCache sp(500), ec(500);
  for (int i = 0; i < 20000; ++i) {
    const FileId f = cat.sample_file(rng);
    sp.access(f, 10);
    ec.access(f, 14);
  }
  EXPECT_GT(sp.hit_ratio(), ec.hit_ratio());
}

}  // namespace
}  // namespace spcache
