// Metamorphic model-coherence tests: the analytic latency machinery must
// respect the physical scaling symmetries of the system it models.
#include <gtest/gtest.h>

#include "math/latency_model.h"
#include "math/scale_factor.h"

namespace spcache {
namespace {

// A pure-queueing config (no fetch overhead / goodput / floor terms, which
// deliberately break scale invariance by introducing absolute time/count
// constants).
ScaleFactorConfig pure_config() {
  ScaleFactorConfig cfg;
  cfg.fetch_overhead = 0.0;
  cfg.client_setup_per_fetch = 0.0;
  cfg.goodput = GoodputModel{0.0, 0.0, 1.0};
  cfg.client_parallel_streams = 1e9;  // floor never binds
  return cfg;
}

LatencyModelInput simple_input(double size_scale, double bw_scale, double rate_scale) {
  LatencyModelInput in;
  in.bandwidth = {1e9 * bw_scale, 1e9 * bw_scale};
  LatencyModelInput::FileEntry f0;
  f0.lambda = 3.0 * rate_scale;
  f0.partition_bytes = 5e7 * size_scale;
  f0.servers = {0, 1};
  LatencyModelInput::FileEntry f1;
  f1.lambda = 1.0 * rate_scale;
  f1.partition_bytes = 1e8 * size_scale;
  f1.servers = {1};
  in.files = {f0, f1};
  return in;
}

TEST(ModelScaling, JointSizeBandwidthScalingIsInvariant) {
  // Multiplying every file size AND every link speed by c leaves all
  // service times — hence all latencies — unchanged.
  const auto base = fork_join_latency_bound(simple_input(1.0, 1.0, 1.0));
  for (double c : {0.5, 2.0, 10.0}) {
    const auto scaled = fork_join_latency_bound(simple_input(c, c, 1.0));
    ASSERT_TRUE(scaled.stable);
    EXPECT_NEAR(scaled.mean_bound, base.mean_bound, base.mean_bound * 1e-9) << "c=" << c;
  }
}

TEST(ModelScaling, TimeDilation) {
  // Scaling bandwidth by c and request rates by c compresses time by c:
  // utilization is unchanged and every latency shrinks exactly c-fold.
  const auto base = fork_join_latency_bound(simple_input(1.0, 1.0, 1.0));
  for (double c : {2.0, 5.0}) {
    const auto fast = fork_join_latency_bound(simple_input(1.0, c, c));
    ASSERT_TRUE(fast.stable);
    EXPECT_NEAR(fast.mean_bound * c, base.mean_bound, base.mean_bound * 1e-9) << "c=" << c;
    for (std::size_t s = 0; s < base.utilization.size(); ++s) {
      EXPECT_NEAR(fast.utilization[s], base.utilization[s], 1e-12);
    }
  }
}

TEST(ModelScaling, AlgorithmOneAlphaScalesInverselyWithFileSize) {
  // k_i = ceil(alpha * S_i * P_i): doubling every file size halves the
  // alpha that yields the same partition counts, so with bandwidth doubled
  // too (invariant latencies) Algorithm 1 must pick ~halved alpha and the
  // SAME partition layout.
  const auto cfg = pure_config();
  const auto small_cat = make_uniform_catalog(100, 50 * kMB, 1.05, 8.0);
  const auto large_cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  Rng rng1(5), rng2(5);
  const auto small = find_scale_factor(small_cat, std::vector<Bandwidth>(30, gbps(0.5)), cfg,
                                       rng1);
  const auto large = find_scale_factor(large_cat, std::vector<Bandwidth>(30, gbps(1.0)), cfg,
                                       rng2);
  EXPECT_EQ(small.partition_counts, large.partition_counts);
  EXPECT_NEAR(small.alpha * 50.0, large.alpha * 100.0, large.alpha * 100.0 * 1e-9);
  EXPECT_NEAR(small.bound, large.bound, large.bound * 1e-9);
}

TEST(ModelScaling, RateScalingPreservesPartitionCountsAtFixedAlphaLoad) {
  // P_i is normalized, so L_i = S_i P_i is independent of the aggregate
  // rate: partition counts at a fixed alpha must not change with load.
  auto cat = make_uniform_catalog(100, 100 * kMB, 1.05, 8.0);
  // Stay off the ceil() integer boundary: rate rescaling perturbs L_i in
  // the last ulp, which would flip ceil(5.0) to 6.
  const double alpha = 4.9 / cat.max_load();
  const auto k_low = partition_counts_for_alpha(cat, alpha, 30);
  cat.set_total_rate(20.0);
  const auto k_high = partition_counts_for_alpha(cat, alpha, 30);
  EXPECT_EQ(k_low, k_high);
}

}  // namespace
}  // namespace spcache
