// Zipf distribution: normalization, shape, sampling fidelity.
#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spcache {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  for (double s : {0.0, 0.5, 1.05, 1.1, 2.0}) {
    ZipfDistribution z(100, s);
    double sum = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) sum += z.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "s=" << s;
  }
}

TEST(Zipf, MonotoneDecreasing) {
  ZipfDistribution z(50, 1.05);
  for (std::size_t i = 1; i < z.size(); ++i) EXPECT_LE(z.pmf(i), z.pmf(i - 1));
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.pmf(i), 0.1, 1e-12);
}

TEST(Zipf, RatioMatchesPowerLaw) {
  ZipfDistribution z(100, 1.1);
  // p_1 / p_2 = 2^1.1
  EXPECT_NEAR(z.pmf(0) / z.pmf(1), std::pow(2.0, 1.1), 1e-9);
  EXPECT_NEAR(z.pmf(0) / z.pmf(9), std::pow(10.0, 1.1), 1e-9);
}

TEST(Zipf, HeadMassConcentration) {
  // With exponent 1.05 over 500 files the head holds a large share.
  ZipfDistribution z(500, 1.05);
  EXPECT_GT(z.head_mass(50), 0.5);   // top 10% of files
  EXPECT_LT(z.head_mass(50), 0.95);
  EXPECT_DOUBLE_EQ(z.head_mass(500), 1.0);
  EXPECT_DOUBLE_EQ(z.head_mass(1000), 1.0);  // clamped
}

TEST(Zipf, SingleItem) {
  ZipfDistribution z(1, 1.05);
  EXPECT_DOUBLE_EQ(z.pmf(0), 1.0);
  Rng rng(1);
  EXPECT_EQ(z.sample(rng), 0u);
}

class ZipfSamplingTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplingTest, EmpiricalFrequenciesMatchPmf) {
  const double s = GetParam();
  ZipfDistribution z(20, s);
  Rng rng(static_cast<std::uint64_t>(s * 1000) + 7);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), z.pmf(i), 0.005) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSamplingTest, ::testing::Values(0.0, 0.8, 1.05, 1.1, 1.5));

}  // namespace
}  // namespace spcache
