// Cache-server and cluster substrate tests: storage accounting, checksums,
// concurrent access.
#include "cluster/cache_server.h"

#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "common/thread_pool.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 7);
  return v;
}

TEST(CacheServer, PutGetRoundtrip) {
  CacheServer s(0, gbps(1.0));
  const auto data = pattern(1000, 3);
  s.put(BlockKey{1, 0}, data);
  const auto block = s.get(BlockKey{1, 0});
  ASSERT_TRUE(block != nullptr);
  EXPECT_EQ(block->bytes, data);
}

TEST(CacheServer, MissingBlockIsNull) {
  CacheServer s(0, gbps(1.0));
  EXPECT_EQ(s.get(BlockKey{9, 9}), nullptr);
}

TEST(CacheServer, OverwriteKeepsInFlightReadersConsistent) {
  // Zero-copy contract: a reader holding a BlockRef keeps its snapshot
  // even if the block is overwritten underneath it.
  CacheServer s(0, gbps(1.0));
  const auto v1 = pattern(64, 1);
  const auto v2 = pattern(64, 2);
  s.put(BlockKey{1, 0}, v1);
  const auto held = s.get(BlockKey{1, 0});
  s.put(BlockKey{1, 0}, v2);
  EXPECT_EQ(held->bytes, v1);
  EXPECT_EQ(s.get(BlockKey{1, 0})->bytes, v2);
  EXPECT_EQ(s.bytes_stored(), 64u);
}

TEST(CacheServer, BlockKeyHashSpreadsConsecutiveFileIds) {
  // std::hash<uint64_t> is the identity on libstdc++; the SplitMix64 mix
  // must spread consecutive FileIds across stripes instead of clustering
  // them. With 256 consecutive ids over 16 stripes, a uniform spread puts
  // ~16 in each; the unmixed identity hash would leave most stripes empty.
  BlockKeyHash h;
  std::array<std::size_t, CacheServer::kStripes> stripe_counts{};
  for (FileId f = 0; f < 256; ++f) {
    stripe_counts[h(BlockKey{f, 0}) >> 60] += 1;  // top bits, as stripe_for does
  }
  for (const auto c : stripe_counts) {
    EXPECT_GT(c, 0u);
    EXPECT_LT(c, 64u);
  }
}

TEST(CacheServer, BytesStoredAccounting) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(100, 1));
  s.put(BlockKey{1, 1}, pattern(250, 2));
  EXPECT_EQ(s.bytes_stored(), 350u);
  EXPECT_EQ(s.blocks_stored(), 2u);
  // Overwrite shrinks.
  s.put(BlockKey{1, 1}, pattern(50, 3));
  EXPECT_EQ(s.bytes_stored(), 150u);
  EXPECT_EQ(s.blocks_stored(), 2u);
  EXPECT_TRUE(s.erase(BlockKey{1, 0}));
  EXPECT_EQ(s.bytes_stored(), 50u);
  EXPECT_FALSE(s.erase(BlockKey{1, 0}));
}

TEST(CacheServer, ServedBytesCounter) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(100, 1));
  EXPECT_DOUBLE_EQ(s.bytes_served(), 0.0);
  (void)s.get(BlockKey{1, 0});
  (void)s.get(BlockKey{1, 0});
  EXPECT_DOUBLE_EQ(s.bytes_served(), 200.0);
  s.reset_load_counters();
  EXPECT_DOUBLE_EQ(s.bytes_served(), 0.0);
}

TEST(CacheServer, DistinctKeysPerPiece) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(10, 1));
  s.put(BlockKey{1, 1}, pattern(10, 2));
  s.put(BlockKey{2, 0}, pattern(10, 3));
  EXPECT_NE(s.get(BlockKey{1, 0})->bytes, s.get(BlockKey{1, 1})->bytes);
  EXPECT_NE(s.get(BlockKey{1, 0})->bytes, s.get(BlockKey{2, 0})->bytes);
}

TEST(CacheServer, ConcurrentPutGet) {
  CacheServer s(0, gbps(1.0));
  ThreadPool pool(8);
  pool.parallel_for(200, [&s](std::size_t i) {
    const auto key = BlockKey{static_cast<FileId>(i % 17), static_cast<PieceIndex>(i / 17)};
    s.put(key, pattern(64 + i, static_cast<std::uint8_t>(i)));
    const auto block = s.get(key);
    ASSERT_TRUE(block != nullptr);
  });
  EXPECT_EQ(s.blocks_stored(), 200u);
}

TEST(Cluster, ConstructionAndAccess) {
  Cluster c(5, gbps(1.0));
  EXPECT_EQ(c.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.server(i).id(), i);
    EXPECT_DOUBLE_EQ(c.server(i).bandwidth(), gbps(1.0));
  }
  EXPECT_EQ(c.bandwidths().size(), 5u);
}

TEST(Cluster, LoadVectors) {
  Cluster c(3, gbps(1.0));
  c.server(0).put(BlockKey{1, 0}, pattern(100, 1));
  c.server(2).put(BlockKey{2, 0}, pattern(300, 2));
  (void)c.server(2).get(BlockKey{2, 0});
  const auto stored = c.stored_bytes();
  EXPECT_DOUBLE_EQ(stored[0], 100.0);
  EXPECT_DOUBLE_EQ(stored[1], 0.0);
  EXPECT_DOUBLE_EQ(stored[2], 300.0);
  const auto served = c.served_bytes();
  EXPECT_DOUBLE_EQ(served[2], 300.0);
  c.reset_load_counters();
  EXPECT_DOUBLE_EQ(c.served_bytes()[2], 0.0);
}

}  // namespace
}  // namespace spcache
