// Cache-server and cluster substrate tests: storage accounting, checksums,
// concurrent access.
#include "cluster/cache_server.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/thread_pool.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 7);
  return v;
}

TEST(CacheServer, PutGetRoundtrip) {
  CacheServer s(0, gbps(1.0));
  const auto data = pattern(1000, 3);
  s.put(BlockKey{1, 0}, data);
  const auto block = s.get(BlockKey{1, 0});
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->bytes, data);
}

TEST(CacheServer, MissingBlockIsNullopt) {
  CacheServer s(0, gbps(1.0));
  EXPECT_FALSE(s.get(BlockKey{9, 9}).has_value());
}

TEST(CacheServer, BytesStoredAccounting) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(100, 1));
  s.put(BlockKey{1, 1}, pattern(250, 2));
  EXPECT_EQ(s.bytes_stored(), 350u);
  EXPECT_EQ(s.blocks_stored(), 2u);
  // Overwrite shrinks.
  s.put(BlockKey{1, 1}, pattern(50, 3));
  EXPECT_EQ(s.bytes_stored(), 150u);
  EXPECT_EQ(s.blocks_stored(), 2u);
  EXPECT_TRUE(s.erase(BlockKey{1, 0}));
  EXPECT_EQ(s.bytes_stored(), 50u);
  EXPECT_FALSE(s.erase(BlockKey{1, 0}));
}

TEST(CacheServer, ServedBytesCounter) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(100, 1));
  EXPECT_DOUBLE_EQ(s.bytes_served(), 0.0);
  (void)s.get(BlockKey{1, 0});
  (void)s.get(BlockKey{1, 0});
  EXPECT_DOUBLE_EQ(s.bytes_served(), 200.0);
  s.reset_load_counters();
  EXPECT_DOUBLE_EQ(s.bytes_served(), 0.0);
}

TEST(CacheServer, DistinctKeysPerPiece) {
  CacheServer s(0, gbps(1.0));
  s.put(BlockKey{1, 0}, pattern(10, 1));
  s.put(BlockKey{1, 1}, pattern(10, 2));
  s.put(BlockKey{2, 0}, pattern(10, 3));
  EXPECT_NE(s.get(BlockKey{1, 0})->bytes, s.get(BlockKey{1, 1})->bytes);
  EXPECT_NE(s.get(BlockKey{1, 0})->bytes, s.get(BlockKey{2, 0})->bytes);
}

TEST(CacheServer, ConcurrentPutGet) {
  CacheServer s(0, gbps(1.0));
  ThreadPool pool(8);
  pool.parallel_for(200, [&s](std::size_t i) {
    const auto key = BlockKey{static_cast<FileId>(i % 17), static_cast<PieceIndex>(i / 17)};
    s.put(key, pattern(64 + i, static_cast<std::uint8_t>(i)));
    const auto block = s.get(key);
    ASSERT_TRUE(block.has_value());
  });
  EXPECT_EQ(s.blocks_stored(), 200u);
}

TEST(Cluster, ConstructionAndAccess) {
  Cluster c(5, gbps(1.0));
  EXPECT_EQ(c.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(c.server(i).id(), i);
    EXPECT_DOUBLE_EQ(c.server(i).bandwidth(), gbps(1.0));
  }
  EXPECT_EQ(c.bandwidths().size(), 5u);
}

TEST(Cluster, LoadVectors) {
  Cluster c(3, gbps(1.0));
  c.server(0).put(BlockKey{1, 0}, pattern(100, 1));
  c.server(2).put(BlockKey{2, 0}, pattern(300, 2));
  (void)c.server(2).get(BlockKey{2, 0});
  const auto stored = c.stored_bytes();
  EXPECT_DOUBLE_EQ(stored[0], 100.0);
  EXPECT_DOUBLE_EQ(stored[1], 0.0);
  EXPECT_DOUBLE_EQ(stored[2], 300.0);
  const auto served = c.served_bytes();
  EXPECT_DOUBLE_EQ(served[2], 300.0);
  c.reset_load_counters();
  EXPECT_DOUBLE_EQ(c.served_bytes()[2], 0.0);
}

}  // namespace
}  // namespace spcache
