// File catalog semantics: popularity, loads, rate scaling, shuffling,
// sampling, and the Yahoo-like catalog builder.
#include "workload/file_catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace spcache {
namespace {

TEST(Catalog, PopularitySumsToOne) {
  const auto cat = make_uniform_catalog(100, 40 * kMB, 1.1, 8.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < cat.size(); ++i) sum += cat.popularity(static_cast<FileId>(i));
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(cat.total_rate(), 8.0, 1e-9);
}

TEST(Catalog, IdsAreDense) {
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 1.0);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    EXPECT_EQ(cat.file(static_cast<FileId>(i)).id, static_cast<FileId>(i));
  }
}

TEST(Catalog, LoadDefinition) {
  // L_i = S_i * P_i (Eq. 1 input).
  const auto cat = make_uniform_catalog(10, 100 * kMB, 1.05, 5.0);
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto id = static_cast<FileId>(i);
    EXPECT_NEAR(cat.load(id),
                static_cast<double>(cat.file(id).size) * cat.popularity(id), 1e-6);
  }
}

TEST(Catalog, MaxLoadIsHottestFile) {
  const auto cat = make_uniform_catalog(50, 100 * kMB, 1.1, 10.0);
  // With uniform sizes and Zipf popularity, file 0 carries the max load.
  EXPECT_NEAR(cat.max_load(), cat.load(0), 1e-9);
  for (std::size_t i = 1; i < cat.size(); ++i) {
    EXPECT_LE(cat.load(static_cast<FileId>(i)), cat.max_load() + 1e-9);
  }
}

TEST(Catalog, SetTotalRateScalesProportionally) {
  auto cat = make_uniform_catalog(20, kMB, 1.0, 6.0);
  const double p0 = cat.popularity(0);
  cat.set_total_rate(22.0);
  EXPECT_NEAR(cat.total_rate(), 22.0, 1e-9);
  EXPECT_NEAR(cat.popularity(0), p0, 1e-12);  // popularity unchanged
}

TEST(Catalog, ShufflePreservesRateMultisetAndSizes) {
  Rng rng(99);
  auto cat = make_uniform_catalog(30, 50 * kMB, 1.1, 9.0);
  std::vector<double> before;
  for (const auto& f : cat.files()) before.push_back(f.request_rate);
  cat.shuffle_popularities(rng);
  std::vector<double> after;
  for (const auto& f : cat.files()) {
    after.push_back(f.request_rate);
    EXPECT_EQ(f.size, 50 * kMB);  // sizes stay in place
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  EXPECT_NEAR(cat.total_rate(), 9.0, 1e-9);
}

TEST(Catalog, ShuffleActuallyMoves) {
  Rng rng(7);
  auto cat = make_uniform_catalog(100, kMB, 1.1, 5.0);
  const double top_rate = cat.file(0).request_rate;
  int moved = 0;
  for (int trial = 0; trial < 5; ++trial) {
    cat.shuffle_popularities(rng);
    if (cat.file(0).request_rate != top_rate) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(Catalog, SampleFileMatchesPopularity) {
  Rng rng(55);
  const auto cat = make_uniform_catalog(10, kMB, 1.0, 4.0);
  std::map<FileId, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[cat.sample_file(rng)];
  for (std::size_t i = 0; i < cat.size(); ++i) {
    const auto id = static_cast<FileId>(i);
    EXPECT_NEAR(counts[id] / static_cast<double>(n), cat.popularity(id), 0.01);
  }
}

TEST(Catalog, TotalBytes) {
  const auto cat = make_uniform_catalog(5, 10 * kMB, 1.0, 1.0);
  EXPECT_EQ(cat.total_bytes(), 50 * kMB);
}

TEST(YahooCatalog, HotFilesAreLarger) {
  Rng rng(12);
  YahooSizeModel model;
  const auto cat = make_yahoo_catalog(2000, 1.1, 10.0, model, rng);
  ASSERT_EQ(cat.size(), 2000u);
  // Mean size of the top 2% (hot) vs the bottom 50% (cold).
  double hot = 0.0, cold = 0.0;
  const std::size_t hot_n = 40, cold_start = 1000;
  for (std::size_t i = 0; i < hot_n; ++i) hot += static_cast<double>(cat.file(static_cast<FileId>(i)).size);
  for (std::size_t i = cold_start; i < 2000; ++i) {
    cold += static_cast<double>(cat.file(static_cast<FileId>(i)).size);
  }
  hot /= static_cast<double>(hot_n);
  cold /= static_cast<double>(2000 - cold_start);
  const double ratio = hot / cold;
  EXPECT_GT(ratio, 10.0);  // paper: 15-30x, allow sampling noise
  EXPECT_LT(ratio, 45.0);
}

TEST(YahooCatalog, SizesHaveFloor) {
  Rng rng(13);
  const auto cat = make_yahoo_catalog(500, 1.1, 5.0, YahooSizeModel{}, rng);
  for (const auto& f : cat.files()) EXPECT_GE(f.size, 64 * kKB);
}

TEST(YahooCatalog, PopularityFollowsZipf) {
  Rng rng(14);
  const auto cat = make_yahoo_catalog(100, 1.1, 10.0, YahooSizeModel{}, rng);
  EXPECT_GT(cat.popularity(0), cat.popularity(50));
  EXPECT_GT(cat.popularity(10), cat.popularity(90));
}

}  // namespace
}  // namespace spcache
