// Online partition split/merge tests (Section 8 "Short-Term Popularity
// Variation" extension).
#include "cluster/online_adjust.h"

#include <gtest/gtest.h>

#include "cluster/client.h"
#include "workload/popularity_tracker.h"

namespace spcache {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 13);
  return v;
}

class OnlineAdjustTest : public ::testing::Test {
 protected:
  void write_file(FileId id, Bytes size, const std::vector<std::uint32_t>& servers) {
    SpClient client(cluster_, master_, pool_);
    originals_[id] = pattern(size, static_cast<std::uint8_t>(id));
    client.write(id, originals_[id], servers);
  }

  void expect_intact(FileId id) {
    SpClient client(cluster_, master_, pool_);
    EXPECT_EQ(client.read(id).bytes, originals_[id]) << "file " << id;
  }

  Cluster cluster_{30, gbps(1.0)};
  Master master_;
  ThreadPool pool_{4};
  std::unordered_map<FileId, std::vector<std::uint8_t>> originals_;
};

TEST_F(OnlineAdjustTest, SplitPreservesContentAndShipsHalf) {
  write_file(1, 64 * kKB, {0, 1});
  const auto stats = execute_split(cluster_, master_, SplitOp{1, 0, 7});
  EXPECT_EQ(stats.splits, 1u);
  EXPECT_EQ(stats.bytes_moved, 16 * kKB);  // half of piece 0 (32 KiB)
  const auto meta = master_.peek(1);
  ASSERT_EQ(meta->partitions(), 3u);
  EXPECT_EQ(meta->servers[1], 7u);  // new half right after the split piece
  expect_intact(1);
}

TEST_F(OnlineAdjustTest, SplitReindexesTrailingPieces) {
  write_file(2, 90 * kKB, {3, 4, 5});
  execute_split(cluster_, master_, SplitOp{2, 0, 9});
  const auto meta = master_.peek(2);
  ASSERT_EQ(meta->partitions(), 4u);
  EXPECT_EQ(meta->servers, (std::vector<std::uint32_t>{3, 9, 4, 5}));
  // Old pieces 1 and 2 now answer to indices 2 and 3.
  EXPECT_TRUE(cluster_.server(4).contains(BlockKey{2, 2}));
  EXPECT_TRUE(cluster_.server(5).contains(BlockKey{2, 3}));
  EXPECT_FALSE(cluster_.server(4).contains(BlockKey{2, 1}));
  expect_intact(2);
}

TEST_F(OnlineAdjustTest, MergePreservesContentAndMovesOnePiece) {
  write_file(3, 60 * kKB, {0, 1, 2});
  const auto before = master_.peek(3)->piece_sizes;
  const auto stats = execute_merge(cluster_, master_, MergeOp{3, 1});
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.bytes_moved, before[2]);
  const auto meta = master_.peek(3);
  ASSERT_EQ(meta->partitions(), 2u);
  EXPECT_EQ(meta->servers, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(meta->piece_sizes[1], before[1] + before[2]);
  EXPECT_FALSE(cluster_.server(2).contains(BlockKey{3, 2}));
  expect_intact(3);
}

TEST_F(OnlineAdjustTest, MergeMidListReindexes) {
  write_file(4, 100 * kKB, {0, 1, 2, 3});
  execute_merge(cluster_, master_, MergeOp{4, 0});  // pull piece 1 onto piece 0
  const auto meta = master_.peek(4);
  ASSERT_EQ(meta->partitions(), 3u);
  EXPECT_EQ(meta->servers, (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_TRUE(cluster_.server(2).contains(BlockKey{4, 1}));
  EXPECT_TRUE(cluster_.server(3).contains(BlockKey{4, 2}));
  expect_intact(4);
}

TEST_F(OnlineAdjustTest, SplitThenMergeRoundtrip) {
  write_file(5, 48 * kKB, {10, 11});
  execute_split(cluster_, master_, SplitOp{5, 1, 12});
  execute_merge(cluster_, master_, MergeOp{5, 1});
  const auto meta = master_.peek(5);
  EXPECT_EQ(meta->partitions(), 2u);
  expect_intact(5);
}

TEST_F(OnlineAdjustTest, PlanSplitsBurstingFile) {
  // File 0 written with 2 pieces; its live rate explodes -> target k jumps.
  write_file(0, 200 * kKB, {0, 1});
  write_file(9, 200 * kKB, {2, 3});

  std::vector<FileInfo> infos(10);
  for (std::size_t i = 0; i < 10; ++i) {
    infos[i].size = 200 * kKB;
    infos[i].request_rate = (i == 0) ? 50.0 : 0.1;  // burst on file 0
  }
  const Catalog live(std::move(infos));

  OnlineAdjustConfig cfg;
  // Target k for file 0: ceil(alpha * L_0); choose alpha for ~8 pieces.
  cfg.alpha = 8.0 / live.load(0);
  cfg.max_ops_per_file = 16;
  const auto plan = plan_online_adjust(live, master_, cluster_.size(), cfg);

  std::size_t splits_f0 = 0;
  for (const auto& op : plan.splits) {
    if (op.file == 0) ++splits_f0;
  }
  EXPECT_GE(splits_f0, 5u);  // grows toward 8 pieces
  // The cold file 9 must not be split (its target is 1; merge threshold
  // applies instead since current is 2 and target 1).
  for (const auto& op : plan.splits) EXPECT_NE(op.file, 9u);
}

TEST_F(OnlineAdjustTest, PlanMergesCooledFile) {
  write_file(6, 240 * kKB, {0, 1, 2, 3, 4, 5});
  std::vector<FileInfo> infos(7);
  for (std::size_t i = 0; i < 7; ++i) {
    infos[i].size = 240 * kKB;
    infos[i].request_rate = 1e-6;  // everything cooled off
  }
  const Catalog live(std::move(infos));
  OnlineAdjustConfig cfg;
  cfg.alpha = 1e-12;  // target k = 1 for all
  const auto plan = plan_online_adjust(live, master_, cluster_.size(), cfg);
  std::size_t merges_f6 = 0;
  for (const auto& op : plan.merges) {
    if (op.file == 6) ++merges_f6;
  }
  EXPECT_EQ(merges_f6, 5u);  // 6 pieces -> 1
}

TEST_F(OnlineAdjustTest, HysteresisSuppressesSmallChanges) {
  write_file(7, 120 * kKB, {0, 1, 2, 3});  // current k = 4
  std::vector<FileInfo> infos(8);
  for (auto& fi : infos) {
    fi.size = 120 * kKB;
    fi.request_rate = 1.0;
  }
  const Catalog live(std::move(infos));
  OnlineAdjustConfig cfg;
  cfg.alpha = 5.0 / live.load(7);  // target 5 vs current 4: within hysteresis
  const auto plan = plan_online_adjust(live, master_, cluster_.size(), cfg);
  for (const auto& op : plan.splits) EXPECT_NE(op.file, 7u);
  for (const auto& op : plan.merges) EXPECT_NE(op.file, 7u);
}

TEST_F(OnlineAdjustTest, ExecutePlanEndToEnd) {
  write_file(8, 400 * kKB, {0, 1});
  std::vector<FileInfo> infos(9);
  for (std::size_t i = 0; i < 9; ++i) {
    infos[i].size = 400 * kKB;
    infos[i].request_rate = (i == 8) ? 40.0 : 0.01;
  }
  const Catalog live(std::move(infos));
  OnlineAdjustConfig cfg;
  cfg.alpha = 10.0 / live.load(8);
  cfg.max_ops_per_file = 16;
  const auto plan = plan_online_adjust(live, master_, cluster_.size(), cfg);
  ASSERT_FALSE(plan.empty());
  const auto stats = execute_online_adjust(cluster_, master_, plan);
  EXPECT_EQ(stats.splits, plan.splits.size());
  EXPECT_GT(master_.peek(8)->partitions(), 2u);
  // Only partition halves crossed the network — much less than a full
  // repartition of the file would move.
  EXPECT_LT(stats.bytes_moved, 500 * kKB);  // vs ~800 kB for reassemble+rescatter
  expect_intact(8);
}

}  // namespace
}  // namespace spcache
