// RPC repartitioner tests: the full Fig. 9b flow over messages.
#include "rpc/repartitioner_service.h"

#include <gtest/gtest.h>

#include "core/sp_cache.h"

namespace spcache::rpc {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

class RpcRepartitionTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 10;
  static constexpr std::size_t kFiles = 25;
  static constexpr Bytes kFileSize = 120 * kKB;

  RpcRepartitionTest() {
    master_ = std::make_unique<MasterService>(bus_);
    for (std::size_t s = 0; s < kWorkers; ++s) {
      workers_.push_back(std::make_unique<CacheWorkerService>(
          bus_, kFirstWorkerNode + static_cast<NodeId>(s), static_cast<std::uint32_t>(s),
          gbps(1.0)));
      worker_nodes_.push_back(workers_.back()->node_id());
    }
    for (std::size_t s = 0; s < kWorkers; ++s) {
      repartitioners_.push_back(std::make_unique<RepartitionerService>(
          bus_, kFirstRepartitionerNode + static_cast<NodeId>(s),
          static_cast<std::uint32_t>(s), kMasterNode, worker_nodes_));
      repartitioner_nodes_.push_back(repartitioners_.back()->node_id());
    }
    client_ = std::make_unique<RpcSpClient>(bus_, kFirstClientNode, kMasterNode, worker_nodes_);
    coordinator_ = std::make_unique<RpcNode>(bus_, kFirstClientNode + 1, "coordinator");
    coordinator_->start();
  }

  // Populate via SP-Cache placement; returns originals + layout.
  void populate() {
    catalog_ = make_uniform_catalog(kFiles, kFileSize, 1.05, 10.0);
    SpCacheScheme sp;
    Rng rng(11);
    sp.place(catalog_, std::vector<Bandwidth>(kWorkers, gbps(1.0)), rng);
    old_k_ = sp.partition_counts();
    for (FileId f = 0; f < kFiles; ++f) {
      originals_.push_back(random_bytes(kFileSize, rng_));
      client_->write(f, originals_.back(), sp.placement(f).servers);
      old_servers_.push_back(sp.placement(f).servers);
    }
  }

  Bus bus_;
  std::unique_ptr<MasterService> master_;
  std::vector<std::unique_ptr<CacheWorkerService>> workers_;
  std::vector<NodeId> worker_nodes_;
  std::vector<std::unique_ptr<RepartitionerService>> repartitioners_;
  std::vector<NodeId> repartitioner_nodes_;
  std::unique_ptr<RpcSpClient> client_;
  std::unique_ptr<RpcNode> coordinator_;
  Rng rng_{12};
  Catalog catalog_;
  std::vector<std::size_t> old_k_;
  std::vector<std::vector<std::uint32_t>> old_servers_;
  std::vector<std::vector<std::uint8_t>> originals_;
};

TEST_F(RpcRepartitionTest, ShiftRepartitionPreservesEveryFile) {
  populate();
  catalog_.shuffle_popularities(rng_);
  const auto plan = plan_repartition_with_alpha(
      catalog_, kWorkers, 6.0 / catalog_.max_load(), old_k_, old_servers_, rng_);
  ASSERT_GT(plan.changed_files.size(), 0u);

  const auto stats =
      rpc_execute_repartition(*coordinator_, plan, old_servers_, repartitioner_nodes_);
  EXPECT_EQ(stats.files_touched, plan.changed_files.size());
  EXPECT_GT(stats.bytes_moved, 0u);

  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(client_->read(f), originals_[f]) << "file " << f;
  }
}

TEST_F(RpcRepartitionTest, LayoutMatchesPlanAfterExecution) {
  populate();
  catalog_.shuffle_popularities(rng_);
  const auto plan = plan_repartition_with_alpha(
      catalog_, kWorkers, 6.0 / catalog_.max_load(), old_k_, old_servers_, rng_);
  rpc_execute_repartition(*coordinator_, plan, old_servers_, repartitioner_nodes_);
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    const auto meta = master_->master().peek(f);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->servers, plan.new_servers[j]);
    // New pieces exist where the plan says.
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      EXPECT_TRUE(workers_[meta->servers[i]]->store().contains(
          BlockKey{f, static_cast<PieceIndex>(i)}));
    }
  }
}

TEST_F(RpcRepartitionTest, LocalPiecesAreFree) {
  populate();
  // Hand-build a one-file plan executed by a server that already holds a
  // piece: the assembled local piece and any locally-rewritten piece must
  // not count as moved bytes.
  const FileId f = 0;
  RepartitionPlan plan;
  plan.new_k = old_k_;
  plan.new_k[f] = old_k_[f] + 1;
  plan.changed_files = {f};
  std::vector<std::uint32_t> fresh;
  for (std::uint32_t s = 0; s < plan.new_k[f]; ++s) fresh.push_back(s);
  plan.new_servers = {fresh};
  plan.executor = {old_servers_[f][0]};

  const auto stats =
      rpc_execute_repartition(*coordinator_, plan, old_servers_, repartitioner_nodes_);
  // Strictly less than assembling+scattering everything remotely.
  EXPECT_LT(stats.bytes_moved, 2 * kFileSize);
  EXPECT_EQ(client_->read(f), originals_[f]);
}

TEST_F(RpcRepartitionTest, EmptyPlanIsNoOp) {
  populate();
  RepartitionPlan plan;
  plan.new_k = old_k_;
  const auto stats =
      rpc_execute_repartition(*coordinator_, plan, old_servers_, repartitioner_nodes_);
  EXPECT_EQ(stats.files_touched, 0u);
  EXPECT_EQ(stats.bytes_moved, 0u);
}

// --- Delta flow (kDeltaRepartitionFile: kGetRange + kStagePiece relay) ---

TEST_F(RpcRepartitionTest, DeltaRepartitionPreservesEveryFile) {
  populate();
  catalog_.shuffle_popularities(rng_);
  const auto plan = plan_repartition_with_alpha(
      catalog_, kWorkers, 6.0 / catalog_.max_load(), old_k_, old_servers_, rng_);
  ASSERT_GT(plan.changed_files.size(), 0u);

  std::vector<std::uint64_t> epoch_before(kFiles);
  for (FileId f = 0; f < kFiles; ++f) {
    epoch_before[f] = master_->master().peek(f)->epoch;
  }

  const auto stats = rpc_execute_delta_repartition(*coordinator_, plan, repartitioner_nodes_);
  EXPECT_EQ(stats.files_touched, plan.changed_files.size());
  EXPECT_GT(stats.bytes_moved, 0u);

  Bytes changed_bytes = 0;
  for (const FileId f : plan.changed_files) changed_bytes += originals_[f].size();
  // Every byte of every changed file is moved once or staged in place.
  EXPECT_EQ(stats.bytes_moved + stats.bytes_saved, changed_bytes);

  for (FileId f = 0; f < kFiles; ++f) {
    EXPECT_EQ(client_->read(f), originals_[f]) << "file " << f;
  }
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId f = plan.changed_files[j];
    const auto meta = master_->master().peek(f);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->servers, plan.new_servers[j]);
    EXPECT_GT(meta->epoch, epoch_before[f]) << "file " << f;
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      EXPECT_TRUE(workers_[meta->servers[i]]->store().contains(
          BlockKey{f, static_cast<PieceIndex>(i)}));
    }
  }
  // Nothing left in any staging area.
  for (const auto& w : workers_) EXPECT_EQ(w->store().staged_count(), 0u);
}

TEST_F(RpcRepartitionTest, DeltaReusedPlacementShipsOnlyBoundaryRanges) {
  populate();
  // Grow file 0 from k to k+1 pieces while keeping every old server in
  // place: new piece i lives where old piece i already does, so only the
  // bytes that slide across the shifted boundaries change server. The
  // delta flow must stage the overlap in place (zero wire payload) and
  // ship strictly less than the file.
  const FileId f = 0;
  RepartitionPlan plan;
  plan.new_k = old_k_;
  plan.new_k[f] = old_k_[f] + 1;
  plan.changed_files = {f};
  auto grown = old_servers_[f];
  for (std::uint32_t s = 0; s < kWorkers; ++s) {
    if (std::find(grown.begin(), grown.end(), s) == grown.end()) {
      grown.push_back(s);
      break;
    }
  }
  ASSERT_EQ(grown.size(), old_k_[f] + 1);
  plan.new_servers = {grown};
  plan.executor = {old_servers_[f][0]};

  const auto stats = rpc_execute_delta_repartition(*coordinator_, plan, repartitioner_nodes_);
  EXPECT_EQ(stats.files_touched, 1u);
  EXPECT_EQ(stats.bytes_moved + stats.bytes_saved, kFileSize);
  EXPECT_GT(stats.bytes_saved, 0u);
  EXPECT_LT(stats.bytes_moved, kFileSize);
  EXPECT_EQ(client_->read(f), originals_[f]);
}

}  // namespace
}  // namespace spcache::rpc
