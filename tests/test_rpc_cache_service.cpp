// End-to-end tests of the RPC-backed cache service: the Section 6.1
// read/write flows running purely over messages.
#include "rpc/cache_service.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/sp_cache.h"

namespace spcache::rpc {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return v;
}

class RpcClusterTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 8;

  RpcClusterTest() {
    master_ = std::make_unique<MasterService>(bus_);
    for (std::size_t s = 0; s < kWorkers; ++s) {
      workers_.push_back(std::make_unique<CacheWorkerService>(
          bus_, kFirstWorkerNode + static_cast<NodeId>(s), static_cast<std::uint32_t>(s),
          gbps(1.0)));
      worker_nodes_.push_back(workers_.back()->node_id());
    }
    client_ = std::make_unique<RpcSpClient>(bus_, kFirstClientNode, kMasterNode, worker_nodes_);
  }

  Bus bus_;
  std::unique_ptr<MasterService> master_;
  std::vector<std::unique_ptr<CacheWorkerService>> workers_;
  std::vector<NodeId> worker_nodes_;
  std::unique_ptr<RpcSpClient> client_;
  Rng rng_{5150};
};

TEST_F(RpcClusterTest, WriteReadRoundtrip) {
  const auto data = random_bytes(300 * kKB + 11, rng_);
  client_->write(1, data, {0, 2, 5});
  EXPECT_EQ(client_->read(1), data);
}

TEST_F(RpcClusterTest, SinglePieceFile) {
  const auto data = random_bytes(4096, rng_);
  client_->write(2, data, {7});
  EXPECT_EQ(client_->read(2), data);
}

TEST_F(RpcClusterTest, PiecesLandOnCorrectWorkers) {
  const auto data = random_bytes(90 * kKB, rng_);
  client_->write(3, data, {1, 3, 6});
  EXPECT_TRUE(workers_[1]->store().contains(BlockKey{3, 0}));
  EXPECT_TRUE(workers_[3]->store().contains(BlockKey{3, 1}));
  EXPECT_TRUE(workers_[6]->store().contains(BlockKey{3, 2}));
  EXPECT_FALSE(workers_[0]->store().contains(BlockKey{3, 0}));
}

TEST_F(RpcClusterTest, ReadUnknownFileFails) {
  EXPECT_THROW(client_->read(99), std::runtime_error);
}

TEST_F(RpcClusterTest, MissingPieceSurfacesAsError) {
  const auto data = random_bytes(60 * kKB, rng_);
  client_->write(4, data, {0, 1, 2});
  workers_[1]->store().erase(BlockKey{4, 1});
  EXPECT_THROW(client_->read(4), std::runtime_error);
}

TEST_F(RpcClusterTest, AccessCountsBumpViaLookup) {
  const auto data = random_bytes(10 * kKB, rng_);
  client_->write(5, data, {0, 4});
  EXPECT_EQ(client_->access_count(5), 0u);
  client_->read(5);
  client_->read(5);
  // Cache-served reads tally locally; the popularity signal reaches the
  // master once the batched kReportAccess flushes (here: explicitly).
  client_->flush_access_reports();
  EXPECT_EQ(client_->access_count(5), 2u);
}

TEST_F(RpcClusterTest, OverwriteUpdatesLayout) {
  const auto v1 = random_bytes(20 * kKB, rng_);
  const auto v2 = random_bytes(40 * kKB, rng_);
  client_->write(6, v1, {0, 1});
  client_->write(6, v2, {2, 3, 4});
  EXPECT_EQ(client_->read(6), v2);
}

TEST_F(RpcClusterTest, ManyClientsConcurrently) {
  // Several RPC clients hammer the same master/workers from sibling
  // threads; every file must come back bit-exact.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kFilesPerClient = 8;
  std::vector<std::vector<std::uint8_t>> blobs(kClients * kFilesPerClient);
  for (std::size_t i = 0; i < blobs.size(); ++i) blobs[i] = random_bytes(16 * kKB + i, rng_);

  ThreadPool pool(kClients);
  pool.parallel_for(kClients, [&](std::size_t c) {
    RpcSpClient client(bus_, kFirstClientNode + 1 + static_cast<NodeId>(c), kMasterNode,
                       worker_nodes_);
    for (std::size_t i = 0; i < kFilesPerClient; ++i) {
      const auto id = static_cast<FileId>(100 + c * kFilesPerClient + i);
      client.write(id, blobs[c * kFilesPerClient + i],
                   {static_cast<std::uint32_t>((c + i) % kWorkers),
                    static_cast<std::uint32_t>((c + i + 3) % kWorkers)});
    }
    for (std::size_t i = 0; i < kFilesPerClient; ++i) {
      const auto id = static_cast<FileId>(100 + c * kFilesPerClient + i);
      ASSERT_EQ(client.read(id), blobs[c * kFilesPerClient + i]);
    }
  });
}


TEST_F(RpcClusterTest, EcClientRoundtripOverRpc) {
  RpcEcClient ec(bus_, kFirstClientNode + 50, kMasterNode, worker_nodes_, 4, 8);
  const auto data = random_bytes(200 * kKB + 3, rng_);
  std::vector<std::uint32_t> servers;
  for (std::uint32_t s = 0; s < 8; ++s) servers.push_back(s);
  ec.write(60, data, servers);
  Rng rng(60);
  for (int trial = 0; trial < 12; ++trial) {
    EXPECT_EQ(ec.read(60, rng), data);
  }
}

TEST_F(RpcClusterTest, EcClientSurvivesOneLostShard) {
  RpcEcClient ec(bus_, kFirstClientNode + 51, kMasterNode, worker_nodes_, 4, 8);
  const auto data = random_bytes(80 * kKB, rng_);
  std::vector<std::uint32_t> servers;
  for (std::uint32_t s = 0; s < 8; ++s) servers.push_back(s);
  ec.write(61, data, servers);
  // Drop one shard: the k+1 late-binding hedge must still decode whenever
  // the lost shard is in the fetched set; other draws avoid it entirely.
  workers_[2]->store().erase(BlockKey{61, 2});
  Rng rng(61);
  for (int trial = 0; trial < 12; ++trial) {
    EXPECT_EQ(ec.read(61, rng), data);
  }
}

TEST_F(RpcClusterTest, EcClientValidatesGeometry) {
  RpcEcClient ec(bus_, kFirstClientNode + 52, kMasterNode, worker_nodes_, 4, 8);
  const auto data = random_bytes(10 * kKB, rng_);
  EXPECT_THROW(ec.write(62, data, {0, 1, 2}), std::invalid_argument);
}

TEST_F(RpcClusterTest, SpCachePlacementOverRpc) {
  // The full Section 6.1 flow: Algorithm 1 placement, RPC writes, RPC reads.
  const auto cat = make_uniform_catalog(20, 64 * kKB, 1.05, 10.0);
  SpCacheScheme sp;
  Rng rng(7);
  sp.place(cat, std::vector<Bandwidth>(kWorkers, gbps(1.0)), rng);
  std::vector<std::vector<std::uint8_t>> originals(20);
  for (FileId f = 0; f < 20; ++f) {
    originals[f] = random_bytes(64 * kKB, rng_);
    client_->write(f, originals[f], sp.placement(f).servers);
  }
  for (FileId f = 0; f < 20; ++f) EXPECT_EQ(client_->read(f), originals[f]);
}

}  // namespace
}  // namespace spcache::rpc
