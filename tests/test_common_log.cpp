// Logger tests: level parsing, gating, thread safety of the sink.
#include "common/log.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace spcache {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), LogLevel::kOff);
}

TEST(Log, SetAndGetLevel) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, DisabledLinesAreCheap) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("costly");
  };
  // The stream payload is only materialized when the level is enabled; the
  // operand itself is still evaluated (standard stream semantics), so this
  // documents the contract: gate expensive *formatting*, not side effects.
  SPCACHE_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(Log, EnabledLevelsRespectThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  // Nothing to assert on stderr content here without capturing it; this
  // exercises both the enabled and disabled paths for coverage and
  // crash-freedom.
  SPCACHE_LOG(kDebug) << "below threshold";
  SPCACHE_LOG(kError) << "above threshold";
  SUCCEED();
}

TEST(Log, ConcurrentWritersDoNotRace) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  ThreadPool pool(4);
  pool.parallel_for(64, [](std::size_t i) {
    SPCACHE_LOG(kError) << "writer " << i;
  });
  SUCCEED();
}

}  // namespace
}  // namespace spcache
