// Seeded, deterministic fault injection (Section 8 "Fault Tolerance").
//
// SP-Cache's robustness story — a redundancy-free cache that keeps serving
// reads because lost partitions are repaired from checkpointed stable
// storage — is only credible if the failure paths are exercised on purpose.
// This module is the chaos substrate: one `FaultInjector`, shared by every
// layer, decides at well-known *sites* whether a fault fires:
//
//   * Bus envelope faults: drop (the message vanishes, the caller times
//     out), delay (sender-side stall), duplication (the envelope is
//     delivered twice — exercising handler idempotency and the late-reply
//     accounting of `RpcNode`);
//   * Cache-server read faults: piece-fetch failure (the GET throws, as a
//     connection reset would) and read corruption (the caller receives a
//     bit-flipped copy, modelling a post-checksum wire flip that only the
//     client's whole-file CRC can catch);
//   * Whole-server crash/restart, via a scheduled event list that a chaos
//     driver applies with `Cluster::kill` / `Cluster::revive`.
//
// Determinism: every site keeps its own atomic decision counter, and the
// n-th decision at a site is a pure function of (seed, site, n) through
// SplitMix64 mixing. The fault *schedule* — which decision indices fire at
// each site — is therefore bit-identical across runs with the same seed,
// independent of thread interleaving; replaying a chaotic run only needs
// the seed and the config. All methods are thread-safe and lock-free on
// the decision path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace spcache::fault {

struct FaultConfig {
  // Bus envelope faults: probability per routed envelope.
  double bus_drop_p = 0.0;
  double bus_delay_p = 0.0;
  double bus_duplicate_p = 0.0;
  // Sender-side stall applied when a delay fires.
  std::chrono::microseconds bus_delay{200};

  // Cache-server read faults: probability per CacheServer::get().
  double fetch_fail_p = 0.0;
  double corrupt_read_p = 0.0;

  // Socket-level faults, consulted by TcpTransport on its loop thread so
  // chaos over real sockets stays deterministic per seed:
  //   * partial write — one flush pass clamps its write() to a few bytes,
  //     splitting frames across many segments (exercises reassembly);
  //   * reset — the connection is closed with SO_LINGER{1,0}, so the peer
  //     sees a hard RST instead of an orderly FIN;
  //   * delay — the loop thread stalls briefly before flushing (models a
  //     congested link; keep sock_delay tiny, the loop serves every
  //     connection).
  double sock_partial_write_p = 0.0;
  double sock_reset_p = 0.0;
  double sock_delay_p = 0.0;
  std::chrono::microseconds sock_delay{100};
};

// Cumulative fired-fault counters (a snapshot; counters are monotonic).
struct FaultStats {
  std::uint64_t bus_drops = 0;
  std::uint64_t bus_delays = 0;
  std::uint64_t bus_duplicates = 0;
  std::uint64_t fetch_failures = 0;
  std::uint64_t corrupt_reads = 0;
  std::uint64_t sock_partial_writes = 0;
  std::uint64_t sock_resets = 0;
  std::uint64_t sock_delays = 0;
  std::uint64_t decisions = 0;  // total decision points consulted

  bool operator==(const FaultStats&) const = default;
};

// A scheduled whole-server lifecycle event, keyed to a driver-defined
// step counter (an operation index, a chaos-loop round — anything
// monotonic). The injector only stores and hands back the schedule;
// the driver applies it via Cluster::kill / Cluster::revive so the
// injector stays free of cluster dependencies.
struct CrashEvent {
  std::uint64_t at_step = 0;
  std::uint32_t server = 0;
  enum class Action : std::uint8_t { kKill, kRevive } action = Action::kKill;
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultConfig config = FaultConfig{});

  const FaultConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }

  // Master switch: a disarmed injector never fires (decision counters do
  // not advance, so re-arming resumes the same schedule).
  void arm() { armed_.store(true, std::memory_order_relaxed); }
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Decision sites. Each call consumes one index of that site's
  // deterministic decision stream and returns whether the fault fires.
  bool drop_envelope();
  bool delay_envelope();
  bool duplicate_envelope();
  bool fail_fetch(std::uint32_t server);
  bool corrupt_read(std::uint32_t server);
  // Socket sites, consulted by TcpTransport per flush pass / connection.
  bool sock_partial_write();
  bool sock_reset();
  bool sock_delay();

  // --- Scheduled crash/restart lifecycle -----------------------------
  void schedule(CrashEvent event);
  // All not-yet-fired events with at_step <= step, in schedule order;
  // each is handed out exactly once.
  std::vector<CrashEvent> due(std::uint64_t step);
  std::size_t scheduled_remaining() const;

  FaultStats stats() const;

 private:
  // Stable site tags feeding the per-site decision hash.
  enum Site : std::uint64_t {
    kSiteBusDrop = 0x01,
    kSiteBusDelay = 0x02,
    kSiteBusDuplicate = 0x03,
    kSiteFetchFail = 0x100,    // + server id
    kSiteCorruptRead = 0x200,  // + server id
    kSiteSockPartial = 0x20,
    kSiteSockReset = 0x21,
    kSiteSockDelay = 0x22,
  };

  // Per-server decision streams are tracked modulo this many slots; two
  // servers sharing a slot share a stream, which stays deterministic.
  static constexpr std::size_t kServerSlots = 256;

  bool decide(std::uint64_t site, std::atomic<std::uint64_t>& counter, double p,
              std::atomic<std::uint64_t>& fired);

  std::uint64_t seed_;
  FaultConfig config_;
  std::atomic<bool> armed_{true};

  std::atomic<std::uint64_t> bus_drop_seq_{0};
  std::atomic<std::uint64_t> bus_delay_seq_{0};
  std::atomic<std::uint64_t> bus_dup_seq_{0};
  std::array<std::atomic<std::uint64_t>, kServerSlots> fetch_seq_{};
  std::array<std::atomic<std::uint64_t>, kServerSlots> corrupt_seq_{};
  std::atomic<std::uint64_t> sock_partial_seq_{0};
  std::atomic<std::uint64_t> sock_reset_seq_{0};
  std::atomic<std::uint64_t> sock_delay_seq_{0};

  std::atomic<std::uint64_t> bus_drops_{0};
  std::atomic<std::uint64_t> bus_delays_{0};
  std::atomic<std::uint64_t> bus_dups_{0};
  std::atomic<std::uint64_t> fetch_failures_{0};
  std::atomic<std::uint64_t> corrupt_reads_{0};
  std::atomic<std::uint64_t> sock_partial_writes_{0};
  std::atomic<std::uint64_t> sock_resets_{0};
  std::atomic<std::uint64_t> sock_delays_{0};
  std::atomic<std::uint64_t> decisions_{0};

  mutable std::mutex schedule_mu_;
  std::vector<CrashEvent> schedule_;  // fired events are compacted away
};

}  // namespace spcache::fault
