#include "fault/fault_injector.h"

#include <algorithm>

#include "common/hash_mix.h"

namespace spcache::fault {

namespace {

// Map a 64-bit hash to a uniform double in [0, 1).
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed, FaultConfig config)
    : seed_(seed), config_(config) {}

bool FaultInjector::decide(std::uint64_t site, std::atomic<std::uint64_t>& counter, double p,
                           std::atomic<std::uint64_t>& fired) {
  if (!armed_.load(std::memory_order_relaxed) || p <= 0.0) return false;
  // The n-th decision at a site is a pure function of (seed, site, n):
  // thread interleaving changes *when* index n is consumed, never its
  // verdict, so the schedule replays exactly under the same seed.
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  decisions_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = mix64(mix64(seed_ + site) ^ n);
  const bool fire = to_unit(h) < p;
  if (fire) fired.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool FaultInjector::drop_envelope() {
  return decide(kSiteBusDrop, bus_drop_seq_, config_.bus_drop_p, bus_drops_);
}

bool FaultInjector::delay_envelope() {
  return decide(kSiteBusDelay, bus_delay_seq_, config_.bus_delay_p, bus_delays_);
}

bool FaultInjector::duplicate_envelope() {
  return decide(kSiteBusDuplicate, bus_dup_seq_, config_.bus_duplicate_p, bus_dups_);
}

bool FaultInjector::fail_fetch(std::uint32_t server) {
  const std::size_t slot = server % kServerSlots;
  return decide(kSiteFetchFail + slot, fetch_seq_[slot], config_.fetch_fail_p, fetch_failures_);
}

bool FaultInjector::corrupt_read(std::uint32_t server) {
  const std::size_t slot = server % kServerSlots;
  return decide(kSiteCorruptRead + slot, corrupt_seq_[slot], config_.corrupt_read_p,
                corrupt_reads_);
}

bool FaultInjector::sock_partial_write() {
  return decide(kSiteSockPartial, sock_partial_seq_, config_.sock_partial_write_p,
                sock_partial_writes_);
}

bool FaultInjector::sock_reset() {
  return decide(kSiteSockReset, sock_reset_seq_, config_.sock_reset_p, sock_resets_);
}

bool FaultInjector::sock_delay() {
  return decide(kSiteSockDelay, sock_delay_seq_, config_.sock_delay_p, sock_delays_);
}

void FaultInjector::schedule(CrashEvent event) {
  std::lock_guard lock(schedule_mu_);
  schedule_.push_back(event);
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const CrashEvent& a, const CrashEvent& b) { return a.at_step < b.at_step; });
}

std::vector<CrashEvent> FaultInjector::due(std::uint64_t step) {
  std::lock_guard lock(schedule_mu_);
  std::vector<CrashEvent> out;
  auto keep = schedule_.begin();
  for (auto it = schedule_.begin(); it != schedule_.end(); ++it) {
    if (it->at_step <= step) {
      out.push_back(*it);
    } else {
      *keep++ = *it;
    }
  }
  schedule_.erase(keep, schedule_.end());
  return out;
}

std::size_t FaultInjector::scheduled_remaining() const {
  std::lock_guard lock(schedule_mu_);
  return schedule_.size();
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.bus_drops = bus_drops_.load(std::memory_order_relaxed);
  s.bus_delays = bus_delays_.load(std::memory_order_relaxed);
  s.bus_duplicates = bus_dups_.load(std::memory_order_relaxed);
  s.fetch_failures = fetch_failures_.load(std::memory_order_relaxed);
  s.corrupt_reads = corrupt_reads_.load(std::memory_order_relaxed);
  s.sock_partial_writes = sock_partial_writes_.load(std::memory_order_relaxed);
  s.sock_resets = sock_resets_.load(std::memory_order_relaxed);
  s.sock_delays = sock_delays_.load(std::memory_order_relaxed);
  s.decisions = decisions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace spcache::fault
