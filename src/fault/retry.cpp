#include "fault/retry.h"

#include <algorithm>
#include <thread>

#include "common/hash_mix.h"

namespace spcache::fault {

std::uint64_t retry_token(std::uint64_t stream, std::uint64_t unit, std::uint64_t attempt) {
  // Full mix between fields (not just shifts) so small ids in one field
  // can never collide with small ids in another.
  return mix64(mix64(stream) ^ mix64(unit * 0x9e3779b97f4a7c15ULL + 1) ^ attempt);
}

std::chrono::microseconds backoff_delay(const RetryPolicy& policy, std::size_t attempt,
                                        std::uint64_t token) {
  if (attempt == 0) attempt = 1;
  const std::uint64_t shift = std::min<std::uint64_t>(attempt - 1, 32);
  const std::int64_t scaled = policy.base_backoff.count() * static_cast<std::int64_t>(1ULL << shift);
  std::chrono::microseconds delay{std::min(scaled, policy.max_backoff.count())};
  const double unit =
      static_cast<double>(mix64(policy.jitter_seed ^ token ^ (attempt * 0x9e3779b97f4a7c15ULL)) >>
                          11) *
      0x1.0p-53;
  const double factor = 1.0 + policy.jitter * (2.0 * unit - 1.0);
  return std::chrono::microseconds(
      static_cast<std::int64_t>(static_cast<double>(delay.count()) * std::max(0.0, factor)));
}

void backoff_sleep(const RetryPolicy& policy, std::size_t attempt, std::uint64_t token) {
  const auto delay = backoff_delay(policy, attempt, token);
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
}

}  // namespace spcache::fault
