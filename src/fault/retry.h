// Retry policy: capped exponential backoff with deterministic jitter.
//
// Shared by the degraded read paths (`SpClient::read`, `RpcSpClient`):
// a failed piece fetch is retried `piece_attempts` times with
// exponentially growing, jittered sleeps; a whole read pass (which
// re-fetches the layout, so it picks up a concurrent repair's
// re-placement) is repeated up to `read_attempts` times. Jitter is a pure
// function of (jitter_seed, token) — callers pass a token derived from
// (file, piece, attempt) — so retry timing is reproducible without
// threading an Rng through the hot path.
#pragma once

#include <chrono>
#include <cstdint>

namespace spcache::fault {

struct RetryPolicy {
  std::size_t piece_attempts = 3;  // fetch attempts per piece within one pass
  std::size_t read_attempts = 4;   // whole-read passes, each with a fresh layout lookup
  std::chrono::microseconds base_backoff{100};
  std::chrono::microseconds max_backoff{2000};
  double jitter = 0.5;  // delay scaled by a factor in [1 - jitter, 1 + jitter)
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

// Canonical jitter token for a retry site: mixes a caller-chosen stream
// tag (file id, request class — anything that separates concurrent retry
// loops), the unit within the stream (piece index, server id; 0 if none)
// and the attempt/pass number into one decorrelated 64-bit token.
// Callers used to hand-roll this with ad-hoc shift-and-xor recipes and
// magic multipliers; one mixer keeps the streams decorrelated by
// construction and greppable at every call site.
std::uint64_t retry_token(std::uint64_t stream, std::uint64_t unit, std::uint64_t attempt);

// Backoff before retry `attempt` (1-based): min(max, base * 2^(attempt-1)),
// scaled by the deterministic jitter factor for `token`.
std::chrono::microseconds backoff_delay(const RetryPolicy& policy, std::size_t attempt,
                                        std::uint64_t token);

// Sleep for backoff_delay(...). A zero base (or zero computed delay)
// returns immediately — tests can run retries hot.
void backoff_sleep(const RetryPolicy& policy, std::size_t attempt, std::uint64_t token);

}  // namespace spcache::fault
