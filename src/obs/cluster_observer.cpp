#include "obs/cluster_observer.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace spcache::obs {

double load_eta(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double max = 0.0;
  double total = 0.0;
  for (const double load : loads) {
    max = std::max(max, load);
    total += load;
  }
  const double mean = total / static_cast<double>(loads.size());
  if (mean <= 0.0) return 0.0;
  return (max - mean) / mean;
}

double ImbalanceWindow::update(const std::vector<double>& cumulative_loads) {
  if (previous_.size() != cumulative_loads.size()) {
    // First call (or the cluster was resized): establish the baseline.
    previous_ = cumulative_loads;
    last_window_.clear();
    last_eta_ = 0.0;
    return 0.0;
  }
  last_window_.resize(cumulative_loads.size());
  for (std::size_t i = 0; i < cumulative_loads.size(); ++i) {
    // Counters are monotone; clamp anyway so a reset can't produce a
    // negative load.
    last_window_[i] = std::max(0.0, cumulative_loads[i] - previous_[i]);
  }
  previous_ = cumulative_loads;
  last_eta_ = load_eta(last_window_);
  ++windows_;
  return last_eta_;
}

ClusterStats ClusterObserver::collect(const std::vector<double>& server_loads) const {
  const auto snap = registry_.snapshot();
  ClusterStats stats;

  stats.server_loads = server_loads;
  for (const double load : server_loads) stats.load_max = std::max(stats.load_max, load);
  if (!server_loads.empty()) {
    double total = 0.0;
    for (const double load : server_loads) total += load;
    stats.load_mean = total / static_cast<double>(server_loads.size());
  }
  if (stats.load_mean > 0.0) {
    stats.load_imbalance = stats.load_max / stats.load_mean;
    stats.load_eta = load_eta(server_loads);
  }

  if (const auto* hist = snap.histogram_named(names::kClientReadLatency)) {
    stats.read_latency = *hist;
    stats.read_mean_s = hist->mean();
    stats.read_p50_s = hist->percentile(0.50);
    stats.read_p95_s = hist->percentile(0.95);
    stats.read_p99_s = hist->percentile(0.99);
  }

  stats.reads = snap.counter_value(names::kClientReads);
  stats.read_failures = snap.counter_value(names::kClientReadFailures);
  stats.retries = snap.counter_value(names::kClientRetries);
  stats.degraded_reads = snap.counter_value(names::kClientDegradedReads);
  stats.degraded_pieces = snap.counter_value(names::kClientDegradedPieces);
  if (stats.reads > 0) {
    stats.degraded_read_rate =
        static_cast<double>(stats.degraded_reads) / static_cast<double>(stats.reads);
    stats.retry_rate = static_cast<double>(stats.retries) / static_cast<double>(stats.reads);
  }

  stats.bus_routed = snap.counter_value(names::kBusRouted);
  stats.bus_drops = snap.counter_value(names::kBusDrops);
  stats.bus_duplicates = snap.counter_value(names::kBusDuplicates);
  stats.transport_connects = snap.counter_value(names::kTransportConnects);
  stats.transport_reconnects = snap.counter_value(names::kTransportReconnects);
  stats.transport_framing_errors = snap.counter_value(names::kTransportFramingErrors);
  stats.transport_bytes_tx = snap.counter_value(names::kTransportBytesTx);
  stats.transport_bytes_rx = snap.counter_value(names::kTransportBytesRx);
  stats.transport_frames_dropped = snap.counter_value(names::kTransportFramesDropped);
  stats.transport_writev_calls = snap.counter_value(names::kTransportWritevCalls);
  stats.transport_frames_sent = snap.counter_value(names::kTransportFramesSent);
  if (stats.transport_writev_calls > 0) {
    stats.transport_frames_per_writev = static_cast<double>(stats.transport_frames_sent) /
                                        static_cast<double>(stats.transport_writev_calls);
    stats.transport_bytes_per_syscall = static_cast<double>(stats.transport_bytes_tx) /
                                        static_cast<double>(stats.transport_writev_calls);
  }
  stats.transport_connections_active = snap.gauge_value(names::kTransportConnectionsActive);
  stats.transport_backpressure_events = snap.counter_value(names::kTransportBackpressureEvents);
  stats.transport_backpressure_rejects = snap.counter_value(names::kTransportBackpressureRejects);
  stats.transport_backpressure_drops = snap.counter_value(names::kTransportBackpressureDrops);
  stats.transport_circuit_opens = snap.counter_value(names::kTransportCircuitOpens);
  stats.bus_deadline_shed = snap.counter_value(names::kBusDeadlineShed);
  // Peers whose breaker is currently open: the per-peer gauges are named
  // "transport.peer.<id>.circuit_open" and flip between 0 and 1.
  constexpr std::string_view kPeerPrefix = "transport.peer.";
  constexpr std::string_view kPeerSuffix = ".circuit_open";
  for (const auto& [name, value] : snap.gauges) {
    if (value != 1) continue;
    if (name.size() <= kPeerPrefix.size() + kPeerSuffix.size()) continue;
    if (name.compare(0, kPeerPrefix.size(), kPeerPrefix) != 0) continue;
    if (name.compare(name.size() - kPeerSuffix.size(), kPeerSuffix.size(), kPeerSuffix) != 0) {
      continue;
    }
    const std::string id_text =
        name.substr(kPeerPrefix.size(), name.size() - kPeerPrefix.size() - kPeerSuffix.size());
    char* end = nullptr;
    const unsigned long id = std::strtoul(id_text.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && !id_text.empty()) {
      stats.circuit_open_peers.push_back(static_cast<std::uint32_t>(id));
    }
  }
  std::sort(stats.circuit_open_peers.begin(), stats.circuit_open_peers.end());

  stats.codec_encode_bytes = snap.counter_value(names::kCodecEncodeBytes);
  stats.codec_decode_bytes = snap.counter_value(names::kCodecDecodeBytes);
  // The gauges carry x1e3 GB/s (gauges are integral); export real GB/s.
  stats.codec_encode_gbps =
      static_cast<double>(snap.gauge_value(names::kCodecEncodeGbps)) / 1e3;
  stats.codec_decode_gbps =
      static_cast<double>(snap.gauge_value(names::kCodecDecodeGbps)) / 1e3;
  stats.arena_high_water = snap.gauge_value(names::kArenaHighWater);
  stats.arena_fallback_allocs = snap.gauge_value(names::kArenaFallbackAllocs);

  stats.repartition_bytes_moved = snap.counter_value(names::kRepartitionBytesMoved);
  stats.repartition_bytes_saved = snap.counter_value(names::kRepartitionBytesSaved);
  if (const auto* hist = snap.histogram_named(names::kRepartitionCutover)) {
    stats.repartition_cutovers = hist->count();
    stats.repartition_cutover_p99_us = hist->percentile(0.99);
  }

  // Per-server suffix sums: attempts vs. misses vs. errors. A "hit" is a
  // GET that actually handed back a resident block.
  const std::uint64_t gets = snap.counter_suffix_sum(".gets");
  const std::uint64_t misses = snap.counter_suffix_sum(".misses");
  const std::uint64_t errors = snap.counter_suffix_sum(".get_errors");
  if (gets > 0) {
    const std::uint64_t failed = std::min(gets, misses + errors);
    stats.hit_ratio = static_cast<double>(gets - failed) / static_cast<double>(gets);
  }
  return stats;
}

std::string ClusterObserver::to_json(const ClusterStats& stats) {
  std::ostringstream out;
  out.precision(12);
  out << "{\"load\": {\"max\": " << stats.load_max << ", \"mean\": " << stats.load_mean
      << ", \"imbalance_max_over_mean\": " << stats.load_imbalance
      << ", \"eta\": " << stats.load_eta << ", \"per_server\": [";
  for (std::size_t i = 0; i < stats.server_loads.size(); ++i) {
    out << (i ? ", " : "") << stats.server_loads[i];
  }
  out << "]}, \"read_latency_s\": {\"count\": " << stats.reads
      << ", \"failures\": " << stats.read_failures << ", \"mean\": " << stats.read_mean_s
      << ", \"p50\": " << stats.read_p50_s << ", \"p95\": " << stats.read_p95_s
      << ", \"p99\": " << stats.read_p99_s << "}, \"hit_ratio\": " << stats.hit_ratio
      << ", \"degraded_read_rate\": " << stats.degraded_read_rate
      << ", \"retry_rate\": " << stats.retry_rate
      << ", \"degraded_pieces\": " << stats.degraded_pieces
      << ", \"repartition\": {\"bytes_moved\": " << stats.repartition_bytes_moved
      << ", \"bytes_saved\": " << stats.repartition_bytes_saved
      << ", \"cutovers\": " << stats.repartition_cutovers
      << ", \"cutover_p99_us\": " << stats.repartition_cutover_p99_us
      << "}, \"bus\": {\"routed\": " << stats.bus_routed << ", \"drops\": " << stats.bus_drops
      << ", \"duplicates\": " << stats.bus_duplicates
      << ", \"deadline_shed\": " << stats.bus_deadline_shed
      << "}, \"transport\": {\"connects\": " << stats.transport_connects
      << ", \"reconnects\": " << stats.transport_reconnects
      << ", \"framing_errors\": " << stats.transport_framing_errors
      << ", \"bytes_tx\": " << stats.transport_bytes_tx
      << ", \"bytes_rx\": " << stats.transport_bytes_rx
      << ", \"frames_dropped\": " << stats.transport_frames_dropped
      << ", \"writev_calls\": " << stats.transport_writev_calls
      << ", \"frames_sent\": " << stats.transport_frames_sent
      << ", \"frames_per_writev\": " << stats.transport_frames_per_writev
      << ", \"bytes_per_syscall\": " << stats.transport_bytes_per_syscall
      << ", \"connections_active\": " << stats.transport_connections_active
      << ", \"backpressure_events\": " << stats.transport_backpressure_events
      << ", \"backpressure_rejects\": " << stats.transport_backpressure_rejects
      << ", \"backpressure_drops\": " << stats.transport_backpressure_drops
      << ", \"circuit_opens\": " << stats.transport_circuit_opens
      << ", \"circuit_open_peers\": [";
  for (std::size_t i = 0; i < stats.circuit_open_peers.size(); ++i) {
    out << (i ? ", " : "") << stats.circuit_open_peers[i];
  }
  out << "]}, \"codec\": {\"encode_bytes\": " << stats.codec_encode_bytes
      << ", \"decode_bytes\": " << stats.codec_decode_bytes
      << ", \"encode_gbps\": " << stats.codec_encode_gbps
      << ", \"decode_gbps\": " << stats.codec_decode_gbps
      << "}, \"arena\": {\"high_water\": " << stats.arena_high_water
      << ", \"fallback_allocs\": " << stats.arena_fallback_allocs << "}}";
  return out.str();
}

}  // namespace spcache::obs
