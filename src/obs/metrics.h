// Cluster-wide metrics substrate: named relaxed-atomic counters/gauges and
// a concurrent fixed-bucket latency histogram, collected by a registry
// that can be snapshotted without stopping the world.
//
// SP-Cache's claims are statistical — per-server load converging toward
// 1/alpha (Section 5.1), the Eq. 9 fork-join bound tracking tail latency —
// so the substrate has to *measure* load distributions and latency
// percentiles, not just means. The design constraints, in order:
//
//   * lock-cheap hot path: a counter bump is one relaxed fetch_add, a
//     histogram record is one log2-ish bucket index plus two relaxed
//     fetch_adds. No mutex is ever taken while recording.
//   * tear-free snapshots: readers copy bucket counts with relaxed loads
//     and derive the total *from the copied buckets*, so every snapshot
//     satisfies count() == sum(buckets) by construction even while 16
//     writers are mid-flight (the invariant test pins this down).
//   * mergeable: snapshots merge by bucket-wise addition (identical fixed
//     geometry), so per-thread or per-phase histograms aggregate exactly;
//     phase deltas come from minus() on two snapshots of one histogram.
//
// Bucket geometry is geometric (8 buckets per decade, 100 ns .. ~1e5 s),
// shared by every LatencyHistogram so merge needs no rebinning; snapshots
// export into the repo's common/histogram printers for the ASCII plots the
// benches already emit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"

namespace spcache::obs {

// Monotonic event count. Relaxed ordering: these are statistical tallies,
// never synchronizers.
//
// Cache-line aligned (like Gauge): counters are 8-byte heap objects that
// the registry allocates back-to-back, so without the alignment two hot
// counters bumped by different threads (e.g. adjacent servers' gets) end
// up false-sharing one line — measurable in the 16-thread bench.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous signed level (queue depth, in-flight ops).
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// A point-in-time copy of a LatencyHistogram. Self-consistent: count()
// equals the sum of bucket counts by construction. Values are seconds.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // fixed geometry, see LatencyHistogram
  std::uint64_t total = 0;            // == sum(counts)
  double sum_seconds = 0.0;           // sum of recorded values

  std::uint64_t count() const { return total; }
  double mean() const { return total ? sum_seconds / static_cast<double>(total) : 0.0; }

  // q in [0, 1]; linear interpolation inside the chosen bucket. Monotone
  // in q. Returns 0 for an empty snapshot.
  double percentile(double q) const;

  // Bucket-wise sum (identical geometry, no rebinning).
  HistogramSnapshot& merge(const HistogramSnapshot& other);
  // This snapshot minus an earlier snapshot of the *same* histogram —
  // the per-phase delta used by the recovery bench.
  HistogramSnapshot minus(const HistogramSnapshot& earlier) const;

  // Export into the repo's standard printer: each bucket's count lands at
  // its center in a linear `bins`-bin Histogram over [0, hi_seconds).
  Histogram to_histogram(std::size_t bins, double hi_seconds) const;
};

// Concurrent fixed-bucket latency histogram. Writers are wait-free
// (relaxed atomics); snapshot() is safe at any time and never blocks a
// writer.
class LatencyHistogram {
 public:
  // 8 geometric buckets per decade from kLoSeconds up, bucket 0 catching
  // everything below and the last bucket open-ended above: 12 decades,
  // 100 ns .. ~1e5 s — every latency this repo models or measures fits.
  static constexpr std::size_t kBuckets = 97;
  static constexpr double kLoSeconds = 1e-7;
  static constexpr std::size_t kBucketsPerDecade = 8;

  void record(double seconds);

  std::uint64_t count() const { return total_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

  // Bucket bounds of the shared geometry (bucket 0 is [0, kLoSeconds)).
  static double bucket_lo(std::size_t i);
  static double bucket_hi(std::size_t i);
  static std::size_t bucket_index(double seconds);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  // Nanoseconds so the sum is a single integer fetch_add (no CAS loop).
  std::atomic<std::uint64_t> sum_ns_{0};
};

// Well-known metric names, so instrumented components and the
// ClusterObserver agree without compile-time coupling. Per-server metrics
// are "server.<id>.<leaf>"; the observer aggregates them by leaf suffix.
namespace names {
inline constexpr std::string_view kClientReads = "client.reads";
inline constexpr std::string_view kClientReadFailures = "client.read_failures";
inline constexpr std::string_view kClientRetries = "client.retries";
inline constexpr std::string_view kClientDegradedReads = "client.degraded_reads";
inline constexpr std::string_view kClientDegradedPieces = "client.degraded_pieces";
inline constexpr std::string_view kClientReadLatency = "client.read_s";        // wall
inline constexpr std::string_view kClientReadModelled = "client.read_model_s"; // virtual
// Metadata-light read path (client-side layout cache + coalesced GETs).
inline constexpr std::string_view kClientLayoutHits = "client.layout_cache.hits";
inline constexpr std::string_view kClientLayoutMisses = "client.layout_cache.misses";
inline constexpr std::string_view kClientLayoutInvalidations =
    "client.layout_cache.invalidations";
inline constexpr std::string_view kClientSingleFlightShared = "client.singleflight_shared";
inline constexpr std::string_view kMasterLookups = "master.lookups";
inline constexpr std::string_view kMasterLookupsSaved = "master.lookups_saved";
inline constexpr std::string_view kMasterUpdates = "master.updates";
inline constexpr std::string_view kMasterShardContention = "master.shard_contention";
inline constexpr std::string_view kMasterLookupLatency = "master.lookup_s";
inline constexpr std::string_view kMasterRepartitionLatency = "master.repartition_s";
inline constexpr std::string_view kMasterRepartitions = "master.repartitions";
inline constexpr std::string_view kBusRouted = "bus.routed";
inline constexpr std::string_view kBusInFlight = "bus.in_flight";
inline constexpr std::string_view kBusDrops = "bus.drops";
inline constexpr std::string_view kBusDelays = "bus.delays";
inline constexpr std::string_view kBusDuplicates = "bus.duplicates";
// Multi-GET coalescing: envelopes NOT sent because pieces shared a
// destination worker (pieces - distinct workers, per read fan-out).
inline constexpr std::string_view kBusEnvelopesCoalesced = "bus.envelopes_coalesced";
// Mailbox batch drains: service loops that swapped the whole deque under
// one lock/cv cycle, and how many envelopes those swaps carried.
inline constexpr std::string_view kBusMailboxBatches = "bus.mailbox_batches";
inline constexpr std::string_view kBusMailboxBatchedEnvelopes =
    "bus.mailbox_batched_envelopes";
// Requests shed at dispatch because their propagated deadline expired in
// the mailbox, and sends refused before the wire (transport backpressure
// or an open circuit breaker).
inline constexpr std::string_view kBusDeadlineShed = "bus.deadline_shed";
inline constexpr std::string_view kBusSendRejected = "bus.send_rejected";
// TCP transport (rpc/tcp_transport.h): connection lifecycle and wire
// volume. framing_errors > 0 means a peer's byte stream was malformed —
// the smoke gate in tools/check.sh fails the run on it.
inline constexpr std::string_view kTransportConnects = "transport.connects";
inline constexpr std::string_view kTransportReconnects = "transport.reconnects";
inline constexpr std::string_view kTransportFramingErrors = "transport.framing_errors";
inline constexpr std::string_view kTransportBytesTx = "transport.bytes_tx";
inline constexpr std::string_view kTransportBytesRx = "transport.bytes_rx";
inline constexpr std::string_view kTransportFramesDropped = "transport.frames_dropped";
// Backpressure on the bounded per-connection write queues: events = times
// a queue crossed its high watermark, rejects = sends refused fast while a
// peer was flagged, drops = envelopes discarded at the hard cap (2x high),
// wqueue_peak = high-water mark of any queue's byte depth.
inline constexpr std::string_view kTransportBackpressureEvents =
    "transport.backpressure_events";
inline constexpr std::string_view kTransportBackpressureRejects =
    "transport.backpressure_rejects";
inline constexpr std::string_view kTransportBackpressureDrops =
    "transport.backpressure_drops";
inline constexpr std::string_view kTransportWqueuePeak = "transport.wqueue_peak";
// Per-peer circuit breaker: opens = closed->open transitions, fast_fails =
// sends refused while a circuit was open. Per-peer state is the gauge
// "transport.peer.<id>.circuit_open" (1 = open or half-open).
inline constexpr std::string_view kTransportCircuitOpens = "transport.circuit_opens";
inline constexpr std::string_view kTransportCircuitFastFails =
    "transport.circuit_fast_fails";
// Live socket count (listen-accepted + outbound), maintained by the loop.
inline constexpr std::string_view kTransportConnectionsActive =
    "transport.connections_active";
// Write-path syscall budget: gather syscalls issued (writev) and frames
// fully drained by them. frames_sent/writev_calls is the mean scatter-
// gather batch depth; bytes_tx/writev_calls the mean bytes per syscall —
// ClusterObserver exports both ratios as transport.frames_per_writev and
// transport.bytes_per_syscall.
inline constexpr std::string_view kTransportWritevCalls = "transport.writev_calls";
inline constexpr std::string_view kTransportFramesSent = "transport.frames_sent";
inline constexpr std::string_view kMonitorDeaths = "monitor.deaths_declared";
inline constexpr std::string_view kMonitorRepairs = "monitor.repairs_completed";
inline constexpr std::string_view kMonitorRepairSpan = "monitor.detect_to_repair_s";
inline constexpr std::string_view kRecoveryPieces = "recovery.pieces_recovered";
inline constexpr std::string_view kRecoveryBytes = "recovery.bytes_restored";
inline constexpr std::string_view kRecoveryRepairTime = "recovery.repair_model_s";
// Delta repartition (two-phase cutover): remote bytes actually migrated,
// bytes already resident on their destination (never sent), and the width
// of the per-file publish critical section. The histogram records
// MICROseconds (the geometry is unit-agnostic; the name carries the unit).
inline constexpr std::string_view kRepartitionBytesMoved = "repartition.bytes_moved";
inline constexpr std::string_view kRepartitionBytesSaved = "repartition.bytes_saved";
inline constexpr std::string_view kRepartitionCutover = "repartition.cutover_us";
// Online alpha controller (cluster/alpha_controller.h): the closed
// observe->decide->act loop. triggers = windowed eta crossed the
// threshold; adaptations = re-runs of Algorithm 1 whose new alpha was
// acted on; skipped_* = triggers suppressed by hysteresis (cooldown
// window, or new alpha within the deadband of the current one). The
// gauges export the controller's current alpha (x1e6, gauges are
// integral) and the last windowed eta (x1e6).
inline constexpr std::string_view kControllerTriggers = "controller.triggers";
inline constexpr std::string_view kControllerAdaptations = "controller.adaptations";
inline constexpr std::string_view kControllerSkippedCooldown =
    "controller.skipped_cooldown";
inline constexpr std::string_view kControllerSkippedDeadband =
    "controller.skipped_deadband";
inline constexpr std::string_view kControllerSplits = "controller.splits";
inline constexpr std::string_view kControllerMerges = "controller.merges";
inline constexpr std::string_view kControllerBytesMoved = "controller.bytes_moved";
inline constexpr std::string_view kControllerSearchIterations =
    "controller.search_iterations";
inline constexpr std::string_view kControllerAlphaMicro = "controller.alpha_x1e6";
inline constexpr std::string_view kControllerEtaMicro = "controller.eta_x1e6";
// Data-plane kernels (src/simd + common/arena.h): cumulative bytes pushed
// through the RS codec, the most recent single-op throughput (x1e3 GB/s —
// gauges are integral), and the read-scratch arena's occupancy/spill
// telemetry. arena.fallback_allocs > 0 flags an undersized arena (the
// read-path allocation test and the check.sh kernels gate assert 0).
inline constexpr std::string_view kCodecEncodeBytes = "codec.encode_bytes";
inline constexpr std::string_view kCodecDecodeBytes = "codec.decode_bytes";
inline constexpr std::string_view kCodecEncodeGbps = "codec.encode_gbps_x1e3";
inline constexpr std::string_view kCodecDecodeGbps = "codec.decode_gbps_x1e3";
inline constexpr std::string_view kArenaBytesInUse = "arena.bytes_in_use";
inline constexpr std::string_view kArenaHighWater = "arena.high_water";
inline constexpr std::string_view kArenaFallbackAllocs = "arena.fallback_allocs";
// Per-server leaf names (full name: server.<id>.<leaf>).
inline constexpr std::string_view kServerGets = "gets";
inline constexpr std::string_view kServerMisses = "misses";
inline constexpr std::string_view kServerErrors = "get_errors";
inline constexpr std::string_view kServerPuts = "puts";
inline constexpr std::string_view kServerServiceTime = "service_s";
inline constexpr std::string_view kServerInFlight = "in_flight";

std::string server_metric(std::uint32_t server, std::string_view leaf);
}  // namespace names

// Named metric store. Registration takes a mutex once per name; the
// returned references are stable for the registry's lifetime, so hot
// paths resolve their metrics at attach time and never touch the map
// again. snapshot() walks the (sorted) maps under the registration mutex
// — it contends only with registration, never with recording.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    // Sum of all counters whose name ends with `suffix` (".gets" sums the
    // per-server GET counters).
    std::uint64_t counter_suffix_sum(std::string_view suffix) const;
    std::uint64_t counter_value(std::string_view name) const;  // 0 if absent
    std::int64_t gauge_value(std::string_view name) const;     // 0 if absent
    const HistogramSnapshot* histogram_named(std::string_view name) const;
  };
  Snapshot snapshot() const;

  // Flat JSON dump of every metric (histograms as percentile summaries).
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace spcache::obs
