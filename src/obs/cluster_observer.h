// ClusterObserver: per-server snapshots aggregated into the paper's
// headline statistics.
//
// The evaluation quantities SP-Cache is judged on (Section 7) are cluster
// aggregates, not per-component counters: the load imbalance of Fig. 12
// (max vs. mean bytes served per server, and eta = (max-mean)/mean of
// Eq. 15), read latency percentiles (mean/p50/p95/p99, Figs. 13/21), the
// hit ratio (Fig. 20), and the degraded/retry rates of the fault-tolerance
// story (Section 8). The observer derives all of them from one
// MetricsRegistry snapshot plus the per-server cumulative loads, so a
// bench or a chaos test gets the whole dashboard from a single call —
// and the JSON export lets BENCH_*.json carry measured percentile curves
// instead of recomputed means.
//
// Layering: obs knows nothing about the cluster types. Callers pass
// Cluster::served_bytes() (or any per-server load vector); the observer
// finds client/server metrics by their well-known names (obs::names).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace spcache::obs {

// Eq. 15 load imbalance over a load vector: (max - mean) / mean, or 0 when
// the vector is empty or all-zero. The single definition shared by
// ClusterObserver::collect, the ImbalanceWindow trigger, and the benches.
double load_eta(const std::vector<double>& loads);

// Windowed Eq. 15 imbalance over *cumulative* per-server loads
// (Cluster::served_bytes() grows monotonically). Each update() takes the
// current cumulative vector, differences it against the previous call's,
// and returns eta of the delta — the imbalance of the traffic since the
// last observation, not since process start. This is what the online
// alpha controller triggers on: a flash crowd must be visible in the
// *recent* window even when hours of balanced history dominate the
// cumulative totals.
class ImbalanceWindow {
 public:
  // Eta of the window since the previous update (0.0 on the first call,
  // which only establishes the baseline).
  double update(const std::vector<double>& cumulative_loads);

  double last_eta() const { return last_eta_; }
  std::uint64_t windows() const { return windows_; }
  // Per-server load delta of the most recent window (empty before the
  // second update). The controller hands this to Algorithm 1 as the
  // observed traffic it must rebalance.
  const std::vector<double>& last_window() const { return last_window_; }

 private:
  std::vector<double> previous_;
  std::vector<double> last_window_;
  double last_eta_ = 0.0;
  std::uint64_t windows_ = 0;
};

struct ClusterStats {
  // Load distribution (bytes served per server since the last reset).
  std::vector<double> server_loads;
  double load_max = 0.0;
  double load_mean = 0.0;
  double load_imbalance = 0.0;  // max/mean (1.0 = perfectly balanced)
  double load_eta = 0.0;        // (max - mean)/mean, the paper's Eq. 15

  // End-to-end read latency (merged client histograms, seconds).
  std::uint64_t reads = 0;
  std::uint64_t read_failures = 0;
  double read_mean_s = 0.0;
  double read_p50_s = 0.0;
  double read_p95_s = 0.0;
  double read_p99_s = 0.0;
  HistogramSnapshot read_latency;  // full distribution for custom queries

  // Health / fault-tolerance rates.
  double hit_ratio = 0.0;          // served GETs / attempted GETs
  double degraded_read_rate = 0.0; // degraded reads / completed reads
  double retry_rate = 0.0;         // retries per completed read
  std::uint64_t retries = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t degraded_pieces = 0;

  // Delta repartition: migrated vs. never-sent bytes, and the width of the
  // publish critical section (one histogram sample per file cut over).
  std::uint64_t repartition_bytes_moved = 0;
  std::uint64_t repartition_bytes_saved = 0;
  std::uint64_t repartition_cutovers = 0;
  double repartition_cutover_p99_us = 0.0;

  // Message fabric: Bus routing totals (both backends) plus the TCP
  // transport's connection/wire counters (zero under inproc).
  std::uint64_t bus_routed = 0;
  std::uint64_t bus_drops = 0;
  std::uint64_t bus_duplicates = 0;
  std::uint64_t transport_connects = 0;
  std::uint64_t transport_reconnects = 0;
  std::uint64_t transport_framing_errors = 0;
  std::uint64_t transport_bytes_tx = 0;
  std::uint64_t transport_bytes_rx = 0;
  std::uint64_t transport_frames_dropped = 0;
  // Syscall budget of the batched write path: frames_per_writev > 1 means
  // scatter-gather is amortizing syscalls; bytes_per_syscall is the mean
  // payload a single ::writev carried.
  std::uint64_t transport_writev_calls = 0;
  std::uint64_t transport_frames_sent = 0;
  double transport_frames_per_writev = 0.0;
  double transport_bytes_per_syscall = 0.0;
  // Overload / failure-isolation state (zero under inproc): bounded
  // write-queue backpressure, deadline shedding, and per-peer circuit
  // breakers ("transport.peer.<id>.circuit_open" gauges at 1).
  std::int64_t transport_connections_active = 0;
  std::uint64_t transport_backpressure_events = 0;
  std::uint64_t transport_backpressure_rejects = 0;
  std::uint64_t transport_backpressure_drops = 0;
  std::uint64_t transport_circuit_opens = 0;
  std::uint64_t bus_deadline_shed = 0;
  std::vector<std::uint32_t> circuit_open_peers;

  // Data-plane kernels: cumulative bytes through the RS codec, the most
  // recent single-op throughput (GB/s), and the read-scratch arena's
  // telemetry. arena_fallback_allocs > 0 means some read spilled past its
  // arena to the heap — the allocation-free invariant was missed.
  std::uint64_t codec_encode_bytes = 0;
  std::uint64_t codec_decode_bytes = 0;
  double codec_encode_gbps = 0.0;
  double codec_decode_gbps = 0.0;
  std::int64_t arena_high_water = 0;
  std::int64_t arena_fallback_allocs = 0;
};

class ClusterObserver {
 public:
  explicit ClusterObserver(const MetricsRegistry& registry) : registry_(registry) {}

  // Aggregate the registry's current state with per-server cumulative
  // loads (Cluster::served_bytes()). Safe to call at any time, including
  // mid-chaos — every input is a tear-free snapshot.
  ClusterStats collect(const std::vector<double>& server_loads) const;

  static std::string to_json(const ClusterStats& stats);
  std::string to_json(const std::vector<double>& server_loads) const {
    return to_json(collect(server_loads));
  }

 private:
  const MetricsRegistry& registry_;
};

}  // namespace spcache::obs
