// Structured trace events over a bounded ring (the cluster's flight
// recorder).
//
// Every interesting transition on the read/repair/chaos paths — read
// start, per-piece fetch, retry, degrade-to-stable, repair span,
// repartition, bus faults — is recorded as one fixed-size `TraceEvent`
// with a monotonic timestamp and a per-operation id, so a chaos run can be
// reconstructed event by event after the fact. Two properties the test
// suite relies on:
//
//   * determinism: with a seeded FaultInjector and a single-threaded
//     client, the event sequence (minus timestamps) is a pure function of
//     the seed — replaying a chaotic run twice yields identical traces;
//   * completeness: every retry and every degraded piece the IoResult
//     telemetry reports has a matching trace event — the trace never
//     silently drops a fault the counters saw.
//
// The ring is bounded: when full, the oldest events are overwritten and
// counted in dropped() — tracing never grows without bound and never
// throws on the hot path. Recording takes a short mutex (append + index
// bump); components treat the recorder pointer as optional and skip the
// call entirely when tracing is detached.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace spcache::obs {

enum class TraceKind : std::uint8_t {
  kReadStart = 0,    // op, file
  kReadDone,         // op, file, value = wall seconds
  kReadFailed,       // op, file (retry budget exhausted)
  kReadRepeatPass,   // op, file, value = pass number (layout re-fetched)
  kPieceFetch,       // op, file, server, piece, value = bytes
  kPieceRetry,       // op, file, server, piece, value = attempt number
  kPieceDegraded,    // op, file, piece (served from stable storage)
  kRepairStart,      // server (loss being repaired)
  kRepairDone,       // server, value = detection-to-repaired wall seconds
  kRepartitionStart, // op, value = files to touch
  kRepartitionDone,  // op, value = modelled seconds
  kRepartitionCutover,  // file, value = publish critical-section wall seconds
  kServerDeclaredDead,  // server
  kServerRejoined,      // server
  kBusDrop,          // (no op context)
  kBusDelay,
  kBusDuplicate,
  // Online alpha controller (cluster/alpha_controller.h): the observed
  // window imbalance crossed the trigger, and the adaptation it produced.
  kAlphaTrigger,     // value = windowed Eq. 15 eta
  kAlphaAdapted,     // value = new alpha (post-refine)
  // Scenario driver (scenario/driver.h): phase boundary marker.
  kScenarioPhase,    // file = phase index, value = requests in the phase
};

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  std::uint64_t seq = 0;   // global record order (monotone, never reused)
  std::uint64_t op = 0;    // per-operation id from begin_op(); 0 = none
  TraceKind kind = TraceKind::kReadStart;
  std::uint64_t file = 0;
  std::uint32_t server = 0;
  std::uint32_t piece = 0;
  std::int64_t t_ns = 0;   // monotonic ns since the recorder's epoch
  double value = 0.0;      // kind-specific payload

  // True for kinds whose `value` is a measured wall-clock duration rather
  // than deterministic payload (bytes, attempt numbers, modelled seconds).
  static bool value_is_wall_clock(TraceKind kind) {
    return kind == TraceKind::kReadDone || kind == TraceKind::kRepairDone ||
           kind == TraceKind::kRepartitionCutover;
  }

  // Replay identity: everything except seq, the wall timestamp, and
  // wall-clock-valued payloads.
  bool same_shape(const TraceEvent& other) const {
    return op == other.op && kind == other.kind && file == other.file &&
           server == other.server && piece == other.piece &&
           (value_is_wall_clock(kind) || value == other.value);
  }
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  // Allocate a fresh operation id (1-based; 0 means "no op context").
  std::uint64_t begin_op() { return next_op_.fetch_add(1, std::memory_order_relaxed) + 1; }

  void record(TraceKind kind, std::uint64_t op = 0, std::uint64_t file = 0,
              std::uint32_t server = 0, std::uint32_t piece = 0, double value = 0.0);

  // Retained events, oldest first (at most capacity()).
  std::vector<TraceEvent> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const;  // total ever recorded
  std::uint64_t dropped() const;   // overwritten by ring wrap
  // Discard retained events. The seq and op spaces keep counting — a
  // sequence number is never reused, even across clear().
  void clear();

  // JSON array of the newest `max_events` retained events.
  std::string to_json(std::size_t max_events = 256) const;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;   // capacity_ slots; oldest at head_
  std::size_t head_ = 0;           // index of the oldest retained event
  std::size_t size_ = 0;           // retained events (<= capacity_)
  std::uint64_t next_seq_ = 0;     // == recorded(); survives clear()
  std::uint64_t dropped_ = 0;      // ring-wrap overwrites
  std::atomic<std::uint64_t> next_op_{0};
};

}  // namespace spcache::obs
