#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace spcache::obs {

namespace {

// ratio = 10^(1/8): 8 buckets per decade.
const double kRatio = std::pow(10.0, 1.0 / static_cast<double>(LatencyHistogram::kBucketsPerDecade));
const double kLogRatio = std::log(kRatio);

}  // namespace

double LatencyHistogram::bucket_lo(std::size_t i) {
  if (i == 0) return 0.0;
  return kLoSeconds * std::pow(kRatio, static_cast<double>(i - 1));
}

double LatencyHistogram::bucket_hi(std::size_t i) {
  return kLoSeconds * std::pow(kRatio, static_cast<double>(i));
}

std::size_t LatencyHistogram::bucket_index(double seconds) {
  if (!(seconds >= kLoSeconds)) return 0;  // also catches NaN and negatives
  const auto i =
      static_cast<std::size_t>(std::floor(std::log(seconds / kLoSeconds) / kLogRatio)) + 1;
  return std::min(i, kBuckets - 1);
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0 || std::isnan(seconds)) seconds = 0.0;
  counts_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9), std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kBuckets);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += snap.counts[i];
  }
  // Derived from the copied buckets, so the snapshot is self-consistent
  // even when writers are racing the copy.
  snap.total = total;
  snap.sum_seconds = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double HistogramSnapshot::percentile(double q) const {
  if (total == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += counts[i];
    if (static_cast<double>(seen) >= target) {
      const double lo = LatencyHistogram::bucket_lo(i);
      const double hi = LatencyHistogram::bucket_hi(i);
      const double frac =
          counts[i] ? (target - before) / static_cast<double>(counts[i]) : 0.0;
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
  }
  return LatencyHistogram::bucket_hi(counts.size() - 1);
}

HistogramSnapshot& HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (counts.size() < other.counts.size()) counts.resize(other.counts.size(), 0);
  for (std::size_t i = 0; i < other.counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum_seconds += other.sum_seconds;
  return *this;
}

HistogramSnapshot HistogramSnapshot::minus(const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.counts.resize(counts.size());
  std::uint64_t total_out = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = i < earlier.counts.size() ? earlier.counts[i] : 0;
    out.counts[i] = counts[i] >= prev ? counts[i] - prev : 0;
    total_out += out.counts[i];
  }
  out.total = total_out;
  out.sum_seconds = std::max(0.0, sum_seconds - earlier.sum_seconds);
  return out;
}

Histogram HistogramSnapshot::to_histogram(std::size_t bins, double hi_seconds) const {
  Histogram h(0.0, hi_seconds, bins);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double center =
        0.5 * (LatencyHistogram::bucket_lo(i) + LatencyHistogram::bucket_hi(i));
    h.add(center, static_cast<double>(counts[i]));
  }
  return h;
}

namespace names {
std::string server_metric(std::uint32_t server, std::string_view leaf) {
  std::string out = "server.";
  out += std::to_string(server);
  out += '.';
  out += leaf;
  return out;
}
}  // namespace names

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h->snapshot());
  return snap;
}

std::uint64_t MetricsRegistry::Snapshot::counter_suffix_sum(std::string_view suffix) const {
  std::uint64_t sum = 0;
  for (const auto& [name, value] : counters) {
    if (name.size() >= suffix.size() &&
        std::string_view(name).substr(name.size() - suffix.size()) == suffix) {
      sum += value;
    }
  }
  return sum;
}

std::uint64_t MetricsRegistry::Snapshot::counter_value(std::string_view name) const {
  for (const auto& [n, value] : counters) {
    if (n == name) return value;
  }
  return 0;
}

std::int64_t MetricsRegistry::Snapshot::gauge_value(std::string_view name) const {
  for (const auto& [n, value] : gauges) {
    if (n == name) return value;
  }
  return 0;
}

const HistogramSnapshot* MetricsRegistry::Snapshot::histogram_named(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string MetricsRegistry::to_json() const {
  const auto snap = snapshot();
  std::ostringstream out;
  out.precision(12);
  out << "{\"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? ", " : "") << "\"" << snap.counters[i].first << "\": " << snap.counters[i].second;
  }
  out << "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i ? ", " : "") << "\"" << snap.gauges[i].first << "\": " << snap.gauges[i].second;
  }
  out << "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    out << (i ? ", " : "") << "\"" << name << "\": {\"count\": " << h.count()
        << ", \"mean_s\": " << h.mean() << ", \"p50_s\": " << h.percentile(0.50)
        << ", \"p95_s\": " << h.percentile(0.95) << ", \"p99_s\": " << h.percentile(0.99)
        << "}";
  }
  out << "}}";
  return out.str();
}

}  // namespace spcache::obs
