#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace spcache::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kReadStart: return "read_start";
    case TraceKind::kReadDone: return "read_done";
    case TraceKind::kReadFailed: return "read_failed";
    case TraceKind::kReadRepeatPass: return "read_repeat_pass";
    case TraceKind::kPieceFetch: return "piece_fetch";
    case TraceKind::kPieceRetry: return "piece_retry";
    case TraceKind::kPieceDegraded: return "piece_degraded";
    case TraceKind::kRepairStart: return "repair_start";
    case TraceKind::kRepairDone: return "repair_done";
    case TraceKind::kRepartitionStart: return "repartition_start";
    case TraceKind::kRepartitionDone: return "repartition_done";
    case TraceKind::kRepartitionCutover: return "repartition_cutover";
    case TraceKind::kServerDeclaredDead: return "server_declared_dead";
    case TraceKind::kServerRejoined: return "server_rejoined";
    case TraceKind::kBusDrop: return "bus_drop";
    case TraceKind::kBusDelay: return "bus_delay";
    case TraceKind::kBusDuplicate: return "bus_duplicate";
    case TraceKind::kAlphaTrigger: return "alpha_trigger";
    case TraceKind::kAlphaAdapted: return "alpha_adapted";
    case TraceKind::kScenarioPhase: return "scenario_phase";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

void TraceRecorder::record(TraceKind kind, std::uint64_t op, std::uint64_t file,
                           std::uint32_t server, std::uint32_t piece, double value) {
  TraceEvent event;
  event.op = op;
  event.kind = kind;
  event.file = file;
  event.server = server;
  event.piece = piece;
  event.value = value;
  event.t_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  std::lock_guard lock(mu_);
  event.seq = next_seq_++;
  if (size_ < capacity_) {
    ring_[(head_ + size_) % capacity_] = event;
    ++size_;
  } else {
    ring_[head_] = event;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard lock(mu_);
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(ring_[(head_ + i) % capacity_]);
  return out;
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard lock(mu_);
  return next_seq_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  head_ = 0;
  size_ = 0;
  // next_seq_ and next_op_ keep counting: sequence numbers are never
  // reused, so post-clear events still sort after pre-clear ones.
}

std::string TraceRecorder::to_json(std::size_t max_events) const {
  const auto events = snapshot();
  const std::size_t start = events.size() > max_events ? events.size() - max_events : 0;
  std::ostringstream out;
  out.precision(12);
  out << "[";
  for (std::size_t i = start; i < events.size(); ++i) {
    const auto& e = events[i];
    out << (i == start ? "" : ", ") << "{\"seq\": " << e.seq << ", \"op\": " << e.op
        << ", \"kind\": \"" << trace_kind_name(e.kind) << "\", \"file\": " << e.file
        << ", \"server\": " << e.server << ", \"piece\": " << e.piece
        << ", \"t_ns\": " << e.t_ns << ", \"value\": " << e.value << "}";
  }
  out << "]";
  return out.str();
}

}  // namespace spcache::obs
