// Transport seam of the RPC layer: how envelopes travel between nodes.
//
// The paper's deployment (Fig. 9) is a set of networked OS processes —
// SP-Master, cache workers, SP-Clients, SP-Repartitioners. Everything in
// this repo speaks length-delimited binary envelopes already; the only
// thing that distinguishes a fast in-process test cluster from a real
// multi-process one is *how an envelope reaches its destination mailbox*.
// That seam is the `Transport` interface below:
//
//   * `InprocTransport` (this file) — the mailbox routing the repo grew up
//     on: a shared registry of local `RpcNode`s, delivery is a deque push.
//     Deterministic, allocation-light, and the default every test and
//     bench keeps using.
//   * `TcpTransport` (rpc/tcp_transport.h) — the same envelopes framed
//     onto real sockets via an epoll event loop, so a cluster runs as
//     actual OS processes (tools/spcache_masterd, tools/spcache_serverd).
//
// Everything above the seam — `RpcNode`, `Bus` chaos/observability hooks,
// `RpcSpClient`, cache and repartitioner services — is transport-agnostic:
// services keep taking `Bus&` and never learn which backend carries their
// bytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace spcache::obs {
class MetricsRegistry;
}  // namespace spcache::obs

namespace spcache::rpc {

using NodeId = std::uint32_t;
using MethodId = std::uint16_t;

// Status byte leading every reply payload.
//   kTransportOverloaded — the send was refused before touching the wire:
//     the destination's write queue sits above its high watermark or its
//     circuit breaker is open. A fast, retryable signal (back off, do not
//     pile more bytes onto a struggling peer).
//   kDeadlineExpired — the server shed the request because its propagated
//     deadline had already passed when the service thread reached it;
//     the caller has long stopped waiting, so no handler ran.
enum class Status : std::uint8_t {
  kOk = 0,
  kError = 1,
  kNoSuchMethod = 2,
  kWrongEpoch = 3,
  kTransportOverloaded = 4,
  kDeadlineExpired = 5,
};

// Outcome of handing an envelope to a transport.
//   kAccepted  — the transport took it (acceptance is not delivery; losses
//                surface at the caller's timeout).
//   kNoRoute   — the destination is not a known endpoint; the caller turns
//                this into an immediate "no such node" error.
//   kOverloaded — refused by backpressure: the peer's write queue is above
//                its high watermark. Immediate kTransportOverloaded error.
//   kCircuitOpen — refused by the peer's circuit breaker after consecutive
//                connection failures; retried sends pass again once a
//                half-open probe succeeds.
enum class SendStatus : std::uint8_t { kAccepted = 0, kNoRoute, kOverloaded, kCircuitOpen };

// Thrown by a handler that detects a stale layout epoch in the request
// (e.g. a cache server asked for blocks of a layout that has since been
// repartitioned). dispatch_request turns it into a kWrongEpoch reply —
// distinguishable from kError so clients invalidate their cached layout
// and re-LOOKUP instead of burning retries against the same stale layout.
class WrongEpochError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t request_id = 0;  // matches replies to calls
  bool is_reply = false;
  MethodId method = 0;
  // Remaining time budget when the envelope was sent (0 = none). Carried
  // on the wire as a *relative* duration — robust to clock skew between
  // processes — and measured against `accepted_at` on the receiving side,
  // so a request that sat in a queue past its budget is shed with
  // kDeadlineExpired instead of running a handler nobody waits for.
  std::uint32_t deadline_ms = 0;
  // Stamped by RpcNode::deliver on the receiving side; not on the wire.
  std::chrono::steady_clock::time_point accepted_at{};
  std::vector<std::uint8_t> payload;
};

// The reply to a call: status + payload (error text for non-kOk).
struct Reply {
  Status status = Status::kOk;
  std::vector<std::uint8_t> payload;

  bool ok() const { return status == Status::kOk; }
  // Error message carried by a failed reply.
  std::string error_text() const { return std::string(payload.begin(), payload.end()); }
};

class RpcNode;

// Where envelopes go once the Bus has applied fault injection and
// accounting. One transport per Bus; local endpoints register through
// Bus::add / Bus::remove, which forward here.
class Transport {
 public:
  virtual ~Transport() = default;

  // Local endpoint registration: inbound envelopes addressed to `id` are
  // delivered into `node`'s mailbox. detach() must not return while a
  // concurrent delivery to that node is in flight — RpcNode's destructor
  // relies on this to tear down safely.
  virtual void attach(NodeId id, RpcNode& node) = 0;
  virtual void detach(NodeId id) = 0;

  // Carry `envelope` toward its destination. kNoRoute when the
  // destination is not a known endpoint, kOverloaded/kCircuitOpen when
  // backpressure or the peer's breaker refuses it (both become immediate,
  // typed error replies at the caller); kAccepted means the transport
  // *accepted* the send. Like a real network, acceptance is not delivery —
  // losses surface at the caller's timeout, never as a hang
  // (RpcNode::call_sync pairs every bounded wait with forget()).
  virtual SendStatus send(Envelope envelope) = 0;

  // Resolve transport-level metrics in `registry` and start counting
  // (no-op for transports with nothing to count). Forwarded by
  // Bus::attach_observability so callers wire one seam.
  virtual void attach_observability(obs::MetricsRegistry* registry);

  // Stop moving envelopes and release transport resources (sockets,
  // threads). Idempotent; a destructor-only teardown is also legal.
  virtual void shutdown() {}
};

// The in-process mailbox transport: routes by node id through a local
// registry. Extracted verbatim from the original Bus routing, so every
// pre-existing test and bench behaves identically.
class InprocTransport final : public Transport {
 public:
  void attach(NodeId id, RpcNode& node) override;
  void detach(NodeId id) override;
  SendStatus send(Envelope envelope) override;

 private:
  // Held shared across the whole lookup + deliver so a node cannot be
  // destroyed while an envelope is in flight to it: detach() takes it
  // exclusively and thus waits out concurrent deliveries.
  std::shared_mutex mu_;
  std::unordered_map<NodeId, RpcNode*> nodes_;
};

}  // namespace spcache::rpc
