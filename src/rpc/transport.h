// Transport seam of the RPC layer: how envelopes travel between nodes.
//
// The paper's deployment (Fig. 9) is a set of networked OS processes —
// SP-Master, cache workers, SP-Clients, SP-Repartitioners. Everything in
// this repo speaks length-delimited binary envelopes already; the only
// thing that distinguishes a fast in-process test cluster from a real
// multi-process one is *how an envelope reaches its destination mailbox*.
// That seam is the `Transport` interface below:
//
//   * `InprocTransport` (this file) — the mailbox routing the repo grew up
//     on: a shared registry of local `RpcNode`s, delivery is a deque push.
//     Deterministic, allocation-light, and the default every test and
//     bench keeps using.
//   * `TcpTransport` (rpc/tcp_transport.h) — the same envelopes framed
//     onto real sockets via an epoll event loop, so a cluster runs as
//     actual OS processes (tools/spcache_masterd, tools/spcache_serverd).
//
// Everything above the seam — `RpcNode`, `Bus` chaos/observability hooks,
// `RpcSpClient`, cache and repartitioner services — is transport-agnostic:
// services keep taking `Bus&` and never learn which backend carries their
// bytes.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace spcache::obs {
class MetricsRegistry;
}  // namespace spcache::obs

namespace spcache::rpc {

using NodeId = std::uint32_t;
using MethodId = std::uint16_t;

// Status byte leading every reply payload.
enum class Status : std::uint8_t { kOk = 0, kError = 1, kNoSuchMethod = 2, kWrongEpoch = 3 };

// Thrown by a handler that detects a stale layout epoch in the request
// (e.g. a cache server asked for blocks of a layout that has since been
// repartitioned). dispatch_request turns it into a kWrongEpoch reply —
// distinguishable from kError so clients invalidate their cached layout
// and re-LOOKUP instead of burning retries against the same stale layout.
class WrongEpochError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t request_id = 0;  // matches replies to calls
  bool is_reply = false;
  MethodId method = 0;
  std::vector<std::uint8_t> payload;
};

// The reply to a call: status + payload (error text for non-kOk).
struct Reply {
  Status status = Status::kOk;
  std::vector<std::uint8_t> payload;

  bool ok() const { return status == Status::kOk; }
  // Error message carried by a failed reply.
  std::string error_text() const { return std::string(payload.begin(), payload.end()); }
};

class RpcNode;

// Where envelopes go once the Bus has applied fault injection and
// accounting. One transport per Bus; local endpoints register through
// Bus::add / Bus::remove, which forward here.
class Transport {
 public:
  virtual ~Transport() = default;

  // Local endpoint registration: inbound envelopes addressed to `id` are
  // delivered into `node`'s mailbox. detach() must not return while a
  // concurrent delivery to that node is in flight — RpcNode's destructor
  // relies on this to tear down safely.
  virtual void attach(NodeId id, RpcNode& node) = 0;
  virtual void detach(NodeId id) = 0;

  // Carry `envelope` toward its destination. Returns false when the
  // destination is not a known endpoint (the caller turns that into an
  // immediate error reply); true means the transport *accepted* the send.
  // Like a real network, acceptance is not delivery — losses surface at
  // the caller's timeout, never as a hang (RpcNode::call_sync pairs every
  // bounded wait with forget()).
  virtual bool send(Envelope envelope) = 0;

  // Resolve transport-level metrics in `registry` and start counting
  // (no-op for transports with nothing to count). Forwarded by
  // Bus::attach_observability so callers wire one seam.
  virtual void attach_observability(obs::MetricsRegistry* registry);

  // Stop moving envelopes and release transport resources (sockets,
  // threads). Idempotent; a destructor-only teardown is also legal.
  virtual void shutdown() {}
};

// The in-process mailbox transport: routes by node id through a local
// registry. Extracted verbatim from the original Bus routing, so every
// pre-existing test and bench behaves identically.
class InprocTransport final : public Transport {
 public:
  void attach(NodeId id, RpcNode& node) override;
  void detach(NodeId id) override;
  bool send(Envelope envelope) override;

 private:
  // Held shared across the whole lookup + deliver so a node cannot be
  // destroyed while an envelope is in flight to it: detach() takes it
  // exclusively and thus waits out concurrent deliveries.
  std::shared_mutex mu_;
  std::unordered_map<NodeId, RpcNode*> nodes_;
};

}  // namespace spcache::rpc
