#include "rpc/bus.h"

#include <cassert>
#include <thread>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache::rpc {

RpcNode::RpcNode(Bus& bus, NodeId id, std::string name)
    : bus_(bus), id_(id), name_(std::move(name)) {
  bus_.add(*this);
}

RpcNode::~RpcNode() {
  bus_.remove(id_);
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (service_thread_.joinable()) service_thread_.join();
  // Fail any calls still waiting for replies.
  std::lock_guard lock(pending_mu_);
  for (auto& [request_id, promise] : pending_) {
    Reply reply;
    reply.status = Status::kError;
    const std::string msg = "rpc node shut down";
    reply.payload.assign(msg.begin(), msg.end());
    promise.set_value(std::move(reply));
  }
  pending_.clear();
}

void RpcNode::handle(MethodId method, Handler handler) {
  assert(!started_ && "handlers must be registered before start()");
  handlers_[method] = std::move(handler);
}

void RpcNode::handle_into(MethodId method, StreamHandler handler) {
  assert(!started_ && "handlers must be registered before start()");
  stream_handlers_[method] = std::move(handler);
}

void RpcNode::start() {
  assert(!started_);
  started_ = true;
  service_thread_ = std::thread([this] { service_loop(); });
}

RpcNode::PendingCall RpcNode::call_tagged(NodeId to, MethodId method,
                                          std::vector<std::uint8_t> payload,
                                          std::chrono::milliseconds deadline) {
  std::promise<Reply> promise;
  PendingCall pending;
  pending.reply = promise.get_future();
  {
    std::lock_guard lock(pending_mu_);
    pending.request_id = next_request_id_++;
    pending_.emplace(pending.request_id, std::move(promise));
  }
  Envelope envelope;
  envelope.from = id_;
  envelope.to = to;
  envelope.request_id = pending.request_id;
  envelope.is_reply = false;
  envelope.method = method;
  if (deadline.count() > 0) {
    envelope.deadline_ms = static_cast<std::uint32_t>(
        std::min<std::int64_t>(deadline.count(), UINT32_MAX));
  }
  envelope.payload = std::move(payload);
  const SendStatus sent = bus_.route(std::move(envelope));
  if (sent != SendStatus::kAccepted) {
    // Refused before the wire: resolve the call right now with a typed
    // error so the caller backs off instead of burning its timeout.
    std::lock_guard lock(pending_mu_);
    const auto it = pending_.find(pending.request_id);
    if (it != pending_.end()) {
      Reply reply;
      std::string msg;
      switch (sent) {
        case SendStatus::kOverloaded:
          reply.status = Status::kTransportOverloaded;
          msg = "transport overloaded";
          break;
        case SendStatus::kCircuitOpen:
          reply.status = Status::kTransportOverloaded;
          msg = "circuit open to node " + std::to_string(to);
          break;
        default:
          reply.status = Status::kError;
          msg = "no such node";
          break;
      }
      reply.payload.assign(msg.begin(), msg.end());
      it->second.set_value(std::move(reply));
      pending_.erase(it);
    }
  }
  return pending;
}

std::future<Reply> RpcNode::call(NodeId to, MethodId method,
                                 std::vector<std::uint8_t> payload,
                                 std::chrono::milliseconds deadline) {
  return call_tagged(to, method, std::move(payload), deadline).reply;
}

bool RpcNode::forget(std::uint64_t request_id) {
  std::lock_guard lock(pending_mu_);
  return pending_.erase(request_id) > 0;
}

Reply RpcNode::call_sync(NodeId to, MethodId method, std::vector<std::uint8_t> payload,
                         std::chrono::milliseconds timeout) {
  // The bounded wait doubles as the propagated deadline: a server that
  // reaches the request after `timeout` sheds it — by then this caller
  // has already returned "rpc timeout" and forgotten the slot.
  auto pending = call_tagged(to, method, std::move(payload), timeout);
  if (pending.reply.wait_for(timeout) != std::future_status::ready) {
    // Reclaim the pending slot so it cannot leak and a late reply becomes
    // a counted no-op. If the reply raced us past the timeout, forget()
    // finds the slot already resolved and the real reply wins.
    if (forget(pending.request_id)) {
      Reply reply;
      reply.status = Status::kError;
      const std::string msg = "rpc timeout";
      reply.payload.assign(msg.begin(), msg.end());
      return reply;
    }
  }
  return pending.reply.get();
}

std::size_t RpcNode::pending_calls() const {
  std::lock_guard lock(pending_mu_);
  return pending_.size();
}

void RpcNode::deliver(Envelope envelope) {
  // Arrival stamp for deadline accounting: the queueing delay between here
  // and dispatch_request is what the shed check measures.
  envelope.accepted_at = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mu_);
    if (stopping_) return;
    mailbox_.push_back(std::move(envelope));
  }
  cv_.notify_one();
}

void RpcNode::service_loop() {
  std::deque<Envelope> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !mailbox_.empty(); });
      if (mailbox_.empty()) return;  // stopping with drained mailbox
      // Batch drain: swap the whole mailbox out under the lock instead of
      // popping one envelope per lock/cv cycle. Senders that arrive while
      // we work fill a fresh deque; under load one wakeup amortizes over
      // the entire backlog.
      batch.swap(mailbox_);
    }
    if (auto* probes = bus_.observability(); probes && probes->mailbox_batches) {
      probes->mailbox_batches->add(1);
      probes->mailbox_batched_envelopes->add(batch.size());
    }
    for (auto& envelope : batch) {
      if (envelope.is_reply) {
        resolve_reply(envelope);
      } else {
        dispatch_request(envelope);
      }
    }
  }
}

void RpcNode::dispatch_request(const Envelope& envelope) {
  Envelope reply;
  reply.from = id_;
  reply.to = envelope.from;
  reply.request_id = envelope.request_id;
  reply.is_reply = true;
  reply.method = envelope.method;

  // Shed already-expired work: if the request sat in the mailbox past its
  // propagated deadline, the caller has timed out and forgotten the call —
  // running the handler would only burn service time on a reply destined
  // to be a late-reply no-op.
  if (envelope.deadline_ms > 0 &&
      std::chrono::steady_clock::now() - envelope.accepted_at >
          std::chrono::milliseconds(envelope.deadline_ms)) {
    if (auto* probes = bus_.observability(); probes && probes->deadline_shed) {
      probes->deadline_shed->add(1);
    }
    reply.payload.push_back(static_cast<std::uint8_t>(Status::kDeadlineExpired));
    const std::string msg = "deadline expired before dispatch";
    reply.payload.insert(reply.payload.end(), msg.begin(), msg.end());
    bus_.route(std::move(reply));
    return;
  }

  const auto sit = stream_handlers_.find(envelope.method);
  const auto it = handlers_.find(envelope.method);
  if (sit == stream_handlers_.end() && it == handlers_.end()) {
    reply.payload.push_back(static_cast<std::uint8_t>(Status::kNoSuchMethod));
  } else {
    try {
      BufferReader reader(envelope.payload);
      if (sit != stream_handlers_.end()) {
        // Streaming handler: status byte first, then the body lands
        // directly in the reply payload — the bytes are written once.
        BufferWriter w;
        w.u8(static_cast<std::uint8_t>(Status::kOk));
        sit->second(reader, w);
        reply.payload = w.take();
      } else {
        auto body = it->second(reader);
        reply.payload.reserve(body.size() + 1);
        reply.payload.push_back(static_cast<std::uint8_t>(Status::kOk));
        reply.payload.insert(reply.payload.end(), body.begin(), body.end());
      }
    } catch (const WrongEpochError& e) {
      reply.payload.clear();
      reply.payload.push_back(static_cast<std::uint8_t>(Status::kWrongEpoch));
      const std::string msg = e.what();
      reply.payload.insert(reply.payload.end(), msg.begin(), msg.end());
    } catch (const std::exception& e) {
      reply.payload.clear();
      reply.payload.push_back(static_cast<std::uint8_t>(Status::kError));
      const std::string msg = e.what();
      reply.payload.insert(reply.payload.end(), msg.begin(), msg.end());
    }
  }
  bus_.route(std::move(reply));
}

void RpcNode::resolve_reply(const Envelope& envelope) {
  std::promise<Reply> promise;
  {
    std::lock_guard lock(pending_mu_);
    const auto it = pending_.find(envelope.request_id);
    if (it == pending_.end()) {
      // Timed out and abandoned (or a duplicated envelope's second reply):
      // a counted no-op, never a dead-promise resolution.
      late_replies_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    promise = std::move(it->second);
    pending_.erase(it);
  }
  Reply reply;
  if (envelope.payload.empty()) {
    reply.status = Status::kError;
  } else {
    reply.status = static_cast<Status>(envelope.payload.front());
    reply.payload.assign(envelope.payload.begin() + 1, envelope.payload.end());
  }
  promise.set_value(std::move(reply));
}

Bus::Bus() : owned_transport_(std::make_unique<InprocTransport>()) {
  transport_ = owned_transport_.get();
}

Bus::Bus(Transport& transport) : transport_(&transport) {}

void Bus::add(RpcNode& node) { transport_->attach(node.id(), node); }

void Bus::remove(NodeId id) { transport_->detach(id); }

SendStatus Bus::route(Envelope envelope) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  if (probes) {
    probes->routed->add(1);
    probes->in_flight->add(1);
  }
  bool duplicate = false;
  if (auto* injector = injector_.load(std::memory_order_acquire)) {
    // Drop: the envelope vanishes like a lost packet. Deliberately returns
    // kAccepted — the network took the send; the caller's timeout fires.
    if (injector->drop_envelope()) {
      if (probes) {
        probes->drops->add(1);
        probes->in_flight->sub(1);
        if (probes->trace) probes->trace->record(obs::TraceKind::kBusDrop);
      }
      return SendStatus::kAccepted;
    }
    if (injector->delay_envelope()) {
      if (probes) {
        probes->delays->add(1);
        if (probes->trace) probes->trace->record(obs::TraceKind::kBusDelay);
      }
      std::this_thread::sleep_for(injector->config().bus_delay);
    }
    duplicate = injector->duplicate_envelope();
    if (duplicate && probes) {
      probes->duplicates->add(1);
      if (probes->trace) probes->trace->record(obs::TraceKind::kBusDuplicate);
    }
  }
  // Duplication sends a second, independent copy through the transport —
  // the backend treats it like any other envelope, so handler idempotency
  // and late-reply accounting are exercised on every backend.
  if (duplicate) transport_->send(Envelope(envelope));
  const SendStatus delivered = transport_->send(std::move(envelope));
  if (probes) {
    probes->in_flight->sub(1);
    if ((delivered == SendStatus::kOverloaded || delivered == SendStatus::kCircuitOpen) &&
        probes->send_rejected) {
      probes->send_rejected->add(1);
    }
  }
  return delivered;
}

void Bus::attach_observability(obs::MetricsRegistry* registry, obs::TraceRecorder* trace) {
  transport_->attach_observability(registry);
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->routed = &registry->counter(n::kBusRouted);
  probes->in_flight = &registry->gauge(n::kBusInFlight);
  probes->drops = &registry->counter(n::kBusDrops);
  probes->delays = &registry->counter(n::kBusDelays);
  probes->duplicates = &registry->counter(n::kBusDuplicates);
  probes->mailbox_batches = &registry->counter(n::kBusMailboxBatches);
  probes->mailbox_batched_envelopes = &registry->counter(n::kBusMailboxBatchedEnvelopes);
  probes->envelopes_coalesced = &registry->counter(n::kBusEnvelopesCoalesced);
  probes->deadline_shed = &registry->counter(n::kBusDeadlineShed);
  probes->send_rejected = &registry->counter(n::kBusSendRejected);
  probes->trace = trace;
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

}  // namespace spcache::rpc
