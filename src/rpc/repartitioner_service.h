// SP-Repartitioners as RPC services (Fig. 9b over messages).
//
// The parallel repartition scheme of Section 6.2 runs one SP-Repartitioner
// per cache server; the SP-Master assigns each a disjoint set of changed
// files. Here each repartitioner is an RPC service co-located with its
// worker: on a REPARTITION_FILE request it assembles the file (local piece
// free, remote pieces via GET messages to sibling workers), re-splits it,
// PUTs the new pieces to their target workers, and reports the remote byte
// volume it moved. A coordinator fans the per-file requests out to all
// executors and joins — the whole Fig. 9b flow, message by message.
#pragma once

#include <memory>
#include <vector>

#include "core/repartition.h"
#include "rpc/cache_service.h"

namespace spcache::rpc {

// Method ids on repartitioner nodes.
inline constexpr MethodId kRepartitionFile = 20;
// Delta variant: request is file u32, new piece count u32, then per new
// piece a server u32. The handler looks the current layout (sizes + epoch)
// up at the master, computes the range transfer plan, relays only the
// remote ranges (kGetRange from the source, kStagePiece to the
// destination, one range at a time — the whole file is never materialized
// anywhere), stages local ranges with zero wire payload, seals, publishes
// under epoch+1, REGISTERs, and lazily erases old pieces not reused in
// place. Reply: u64 remote bytes moved, u64 bytes saved in place.
inline constexpr MethodId kDeltaRepartitionFile = 21;
// Node-id convention: repartitioner for server s = kFirstRepartitionerNode + s.
inline constexpr NodeId kFirstRepartitionerNode = 500;

// Wire format of kRepartitionFile (request):
//   u32 file id
//   u32 old piece count, then per old piece: u32 server
//   u32 new piece count, then per new piece: u32 server
// Reply: u64 remote bytes moved.
class RepartitionerService {
 public:
  // The repartitioner lives next to worker `server_id`; it reaches every
  // worker (including its own) through `worker_of_server`, and the master
  // through `master_node` for the final metadata update.
  RepartitionerService(Bus& bus, NodeId node_id, std::uint32_t server_id, NodeId master_node,
                       std::vector<NodeId> worker_of_server);

  NodeId node_id() const { return node_->id(); }

 private:
  std::vector<std::uint8_t> handle_repartition(BufferReader& r);
  std::vector<std::uint8_t> handle_delta_repartition(BufferReader& r);

  std::uint32_t server_id_;
  NodeId master_node_;
  std::vector<NodeId> worker_of_server_;
  std::unique_ptr<RpcNode> node_;    // serves kRepartitionFile
  std::unique_ptr<RpcNode> client_;  // outbound GET/PUT/REGISTER calls
};

struct RpcRepartitionStats {
  Bytes bytes_moved = 0;       // remote traffic summed over executors
  Bytes bytes_saved = 0;       // delta scheme only: ranges staged in place
  std::size_t files_touched = 0;
};

// The coordinator side: dispatch `plan` to the per-server repartitioners
// (each changed file goes to its planned executor) and join all replies.
// Issues every request asynchronously, so executors genuinely run in
// parallel. Throws std::runtime_error if any executor fails.
RpcRepartitionStats rpc_execute_repartition(RpcNode& coordinator, const RepartitionPlan& plan,
                                            const std::vector<std::vector<std::uint32_t>>&
                                                old_servers,
                                            const std::vector<NodeId>& repartitioner_of_server);

// Delta coordinator: same fan-out/join over kDeltaRepartitionFile. The
// request carries only the new placement — each executor fetches the
// authoritative old layout (piece sizes, epoch) from the master itself, so
// the coordinator needs no piece-size bookkeeping.
RpcRepartitionStats rpc_execute_delta_repartition(
    RpcNode& coordinator, const RepartitionPlan& plan,
    const std::vector<NodeId>& repartitioner_of_server);

}  // namespace spcache::rpc
