// Repair over the wire: re-create a dead worker's pieces through RPC.
//
// The threaded cluster repairs through RecoveryManager, which writes into
// CacheServer objects it can touch directly. The TCP deployment has no
// such luxury: the master's process holds only the metadata Master and
// the StableStore; the replacement bytes must travel to the surviving
// workers as kPutBlock envelopes, exactly like a client write. This
// coordinator is that path — the repair endpoint spcache_masterd plugs
// into its HealthMonitor.
//
// For every file with a piece on the failed server it, under the file's
// master-side mutation guard: restores the whole file from the stable
// tier, re-splits it per the current layout, PUTs each lost piece to a
// live replacement worker stamped with a bumped epoch, and only then
// publishes the new layout via Master::update_file. Readers holding the
// old layout hit kWrongEpoch (or a dead socket), re-LOOKUP, and find the
// repaired placement — the same degraded-read machinery the chaos tests
// exercise in-process, now over real sockets. Files without a stable
// checkpoint, or with no live replacement worker, are skipped and
// counted, never aborting the sweep.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/master.h"
#include "cluster/stable_store.h"
#include "rpc/bus.h"

namespace spcache::rpc {

class RpcRecoveryCoordinator {
 public:
  // `node` issues the kPutBlock calls (the masterd monitor node);
  // `is_alive(server)` is the caller's current liveness verdict — the
  // HealthMonitor's cached probe state — used to pick replacements.
  RpcRecoveryCoordinator(RpcNode& node, Master& master, StableStore& stable,
                         std::vector<NodeId> worker_of_server,
                         std::function<bool(std::uint32_t)> is_alive,
                         std::chrono::milliseconds rpc_timeout = std::chrono::milliseconds(1000));

  // Re-place every piece that lived on `failed_server`. Safe to run twice
  // (each file is handled under its mutation guard; a file with no slot
  // left on the failed server is skipped) and safe alongside readers.
  RecoveryStats repair_after_server_loss(std::uint32_t failed_server);

 private:
  RpcNode& node_;
  Master& master_;
  StableStore& stable_;
  std::vector<NodeId> worker_of_server_;
  std::function<bool(std::uint32_t)> is_alive_;
  std::chrono::milliseconds rpc_timeout_;
};

}  // namespace spcache::rpc
