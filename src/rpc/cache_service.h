// The SP-Cache components as RPC services (Fig. 9, over the in-process
// bus): cache workers expose block put/get/erase, the SP-Master exposes
// registration and layout lookup, and an RPC SP-Client performs the
// paper's read/write flows purely through messages — every byte and every
// piece of metadata crosses a serialization boundary, exactly as in the
// networked deployment.
//
// Node-id convention: master = 0, workers = 1..N, monitor = 900,
// clients >= 1000.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "cluster/cache_server.h"
#include "cluster/layout_cache.h"
#include "cluster/master.h"
#include "cluster/stable_store.h"
#include "erasure/rs_code.h"
#include "fault/retry.h"
#include "rpc/bus.h"

namespace spcache::rpc {

inline constexpr NodeId kMasterNode = 0;
inline constexpr NodeId kFirstWorkerNode = 1;
inline constexpr NodeId kMonitorNode = 900;  // masterd's liveness prober
inline constexpr NodeId kFirstClientNode = 1000;

// Method ids.
inline constexpr MethodId kPutBlock = 1;       // carries the layout epoch
inline constexpr MethodId kGetBlock = 2;
inline constexpr MethodId kEraseBlock = 3;
inline constexpr MethodId kGetBlockMulti = 4;  // all of one file's pieces on a worker
inline constexpr MethodId kGetRange = 5;       // byte range of one resident piece
inline constexpr MethodId kStagePiece = 6;     // staged-assembly ops (delta repartition)
inline constexpr MethodId kRegisterFile = 10;  // proposes an epoch, replies the assigned one
inline constexpr MethodId kLookupFile = 11;    // bumps the access count; reply carries epoch
inline constexpr MethodId kAccessCount = 12;
inline constexpr MethodId kFileEpoch = 13;     // current layout epoch (0 = unknown file)
inline constexpr MethodId kLookupBatch = 14;   // many kLookupFile in one envelope
inline constexpr MethodId kReportAccess = 15;  // batched per-file access-count deltas
inline constexpr MethodId kPing = 16;          // liveness probe; echoes the sent token
inline constexpr MethodId kPutStable = 17;     // checkpoint a whole file (master's StableStore)

// kStagePiece sub-operations. Common request header: file u32, piece u32,
// epoch u64, op u8; then per op:
//   kStageOpAppend     piece_size u64, offset u64, length-prefixed bytes
//   kStageOpLocalCopy  piece_size u64, offset u64, src_piece u32,
//                      src_offset u64, length u64 — the worker copies the
//                      range out of its own resident store (the bytes are
//                      already on the destination; no payload on the wire)
//   kStageOpFinalize   (no body) completeness check + CRC of the staged piece
//   kStageOpPublish    (no body) splice the finalized piece into the live
//                      store and record the epoch for kWrongEpoch rejection
//   kStageOpDiscard    (no body) drop the staged piece (abort path)
// Reply for every op: u8 success flag.
inline constexpr std::uint8_t kStageOpAppend = 0;
inline constexpr std::uint8_t kStageOpLocalCopy = 1;
inline constexpr std::uint8_t kStageOpFinalize = 2;
inline constexpr std::uint8_t kStageOpPublish = 3;
inline constexpr std::uint8_t kStageOpDiscard = 4;

// Layout wire format, shared by kLookupFile/kLookupBatch replies, the
// kRegisterFile request body (after the file id), and every client parser:
// size u64, crc u32, epoch u64, n u32, then n (server u32, piece_size u64)
// pairs.
void write_meta(BufferWriter& w, const FileMeta& meta);
FileMeta read_meta(BufferReader& r);

// A cache worker: an RpcNode whose handlers are backed by a CacheServer
// block store (checksummed, thread-safe).
//
// Epoch validation: every PUT carries the layout epoch it belongs to; the
// worker remembers the highest epoch seen per file (service-thread state,
// no lock). A kGetBlockMulti whose request epoch is older than that gets a
// kWrongEpoch reply instead of bytes — the signal that tells a caching
// client its layout is stale *before* it wastes GETs and a CRC pass.
class CacheWorkerService {
 public:
  CacheWorkerService(Bus& bus, NodeId node_id, std::uint32_t server_id, Bandwidth bandwidth);

  NodeId node_id() const { return node_->id(); }
  CacheServer& store() { return store_; }

 private:
  // Fused serve of one resident block: length prefix, then a single
  // crc32_copy pass straight into the reply payload — the copy IS the
  // integrity scan (compared against the block's ingest CRC). Throws on
  // mismatch, which dispatch turns into a kError reply.
  static void serve_block_bytes(BufferWriter& w, const Block& block);

  CacheServer store_;
  // file -> highest layout epoch PUT here. Touched only by this node's
  // service thread (all mutations arrive as RPCs), so unlocked by design.
  std::unordered_map<FileId, std::uint64_t> epochs_;
  // Serve scratch, reused across requests (handlers run on the single
  // service thread): the multi-GET piece-index span lives in the arena and
  // the BlockRef list in a recycled vector, so a steady-state multi-GET
  // allocates nothing beyond the reply payload that ships.
  Arena scratch_arena_{16 * 1024};
  std::vector<BlockRef> scratch_blocks_;
  std::unique_ptr<RpcNode> node_;
};

// The SP-Master as a service over the metadata Master. It also hosts the
// deployment's StableStore (the checkpointed tier the paper assumes under
// the cache): clients kPutStable whole files after a write, and the
// RpcRecoveryCoordinator restores lost pieces from it after a worker
// death — so degraded reads stay bit-exact without cache-level replicas.
class MasterService {
 public:
  MasterService(Bus& bus, NodeId node_id = kMasterNode);

  Master& master() { return master_; }
  StableStore& stable() { return stable_; }
  NodeId node_id() const { return node_->id(); }

 private:
  Master master_;
  StableStore stable_;
  std::unique_ptr<RpcNode> node_;
};

// What an RPC read went through to complete (degraded-read telemetry).
struct RpcReadStats {
  std::vector<std::uint8_t> bytes;
  std::size_t retries = 0;  // per-piece re-GETs plus extra whole-read passes
  std::size_t passes = 1;   // read rounds (>1 ⇒ the layout was re-fetched)
  bool layout_cached = false;  // served without a master LOOKUP
  bool shared = false;         // piggybacked on a concurrent read (single-flight)
};

// An SP-Client that speaks only RPC. Reads follow Section 6.1: LOOKUP at
// the master (which bumps the access count), parallel GETs to the listed
// workers, client-side reassembly and whole-file CRC verification.
//
// Fault tolerance: every GET carries a bounded wait; a timed-out or
// failed GET is retried with capped exponential backoff + jitter
// (fault::RetryPolicy), and when a piece stays unfetchable the whole
// read re-LOOKUPs — picking up any layout the RecoveryManager published
// while repairing — before trying again. Abandoned GETs are forgotten at
// the RpcNode, so dropped replies become counted no-ops, not leaks.
//
// Metadata-light path (all on by default; ClientCacheConfig turns the
// pieces off for baselines):
//   * layout cache — pass 1 serves the layout from the client's epoch-
//     validated LayoutCache; the master sees no LOOKUP. Cache-served
//     accesses accumulate locally and flush as one kReportAccess batch.
//   * multi-GET coalescing — pieces that live on the same worker travel
//     in one kGetBlockMulti envelope instead of one kGetBlock each; a
//     kWrongEpoch reply invalidates the cached layout and the next pass
//     re-LOOKUPs.
//   * single-flight — concurrent reads of the same file share one fetch;
//     followers block on the leader's result and copy its bytes.
class RpcSpClient {
 public:
  // `worker_of_server[i]` maps cache-server index i to its bus NodeId.
  RpcSpClient(Bus& bus, NodeId node_id, NodeId master_node,
              std::vector<NodeId> worker_of_server,
              fault::RetryPolicy retry = fault::RetryPolicy{},
              std::chrono::milliseconds rpc_timeout = std::chrono::milliseconds(1000),
              ClientCacheConfig cache = ClientCacheConfig{});

  // Flushes pending batched access reports (best effort).
  ~RpcSpClient();

  // Split into servers.size() near-equal pieces, PUT them (in parallel,
  // via async calls) stamped with the next layout epoch, then REGISTER
  // the layout proposing that epoch. Throws on any RPC failure.
  void write(FileId id, std::span<const std::uint8_t> data,
             const std::vector<std::uint32_t>& servers);

  // LOOKUP + parallel GET + reassemble + verify, with the retry/backoff
  // machinery above. Throws std::runtime_error on unknown file or once
  // the retry budget is exhausted.
  std::vector<std::uint8_t> read(FileId id);

  // read() plus the retry telemetry.
  RpcReadStats read_with_stats(FileId id);

  // Master-side access count (for tests).
  std::uint64_t access_count(FileId id);

  // Ship pending cache-served access counts to the master now (one
  // kReportAccess envelope). Returns the number of accesses reported.
  std::uint64_t flush_access_reports();

  // Warm the layout cache for `ids` with a single kLookupBatch envelope
  // (one LOOKUP round-trip instead of ids.size()). Returns how many of
  // the ids the master knew. No-op (returns 0) with the cache disabled.
  std::size_t prefetch_layouts(const std::vector<FileId>& ids);

  const fault::RetryPolicy& retry_policy() const { return retry_; }
  const LayoutCache& layout_cache() const { return layout_cache_; }
  RpcNode& node() { return *node_; }

  // --- Observability (src/obs) ----------------------------------------
  // Same "client.*" metric names as the in-process SpClient, so a mixed
  // deployment aggregates into one view: end-to-end read wall latency,
  // read/retry/failure counters, and (with `trace`) kReadStart/kReadDone/
  // kReadFailed/kReadRepeatPass plus per-piece kPieceFetch/kPieceRetry
  // events. Detached (default): one relaxed pointer load + branch.
  void attach_observability(obs::MetricsRegistry* registry,
                            obs::TraceRecorder* trace = nullptr);

  struct ObsProbes {
    obs::Counter* reads = nullptr;
    obs::Counter* read_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* layout_hits = nullptr;
    obs::Counter* layout_misses = nullptr;
    obs::Counter* layout_invalidations = nullptr;
    obs::Counter* singleflight_shared = nullptr;
    obs::LatencyHistogram* read_wall = nullptr;
    obs::TraceRecorder* trace = nullptr;
  };

 private:
  // One bounded-wait GET of piece `i`, including per-piece retries.
  // Returns the payload or nullopt once the per-piece budget is spent.
  // `op` is the trace op-id of the enclosing read (0 = tracing detached).
  std::optional<std::vector<std::uint8_t>> fetch_piece(FileId id, std::uint32_t piece,
                                                       NodeId worker, std::size_t pass,
                                                       std::uint64_t op, std::size_t& retries);

  // Layout for pass `pass`: cache on pass 1 (when enabled), kLookupFile
  // otherwise (write-through to the cache). nullopt = LOOKUP failure, with
  // `unknown` telling a permanently-unknown file from a transient loss.
  std::optional<FileMeta> layout_for_pass(FileId id, std::size_t pass, bool& from_cache,
                                          bool& unknown, std::string& error);

  // Current layout epoch at the master (kFileEpoch; 0 = unknown file).
  std::uint64_t file_epoch(FileId id);

  // The read itself (all passes); read_with_stats wraps it in the
  // single-flight gate.
  RpcReadStats do_read(FileId id);

  // Coalesced GET phase of one pass: per-worker kGetBlockMulti fan-out,
  // falling back to per-piece fetch_piece for pieces a multi-GET missed.
  // Returns false (with `error` set) when the pass must be retried;
  // `wrong_epoch` reports a kWrongEpoch reply (caller invalidates). Every
  // reassembly copy runs through the fused crc32_copy kernel; on success
  // `whole_crc` carries the per-piece CRCs combined into crc32(out), so
  // the caller's end-to-end verification never rescans the bytes.
  bool multi_get_pass(FileId id, const FileMeta& meta, std::size_t pass, std::uint64_t op,
                      std::vector<std::uint8_t>& out, std::size_t& retries,
                      bool& wrong_epoch, std::uint32_t& whole_crc, std::string& error);

  // One read in flight per file; followers share the leader's bytes.
  struct Inflight {
    std::promise<std::shared_ptr<const RpcReadStats>> promise;
    std::shared_future<std::shared_ptr<const RpcReadStats>> future;
    std::size_t waiters = 0;  // guarded by sf_mu_
  };

  Bus& bus_;
  std::unique_ptr<RpcNode> node_;
  NodeId master_node_;
  std::vector<NodeId> worker_of_server_;
  fault::RetryPolicy retry_;
  std::chrono::milliseconds rpc_timeout_;
  ClientCacheConfig cache_config_;
  LayoutCache layout_cache_;
  AccessAccumulator access_acc_;
  std::mutex sf_mu_;
  std::unordered_map<FileId, std::shared_ptr<Inflight>> inflight_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

// An EC-Cache client over the same wire: writes run the real Reed-Solomon
// encoder and PUT all n shards; reads LOOKUP, late-bind k+1 GETs, and
// decode from the first k that complete.
class RpcEcClient {
 public:
  RpcEcClient(Bus& bus, NodeId node_id, NodeId master_node,
              std::vector<NodeId> worker_of_server, std::size_t k = 10, std::size_t n = 14);

  // Encode into n shards and store them on the n listed (distinct) servers.
  void write(FileId id, std::span<const std::uint8_t> data,
             const std::vector<std::uint32_t>& servers);

  // Late-binding read + decode + whole-file CRC verification.
  std::vector<std::uint8_t> read(FileId id, Rng& rng);

 private:
  std::unique_ptr<RpcNode> node_;
  NodeId master_node_;
  std::vector<NodeId> worker_of_server_;
  ReedSolomon rs_;
};

}  // namespace spcache::rpc
