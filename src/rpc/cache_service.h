// The SP-Cache components as RPC services (Fig. 9, over the in-process
// bus): cache workers expose block put/get/erase, the SP-Master exposes
// registration and layout lookup, and an RPC SP-Client performs the
// paper's read/write flows purely through messages — every byte and every
// piece of metadata crosses a serialization boundary, exactly as in the
// networked deployment.
//
// Node-id convention: master = 0, workers = 1..N, clients >= 1000.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "erasure/rs_code.h"
#include "fault/retry.h"
#include "rpc/bus.h"

namespace spcache::rpc {

inline constexpr NodeId kMasterNode = 0;
inline constexpr NodeId kFirstWorkerNode = 1;
inline constexpr NodeId kFirstClientNode = 1000;

// Method ids.
inline constexpr MethodId kPutBlock = 1;
inline constexpr MethodId kGetBlock = 2;
inline constexpr MethodId kEraseBlock = 3;
inline constexpr MethodId kRegisterFile = 10;
inline constexpr MethodId kLookupFile = 11;   // bumps the access count
inline constexpr MethodId kAccessCount = 12;

// A cache worker: an RpcNode whose handlers are backed by a CacheServer
// block store (checksummed, thread-safe).
class CacheWorkerService {
 public:
  CacheWorkerService(Bus& bus, NodeId node_id, std::uint32_t server_id, Bandwidth bandwidth);

  NodeId node_id() const { return node_->id(); }
  CacheServer& store() { return store_; }

 private:
  CacheServer store_;
  std::unique_ptr<RpcNode> node_;
};

// The SP-Master as a service over the metadata Master.
class MasterService {
 public:
  MasterService(Bus& bus, NodeId node_id = kMasterNode);

  Master& master() { return master_; }
  NodeId node_id() const { return node_->id(); }

 private:
  Master master_;
  std::unique_ptr<RpcNode> node_;
};

// What an RPC read went through to complete (degraded-read telemetry).
struct RpcReadStats {
  std::vector<std::uint8_t> bytes;
  std::size_t retries = 0;  // per-piece re-GETs plus extra whole-read passes
  std::size_t passes = 1;   // LOOKUP rounds (>1 ⇒ the layout was re-fetched)
};

// An SP-Client that speaks only RPC. Reads follow Section 6.1: LOOKUP at
// the master (which bumps the access count), parallel GETs to the listed
// workers, client-side reassembly and whole-file CRC verification.
//
// Fault tolerance: every GET carries a bounded wait; a timed-out or
// failed GET is retried with capped exponential backoff + jitter
// (fault::RetryPolicy), and when a piece stays unfetchable the whole
// read re-LOOKUPs — picking up any layout the RecoveryManager published
// while repairing — before trying again. Abandoned GETs are forgotten at
// the RpcNode, so dropped replies become counted no-ops, not leaks.
class RpcSpClient {
 public:
  // `worker_of_server[i]` maps cache-server index i to its bus NodeId.
  RpcSpClient(Bus& bus, NodeId node_id, NodeId master_node,
              std::vector<NodeId> worker_of_server,
              fault::RetryPolicy retry = fault::RetryPolicy{},
              std::chrono::milliseconds rpc_timeout = std::chrono::milliseconds(1000));

  // Split into servers.size() near-equal pieces, PUT them (in parallel,
  // via async calls), then REGISTER the layout. Throws on any RPC failure.
  void write(FileId id, std::span<const std::uint8_t> data,
             const std::vector<std::uint32_t>& servers);

  // LOOKUP + parallel GET + reassemble + verify, with the retry/backoff
  // machinery above. Throws std::runtime_error on unknown file or once
  // the retry budget is exhausted.
  std::vector<std::uint8_t> read(FileId id);

  // read() plus the retry telemetry.
  RpcReadStats read_with_stats(FileId id);

  // Master-side access count (for tests).
  std::uint64_t access_count(FileId id);

  const fault::RetryPolicy& retry_policy() const { return retry_; }
  RpcNode& node() { return *node_; }

  // --- Observability (src/obs) ----------------------------------------
  // Same "client.*" metric names as the in-process SpClient, so a mixed
  // deployment aggregates into one view: end-to-end read wall latency,
  // read/retry/failure counters, and (with `trace`) kReadStart/kReadDone/
  // kReadFailed/kReadRepeatPass plus per-piece kPieceFetch/kPieceRetry
  // events. Detached (default): one relaxed pointer load + branch.
  void attach_observability(obs::MetricsRegistry* registry,
                            obs::TraceRecorder* trace = nullptr);

  struct ObsProbes {
    obs::Counter* reads = nullptr;
    obs::Counter* read_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::LatencyHistogram* read_wall = nullptr;
    obs::TraceRecorder* trace = nullptr;
  };

 private:
  // One bounded-wait GET of piece `i`, including per-piece retries.
  // Returns the payload or nullopt once the per-piece budget is spent.
  // `op` is the trace op-id of the enclosing read (0 = tracing detached).
  std::optional<std::vector<std::uint8_t>> fetch_piece(FileId id, std::uint32_t piece,
                                                       NodeId worker, std::size_t pass,
                                                       std::uint64_t op, std::size_t& retries);

  std::unique_ptr<RpcNode> node_;
  NodeId master_node_;
  std::vector<NodeId> worker_of_server_;
  fault::RetryPolicy retry_;
  std::chrono::milliseconds rpc_timeout_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

// An EC-Cache client over the same wire: writes run the real Reed-Solomon
// encoder and PUT all n shards; reads LOOKUP, late-bind k+1 GETs, and
// decode from the first k that complete.
class RpcEcClient {
 public:
  RpcEcClient(Bus& bus, NodeId node_id, NodeId master_node,
              std::vector<NodeId> worker_of_server, std::size_t k = 10, std::size_t n = 14);

  // Encode into n shards and store them on the n listed (distinct) servers.
  void write(FileId id, std::span<const std::uint8_t> data,
             const std::vector<std::uint32_t>& servers);

  // Late-binding read + decode + whole-file CRC verification.
  std::vector<std::uint8_t> read(FileId id, Rng& rng);

 private:
  std::unique_ptr<RpcNode> node_;
  NodeId master_node_;
  std::vector<NodeId> worker_of_server_;
  ReedSolomon rs_;
};

}  // namespace spcache::rpc
