// Binary serialization for RPC payloads.
//
// The cluster components (SP-Master, SP-Clients, cache servers,
// SP-Repartitioners) exchange small, fixed-schema messages plus raw block
// bytes. A tiny explicit writer/reader pair keeps the wire format obvious
// and versionable without dragging in a serialization framework:
// little-endian fixed-width integers, doubles as IEEE-754 bit patterns,
// and length-prefixed byte strings. Readers validate bounds and throw
// std::runtime_error on truncated or oversized input.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace spcache::rpc {

class BufferWriter {
 public:
  // Pre-size the buffer for a message whose length is known (or cheaply
  // bounded) up front — e.g. a multi-block reply that sums its payload
  // sizes first. Turns the O(log n) doubling reallocations of a large
  // append sequence into one allocation; appends stay amortized O(1).
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  // Append `n` writable bytes and return the region, for producers that
  // build their bytes in place — e.g. a fused copy+CRC straight into the
  // reply payload instead of staging through an intermediate buffer. The
  // span is invalidated by any further append.
  std::span<std::uint8_t> extend(std::size_t n) {
    buf_.resize(buf_.size() + n);
    return {buf_.data() + buf_.size() - n, n};
  }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  // Length-prefixed (u32) byte string.
  void bytes(std::span<const std::uint8_t> data);
  void str(const std::string& s);

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::vector<std::uint8_t> bytes();
  // Non-copying variant: a view into the underlying frame, valid only
  // while that frame is alive. Lets reassembly copy payloads exactly once,
  // straight to their final destination.
  std::span<const std::uint8_t> bytes_view();
  std::string str();

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace spcache::rpc
