// Wire framing for the TCP transport: one envelope per frame.
//
// A frame is a fixed 32-byte little-endian header followed by the payload:
//
//   offset  size  field
//        0     4  magic      0x53504357 ("SPCW")
//        4     1  version    kFrameVersion (2)
//        5     1  flags      bit 0 = is_reply
//        6     2  method id
//        8     4  from node id
//       12     4  to node id
//       16     8  request id
//       24     4  deadline, milliseconds of remaining budget (0 = none)
//       28     4  payload length (bytes that follow)
//
// Version 2 added the deadline field (v1 was 28 bytes without it). The
// deadline is relative, not a wall-clock timestamp, so it survives clock
// skew between processes; the receiving RpcNode measures it against its
// own arrival stamp to shed requests whose caller has already given up.
//
// The payload is the envelope body unchanged — the same length-delimited
// bytes the in-process transport hands to handlers, so the two backends
// are interchangeable above this layer.
//
// Decoding is incremental and defensive: `FrameDecoder` accepts arbitrary
// byte chunks (TCP has no message boundaries) and validates magic,
// version, and payload length *before* trusting the length field, so a
// corrupted or hostile stream yields a `FramingError` — never a crash, an
// over-read, or an unbounded allocation. A decoder that has thrown is
// poisoned (the stream position is unrecoverable); the connection must be
// dropped, which is exactly what TcpTransport does.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "rpc/transport.h"

namespace spcache::rpc {

inline constexpr std::uint32_t kFrameMagic = 0x53504357u;  // "SPCW" little-endian
inline constexpr std::uint8_t kFrameVersion = 2;
inline constexpr std::size_t kFrameHeaderSize = 32;
// Upper bound on a single payload: large enough for any piece this repo
// moves, small enough that a corrupted length field cannot demand an
// absurd allocation or stall the stream forever.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 30;  // 1 GiB

// A malformed frame header (bad magic, unknown version, oversized
// length). Carries the byte offset of the offending frame within the
// decoder's stream for wire debugging.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Append the framed encoding of `envelope` to `out` (header + payload).
void encode_frame(const Envelope& envelope, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_frame(const Envelope& envelope);

// Header-only encode for scatter-gather senders: fills a 32-byte scratch
// with the frame header of an envelope whose payload is `payload_len`
// bytes, so the payload itself can ride a second iovec instead of being
// copied behind the header.
std::array<std::uint8_t, kFrameHeaderSize> encode_frame_header(const Envelope& envelope,
                                                               std::size_t payload_len);

// Incremental frame parser for one byte stream (one TCP connection).
class FrameDecoder {
 public:
  // Buffer raw stream bytes. Never throws; validation happens in next().
  void feed(std::span<const std::uint8_t> data);

  // Extract the next complete envelope, or nullopt while the buffered
  // bytes end mid-frame. Throws FramingError on a header that can never
  // be valid (bad magic / version / oversized length); after a throw the
  // decoder is poisoned and every further call throws.
  std::optional<Envelope> next();

  // Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }
  // Total stream bytes consumed as complete frames (error offsets are
  // relative to the stream start, same coordinate system).
  std::uint64_t stream_offset() const { return stream_offset_; }

  // --- Direct (zero-copy) receive of large payloads --------------------
  // When the buffered bytes start a frame whose payload is at least
  // `min_payload` and the rest of that payload has not arrived yet, the
  // decoder can switch to direct mode: it sizes the envelope's payload
  // vector up front, moves the already-buffered body prefix into it, and
  // exposes the unfilled tail as a writable window. The transport then
  // reads (readv) straight into the window — the payload bytes never pass
  // through the decoder's internal buffer, so a multi-megabyte frame costs
  // one copy (kernel -> payload) instead of two.
  //
  // Call after next() has drained every complete frame. Returns true if
  // direct mode engaged (or was already engaged). Validates the header
  // exactly like next() — throws FramingError on a header that can never
  // be valid.
  bool try_begin_direct(std::size_t min_payload = kDirectPayloadThreshold);
  bool in_direct() const { return direct_; }
  // Writable unfilled tail of the pending payload. Only valid in direct
  // mode; invalidated by commit_direct.
  std::span<std::uint8_t> direct_window();
  // Account `n` bytes just read into the window. Returns the completed
  // envelope once the payload is full, nullopt while bytes remain.
  std::optional<Envelope> commit_direct(std::size_t n);

  // Payloads at least this large take the direct path (smaller ones are
  // cheaper to pass through the buffer than to track per-frame).
  static constexpr std::size_t kDirectPayloadThreshold = 4096;

 private:
  // Shared header validation: throws FramingError (and poisons) on a
  // header that can never be valid; returns the payload length.
  std::uint32_t validate_header(const std::uint8_t* h);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;             // consumed prefix of buf_
  std::uint64_t stream_offset_ = 0; // stream position of buf_[pos_]
  bool poisoned_ = false;
  // Direct-mode state: the pending envelope (payload sized to the full
  // frame length) and how much of the payload has landed.
  bool direct_ = false;
  Envelope direct_env_;
  std::size_t direct_filled_ = 0;
};

}  // namespace spcache::rpc
