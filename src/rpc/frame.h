// Wire framing for the TCP transport: one envelope per frame.
//
// A frame is a fixed 32-byte little-endian header followed by the payload:
//
//   offset  size  field
//        0     4  magic      0x53504357 ("SPCW")
//        4     1  version    kFrameVersion (2)
//        5     1  flags      bit 0 = is_reply
//        6     2  method id
//        8     4  from node id
//       12     4  to node id
//       16     8  request id
//       24     4  deadline, milliseconds of remaining budget (0 = none)
//       28     4  payload length (bytes that follow)
//
// Version 2 added the deadline field (v1 was 28 bytes without it). The
// deadline is relative, not a wall-clock timestamp, so it survives clock
// skew between processes; the receiving RpcNode measures it against its
// own arrival stamp to shed requests whose caller has already given up.
//
// The payload is the envelope body unchanged — the same length-delimited
// bytes the in-process transport hands to handlers, so the two backends
// are interchangeable above this layer.
//
// Decoding is incremental and defensive: `FrameDecoder` accepts arbitrary
// byte chunks (TCP has no message boundaries) and validates magic,
// version, and payload length *before* trusting the length field, so a
// corrupted or hostile stream yields a `FramingError` — never a crash, an
// over-read, or an unbounded allocation. A decoder that has thrown is
// poisoned (the stream position is unrecoverable); the connection must be
// dropped, which is exactly what TcpTransport does.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "rpc/transport.h"

namespace spcache::rpc {

inline constexpr std::uint32_t kFrameMagic = 0x53504357u;  // "SPCW" little-endian
inline constexpr std::uint8_t kFrameVersion = 2;
inline constexpr std::size_t kFrameHeaderSize = 32;
// Upper bound on a single payload: large enough for any piece this repo
// moves, small enough that a corrupted length field cannot demand an
// absurd allocation or stall the stream forever.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 30;  // 1 GiB

// A malformed frame header (bad magic, unknown version, oversized
// length). Carries the byte offset of the offending frame within the
// decoder's stream for wire debugging.
class FramingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Append the framed encoding of `envelope` to `out` (header + payload).
void encode_frame(const Envelope& envelope, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> encode_frame(const Envelope& envelope);

// Incremental frame parser for one byte stream (one TCP connection).
class FrameDecoder {
 public:
  // Buffer raw stream bytes. Never throws; validation happens in next().
  void feed(std::span<const std::uint8_t> data);

  // Extract the next complete envelope, or nullopt while the buffered
  // bytes end mid-frame. Throws FramingError on a header that can never
  // be valid (bad magic / version / oversized length); after a throw the
  // decoder is poisoned and every further call throws.
  std::optional<Envelope> next();

  // Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }
  // Total stream bytes consumed as complete frames (error offsets are
  // relative to the stream start, same coordinate system).
  std::uint64_t stream_offset() const { return stream_offset_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;             // consumed prefix of buf_
  std::uint64_t stream_offset_ = 0; // stream position of buf_[pos_]
  bool poisoned_ = false;
};

}  // namespace spcache::rpc
