#include "rpc/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace spcache::rpc {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("EventLoop: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("EventLoop: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  stop();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::start() {
  if (started_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // Retry through signal interruption: daemons take SIGTERM/SIGINT on
  // arbitrary threads, and a swallowed wakeup would strand a posted
  // closure until the next I/O event.
  for (;;) {
    if (::write(wake_fd_, &one, sizeof(one)) >= 0) return;
    if (errno != EINTR) return;  // EAGAIN = counter saturated = already awake
  }
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  {
    std::lock_guard lock(mu_);
    callbacks_[fd] = std::make_shared<FdCallback>(std::move(callback));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard lock(mu_);
    callbacks_.erase(fd);
    throw std::runtime_error(std::string("EventLoop: EPOLL_CTL_ADD failed: ") +
                             std::strerror(errno));
  }
}

void EventLoop::modify_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::remove_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  std::lock_guard lock(mu_);
  callbacks_.erase(fd);
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    posted_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::run() {
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only happens at teardown
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) < 0 && errno == EINTR) {
        }
        continue;
      }
      // Look the callback up per event: an fd deregistered earlier in this
      // batch (a callback closed a sibling connection) is skipped cleanly.
      std::shared_ptr<FdCallback> callback;
      {
        std::lock_guard lock(mu_);
        const auto it = callbacks_.find(fd);
        if (it != callbacks_.end()) callback = it->second;
      }
      if (callback) (*callback)(events[i].events);
      if (stopping_.load(std::memory_order_acquire)) return;
    }
    // Drain posted closures after I/O dispatch. Swap under the lock so a
    // closure that posts again (send after send) never deadlocks.
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard lock(mu_);
      batch.swap(posted_);
    }
    for (auto& fn : batch) fn();
  }
}

}  // namespace spcache::rpc
