#include "rpc/serialize.h"

namespace spcache::rpc {

void BufferWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BufferWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BufferWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BufferWriter::bytes(std::span<const std::uint8_t> data) {
  if (data.size() > 0xFFFFFFFFull) throw std::runtime_error("BufferWriter: bytes too long");
  // One exact allocation for prefix + payload instead of letting the
  // doubling growth copy a multi-megabyte piece several times.
  reserve(4 + data.size());
  u32(static_cast<std::uint32_t>(data.size()));
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufferWriter::str(const std::string& s) {
  bytes(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void BufferReader::need(std::size_t n) {
  // Locate the failure precisely: wire debugging of a bad frame needs to
  // know *where* in a multi-field payload the decode fell off the end.
  if (remaining() < n) {
    throw std::runtime_error("BufferReader: truncated message: need " + std::to_string(n) +
                             " byte(s) at offset " + std::to_string(pos_) + ", but only " +
                             std::to_string(remaining()) + " of " + std::to_string(data_.size()) +
                             " remain");
  }
}

std::uint8_t BufferReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t BufferReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BufferReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double BufferReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> BufferReader::bytes() {
  const auto view = bytes_view();
  return std::vector<std::uint8_t>(view.begin(), view.end());
}

std::span<const std::uint8_t> BufferReader::bytes_view() {
  const std::size_t prefix_at = pos_;
  const std::uint32_t len = u32();
  if (remaining() < len) {
    // Distinguish a lying length prefix from plain truncation: report both
    // the prefix's own offset and the length it promised.
    throw std::runtime_error("BufferReader: byte string at offset " + std::to_string(prefix_at) +
                             " declares " + std::to_string(len) + " byte(s) but only " +
                             std::to_string(remaining()) + " of " + std::to_string(data_.size()) +
                             " remain");
  }
  const auto view = data_.subspan(pos_, len);
  pos_ += len;
  return view;
}

std::string BufferReader::str() {
  const auto b = bytes();
  return std::string(b.begin(), b.end());
}

}  // namespace spcache::rpc
