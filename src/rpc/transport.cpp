#include "rpc/transport.h"

#include "rpc/bus.h"

namespace spcache::rpc {

void Transport::attach_observability(obs::MetricsRegistry*) {}

void InprocTransport::attach(NodeId id, RpcNode& node) {
  std::unique_lock lock(mu_);
  nodes_[id] = &node;
}

void InprocTransport::detach(NodeId id) {
  std::unique_lock lock(mu_);
  nodes_.erase(id);
}

SendStatus InprocTransport::send(Envelope envelope) {
  std::shared_lock lock(mu_);
  const auto it = nodes_.find(envelope.to);
  if (it == nodes_.end()) return SendStatus::kNoRoute;
  it->second->deliver(std::move(envelope));
  return SendStatus::kAccepted;
}

}  // namespace spcache::rpc
