#include "rpc/transport.h"

#include "rpc/bus.h"

namespace spcache::rpc {

void Transport::attach_observability(obs::MetricsRegistry*) {}

void InprocTransport::attach(NodeId id, RpcNode& node) {
  std::unique_lock lock(mu_);
  nodes_[id] = &node;
}

void InprocTransport::detach(NodeId id) {
  std::unique_lock lock(mu_);
  nodes_.erase(id);
}

bool InprocTransport::send(Envelope envelope) {
  std::shared_lock lock(mu_);
  const auto it = nodes_.find(envelope.to);
  if (it == nodes_.end()) return false;
  it->second->deliver(std::move(envelope));
  return true;
}

}  // namespace spcache::rpc
