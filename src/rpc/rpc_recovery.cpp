#include "rpc/rpc_recovery.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/log.h"
#include "rpc/cache_service.h"

namespace spcache::rpc {

RpcRecoveryCoordinator::RpcRecoveryCoordinator(RpcNode& node, Master& master, StableStore& stable,
                                               std::vector<NodeId> worker_of_server,
                                               std::function<bool(std::uint32_t)> is_alive,
                                               std::chrono::milliseconds rpc_timeout)
    : node_(node),
      master_(master),
      stable_(stable),
      worker_of_server_(std::move(worker_of_server)),
      is_alive_(std::move(is_alive)),
      rpc_timeout_(rpc_timeout) {}

RecoveryStats RpcRecoveryCoordinator::repair_after_server_loss(std::uint32_t failed_server) {
  RecoveryStats total;
  // Sweep-local load tally so replacements spread instead of piling onto
  // one survivor (cheap stand-in for the master's least-loaded choice).
  std::vector<std::uint64_t> placed_bytes(worker_of_server_.size(), 0);

  for (const FileId id : master_.file_ids()) {
    auto guard = master_.lock_file(id);
    if (!guard) continue;  // removed since file_ids()
    auto meta = master_.peek(id);
    if (!meta) continue;

    std::vector<std::size_t> lost;
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      if (meta->servers[i] == failed_server) lost.push_back(i);
    }
    if (lost.empty()) continue;  // untouched, or a concurrent sweep already repaired it

    const auto bytes = stable_.restore(id);
    if (!bytes) {
      ++total.files_skipped;
      SPCACHE_LOG(kWarn) << "rpc-recovery: file " << id << " has no stable checkpoint — skipped";
      continue;
    }

    // Pick a live replacement per lost slot: prefer a server not already
    // holding the file (keeps the one-piece-per-server partitioning),
    // least bytes placed so far this sweep. In a cluster too small for an
    // exclusive server, fall back to co-locating on any live survivor —
    // suboptimal for balance, but the bytes stay readable, which is the
    // repair's whole point.
    std::vector<std::uint32_t> replacement(lost.size());
    bool placeable = true;
    auto servers = meta->servers;  // mutated as slots are re-assigned
    for (std::size_t li = 0; li < lost.size() && placeable; ++li) {
      std::optional<std::uint32_t> best;
      std::optional<std::uint32_t> fallback;
      for (std::uint32_t s = 0; s < worker_of_server_.size(); ++s) {
        if (s == failed_server || !is_alive_(s)) continue;
        if (!fallback || placed_bytes[s] < placed_bytes[*fallback]) fallback = s;
        if (std::find(servers.begin(), servers.end(), s) != servers.end()) continue;
        if (!best || placed_bytes[s] < placed_bytes[*best]) best = s;
      }
      if (!best) best = fallback;
      if (!best) {
        placeable = false;
        break;
      }
      replacement[li] = *best;
      servers[lost[li]] = *best;
    }
    if (!placeable) {
      ++total.files_skipped;
      SPCACHE_LOG(kWarn) << "rpc-recovery: no live replacement worker for file " << id
                         << " — skipped";
      continue;
    }

    // Re-split per the published layout and ship the lost pieces, stamped
    // with the next epoch so stale multi-GETs draw kWrongEpoch. The PUTs
    // land before update_file publishes, so a reader holding the new
    // layout always finds the bytes.
    const std::uint64_t new_epoch = meta->epoch + 1;
    std::vector<std::uint64_t> offsets(meta->piece_sizes.size() + 1, 0);
    std::partial_sum(meta->piece_sizes.begin(), meta->piece_sizes.end(), offsets.begin() + 1);
    bool all_put = true;
    std::uint64_t rewritten = 0;
    for (std::size_t li = 0; li < lost.size(); ++li) {
      const std::size_t piece = lost[li];
      const std::uint64_t off = offsets[piece];
      const std::uint64_t len = meta->piece_sizes[piece];
      BufferWriter w;
      w.reserve(4 + 4 + 4 + len + 8);
      w.u32(id);
      w.u32(static_cast<std::uint32_t>(piece));
      w.bytes(std::span(bytes->data() + off, len));
      w.u64(new_epoch);
      const auto reply = node_.call_sync(worker_of_server_.at(replacement[li]), kPutBlock,
                                         w.take(), rpc_timeout_);
      if (!reply.ok()) {
        all_put = false;
        SPCACHE_LOG(kError) << "rpc-recovery: PUT of file " << id << " piece " << piece
                            << " to server " << replacement[li]
                            << " failed: " << reply.error_text();
        break;
      }
      placed_bytes[replacement[li]] += len;
      rewritten += len;
    }
    if (!all_put) {
      // Publish nothing: the old layout stays, the next heartbeat round
      // (or a second sweep) retries the whole file.
      ++total.files_skipped;
      continue;
    }

    FileMeta new_meta = *meta;
    new_meta.servers = std::move(servers);
    new_meta.epoch = new_epoch;
    master_.update_file(id, std::move(new_meta));
    total.pieces_recovered += lost.size();
    total.bytes_restored += bytes->size();
    total.modelled_time += static_cast<double>(bytes->size()) / stable_.bandwidth();
    SPCACHE_LOG(kInfo) << "rpc-recovery: re-placed " << lost.size() << " piece(s) of file " << id
                       << " (" << rewritten << " B) at epoch " << new_epoch;
  }
  return total;
}

}  // namespace spcache::rpc
