#include "rpc/frame.h"

#include <cstring>
#include <string>

namespace spcache::rpc {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint8_t kFlagIsReply = 0x01;

}  // namespace

void encode_frame(const Envelope& envelope, std::vector<std::uint8_t>& out) {
  out.reserve(out.size() + kFrameHeaderSize + envelope.payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(kFrameVersion);
  out.push_back(envelope.is_reply ? kFlagIsReply : 0);
  put_u16(out, envelope.method);
  put_u32(out, envelope.from);
  put_u32(out, envelope.to);
  put_u64(out, envelope.request_id);
  put_u32(out, envelope.deadline_ms);
  put_u32(out, static_cast<std::uint32_t>(envelope.payload.size()));
  out.insert(out.end(), envelope.payload.begin(), envelope.payload.end());
}

std::vector<std::uint8_t> encode_frame(const Envelope& envelope) {
  std::vector<std::uint8_t> out;
  encode_frame(envelope, out);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact before growing: once the consumed prefix dominates the buffer,
  // shifting the live tail down keeps the buffer near one frame's size
  // instead of growing with the whole connection's history.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Envelope> FrameDecoder::next() {
  if (poisoned_) throw FramingError("FrameDecoder: poisoned by an earlier framing error");
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;

  const std::uint32_t magic = get_u32(h);
  if (magic != kFrameMagic) {
    poisoned_ = true;
    throw FramingError("bad frame magic 0x" + std::to_string(magic) + " at stream offset " +
                       std::to_string(stream_offset_));
  }
  const std::uint8_t version = h[4];
  if (version != kFrameVersion) {
    poisoned_ = true;
    throw FramingError("unsupported frame version " + std::to_string(version) +
                       " at stream offset " + std::to_string(stream_offset_));
  }
  const std::uint32_t payload_len = get_u32(h + 28);
  if (payload_len > kMaxFramePayload) {
    poisoned_ = true;
    throw FramingError("frame payload length " + std::to_string(payload_len) +
                       " exceeds the " + std::to_string(kMaxFramePayload) +
                       "-byte cap at stream offset " + std::to_string(stream_offset_));
  }
  if (buffered() < kFrameHeaderSize + payload_len) return std::nullopt;

  Envelope envelope;
  envelope.is_reply = (h[5] & kFlagIsReply) != 0;
  envelope.method = get_u16(h + 6);
  envelope.from = get_u32(h + 8);
  envelope.to = get_u32(h + 12);
  envelope.request_id = get_u64(h + 16);
  envelope.deadline_ms = get_u32(h + 24);
  const std::uint8_t* body = h + kFrameHeaderSize;
  envelope.payload.assign(body, body + payload_len);

  pos_ += kFrameHeaderSize + payload_len;
  stream_offset_ += kFrameHeaderSize + payload_len;
  return envelope;
}

}  // namespace spcache::rpc
