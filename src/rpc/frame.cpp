#include "rpc/frame.h"

#include <cstring>
#include <string>

namespace spcache::rpc {

namespace {

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint8_t kFlagIsReply = 0x01;

}  // namespace

void encode_frame(const Envelope& envelope, std::vector<std::uint8_t>& out) {
  const auto header = encode_frame_header(envelope, envelope.payload.size());
  out.reserve(out.size() + kFrameHeaderSize + envelope.payload.size());
  out.insert(out.end(), header.begin(), header.end());
  out.insert(out.end(), envelope.payload.begin(), envelope.payload.end());
}

std::array<std::uint8_t, kFrameHeaderSize> encode_frame_header(const Envelope& envelope,
                                                               std::size_t payload_len) {
  std::array<std::uint8_t, kFrameHeaderSize> h;
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) h[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put32(0, kFrameMagic);
  h[4] = kFrameVersion;
  h[5] = envelope.is_reply ? kFlagIsReply : 0;
  h[6] = static_cast<std::uint8_t>(envelope.method);
  h[7] = static_cast<std::uint8_t>(envelope.method >> 8);
  put32(8, envelope.from);
  put32(12, envelope.to);
  for (int i = 0; i < 8; ++i) {
    h[16 + i] = static_cast<std::uint8_t>(envelope.request_id >> (8 * i));
  }
  put32(24, envelope.deadline_ms);
  put32(28, static_cast<std::uint32_t>(payload_len));
  return h;
}

std::vector<std::uint8_t> encode_frame(const Envelope& envelope) {
  std::vector<std::uint8_t> out;
  encode_frame(envelope, out);
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  // Compact before growing: once the consumed prefix dominates the buffer,
  // shifting the live tail down keeps the buffer near one frame's size
  // instead of growing with the whole connection's history.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::uint32_t FrameDecoder::validate_header(const std::uint8_t* h) {
  const std::uint32_t magic = get_u32(h);
  if (magic != kFrameMagic) {
    poisoned_ = true;
    throw FramingError("bad frame magic 0x" + std::to_string(magic) + " at stream offset " +
                       std::to_string(stream_offset_));
  }
  const std::uint8_t version = h[4];
  if (version != kFrameVersion) {
    poisoned_ = true;
    throw FramingError("unsupported frame version " + std::to_string(version) +
                       " at stream offset " + std::to_string(stream_offset_));
  }
  const std::uint32_t payload_len = get_u32(h + 28);
  if (payload_len > kMaxFramePayload) {
    poisoned_ = true;
    throw FramingError("frame payload length " + std::to_string(payload_len) +
                       " exceeds the " + std::to_string(kMaxFramePayload) +
                       "-byte cap at stream offset " + std::to_string(stream_offset_));
  }
  return payload_len;
}

std::optional<Envelope> FrameDecoder::next() {
  if (poisoned_) throw FramingError("FrameDecoder: poisoned by an earlier framing error");
  if (direct_) return std::nullopt;  // mid-frame: bytes go through commit_direct
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  const std::uint32_t payload_len = validate_header(h);
  if (buffered() < kFrameHeaderSize + payload_len) return std::nullopt;

  Envelope envelope;
  envelope.is_reply = (h[5] & kFlagIsReply) != 0;
  envelope.method = get_u16(h + 6);
  envelope.from = get_u32(h + 8);
  envelope.to = get_u32(h + 12);
  envelope.request_id = get_u64(h + 16);
  envelope.deadline_ms = get_u32(h + 24);
  const std::uint8_t* body = h + kFrameHeaderSize;
  envelope.payload.assign(body, body + payload_len);

  pos_ += kFrameHeaderSize + payload_len;
  stream_offset_ += kFrameHeaderSize + payload_len;
  return envelope;
}

bool FrameDecoder::try_begin_direct(std::size_t min_payload) {
  if (direct_) return true;
  if (poisoned_) throw FramingError("FrameDecoder: poisoned by an earlier framing error");
  if (buffered() < kFrameHeaderSize) return false;
  const std::uint8_t* h = buf_.data() + pos_;
  const std::uint32_t payload_len = validate_header(h);
  // Small frames are cheaper through the buffer; complete frames belong to
  // next() (the caller drains those first).
  if (payload_len < min_payload) return false;
  if (buffered() >= kFrameHeaderSize + payload_len) return false;

  direct_env_ = Envelope{};
  direct_env_.is_reply = (h[5] & 0x01) != 0;
  direct_env_.method = get_u16(h + 6);
  direct_env_.from = get_u32(h + 8);
  direct_env_.to = get_u32(h + 12);
  direct_env_.request_id = get_u64(h + 16);
  direct_env_.deadline_ms = get_u32(h + 24);
  direct_env_.payload.resize(payload_len);
  // Move the body prefix that already arrived, then hand the tail to the
  // transport as the receive target.
  const std::size_t prefix = buffered() - kFrameHeaderSize;
  std::memcpy(direct_env_.payload.data(), h + kFrameHeaderSize, prefix);
  direct_filled_ = prefix;
  buf_.clear();
  pos_ = 0;
  direct_ = true;
  return true;
}

std::span<std::uint8_t> FrameDecoder::direct_window() {
  if (!direct_) return {};
  return {direct_env_.payload.data() + direct_filled_,
          direct_env_.payload.size() - direct_filled_};
}

std::optional<Envelope> FrameDecoder::commit_direct(std::size_t n) {
  direct_filled_ += n;
  if (direct_filled_ < direct_env_.payload.size()) return std::nullopt;
  direct_ = false;
  stream_offset_ += kFrameHeaderSize + direct_env_.payload.size();
  direct_filled_ = 0;
  return std::move(direct_env_);
}

}  // namespace spcache::rpc
