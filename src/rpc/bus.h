// In-process message bus: mailboxes, service nodes, request/reply RPC.
//
// The paper's system is a set of networked processes — SP-Master,
// SP-Clients, Alluxio workers, SP-Repartitioners (Fig. 9). This module
// gives the repository that structure: every component is an `RpcNode`
// with its own mailbox and service thread; nodes exchange length-delimited
// binary envelopes through a `Bus` that routes by node id. Calls are
// asynchronous request/reply pairs matched by request id, with timeouts;
// handlers run on the callee's service thread, so all the concurrency
// discipline of a real deployment (no shared memory between components,
// explicit serialization at every boundary) is exercised.
//
// Delivery itself goes through the `Transport` seam (rpc/transport.h):
// the default is the in-process mailbox registry (`InprocTransport` —
// fast, deterministic, what every test uses); a `TcpTransport`
// (rpc/tcp_transport.h) carries the same envelopes over real sockets for
// multi-process deployments. The Bus stays the single place where fault
// injection and bus-level observability hook the send path, whichever
// backend is underneath.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rpc/serialize.h"
#include "rpc/transport.h"

namespace spcache::fault {
class FaultInjector;
}  // namespace spcache::fault

namespace spcache::obs {
class Counter;
class Gauge;
class MetricsRegistry;
class TraceRecorder;
}  // namespace spcache::obs

namespace spcache::rpc {

class Bus;

// A service endpoint: owns a mailbox drained by one service thread.
// Handlers are registered per MethodId before start(); each handler maps a
// request payload to a reply payload (exceptions become kError replies).
class RpcNode {
 public:
  using Handler = std::function<std::vector<std::uint8_t>(BufferReader&)>;
  // Streaming form for hot serve paths: the handler appends its body
  // directly into the reply payload (the status byte is already written),
  // so the reply bytes are produced exactly once — no body vector, no
  // insert-copy into the envelope. Exceptions still become typed error
  // replies; anything the handler wrote before throwing is discarded.
  using StreamHandler = std::function<void(BufferReader&, BufferWriter&)>;

  RpcNode(Bus& bus, NodeId id, std::string name);
  ~RpcNode();

  RpcNode(const RpcNode&) = delete;
  RpcNode& operator=(const RpcNode&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Registration is only legal before start().
  void handle(MethodId method, Handler handler);
  void handle_into(MethodId method, StreamHandler handler);
  void start();

  // An in-flight call: the reply future plus the request id needed to
  // abandon it (forget) if the caller gives up waiting.
  struct PendingCall {
    std::uint64_t request_id = 0;
    std::future<Reply> reply;
  };

  // Asynchronous call; the future resolves with the callee's Reply. If the
  // request or its reply is lost (dropped envelope, dead node), the future
  // never resolves — bounded waiters must pair wait_for with forget().
  // A nonzero `deadline` rides the envelope (frame header over TCP): a
  // server whose queue delays dispatch past it sheds the request with
  // kDeadlineExpired instead of running the handler. A refused send
  // (unknown node, backpressure, open circuit breaker) resolves the
  // future immediately with the matching error status.
  PendingCall call_tagged(NodeId to, MethodId method, std::vector<std::uint8_t> payload,
                          std::chrono::milliseconds deadline = std::chrono::milliseconds(0));
  std::future<Reply> call(NodeId to, MethodId method, std::vector<std::uint8_t> payload,
                          std::chrono::milliseconds deadline = std::chrono::milliseconds(0));

  // Abandon a pending call after a timeout: erases its slot so a reply
  // arriving later becomes a counted no-op instead of resolving a dead
  // promise (and so the slot does not leak). Returns false if the call
  // already resolved (or was never pending).
  bool forget(std::uint64_t request_id);

  // Blocking convenience with timeout. On timeout the pending slot is
  // reclaimed via forget(); a reply racing the timeout still wins. The
  // timeout doubles as the propagated deadline — a server reaching the
  // request after it passed sheds it instead of serving a ghost.
  Reply call_sync(NodeId to, MethodId method, std::vector<std::uint8_t> payload,
                  std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  // Observability for the timeout/loss paths.
  std::size_t pending_calls() const;
  std::uint64_t late_replies() const { return late_replies_.load(std::memory_order_relaxed); }

  // Used by the transport to deliver an envelope into this node's mailbox.
  void deliver(Envelope envelope);

 private:
  void service_loop();
  void dispatch_request(const Envelope& envelope);
  void resolve_reply(const Envelope& envelope);

  Bus& bus_;
  NodeId id_;
  std::string name_;
  std::unordered_map<MethodId, Handler> handlers_;
  std::unordered_map<MethodId, StreamHandler> stream_handlers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> mailbox_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread service_thread_;

  mutable std::mutex pending_mu_;
  std::uint64_t next_request_id_ = 1;
  std::unordered_map<std::uint64_t, std::promise<Reply>> pending_;
  std::atomic<std::uint64_t> late_replies_{0};
};

// Routes envelopes between nodes through a Transport. Nodes register on
// construction and deregister on destruction; sending to an unknown node
// fails the call immediately.
//
// Chaos hook: with a FaultInjector installed, route() may drop an
// envelope (it vanishes, like a lost packet — the caller's timeout path
// fires), stall the sender briefly (delay), or deliver the envelope twice
// (duplication — handlers run twice and the second reply lands as a
// counted late-reply no-op). The hooks sit above the transport seam, so
// they apply identically to the inproc and TCP backends.
class Bus {
 public:
  // Default: a private InprocTransport — fast, deterministic, in-process.
  Bus();
  // External transport (e.g. a TcpTransport). Not owned: the transport
  // must outlive the Bus, and one transport serves exactly one Bus.
  explicit Bus(Transport& transport);

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  Transport& transport() { return *transport_; }

  void add(RpcNode& node);
  void remove(NodeId id);

  // kNoRoute if the destination is unknown, kOverloaded/kCircuitOpen if
  // the transport refused the send (the caller turns each into an
  // immediate typed error reply), kAccepted otherwise.
  SendStatus route(Envelope envelope);

  void set_fault_injector(fault::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  // --- Observability (src/obs) ----------------------------------------
  // Resolve "bus.routed|in_flight|drops|delays|duplicates" in `registry`
  // once and start counting routed envelopes, the in-flight depth (inside
  // route()), and injected faults; with `trace` non-null each injected
  // fault also records a kBusDrop/kBusDelay/kBusDuplicate event. Also
  // forwards `registry` to the transport so backends with their own
  // counters (transport.* on TcpTransport) wire up through one call.
  // Detached (default): one relaxed pointer load + branch per route().
  void attach_observability(obs::MetricsRegistry* registry,
                            obs::TraceRecorder* trace = nullptr);

  struct ObsProbes {
    obs::Counter* routed = nullptr;
    obs::Gauge* in_flight = nullptr;
    obs::Counter* drops = nullptr;
    obs::Counter* delays = nullptr;
    obs::Counter* duplicates = nullptr;
    // Mailbox batch-drain stats (recorded by RpcNode::service_loop):
    // batches = lock/cv cycles that yielded work, batched_envelopes = total
    // envelopes those cycles drained. batched_envelopes / batches is the
    // mean drain depth — >1 under load means the swap is amortizing locks.
    obs::Counter* mailbox_batches = nullptr;
    obs::Counter* mailbox_batched_envelopes = nullptr;
    // Multi-GET coalescing (counted by clients): envelopes *not* sent
    // because pieces shared a kGetBlockMulti with another piece.
    obs::Counter* envelopes_coalesced = nullptr;
    // Requests shed at dispatch because their propagated deadline had
    // already expired (counted by RpcNode::dispatch_request), and sends
    // refused by transport backpressure / an open circuit breaker.
    obs::Counter* deadline_shed = nullptr;
    obs::Counter* send_rejected = nullptr;
    obs::TraceRecorder* trace = nullptr;
  };

  // Probe access for nodes/clients that tally bus-level metrics
  // themselves (mailbox batch sizes, coalesced envelopes). Null while
  // observability is detached.
  ObsProbes* observability() const { return probes_.load(std::memory_order_acquire); }

 private:
  std::unique_ptr<Transport> owned_transport_;  // default-constructed Bus only
  Transport* transport_;

  std::atomic<fault::FaultInjector*> injector_{nullptr};
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

}  // namespace spcache::rpc
