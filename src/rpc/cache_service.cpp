#include "rpc/cache_service.h"

#include <algorithm>
#include <stdexcept>

#include "common/crc32.h"
#include "erasure/rs_code.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache::rpc {

namespace {

std::vector<std::uint8_t> empty_body() { return {}; }

}  // namespace

CacheWorkerService::CacheWorkerService(Bus& bus, NodeId node_id, std::uint32_t server_id,
                                       Bandwidth bandwidth)
    : store_(server_id, bandwidth) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "worker-" + std::to_string(server_id));
  node_->handle(kPutBlock, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    store_.put(BlockKey{file, piece}, r.bytes());
    return empty_body();
  });
  node_->handle(kGetBlock, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    // Zero-copy store read: the shared block is serialized straight into
    // the reply frame — the only copy a GET makes.
    const auto block = store_.get(BlockKey{file, piece});
    if (!block) throw std::runtime_error("block not found");
    BufferWriter w;
    w.bytes(block->bytes);
    return w.take();
  });
  node_->handle(kEraseBlock, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    BufferWriter w;
    w.u8(store_.erase(BlockKey{file, piece}) ? 1 : 0);
    return w.take();
  });
  node_->start();
}

MasterService::MasterService(Bus& bus, NodeId node_id) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "sp-master");
  node_->handle(kRegisterFile, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    FileMeta meta;
    meta.size = r.u64();
    meta.file_crc = r.u32();
    const std::uint32_t n = r.u32();
    meta.servers.reserve(n);
    meta.piece_sizes.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      meta.servers.push_back(r.u32());
      meta.piece_sizes.push_back(r.u64());
    }
    if (master_.peek(id).has_value()) {
      master_.update_file(id, std::move(meta));
    } else {
      master_.register_file(id, std::move(meta));
    }
    return empty_body();
  });
  node_->handle(kLookupFile, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    const auto meta = master_.lookup_for_read(id);
    if (!meta) throw std::runtime_error("unknown file");
    BufferWriter w;
    w.u64(meta->size);
    w.u32(meta->file_crc);
    w.u32(static_cast<std::uint32_t>(meta->partitions()));
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      w.u32(meta->servers[i]);
      w.u64(meta->piece_sizes[i]);
    }
    return w.take();
  });
  node_->handle(kAccessCount, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    BufferWriter w;
    w.u64(master_.access_count(id));
    return w.take();
  });
  node_->start();
}

RpcSpClient::RpcSpClient(Bus& bus, NodeId node_id, NodeId master_node,
                         std::vector<NodeId> worker_of_server, fault::RetryPolicy retry,
                         std::chrono::milliseconds rpc_timeout)
    : master_node_(master_node),
      worker_of_server_(std::move(worker_of_server)),
      retry_(retry),
      rpc_timeout_(rpc_timeout) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "sp-client-" + std::to_string(node_id));
  node_->start();  // needed to receive replies
}

void RpcSpClient::write(FileId id, std::span<const std::uint8_t> data,
                        const std::vector<std::uint32_t>& servers) {
  const auto pieces = split_plain(data, servers.size());

  // Fan out the PUTs, then join.
  std::vector<std::future<Reply>> puts;
  puts.reserve(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    BufferWriter w;
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(i));
    w.bytes(pieces[i]);
    puts.push_back(node_->call(worker_of_server_.at(servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("PUT failed: " + reply.error_text());
  }

  BufferWriter w;
  w.u32(id);
  w.u64(data.size());
  w.u32(crc32(data));
  w.u32(static_cast<std::uint32_t>(servers.size()));
  for (std::size_t i = 0; i < servers.size(); ++i) {
    w.u32(servers[i]);
    w.u64(pieces[i].size());
  }
  const auto reply = node_->call_sync(master_node_, kRegisterFile, w.take());
  if (!reply.ok()) throw std::runtime_error("REGISTER failed: " + reply.error_text());
}

std::optional<std::vector<std::uint8_t>> RpcSpClient::fetch_piece(FileId id, std::uint32_t piece,
                                                                  NodeId worker, std::size_t pass,
                                                                  std::uint64_t op,
                                                                  std::size_t& retries) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  for (std::size_t attempt = 1; attempt <= retry_.piece_attempts; ++attempt) {
    BufferWriter w;
    w.u32(id);
    w.u32(piece);
    auto pending = node_->call_tagged(worker, kGetBlock, w.take());
    Reply reply;
    if (pending.reply.wait_for(rpc_timeout_) == std::future_status::ready) {
      reply = pending.reply.get();
    } else {
      // Lost request or reply (dropped envelope, dead worker): reclaim the
      // slot so the late reply — if any — is a counted no-op.
      node_->forget(pending.request_id);
      reply.status = Status::kError;
    }
    if (reply.ok()) {
      BufferReader pr(reply.payload);
      auto bytes = pr.bytes();
      if (trace) {
        trace->record(obs::TraceKind::kPieceFetch, op, id, worker, piece,
                      static_cast<double>(bytes.size()));
      }
      return bytes;
    }
    if (attempt < retry_.piece_attempts) {
      ++retries;
      if (trace) {
        trace->record(obs::TraceKind::kPieceRetry, op, id, worker, piece,
                      static_cast<double>(attempt));
      }
      fault::backoff_sleep(retry_, attempt,
                           (static_cast<std::uint64_t>(id) << 24) ^ (piece << 8) ^ pass);
    }
  }
  return std::nullopt;
}

RpcReadStats RpcSpClient::read_with_stats(FileId id) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  const std::uint64_t op = trace ? trace->begin_op() : 0;
  if (trace) trace->record(obs::TraceKind::kReadStart, op, id);
  const auto start = std::chrono::steady_clock::now();

  RpcReadStats stats;
  std::string error = "retry budget exhausted";
  for (std::size_t pass = 1; pass <= retry_.read_attempts; ++pass) {
    stats.passes = pass;
    if (pass > 1) {
      ++stats.retries;
      if (trace) {
        trace->record(obs::TraceKind::kReadRepeatPass, op, id, 0, 0,
                      static_cast<double>(pass));
      }
      fault::backoff_sleep(retry_, pass, static_cast<std::uint64_t>(id) * 0x9e37 + pass);
    }
    // Fresh LOOKUP each pass: a repaired file's re-placed layout is only
    // visible through the master.
    BufferWriter lookup;
    lookup.u32(id);
    const auto reply = node_->call_sync(master_node_, kLookupFile, lookup.take(), rpc_timeout_);
    if (!reply.ok()) {
      error = "LOOKUP failed: " + reply.error_text();
      if (reply.error_text() == "unknown file") {
        if (probes) probes->read_failures->add(1);
        if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
        throw std::runtime_error("RpcSpClient::read: unknown file");
      }
      continue;
    }

    BufferReader r(reply.payload);
    const std::uint64_t size = r.u64();
    const std::uint32_t file_crc = r.u32();
    const std::uint32_t n = r.u32();
    std::vector<std::uint32_t> servers(n);
    std::vector<std::uint64_t> piece_sizes(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      servers[i] = r.u32();
      piece_sizes[i] = r.u64();
    }
    std::vector<std::uint64_t> offsets(n, 0);
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      offsets[i] = total;
      total += piece_sizes[i];
    }

    // First round: parallel GET fan-out; each piece lands exactly once, at
    // its final offset in the preallocated output buffer. Pieces that fail
    // or time out drop into the sequential retry path below.
    std::vector<RpcNode::PendingCall> gets;
    gets.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      BufferWriter w;
      w.u32(id);
      w.u32(i);
      gets.push_back(node_->call_tagged(worker_of_server_.at(servers[i]), kGetBlock, w.take()));
    }
    std::vector<std::uint8_t> out(total);
    bool all_ok = true;
    for (std::uint32_t i = 0; i < n; ++i) {
      std::optional<std::vector<std::uint8_t>> bytes;
      Reply piece_reply;
      if (gets[i].reply.wait_for(rpc_timeout_) == std::future_status::ready) {
        piece_reply = gets[i].reply.get();
      } else {
        node_->forget(gets[i].request_id);
        piece_reply.status = Status::kError;
      }
      if (piece_reply.ok()) {
        BufferReader pr(piece_reply.payload);
        bytes = pr.bytes();
        if (trace) {
          trace->record(obs::TraceKind::kPieceFetch, op, id, worker_of_server_.at(servers[i]),
                        i, static_cast<double>(bytes->size()));
        }
      } else {
        ++stats.retries;
        if (trace) {
          trace->record(obs::TraceKind::kPieceRetry, op, id, worker_of_server_.at(servers[i]),
                        i, 0.0);
        }
        bytes = fetch_piece(id, i, worker_of_server_.at(servers[i]), pass, op, stats.retries);
      }
      if (!bytes || bytes->size() != piece_sizes[i]) {
        all_ok = false;
        error = "piece " + std::to_string(i) + " unfetchable";
        continue;  // drain the remaining futures so none leak
      }
      std::copy(bytes->begin(), bytes->end(),
                out.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
    }
    if (!all_ok) continue;
    if (out.size() != size || crc32(out) != file_crc) {
      error = "whole-file checksum mismatch";
      continue;
    }
    stats.bytes = std::move(out);
    if (probes) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      probes->reads->add(1);
      probes->retries->add(stats.retries);
      probes->read_wall->record(wall);
      if (trace) trace->record(obs::TraceKind::kReadDone, op, id, 0, 0, wall);
    }
    return stats;
  }
  if (probes) {
    probes->read_failures->add(1);
    probes->retries->add(stats.retries);
    if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
  }
  throw std::runtime_error("RpcSpClient::read: " + error + " after " +
                           std::to_string(retry_.read_attempts) + " attempts");
}

std::vector<std::uint8_t> RpcSpClient::read(FileId id) { return read_with_stats(id).bytes; }

void RpcSpClient::attach_observability(obs::MetricsRegistry* registry,
                                       obs::TraceRecorder* trace) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->reads = &registry->counter(n::kClientReads);
  probes->read_failures = &registry->counter(n::kClientReadFailures);
  probes->retries = &registry->counter(n::kClientRetries);
  probes->read_wall = &registry->histogram(n::kClientReadLatency);
  probes->trace = trace;
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

RpcEcClient::RpcEcClient(Bus& bus, NodeId node_id, NodeId master_node,
                         std::vector<NodeId> worker_of_server, std::size_t k, std::size_t n)
    : master_node_(master_node), worker_of_server_(std::move(worker_of_server)), rs_(k, n) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "ec-client-" + std::to_string(node_id));
  node_->start();
}

void RpcEcClient::write(FileId id, std::span<const std::uint8_t> data,
                        const std::vector<std::uint32_t>& servers) {
  if (servers.size() != rs_.total_shards()) {
    throw std::invalid_argument("RpcEcClient::write: need exactly n servers");
  }
  const auto shards = rs_.encode(data);
  std::vector<std::future<Reply>> puts;
  puts.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    BufferWriter w;
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(i));
    w.bytes(shards[i].bytes);
    puts.push_back(node_->call(worker_of_server_.at(servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("EC PUT failed: " + reply.error_text());
  }

  BufferWriter w;
  w.u32(id);
  w.u64(data.size());
  w.u32(crc32(data));
  w.u32(static_cast<std::uint32_t>(servers.size()));
  for (std::size_t i = 0; i < servers.size(); ++i) {
    w.u32(servers[i]);
    w.u64(shards[i].bytes.size());
  }
  const auto reply = node_->call_sync(master_node_, kRegisterFile, w.take());
  if (!reply.ok()) throw std::runtime_error("EC REGISTER failed: " + reply.error_text());
}

std::vector<std::uint8_t> RpcEcClient::read(FileId id, Rng& rng) {
  BufferWriter lookup;
  lookup.u32(id);
  const auto reply = node_->call_sync(master_node_, kLookupFile, lookup.take());
  if (!reply.ok()) throw std::runtime_error("EC LOOKUP failed: " + reply.error_text());

  BufferReader r(reply.payload);
  const std::uint64_t size = r.u64();
  const std::uint32_t file_crc = r.u32();
  const std::uint32_t n = r.u32();
  if (n != rs_.total_shards()) throw std::runtime_error("EC layout mismatch");
  std::vector<std::uint32_t> servers(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    servers[i] = r.u32();
    (void)r.u64();  // shard length (implied by the code geometry)
  }

  // Late binding: fan out k+1 GETs; decode from the first k that return.
  const std::size_t fetch_count = std::min(rs_.data_shards() + 1, static_cast<std::size_t>(n));
  const auto picks = rng.sample_without_replacement(n, fetch_count);
  std::vector<std::future<Reply>> gets;
  gets.reserve(fetch_count);
  for (std::size_t j = 0; j < fetch_count; ++j) {
    BufferWriter w;
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(picks[j]));
    gets.push_back(node_->call(worker_of_server_.at(servers[picks[j]]), kGetBlock, w.take()));
  }
  std::vector<Shard> shards;
  shards.reserve(rs_.data_shards());
  for (std::size_t j = 0; j < fetch_count && shards.size() < rs_.data_shards(); ++j) {
    const auto shard_reply = gets[j].get();
    if (!shard_reply.ok()) continue;  // the late-binding hedge absorbs one loss
    BufferReader pr(shard_reply.payload);
    shards.push_back(Shard{picks[j], pr.bytes()});
  }
  if (shards.size() < rs_.data_shards()) {
    throw std::runtime_error("EC read: not enough shards survived");
  }
  auto out = rs_.decode(shards, size);
  if (crc32(out) != file_crc) throw std::runtime_error("EC read: checksum mismatch");
  return out;
}

std::uint64_t RpcSpClient::access_count(FileId id) {
  BufferWriter w;
  w.u32(id);
  const auto reply = node_->call_sync(master_node_, kAccessCount, w.take());
  if (!reply.ok()) throw std::runtime_error("ACCESS_COUNT failed: " + reply.error_text());
  BufferReader r(reply.payload);
  return r.u64();
}

}  // namespace spcache::rpc
