#include "rpc/cache_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/crc32.h"
#include "erasure/rs_code.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache::rpc {

namespace {

std::vector<std::uint8_t> empty_body() { return {}; }

}  // namespace

void CacheWorkerService::serve_block_bytes(BufferWriter& w, const Block& block) {
  w.u32(static_cast<std::uint32_t>(block.bytes.size()));
  // The copy into the reply IS the integrity scan: one fused pass instead
  // of a verify scan in the store followed by a separate append copy.
  const auto dst = w.extend(block.bytes.size());
  if (crc32_copy(dst, block.bytes) != block.crc) {
    throw std::runtime_error("checksum mismatch (corrupted block)");
  }
}

void write_meta(BufferWriter& w, const FileMeta& meta) {
  w.u64(meta.size);
  w.u32(meta.file_crc);
  w.u64(meta.epoch);
  w.u32(static_cast<std::uint32_t>(meta.partitions()));
  for (std::size_t i = 0; i < meta.partitions(); ++i) {
    w.u32(meta.servers[i]);
    w.u64(meta.piece_sizes[i]);
  }
}

FileMeta read_meta(BufferReader& r) {
  FileMeta meta;
  meta.size = r.u64();
  meta.file_crc = r.u32();
  meta.epoch = r.u64();
  const std::uint32_t n = r.u32();
  meta.servers.reserve(n);
  meta.piece_sizes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    meta.servers.push_back(r.u32());
    meta.piece_sizes.push_back(r.u64());
  }
  return meta;
}

CacheWorkerService::CacheWorkerService(Bus& bus, NodeId node_id, std::uint32_t server_id,
                                       Bandwidth bandwidth)
    : store_(server_id, bandwidth) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "worker-" + std::to_string(server_id));
  node_->handle(kPutBlock, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    // View straight into the request payload: the only copy of the block
    // bytes is the fused copy+CRC inside put_copy.
    const auto data = r.bytes_view();
    const std::uint64_t epoch = r.u64();
    store_.put_copy(BlockKey{file, piece}, data);
    auto& recorded = epochs_[file];
    recorded = std::max(recorded, epoch);
    return empty_body();
  });
  node_->handle_into(kGetBlock, [this](BufferReader& r, BufferWriter& w) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    // Fused serve: the block bytes go from the store straight into the
    // reply payload with one crc32_copy pass that doubles as the verify
    // scan — no body vector, no separate checksum sweep.
    const auto block = store_.get_for_serve(BlockKey{file, piece});
    if (!block) throw std::runtime_error("block not found");
    w.reserve(4 + block->bytes.size());
    serve_block_bytes(w, *block);
  });
  node_->handle_into(kGetBlockMulti, [this](BufferReader& r, BufferWriter& w) {
    const auto file = static_cast<FileId>(r.u32());
    const std::uint64_t epoch = r.u64();
    if (const auto it = epochs_.find(file); it != epochs_.end() && epoch < it->second) {
      // The request was built against a layout this worker has already
      // seen superseded: reject it wholesale so the client re-LOOKUPs
      // instead of fetching pieces of a torn layout.
      throw WrongEpochError("stale layout epoch " + std::to_string(epoch) + " < " +
                            std::to_string(it->second));
    }
    const std::uint32_t count = r.u32();
    // Piece indices land in the arena, BlockRefs in the recycled vector:
    // in steady state this handler's only allocation is the reply payload
    // itself, whose ownership transfers to the wire.
    scratch_arena_.reset();
    const auto pieces = scratch_arena_.make_span<PieceIndex>(count);
    for (auto& p : pieces) p = static_cast<PieceIndex>(r.u32());
    scratch_blocks_.clear();
    scratch_blocks_.reserve(count);
    std::size_t total = 0;
    for (const auto piece : pieces) {
      scratch_blocks_.push_back(store_.get_for_serve(BlockKey{file, piece}));
      if (scratch_blocks_.back()) total += scratch_blocks_.back()->bytes.size();
    }
    // Reply: count u32, then per piece a found byte + length-prefixed
    // bytes. The reply length is known exactly, so one reserve() replaces
    // the doubling reallocations a multi-megabyte append sequence pays.
    w.reserve(4 + count * 5 + total);
    w.u32(count);
    for (const auto& block : scratch_blocks_) {
      if (!block) {
        w.u8(0);  // missing piece: the client's per-piece retry handles it
        continue;
      }
      w.u8(1);
      serve_block_bytes(w, *block);
    }
    scratch_blocks_.clear();  // drop the shared refs before the reply ships
  });
  node_->handle_into(kGetRange, [this](BufferReader& r, BufferWriter& w) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    const Bytes offset = r.u64();
    const Bytes length = r.u64();
    const auto bytes = store_.get_range(BlockKey{file, piece}, offset, length);
    w.reserve(4 + bytes.size());
    w.bytes(bytes);
  });
  node_->handle(kStagePiece, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    const std::uint64_t epoch = r.u64();
    const std::uint8_t op = r.u8();
    const BlockKey key{file, piece};
    BufferWriter w;
    switch (op) {
      case kStageOpAppend: {
        const Bytes piece_size = r.u64();
        const Bytes offset = r.u64();
        store_.stage_range(key, epoch, piece_size, offset, r.bytes_view());
        w.u8(1);
        break;
      }
      case kStageOpLocalCopy: {
        // The source range is resident right here: serve it out of the own
        // store and stage it without any payload having crossed the wire.
        const Bytes piece_size = r.u64();
        const Bytes offset = r.u64();
        const auto src_piece = static_cast<PieceIndex>(r.u32());
        const Bytes src_offset = r.u64();
        const Bytes length = r.u64();
        const auto bytes = store_.get_range(BlockKey{file, src_piece}, src_offset, length);
        store_.stage_range(key, epoch, piece_size, offset, bytes);
        w.u8(1);
        break;
      }
      case kStageOpFinalize:
        w.u8(store_.finalize_staged(key, epoch) ? 1 : 0);
        break;
      case kStageOpPublish: {
        const bool ok = store_.publish_staged(key, epoch);
        if (ok) {
          // The published piece belongs to the new layout generation:
          // record it so a multi-GET built against the old one is rejected
          // with kWrongEpoch instead of served a torn mix.
          auto& recorded = epochs_[file];
          recorded = std::max(recorded, epoch);
        }
        w.u8(ok ? 1 : 0);
        break;
      }
      case kStageOpDiscard:
        w.u8(store_.discard_staged(key, epoch) ? 1 : 0);
        break;
      default:
        throw std::runtime_error("kStagePiece: unknown op " + std::to_string(op));
    }
    return w.take();
  });
  node_->handle(kEraseBlock, [this](BufferReader& r) {
    const auto file = static_cast<FileId>(r.u32());
    const auto piece = static_cast<PieceIndex>(r.u32());
    BufferWriter w;
    w.u8(store_.erase(BlockKey{file, piece}) ? 1 : 0);
    return w.take();
  });
  node_->handle(kPing, [](BufferReader& r) {
    // Liveness probe: echo the caller's token. Running on the service
    // thread means a wedged worker fails the probe, not just a dead one.
    BufferWriter w;
    w.u64(r.u64());
    return w.take();
  });
  node_->start();
}

MasterService::MasterService(Bus& bus, NodeId node_id) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "sp-master");
  node_->handle(kRegisterFile, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    FileMeta meta = read_meta(r);  // .epoch is the writer's proposal
    if (master_.peek(id).has_value()) {
      master_.update_file(id, std::move(meta));
    } else {
      master_.register_file(id, std::move(meta));
    }
    // Reply with the epoch the master actually assigned (it enforces
    // monotonicity past the proposal) so the writer can cache its own
    // layout at the authoritative generation.
    BufferWriter w;
    w.u64(master_.file_epoch(id));
    return w.take();
  });
  node_->handle(kLookupFile, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    const auto meta = master_.lookup_for_read(id);
    if (!meta) throw std::runtime_error("unknown file");
    BufferWriter w;
    write_meta(w, *meta);
    return w.take();
  });
  node_->handle(kLookupBatch, [this](BufferReader& r) {
    const std::uint32_t count = r.u32();
    BufferWriter w;
    w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto id = static_cast<FileId>(r.u32());
      const auto meta = master_.lookup_for_read(id);
      if (!meta) {
        w.u8(0);
        continue;
      }
      w.u8(1);
      write_meta(w, *meta);
    }
    return w.take();
  });
  node_->handle(kAccessCount, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    BufferWriter w;
    w.u64(master_.access_count(id));
    return w.take();
  });
  node_->handle(kFileEpoch, [this](BufferReader& r) {
    const auto id = static_cast<FileId>(r.u32());
    BufferWriter w;
    w.u64(master_.file_epoch(id));
    return w.take();
  });
  node_->handle(kReportAccess, [this](BufferReader& r) {
    const std::uint32_t count = r.u32();
    std::vector<std::pair<FileId, std::uint64_t>> deltas;
    deltas.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto id = static_cast<FileId>(r.u32());
      deltas.emplace_back(id, r.u64());
    }
    BufferWriter w;
    w.u64(master_.report_access_batch(deltas));
    return w.take();
  });
  node_->handle(kPutStable, [this](BufferReader& r) {
    // Alluxio-style checkpoint to the stable tier: the whole file, kept
    // durable so a worker death is repairable without cache replicas.
    const auto id = static_cast<FileId>(r.u32());
    stable_.checkpoint(id, r.bytes_view());
    return empty_body();
  });
  node_->handle(kPing, [](BufferReader& r) {
    BufferWriter w;
    w.u64(r.u64());
    return w.take();
  });
  node_->start();
}

RpcSpClient::RpcSpClient(Bus& bus, NodeId node_id, NodeId master_node,
                         std::vector<NodeId> worker_of_server, fault::RetryPolicy retry,
                         std::chrono::milliseconds rpc_timeout, ClientCacheConfig cache)
    : bus_(bus),
      master_node_(master_node),
      worker_of_server_(std::move(worker_of_server)),
      retry_(retry),
      rpc_timeout_(rpc_timeout),
      cache_config_(cache),
      layout_cache_(cache.cache_capacity),
      access_acc_(cache.report_flush_threshold) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "sp-client-" + std::to_string(node_id));
  node_->start();  // needed to receive replies
}

RpcSpClient::~RpcSpClient() {
  try {
    flush_access_reports();
  } catch (const std::exception&) {
    // Best effort: a dead master must not fail teardown.
  }
}

std::uint64_t RpcSpClient::flush_access_reports() {
  const auto deltas = access_acc_.drain();
  if (deltas.empty()) return 0;
  BufferWriter w;
  w.u32(static_cast<std::uint32_t>(deltas.size()));
  for (const auto& [id, delta] : deltas) {
    w.u32(id);
    w.u64(delta);
  }
  const auto reply = node_->call_sync(master_node_, kReportAccess, w.take(), rpc_timeout_);
  if (!reply.ok()) {
    // The envelope (or master) was lost: put the counts back so the next
    // flush retries them — popularity must not silently leak away.
    for (const auto& [id, delta] : deltas) access_acc_.record(id, delta);
    return 0;
  }
  BufferReader r(reply.payload);
  return r.u64();
}

std::size_t RpcSpClient::prefetch_layouts(const std::vector<FileId>& ids) {
  if (!cache_config_.layout_cache || ids.empty()) return 0;
  BufferWriter w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto id : ids) w.u32(id);
  const auto reply = node_->call_sync(master_node_, kLookupBatch, w.take(), rpc_timeout_);
  if (!reply.ok()) return 0;
  BufferReader r(reply.payload);
  const std::uint32_t count = r.u32();
  std::size_t found = 0;
  for (std::uint32_t i = 0; i < count && i < ids.size(); ++i) {
    if (r.u8() == 0) continue;
    layout_cache_.put(ids[i], read_meta(r));
    ++found;
  }
  return found;
}

std::uint64_t RpcSpClient::file_epoch(FileId id) {
  BufferWriter w;
  w.u32(id);
  const auto reply = node_->call_sync(master_node_, kFileEpoch, w.take(), rpc_timeout_);
  if (!reply.ok()) return 0;  // the master re-enforces monotonicity at REGISTER
  BufferReader r(reply.payload);
  return r.u64();
}

void RpcSpClient::write(FileId id, std::span<const std::uint8_t> data,
                        const std::vector<std::uint32_t>& servers) {
  const auto pieces = split_plain(data, servers.size());
  // Propose the next layout generation. The workers record it at PUT so a
  // later multi-GET against the *previous* generation draws kWrongEpoch;
  // the master keeps max(proposal, current+1), so a lost/failed kFileEpoch
  // degrades to a weaker proposal, never a regression.
  const std::uint64_t proposed = file_epoch(id) + 1;

  // Fan out the PUTs, then join.
  std::vector<std::future<Reply>> puts;
  puts.reserve(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    BufferWriter w;
    w.reserve(4 + 4 + 4 + pieces[i].size() + 8);  // whole PUT frame, one allocation
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(i));
    w.bytes(pieces[i]);
    w.u64(proposed);
    puts.push_back(node_->call(worker_of_server_.at(servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("PUT failed: " + reply.error_text());
  }

  FileMeta meta;
  meta.size = data.size();
  meta.file_crc = crc32(data);
  meta.epoch = proposed;
  meta.servers = servers;
  meta.piece_sizes.reserve(pieces.size());
  for (const auto& p : pieces) meta.piece_sizes.push_back(p.size());

  BufferWriter w;
  w.u32(id);
  write_meta(w, meta);
  const auto reply = node_->call_sync(master_node_, kRegisterFile, w.take());
  if (!reply.ok()) throw std::runtime_error("REGISTER failed: " + reply.error_text());
  if (cache_config_.layout_cache) {
    BufferReader r(reply.payload);
    meta.epoch = r.u64();  // the epoch the master actually assigned
    layout_cache_.put(id, std::move(meta));
  }

  // Checkpoint the whole file to the master's stable tier (Section 8: the
  // underlying storage, not cache replicas, is the durability story). Best
  // effort — a lost checkpoint narrows repair coverage, never fails the
  // write; the file is already served from cache.
  BufferWriter cw;
  cw.reserve(4 + 4 + data.size());
  cw.u32(id);
  cw.bytes(data);
  (void)node_->call_sync(master_node_, kPutStable, cw.take());
}

std::optional<std::vector<std::uint8_t>> RpcSpClient::fetch_piece(FileId id, std::uint32_t piece,
                                                                  NodeId worker, std::size_t pass,
                                                                  std::uint64_t op,
                                                                  std::size_t& retries) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  for (std::size_t attempt = 1; attempt <= retry_.piece_attempts; ++attempt) {
    BufferWriter w;
    w.u32(id);
    w.u32(piece);
    auto pending = node_->call_tagged(worker, kGetBlock, w.take());
    Reply reply;
    if (pending.reply.wait_for(rpc_timeout_) == std::future_status::ready) {
      reply = pending.reply.get();
    } else {
      // Lost request or reply (dropped envelope, dead worker): reclaim the
      // slot so the late reply — if any — is a counted no-op.
      node_->forget(pending.request_id);
      reply.status = Status::kError;
    }
    if (reply.ok()) {
      BufferReader pr(reply.payload);
      auto bytes = pr.bytes();
      if (trace) {
        trace->record(obs::TraceKind::kPieceFetch, op, id, worker, piece,
                      static_cast<double>(bytes.size()));
      }
      return bytes;
    }
    if (attempt < retry_.piece_attempts) {
      ++retries;
      if (trace) {
        trace->record(obs::TraceKind::kPieceRetry, op, id, worker, piece,
                      static_cast<double>(attempt));
      }
      fault::backoff_sleep(retry_, attempt, fault::retry_token(id, piece, pass));
    }
  }
  return std::nullopt;
}

std::optional<FileMeta> RpcSpClient::layout_for_pass(FileId id, std::size_t pass,
                                                     bool& from_cache, bool& unknown,
                                                     std::string& error) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  from_cache = false;
  unknown = false;
  if (cache_config_.layout_cache && pass == 1) {
    if (auto cached = layout_cache_.get(id)) {
      from_cache = true;
      if (probes) probes->layout_hits->add(1);
      // The master saw no LOOKUP for this read: tally it locally and ship
      // the batch once the threshold fills.
      if (access_acc_.record(id)) flush_access_reports();
      return cached;
    }
    if (probes) probes->layout_misses->add(1);
  }
  BufferWriter lookup;
  lookup.u32(id);
  const auto reply = node_->call_sync(master_node_, kLookupFile, lookup.take(), rpc_timeout_);
  if (!reply.ok()) {
    error = "LOOKUP failed: " + reply.error_text();
    unknown = reply.error_text() == "unknown file";
    return std::nullopt;
  }
  BufferReader r(reply.payload);
  FileMeta meta = read_meta(r);
  if (cache_config_.layout_cache) layout_cache_.put(id, meta);
  return meta;
}

bool RpcSpClient::multi_get_pass(FileId id, const FileMeta& meta, std::size_t pass,
                                 std::uint64_t op, std::vector<std::uint8_t>& out,
                                 std::size_t& retries, bool& wrong_epoch,
                                 std::uint32_t& whole_crc, std::string& error) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  const std::size_t n = meta.partitions();
  std::vector<std::uint64_t> offsets(n, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = total;
    total += meta.piece_sizes[i];
  }
  // No pre-zeroing: a successful pass writes every byte through the fused
  // copies below, and a failed pass never surfaces `out`.
  out.resize(total);
  std::vector<std::uint8_t> have(n, 0);
  std::vector<std::uint32_t> piece_crcs(n, 0);
  const auto fused_copy_at = [&](std::size_t i, std::span<const std::uint8_t> bytes) {
    piece_crcs[i] = crc32_copy(
        std::span<std::uint8_t>(out.data() + offsets[i], bytes.size()), bytes);
    have[i] = 1;
  };
  wrong_epoch = false;

  if (cache_config_.coalesce) {
    // Coalesce: one kGetBlockMulti per destination worker, covering every
    // piece of this file that lives there.
    struct Group {
      NodeId worker = 0;
      std::vector<std::uint32_t> pieces;
      RpcNode::PendingCall call;
    };
    std::vector<Group> groups;
    std::unordered_map<NodeId, std::size_t> group_of;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId worker = worker_of_server_.at(meta.servers[i]);
      const auto [it, inserted] = group_of.try_emplace(worker, groups.size());
      if (inserted) {
        groups.emplace_back();
        groups.back().worker = worker;
      }
      groups[it->second].pieces.push_back(static_cast<std::uint32_t>(i));
    }
    auto* bus_probes = bus_.observability();
    for (auto& g : groups) {
      BufferWriter w;
      w.u32(id);
      w.u64(meta.epoch);
      w.u32(static_cast<std::uint32_t>(g.pieces.size()));
      for (const auto p : g.pieces) w.u32(p);
      g.call = node_->call_tagged(g.worker, kGetBlockMulti, w.take());
      if (g.pieces.size() > 1 && bus_probes && bus_probes->envelopes_coalesced) {
        bus_probes->envelopes_coalesced->add(g.pieces.size() - 1);
      }
    }
    for (auto& g : groups) {
      Reply reply;
      if (g.call.reply.wait_for(rpc_timeout_) == std::future_status::ready) {
        reply = g.call.reply.get();
      } else {
        node_->forget(g.call.request_id);
        reply.status = Status::kError;
      }
      if (reply.status == Status::kWrongEpoch) {
        // Keep draining the remaining groups' futures (their replies
        // self-resolve), but the pass is already lost.
        wrong_epoch = true;
        error = "stale layout: " + reply.error_text();
        continue;
      }
      if (!reply.ok()) continue;  // whole group falls to the per-piece path
      BufferReader pr(reply.payload);
      const std::uint32_t count = pr.u32();
      if (count != g.pieces.size()) continue;
      for (const auto i : g.pieces) {
        if (pr.u8() == 0) continue;  // missing on the worker
        const auto bytes = pr.bytes_view();
        if (bytes.size() != meta.piece_sizes[i]) continue;
        fused_copy_at(i, bytes);
        if (trace) {
          trace->record(obs::TraceKind::kPieceFetch, op, id, g.worker, i,
                        static_cast<double>(bytes.size()));
        }
      }
    }
    if (wrong_epoch) return false;
  } else {
    // Baseline: one kGetBlock per piece, fanned out in parallel.
    std::vector<RpcNode::PendingCall> gets;
    gets.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      BufferWriter w;
      w.u32(id);
      w.u32(i);
      gets.push_back(node_->call_tagged(worker_of_server_.at(meta.servers[i]), kGetBlock,
                                        w.take()));
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      Reply reply;
      if (gets[i].reply.wait_for(rpc_timeout_) == std::future_status::ready) {
        reply = gets[i].reply.get();
      } else {
        node_->forget(gets[i].request_id);
        reply.status = Status::kError;
      }
      if (!reply.ok()) continue;
      BufferReader pr(reply.payload);
      const auto bytes = pr.bytes_view();
      if (bytes.size() != meta.piece_sizes[i]) continue;
      fused_copy_at(i, bytes);
      if (trace) {
        trace->record(obs::TraceKind::kPieceFetch, op, id, worker_of_server_.at(meta.servers[i]),
                      i, static_cast<double>(bytes.size()));
      }
    }
  }

  // Per-piece retry fallback for anything the fan-out missed.
  bool all_ok = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (have[i]) continue;
    const NodeId worker = worker_of_server_.at(meta.servers[i]);
    ++retries;
    if (trace) trace->record(obs::TraceKind::kPieceRetry, op, id, worker, i, 0.0);
    const auto bytes = fetch_piece(id, i, worker, pass, op, retries);
    if (!bytes || bytes->size() != meta.piece_sizes[i]) {
      all_ok = false;
      error = "piece " + std::to_string(i) + " unfetchable";
      continue;
    }
    fused_copy_at(i, *bytes);
  }
  if (all_ok) {
    // Stitch the per-piece CRCs (from the fused copies) into crc32(out):
    // O(n·32) xors instead of a second pass over the reassembled file. The
    // combiner caches the shift operator per distinct piece length.
    Crc32Combiner combiner;
    whole_crc = n > 0 ? piece_crcs[0] : crc32(out);
    for (std::size_t i = 1; i < n; ++i) {
      whole_crc = combiner.combine(whole_crc, piece_crcs[i], meta.piece_sizes[i]);
    }
  }
  return all_ok;
}

RpcReadStats RpcSpClient::do_read(FileId id) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  const std::uint64_t op = trace ? trace->begin_op() : 0;
  if (trace) trace->record(obs::TraceKind::kReadStart, op, id);
  const auto start = std::chrono::steady_clock::now();

  RpcReadStats stats;
  std::string error = "retry budget exhausted";
  for (std::size_t pass = 1; pass <= retry_.read_attempts; ++pass) {
    stats.passes = pass;
    if (pass > 1) {
      ++stats.retries;
      if (trace) {
        trace->record(obs::TraceKind::kReadRepeatPass, op, id, 0, 0,
                      static_cast<double>(pass));
      }
      fault::backoff_sleep(retry_, pass, fault::retry_token(id, 0, pass));
    }
    bool from_cache = false;
    bool unknown = false;
    const auto meta = layout_for_pass(id, pass, from_cache, unknown, error);
    if (!meta) {
      if (unknown) {
        if (probes) probes->read_failures->add(1);
        if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
        throw std::runtime_error("RpcSpClient::read: unknown file");
      }
      continue;  // transient LOOKUP failure: back off and retry the pass
    }

    std::vector<std::uint8_t> out;
    bool wrong_epoch = false;
    std::uint32_t whole_crc = 0;
    bool fetched = multi_get_pass(id, *meta, pass, op, out, stats.retries, wrong_epoch,
                                  whole_crc, error);
    if (fetched && (out.size() != meta->size || whole_crc != meta->file_crc)) {
      error = "whole-file checksum mismatch";
      fetched = false;
    }
    if (!fetched) {
      // This layout failed us — whether it came from the cache or a LOOKUP
      // that raced a repartition. Drop it so pass+1 (and concurrent
      // readers) start from a fresh LOOKUP.
      if (cache_config_.layout_cache) {
        layout_cache_.invalidate(id);
        if (probes) probes->layout_invalidations->add(1);
      }
      continue;
    }
    stats.bytes = std::move(out);
    stats.layout_cached = from_cache;
    if (probes) {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      probes->reads->add(1);
      probes->retries->add(stats.retries);
      probes->read_wall->record(wall);
      if (trace) trace->record(obs::TraceKind::kReadDone, op, id, 0, 0, wall);
    }
    return stats;
  }
  if (probes) {
    probes->read_failures->add(1);
    probes->retries->add(stats.retries);
    if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
  }
  throw std::runtime_error("RpcSpClient::read: " + error + " after " +
                           std::to_string(retry_.read_attempts) + " attempts");
}

RpcReadStats RpcSpClient::read_with_stats(FileId id) {
  if (!cache_config_.single_flight) return do_read(id);

  std::shared_ptr<Inflight> inflight;
  bool leader = false;
  {
    std::lock_guard lock(sf_mu_);
    auto& slot = inflight_[id];
    if (!slot) {
      slot = std::make_shared<Inflight>();
      slot->future = slot->promise.get_future().share();
      leader = true;
    } else {
      ++slot->waiters;
    }
    inflight = slot;
  }
  if (!leader) {
    // Single-flight follower: the leader's fetch is already on the wire;
    // wait for its result and copy the bytes instead of re-fetching.
    if (const auto* probes = probes_.load(std::memory_order_acquire)) {
      probes->singleflight_shared->add(1);
    }
    const auto shared = inflight->future.get();  // rethrows the leader's failure
    RpcReadStats stats;
    stats.bytes = shared->bytes;
    stats.passes = shared->passes;
    stats.layout_cached = shared->layout_cached;
    stats.shared = true;
    return stats;
  }
  std::size_t waiters = 0;
  try {
    auto stats = do_read(id);
    {
      std::lock_guard lock(sf_mu_);
      inflight_.erase(id);
      waiters = inflight->waiters;
    }
    // Publish (one bytes copy) only if someone actually waited.
    if (waiters > 0) inflight->promise.set_value(std::make_shared<const RpcReadStats>(stats));
    return stats;
  } catch (...) {
    {
      std::lock_guard lock(sf_mu_);
      inflight_.erase(id);
      waiters = inflight->waiters;
    }
    if (waiters > 0) inflight->promise.set_exception(std::current_exception());
    throw;
  }
}

std::vector<std::uint8_t> RpcSpClient::read(FileId id) { return read_with_stats(id).bytes; }

void RpcSpClient::attach_observability(obs::MetricsRegistry* registry,
                                       obs::TraceRecorder* trace) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->reads = &registry->counter(n::kClientReads);
  probes->read_failures = &registry->counter(n::kClientReadFailures);
  probes->retries = &registry->counter(n::kClientRetries);
  probes->layout_hits = &registry->counter(n::kClientLayoutHits);
  probes->layout_misses = &registry->counter(n::kClientLayoutMisses);
  probes->layout_invalidations = &registry->counter(n::kClientLayoutInvalidations);
  probes->singleflight_shared = &registry->counter(n::kClientSingleFlightShared);
  probes->read_wall = &registry->histogram(n::kClientReadLatency);
  probes->trace = trace;
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

RpcEcClient::RpcEcClient(Bus& bus, NodeId node_id, NodeId master_node,
                         std::vector<NodeId> worker_of_server, std::size_t k, std::size_t n)
    : master_node_(master_node), worker_of_server_(std::move(worker_of_server)), rs_(k, n) {
  node_ = std::make_unique<RpcNode>(bus, node_id, "ec-client-" + std::to_string(node_id));
  node_->start();
}

void RpcEcClient::write(FileId id, std::span<const std::uint8_t> data,
                        const std::vector<std::uint32_t>& servers) {
  if (servers.size() != rs_.total_shards()) {
    throw std::invalid_argument("RpcEcClient::write: need exactly n servers");
  }
  const auto shards = rs_.encode(data);
  std::vector<std::future<Reply>> puts;
  puts.reserve(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    BufferWriter w;
    w.reserve(4 + 4 + 4 + shards[i].bytes.size() + 8);
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(i));
    w.bytes(shards[i].bytes);
    w.u64(0);  // epoch proposal 0: the master still bumps to current+1
    puts.push_back(node_->call(worker_of_server_.at(servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("EC PUT failed: " + reply.error_text());
  }

  FileMeta meta;
  meta.size = data.size();
  meta.file_crc = crc32(data);
  meta.epoch = 0;
  meta.servers = servers;
  meta.piece_sizes.reserve(shards.size());
  for (const auto& s : shards) meta.piece_sizes.push_back(s.bytes.size());

  BufferWriter w;
  w.u32(id);
  write_meta(w, meta);
  const auto reply = node_->call_sync(master_node_, kRegisterFile, w.take());
  if (!reply.ok()) throw std::runtime_error("EC REGISTER failed: " + reply.error_text());
}

std::vector<std::uint8_t> RpcEcClient::read(FileId id, Rng& rng) {
  BufferWriter lookup;
  lookup.u32(id);
  const auto reply = node_->call_sync(master_node_, kLookupFile, lookup.take());
  if (!reply.ok()) throw std::runtime_error("EC LOOKUP failed: " + reply.error_text());

  BufferReader r(reply.payload);
  const FileMeta meta = read_meta(r);
  const std::uint64_t size = meta.size;
  const std::uint32_t file_crc = meta.file_crc;
  const auto n = static_cast<std::uint32_t>(meta.partitions());
  if (n != rs_.total_shards()) throw std::runtime_error("EC layout mismatch");
  const auto& servers = meta.servers;

  // Late binding: fan out k+1 GETs; decode from the first k that return.
  const std::size_t fetch_count = std::min(rs_.data_shards() + 1, static_cast<std::size_t>(n));
  const auto picks = rng.sample_without_replacement(n, fetch_count);
  std::vector<std::future<Reply>> gets;
  gets.reserve(fetch_count);
  for (std::size_t j = 0; j < fetch_count; ++j) {
    BufferWriter w;
    w.u32(id);
    w.u32(static_cast<std::uint32_t>(picks[j]));
    gets.push_back(node_->call(worker_of_server_.at(servers[picks[j]]), kGetBlock, w.take()));
  }
  // Zero-copy decode: keep the reply payloads alive and hand the decoder
  // non-owning views into them — shard bytes are never copied into a
  // working buffer first.
  std::vector<Reply> replies;
  std::vector<ShardView> views;
  replies.reserve(rs_.data_shards());
  views.reserve(rs_.data_shards());
  for (std::size_t j = 0; j < fetch_count && views.size() < rs_.data_shards(); ++j) {
    auto shard_reply = gets[j].get();
    if (!shard_reply.ok()) continue;  // the late-binding hedge absorbs one loss
    replies.push_back(std::move(shard_reply));
    BufferReader pr(replies.back().payload);
    views.push_back(ShardView{picks[j], pr.bytes_view()});
  }
  if (views.size() < rs_.data_shards()) {
    throw std::runtime_error("EC read: not enough shards survived");
  }
  std::vector<std::uint8_t> out(size);
  RsScratch scratch;
  rs_.decode_into(views, size, out, scratch);
  if (crc32(out) != file_crc) throw std::runtime_error("EC read: checksum mismatch");
  return out;
}

std::uint64_t RpcSpClient::access_count(FileId id) {
  BufferWriter w;
  w.u32(id);
  const auto reply = node_->call_sync(master_node_, kAccessCount, w.take());
  if (!reply.ok()) throw std::runtime_error("ACCESS_COUNT failed: " + reply.error_text());
  BufferReader r(reply.payload);
  return r.u64();
}

}  // namespace spcache::rpc
