#include "rpc/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>

#include "obs/metrics.h"
#include "rpc/bus.h"

namespace spcache::rpc {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    throw std::runtime_error("TcpTransport: bad IPv4 address '" + host + "'");
  }
  return sin;
}

}  // namespace

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::listen(const std::string& host, std::uint16_t port) {
  if (loop_started_) throw std::runtime_error("TcpTransport: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto sin = make_addr(host, port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: listen() failed");
  }
  socklen_t len = sizeof(sin);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin), &len);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { handle_listen_ready(); });
  start();
  return ntohs(sin.sin_port);
}

void TcpTransport::start() {
  if (loop_started_) return;
  loop_started_ = true;
  loop_.start();
}

void TcpTransport::add_peer(NodeId id, std::string host, std::uint16_t port) {
  std::lock_guard lock(mu_);
  auto& peer = addrs_[id];
  peer.host = std::move(host);
  peer.port = port;
}

void TcpTransport::attach(NodeId id, RpcNode& node) {
  std::lock_guard lock(mu_);
  locals_[id] = &node;
}

void TcpTransport::detach(NodeId id) {
  std::lock_guard lock(mu_);
  locals_.erase(id);
}

bool TcpTransport::send(Envelope envelope) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard lock(mu_);
    // Local short-circuit: a co-hosted destination never touches a socket
    // (a daemon's own services talk at in-process speed). Delivery under
    // mu_ so detach() waits it out.
    if (const auto it = locals_.find(envelope.to); it != locals_.end()) {
      it->second->deliver(std::move(envelope));
      return true;
    }
    if (!route_.contains(envelope.to) && !addrs_.contains(envelope.to)) return false;
  }
  if (!loop_started_) return false;
  // shared_ptr keeps the (possibly multi-megabyte) payload from being
  // copied by std::function's copyable-closure requirement.
  auto boxed = std::make_shared<Envelope>(std::move(envelope));
  loop_.post([this, boxed] { send_on_loop(std::move(*boxed)); });
  return true;
}

void TcpTransport::send_on_loop(Envelope envelope) {
  Conn* conn = nullptr;
  {
    std::lock_guard lock(mu_);
    if (const auto it = route_.find(envelope.to); it != route_.end()) {
      const auto cit = conns_.find(it->second);
      if (cit != conns_.end()) conn = cit->second.get();
    }
  }
  if (conn == nullptr) conn = connect_peer(envelope.to);
  if (conn == nullptr) {
    // Reachability changed between send() and here (peer connection died
    // and it has no address, or connect failed immediately): the envelope
    // is lost like a packet on a dead link — the caller's timeout fires.
    count(frames_dropped_, &ObsProbes::frames_dropped);
    return;
  }
  encode_frame(envelope, conn->out);
  flush_conn(*conn);
}

TcpTransport::Conn* TcpTransport::connect_peer(NodeId id) {
  std::string host;
  std::uint16_t port = 0;
  {
    std::lock_guard lock(mu_);
    const auto it = addrs_.find(id);
    if (it == addrs_.end()) return nullptr;
    host = it->second.host;
    port = it->second.port;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto sin = make_addr(host, port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = id;
  conn->peer_known = true;
  conn->connecting = (rc != 0);
  Conn* raw = conn.get();
  conns_[fd] = std::move(conn);
  {
    std::lock_guard lock(mu_);
    route_[id] = fd;
  }
  loop_.add_fd(fd, EPOLLIN | EPOLLOUT, [this, fd](std::uint32_t ev) {
    handle_conn_event(fd, ev);
  });
  // rc == 0: connected instantly (loopback). Otherwise the outcome arrives
  // as EPOLLOUT (success) or EPOLLERR/EPOLLHUP (refused); frames queue on
  // conn->out meanwhile.
  if (!raw->connecting) on_connected(*raw);
  return raw;
}

void TcpTransport::on_connected(Conn& conn) {
  conn.connecting = false;
  bool again = false;
  {
    std::lock_guard lock(mu_);
    if (const auto it = addrs_.find(conn.peer); it != addrs_.end()) {
      again = it->second.ever_connected;
      it->second.ever_connected = true;
    }
  }
  count(connects_, &ObsProbes::connects);
  if (again) count(reconnects_, &ObsProbes::reconnects);
  flush_conn(conn);
}

void TcpTransport::handle_listen_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;  // EAGAIN (or teardown)
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->inbound = true;
    conns_[fd] = std::move(conn);
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t ev) { handle_conn_event(fd, ev); });
  }
}

void TcpTransport::handle_conn_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (conn.connecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close_conn(fd);
        return;
      }
      on_connected(conn);
    } else {
      flush_conn(conn);
    }
    if (!conns_.contains(fd)) return;  // flush hit a fatal error
  }
  if ((events & EPOLLIN) != 0) read_conn(conn);
}

void TcpTransport::read_conn(Conn& conn) {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      count(bytes_rx_, &ObsProbes::bytes_rx, static_cast<std::uint64_t>(n));
      conn.decoder.feed(std::span(buffer, static_cast<std::size_t>(n)));
      try {
        while (auto envelope = conn.decoder.next()) {
          deliver_inbound(std::move(*envelope), conn.fd);
        }
      } catch (const FramingError&) {
        // The stream is unrecoverable past a bad header: count it and cut
        // the connection; the peer's in-flight calls time out and retry.
        count(framing_errors_, &ObsProbes::framing_errors);
        close_conn(conn.fd);
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly peer close
      close_conn(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn.fd);
    return;
  }
}

void TcpTransport::deliver_inbound(Envelope envelope, int via_fd) {
  std::unique_lock lock(mu_);
  // Learn the reply route: the sender is reachable over this connection.
  // Newest connection wins, so a reconnected peer supersedes its corpse.
  route_[envelope.from] = via_fd;
  const auto it = locals_.find(envelope.to);
  if (it != locals_.end()) {
    it->second->deliver(std::move(envelope));
    return;
  }
  lock.unlock();
  count(frames_dropped_, &ObsProbes::frames_dropped);
}

void TcpTransport::flush_conn(Conn& conn) {
  if (conn.connecting) return;  // queued; the EPOLLOUT completion flushes
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      count(bytes_tx_, &ObsProbes::bytes_tx, static_cast<std::uint64_t>(n));
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn.fd);
    return;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos > 64 * 1024) {
    conn.out.erase(conn.out.begin(), conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
    conn.out_pos = 0;
  }
  update_interest(conn);
}

void TcpTransport::update_interest(Conn& conn) {
  const bool want_write = conn.connecting || conn.out_pos < conn.out.size();
  loop_.modify_fd(conn.fd, EPOLLIN | (want_write ? EPOLLOUT : 0u));
}

void TcpTransport::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (conn.out_pos < conn.out.size()) {
    count(frames_dropped_, &ObsProbes::frames_dropped);
  }
  loop_.remove_fd(fd);
  ::close(fd);
  {
    std::lock_guard lock(mu_);
    // Unbind every node routed over this connection — but only if the
    // route still points here (a reconnect may have superseded it).
    for (auto rit = route_.begin(); rit != route_.end();) {
      if (rit->second == fd) {
        rit = route_.erase(rit);
      } else {
        ++rit;
      }
    }
  }
  conns_.erase(it);
}

void TcpTransport::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->connects = &registry->counter(n::kTransportConnects);
  probes->reconnects = &registry->counter(n::kTransportReconnects);
  probes->framing_errors = &registry->counter(n::kTransportFramingErrors);
  probes->bytes_tx = &registry->counter(n::kTransportBytesTx);
  probes->bytes_rx = &registry->counter(n::kTransportBytesRx);
  probes->frames_dropped = &registry->counter(n::kTransportFramesDropped);
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

void TcpTransport::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  if (!loop_started_) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Run the teardown on the loop thread so it cannot race live I/O, then
  // stop the loop itself.
  std::promise<void> done;
  loop_.post([this, &done] {
    if (listen_fd_ >= 0) {
      loop_.remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Best-effort graceful flush: one non-blocking write pass per
    // connection so replies already serialized reach the wire. Work off a
    // snapshot of fds — flush_conn can erase a dead connection.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    for (const int fd : fds) {
      if (const auto it = conns_.find(fd); it != conns_.end()) flush_conn(*it->second);
    }
    for (const int fd : fds) close_conn(fd);
    done.set_value();
  });
  done.get_future().wait();
  loop_.stop();
}

TcpTransport::Counters TcpTransport::counters() const {
  Counters c;
  c.connects = connects_.load(std::memory_order_relaxed);
  c.reconnects = reconnects_.load(std::memory_order_relaxed);
  c.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  c.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  c.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  c.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  return c;
}

void TcpTransport::count(std::atomic<std::uint64_t>& counter, obs::Counter* ObsProbes::* probe,
                         std::uint64_t n) {
  counter.fetch_add(n, std::memory_order_relaxed);
  if (auto* probes = probes_.load(std::memory_order_acquire)) (probes->*probe)->add(n);
}

}  // namespace spcache::rpc
