#include "rpc/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>
#include <thread>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "rpc/bus.h"

namespace spcache::rpc {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    throw std::runtime_error("TcpTransport: bad IPv4 address '" + host + "'");
  }
  return sin;
}

}  // namespace

TcpTransport::TcpTransport(TcpTransportConfig config) : config_(config) {}

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::listen(const std::string& host, std::uint16_t port) {
  if (loop_started_) throw std::runtime_error("TcpTransport: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto sin = make_addr(host, port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: bind(" + host + ":" + std::to_string(port) +
                             ") failed: " + err);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpTransport: listen() failed");
  }
  socklen_t len = sizeof(sin);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin), &len);
  loop_.add_fd(listen_fd_, EPOLLIN, [this](std::uint32_t) { handle_listen_ready(); });
  start();
  return ntohs(sin.sin_port);
}

void TcpTransport::start() {
  if (loop_started_) return;
  loop_started_ = true;
  loop_.start();
}

void TcpTransport::add_peer(NodeId id, std::string host, std::uint16_t port) {
  std::lock_guard lock(mu_);
  auto& peer = addrs_[id];
  peer.host = std::move(host);
  peer.port = port;
}

void TcpTransport::attach(NodeId id, RpcNode& node) {
  std::lock_guard lock(mu_);
  locals_[id] = &node;
}

void TcpTransport::detach(NodeId id) {
  std::lock_guard lock(mu_);
  locals_.erase(id);
}

SendStatus TcpTransport::send(Envelope envelope) {
  if (stopped_.load(std::memory_order_acquire)) return SendStatus::kNoRoute;
  {
    std::lock_guard lock(mu_);
    // Local short-circuit: a co-hosted destination never touches a socket
    // (a daemon's own services talk at in-process speed). Delivery under
    // mu_ so detach() waits it out.
    if (const auto it = locals_.find(envelope.to); it != locals_.end()) {
      it->second->deliver(std::move(envelope));
      return SendStatus::kAccepted;
    }
    const auto ait = addrs_.find(envelope.to);
    if (!route_.contains(envelope.to) && ait == addrs_.end()) return SendStatus::kNoRoute;
    if (ait != addrs_.end()) {
      Peer& peer = ait->second;
      if (peer.circuit_open) {
        // Fail fast while the circuit is open; after the open window let
        // exactly one envelope through as the half-open probe.
        const auto now = std::chrono::steady_clock::now();
        if (now < peer.open_until || peer.half_open_inflight) {
          count(circuit_fast_fails_, &ObsProbes::circuit_fast_fails);
          return SendStatus::kCircuitOpen;
        }
        peer.half_open_inflight = true;
      }
      if (peer.backpressured) {
        count(backpressure_rejects_, &ObsProbes::backpressure_rejects);
        return SendStatus::kOverloaded;
      }
    }
  }
  if (!loop_started_) return SendStatus::kNoRoute;
  // shared_ptr keeps the (possibly multi-megabyte) payload from being
  // copied by std::function's copyable-closure requirement — and, on the
  // batched write path, the same box then keeps the payload alive by
  // reference while it sits in the connection's frame queue.
  auto boxed = std::make_shared<Envelope>(std::move(envelope));
  if (config_.batch_writes) {
    // Stage the envelope and wake the loop only if no sweep is already
    // pending: a burst of sends (e.g. replies fanned out by a service
    // thread) rides a single eventfd wake and drains in one sweep, which
    // flushes each touched connection exactly once.
    bool need_post = false;
    {
      std::lock_guard lock(stage_mu_);
      staged_.push_back(std::move(boxed));
      need_post = !stage_sweep_pending_;
      stage_sweep_pending_ = true;
    }
    if (need_post) loop_.post([this] { drain_staged(); });
  } else {
    // Pre-batching behavior: one loop wake and one write per send.
    loop_.post([this, boxed] {
      const int fd = enqueue_on_loop(boxed);
      if (fd >= 0) {
        const auto it = conns_.find(fd);
        if (it != conns_.end()) flush_conn(*it->second);
      }
    });
  }
  return SendStatus::kAccepted;
}

void TcpTransport::drain_staged() {
  std::vector<std::shared_ptr<Envelope>> batch;
  {
    std::lock_guard lock(stage_mu_);
    batch.swap(staged_);
    // Reset before processing: a producer staging after this point needs a
    // fresh post, because this sweep no longer sees its envelope.
    stage_sweep_pending_ = false;
  }
  // Dedup touched fds so each connection flushes once per burst. Bursts are
  // small (tens of frames over a handful of peers) — linear scan beats a set.
  constexpr std::size_t kMaxTouched = 64;
  int touched[kMaxTouched];
  std::size_t ntouched = 0;
  for (auto& boxed : batch) {
    const int fd = enqueue_on_loop(std::move(boxed));
    if (fd < 0) continue;
    bool seen = false;
    for (std::size_t i = 0; i < ntouched; ++i) {
      if (touched[i] == fd) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      if (ntouched == kMaxTouched) {
        // Overflow safety valve: flush the fullest slate and start over.
        for (std::size_t i = 0; i < ntouched; ++i) {
          const auto it = conns_.find(touched[i]);
          if (it != conns_.end()) flush_conn(*it->second);
        }
        ntouched = 0;
      }
      touched[ntouched++] = fd;
    }
  }
  for (std::size_t i = 0; i < ntouched; ++i) {
    const auto it = conns_.find(touched[i]);
    if (it != conns_.end()) flush_conn(*it->second);
  }
}

int TcpTransport::enqueue_on_loop(std::shared_ptr<Envelope> boxed) {
  Envelope& envelope = *boxed;
  Conn* conn = nullptr;
  {
    std::lock_guard lock(mu_);
    if (const auto it = route_.find(envelope.to); it != route_.end()) {
      const auto cit = conns_.find(it->second);
      if (cit != conns_.end()) conn = cit->second.get();
    }
  }
  if (conn == nullptr) conn = connect_peer(envelope.to);
  if (conn == nullptr) {
    // Reachability changed between send() and here (peer connection died
    // and it has no address, or connect failed immediately): the envelope
    // is lost like a packet on a dead link — the caller's timeout fires.
    count(frames_dropped_, &ObsProbes::frames_dropped);
    return -1;
  }
  // Hard cap at 2x high: envelopes that were already in flight through the
  // loop when the backpressure flag rose still land here; past the cap
  // they are dropped (the caller's timeout fires) so a slow-draining peer
  // bounds this process's memory instead of growing the queue forever.
  if (conn->out_bytes + kFrameHeaderSize + envelope.payload.size() > 2 * config_.wqueue_high) {
    count(backpressure_drops_, &ObsProbes::backpressure_drops);
    count(frames_dropped_, &ObsProbes::frames_dropped);
    return -1;
  }
  OutFrame frame;
  frame.header = encode_frame_header(envelope, envelope.payload.size());
  if (!envelope.payload.empty()) {
    if (config_.batch_writes) {
      // Aliasing ctor: the frame shares ownership of the envelope box but
      // points at its payload — the bytes serialized in the handler are
      // the very bytes the socket writes; no copy on this whole path.
      frame.payload =
          std::shared_ptr<const std::vector<std::uint8_t>>(boxed, &envelope.payload);
    } else {
      // Baseline arm: reproduce the pre-batching cost of copying every
      // payload into the connection's output buffer.
      frame.payload =
          std::make_shared<const std::vector<std::uint8_t>>(envelope.payload);
    }
  }
  conn->out_bytes += frame.size();
  conn->outq.push_back(std::move(frame));
  // The caller flushes this fd after the whole burst is enqueued;
  // flush_conn refreshes backpressure and epoll interest on its way out.
  update_backpressure(*conn);
  return conn->fd;
}

TcpTransport::Conn* TcpTransport::connect_peer(NodeId id) {
  std::string host;
  std::uint16_t port = 0;
  {
    std::lock_guard lock(mu_);
    const auto it = addrs_.find(id);
    if (it == addrs_.end()) return nullptr;
    host = it->second.host;
    port = it->second.port;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto sin = make_addr(host, port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->peer = id;
  conn->peer_known = true;
  conn->connecting = (rc != 0);
  Conn* raw = conn.get();
  conns_[fd] = std::move(conn);
  register_conn(fd);
  {
    std::lock_guard lock(mu_);
    route_[id] = fd;
  }
  loop_.add_fd(fd, EPOLLIN | EPOLLOUT, [this, fd](std::uint32_t ev) {
    handle_conn_event(fd, ev);
  });
  // rc == 0: connected instantly (loopback). Otherwise the outcome arrives
  // as EPOLLOUT (success) or EPOLLERR/EPOLLHUP (refused); frames queue on
  // conn->out meanwhile.
  if (!raw->connecting) on_connected(*raw);
  return raw;
}

void TcpTransport::on_connected(Conn& conn) {
  conn.connecting = false;
  bool again = false;
  {
    std::lock_guard lock(mu_);
    if (const auto it = addrs_.find(conn.peer); it != addrs_.end()) {
      Peer& peer = it->second;
      again = peer.ever_connected;
      peer.ever_connected = true;
      // A completed connect is the breaker's success signal: the failure
      // streak ends and an open circuit (this was the half-open probe)
      // closes again.
      peer.consecutive_failures = 0;
      peer.half_open_inflight = false;
      if (peer.circuit_open) {
        peer.circuit_open = false;
        set_circuit_gauge(conn.peer, peer, 0);
      }
    }
  }
  count(connects_, &ObsProbes::connects);
  if (again) count(reconnects_, &ObsProbes::reconnects);
  flush_conn(conn);
}

void TcpTransport::handle_listen_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;  // a signal is not "no more clients"
      break;                        // EAGAIN (or teardown)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->inbound = true;
    conns_[fd] = std::move(conn);
    register_conn(fd);
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t ev) { handle_conn_event(fd, ev); });
  }
}

void TcpTransport::handle_conn_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    close_conn(fd);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (conn.connecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        close_conn(fd);
        return;
      }
      on_connected(conn);
    } else {
      flush_conn(conn);
    }
    if (!conns_.contains(fd)) return;  // flush hit a fatal error
  }
  if ((events & EPOLLIN) != 0) read_conn(conn);
}

void TcpTransport::read_conn(Conn& conn) {
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    // Large in-flight payloads receive straight into the decoder's sized
    // payload window (readv: window first, scratch for whatever follows),
    // so a multi-megabyte frame costs one kernel->payload copy instead of
    // passing through the decoder buffer on the way.
    std::size_t window_len = 0;
    ssize_t n;
    if (conn.decoder.in_direct()) {
      const auto window = conn.decoder.direct_window();
      window_len = window.size();
      iovec iov[2];
      iov[0].iov_base = window.data();
      iov[0].iov_len = window_len;
      iov[1].iov_base = buffer;
      iov[1].iov_len = sizeof(buffer);
      n = ::readv(conn.fd, iov, 2);
    } else {
      n = ::read(conn.fd, buffer, sizeof(buffer));
    }
    if (n > 0) {
      count(bytes_rx_, &ObsProbes::bytes_rx, static_cast<std::uint64_t>(n));
      try {
        const std::size_t direct_n = std::min(static_cast<std::size_t>(n), window_len);
        if (direct_n > 0) {
          if (auto envelope = conn.decoder.commit_direct(direct_n)) {
            deliver_inbound(std::move(*envelope), conn.fd);
          }
        }
        if (static_cast<std::size_t>(n) > direct_n) {
          conn.decoder.feed(
              std::span(buffer, static_cast<std::size_t>(n) - direct_n));
        }
        while (auto envelope = conn.decoder.next()) {
          deliver_inbound(std::move(*envelope), conn.fd);
        }
        conn.decoder.try_begin_direct();
      } catch (const FramingError&) {
        // The stream is unrecoverable past a bad header: count it and cut
        // the connection; the peer's in-flight calls time out and retry.
        count(framing_errors_, &ObsProbes::framing_errors);
        close_conn(conn.fd);
        return;
      }
      continue;
    }
    if (n == 0) {  // orderly peer close
      close_conn(conn.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(conn.fd);
    return;
  }
}

void TcpTransport::deliver_inbound(Envelope envelope, int via_fd) {
  std::unique_lock lock(mu_);
  // Learn the reply route: the sender is reachable over this connection.
  // Newest connection wins, so a reconnected peer supersedes its corpse.
  route_[envelope.from] = via_fd;
  const auto it = locals_.find(envelope.to);
  if (it != locals_.end()) {
    it->second->deliver(std::move(envelope));
    return;
  }
  lock.unlock();
  count(frames_dropped_, &ObsProbes::frames_dropped);
}

void TcpTransport::flush_conn(Conn& conn) {
  if (conn.connecting) return;  // queued; the EPOLLOUT completion flushes
  // Seeded socket chaos, decided here on the loop thread so the fault
  // schedule is a pure function of the seed even over real sockets.
  std::size_t write_clamp = 0;  // 0 = no clamp
  if (auto* injector = injector_.load(std::memory_order_acquire);
      injector != nullptr && conn.out_bytes > 0) {
    if (injector->sock_delay()) {
      std::this_thread::sleep_for(injector->config().sock_delay);
    }
    if (injector->sock_reset()) {
      // Hard RST instead of an orderly FIN: the peer's read() fails with
      // ECONNRESET mid-stream, its decoder state is discarded with the
      // connection, and retries drive a reconnect.
      const linger lg{.l_onoff = 1, .l_linger = 0};
      ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      close_conn(conn.fd);
      return;
    }
    if (injector->sock_partial_write()) write_clamp = 7;
  }
  // Up to kMaxIovPerWritev segments per syscall: each frame contributes
  // its header and (if any) payload segment, so one writev drains many
  // queued frames. A partial write leaves out_offset mid-frame — possibly
  // mid-header — and the next pass resumes from that exact byte, across
  // iovec boundaries.
  constexpr std::size_t kMaxIovPerWritev = 64;
  while (conn.out_bytes > 0) {
    iovec iov[kMaxIovPerWritev];
    std::size_t iovcnt = 0;
    std::size_t batched = 0;
    std::size_t skip = conn.out_offset;
    for (const OutFrame& frame : conn.outq) {
      if (iovcnt + 2 > kMaxIovPerWritev) break;
      if (!config_.batch_writes && batched == 1) break;  // baseline: 1 frame/syscall
      if (skip < kFrameHeaderSize) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(frame.header.data()) + skip;
        iov[iovcnt].iov_len = kFrameHeaderSize - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= kFrameHeaderSize;
      }
      const std::size_t payload_len = frame.payload ? frame.payload->size() : 0;
      if (payload_len > skip) {
        iov[iovcnt].iov_base =
            const_cast<std::uint8_t*>(frame.payload->data()) + skip;
        iov[iovcnt].iov_len = payload_len - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= payload_len;
      }
      ++batched;
    }
    if (iovcnt == 0) break;
    if (write_clamp != 0) {
      // Honor the chaos clamp by trimming the gather list to the first
      // write_clamp bytes — frames still split across segments exactly as
      // they did with the clamped flat write().
      std::size_t budget = write_clamp;
      std::size_t kept = 0;
      while (kept < iovcnt && budget > 0) {
        if (iov[kept].iov_len > budget) iov[kept].iov_len = budget;
        budget -= iov[kept].iov_len;
        ++kept;
      }
      iovcnt = kept;
    }
    const ssize_t n = ::writev(conn.fd, iov, static_cast<int>(iovcnt));
    if (n > 0) {
      count(bytes_tx_, &ObsProbes::bytes_tx, static_cast<std::uint64_t>(n));
      count(writev_calls_, &ObsProbes::writev_calls);
      conn.out_bytes -= static_cast<std::size_t>(n);
      conn.out_offset += static_cast<std::size_t>(n);
      std::uint64_t completed = 0;
      while (!conn.outq.empty() && conn.out_offset >= conn.outq.front().size()) {
        conn.out_offset -= conn.outq.front().size();
        conn.outq.pop_front();
        ++completed;
      }
      if (completed > 0) count(frames_sent_, &ObsProbes::frames_sent, completed);
      if (write_clamp != 0) break;  // leave the tail for the next EPOLLOUT
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(conn.fd);
    return;
  }
  update_backpressure(conn);
  update_interest(conn);
}

void TcpTransport::update_backpressure(Conn& conn) {
  const std::size_t queued = conn.out_bytes;
  if (queued > wqueue_peak_.load(std::memory_order_relaxed)) {
    // Loop thread is the only writer, so load-compare-store is race-free.
    wqueue_peak_.store(queued, std::memory_order_relaxed);
    if (auto* probes = probes_.load(std::memory_order_acquire); probes && probes->wqueue_peak) {
      probes->wqueue_peak->set(static_cast<std::int64_t>(queued));
    }
  }
  if (!conn.peer_known) return;
  bool crossed = false;
  {
    std::lock_guard lock(mu_);
    const auto it = addrs_.find(conn.peer);
    if (it == addrs_.end()) return;
    Peer& peer = it->second;
    if (!peer.backpressured && queued >= config_.wqueue_high) {
      peer.backpressured = true;
      crossed = true;
    } else if (peer.backpressured && queued <= config_.wqueue_low) {
      peer.backpressured = false;
    }
  }
  if (crossed) count(backpressure_events_, &ObsProbes::backpressure_events);
}

void TcpTransport::update_interest(Conn& conn) {
  const bool want_write = conn.connecting || conn.out_bytes > 0;
  loop_.modify_fd(conn.fd, EPOLLIN | (want_write ? EPOLLOUT : 0u));
}

void TcpTransport::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  const bool stranded = conn.out_bytes > 0;
  if (stranded) {
    count(frames_dropped_, &ObsProbes::frames_dropped);
  }
  // Breaker failure signal: an *outbound* connection that died while still
  // connecting, or with bytes it never delivered. An orderly close of a
  // drained connection (peer restarting cleanly) is not a failure.
  const bool failed = !conn.inbound && conn.peer_known && (conn.connecting || stranded);
  const NodeId failed_peer = conn.peer;
  loop_.remove_fd(fd);
  ::close(fd);
  {
    std::lock_guard lock(mu_);
    // Unbind every node routed over this connection — but only if the
    // route still points here (a reconnect may have superseded it).
    for (auto rit = route_.begin(); rit != route_.end();) {
      if (rit->second == fd) {
        rit = route_.erase(rit);
      } else {
        ++rit;
      }
    }
    // The queue died with the connection; never leave its flag wedged.
    if (conn.peer_known) {
      if (const auto ait = addrs_.find(conn.peer); ait != addrs_.end()) {
        ait->second.backpressured = false;
      }
    }
  }
  conns_.erase(it);
  unregister_conn();
  if (failed) note_peer_failure(failed_peer);
}

void TcpTransport::note_peer_failure(NodeId id) {
  if (config_.breaker_threshold == 0) return;
  bool opened = false;
  {
    std::lock_guard lock(mu_);
    const auto it = addrs_.find(id);
    if (it == addrs_.end()) return;
    Peer& peer = it->second;
    ++peer.consecutive_failures;
    peer.half_open_inflight = false;  // the probe (if any) just failed
    if (peer.consecutive_failures >= config_.breaker_threshold) {
      if (!peer.circuit_open) {
        peer.circuit_open = true;
        opened = true;
        set_circuit_gauge(id, peer, 1);
      }
      // Every further failure (including a failed half-open probe)
      // re-arms the open window from now.
      peer.open_until = std::chrono::steady_clock::now() + config_.breaker_open;
    }
  }
  if (opened) count(circuit_opens_, &ObsProbes::circuit_opens);
}

void TcpTransport::register_conn(int /*fd*/) {
  const auto active = connections_active_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (auto* probes = probes_.load(std::memory_order_acquire);
      probes && probes->connections_active) {
    probes->connections_active->set(static_cast<std::int64_t>(active));
  }
}

void TcpTransport::unregister_conn() {
  const auto active = connections_active_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (auto* probes = probes_.load(std::memory_order_acquire);
      probes && probes->connections_active) {
    probes->connections_active->set(static_cast<std::int64_t>(active));
  }
}

void TcpTransport::set_circuit_gauge(NodeId id, Peer& peer, std::int64_t value) {
  auto* registry = registry_.load(std::memory_order_acquire);
  if (registry == nullptr) return;
  if (peer.circuit_gauge == nullptr) {
    // Lazy resolve: peers can be added after attach_observability. The
    // registry's own mutex serializes this; it never takes mu_, so the
    // lock order (mu_ -> registry) cannot cycle.
    peer.circuit_gauge =
        &registry->gauge("transport.peer." + std::to_string(id) + ".circuit_open");
  }
  peer.circuit_gauge->set(value);
}

void TcpTransport::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    registry_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->connects = &registry->counter(n::kTransportConnects);
  probes->reconnects = &registry->counter(n::kTransportReconnects);
  probes->framing_errors = &registry->counter(n::kTransportFramingErrors);
  probes->bytes_tx = &registry->counter(n::kTransportBytesTx);
  probes->bytes_rx = &registry->counter(n::kTransportBytesRx);
  probes->frames_dropped = &registry->counter(n::kTransportFramesDropped);
  probes->backpressure_events = &registry->counter(n::kTransportBackpressureEvents);
  probes->backpressure_rejects = &registry->counter(n::kTransportBackpressureRejects);
  probes->backpressure_drops = &registry->counter(n::kTransportBackpressureDrops);
  probes->circuit_opens = &registry->counter(n::kTransportCircuitOpens);
  probes->circuit_fast_fails = &registry->counter(n::kTransportCircuitFastFails);
  probes->writev_calls = &registry->counter(n::kTransportWritevCalls);
  probes->frames_sent = &registry->counter(n::kTransportFramesSent);
  probes->wqueue_peak = &registry->gauge(n::kTransportWqueuePeak);
  probes->connections_active = &registry->gauge(n::kTransportConnectionsActive);
  registry_.store(registry, std::memory_order_release);
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

void TcpTransport::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  if (!loop_started_) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  // Run the teardown on the loop thread so it cannot race live I/O, then
  // stop the loop itself.
  std::promise<void> done;
  loop_.post([this, &done] {
    // Posted closures run FIFO, so a pending staged-send sweep already ran —
    // but drain explicitly anyway so envelopes staged between that sweep and
    // stopped_ flipping still make it onto their connection queues.
    drain_staged();
    if (listen_fd_ >= 0) {
      loop_.remove_fd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Graceful drain: retry non-blocking flush passes until every
    // connection's frame queue empties or the drain deadline expires, so
    // replies serialized just before shutdown reach the wire instead of
    // being dropped by a single best-effort pass. Work off a snapshot of
    // fds — flush_conn can erase a dead connection.
    std::vector<int> fds;
    fds.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) fds.push_back(fd);
    const auto drain_deadline = std::chrono::steady_clock::now() + config_.shutdown_drain;
    for (;;) {
      bool pending = false;
      for (const int fd : fds) {
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        flush_conn(*it->second);
        if (const auto again = conns_.find(fd); again != conns_.end()) {
          pending |= again->second->out_bytes > 0 && !again->second->connecting;
        }
      }
      if (!pending || std::chrono::steady_clock::now() >= drain_deadline) break;
      // The sockets are non-blocking; give the kernel a beat to drain its
      // buffers before the next pass. Nothing else runs on this loop —
      // stopped_ already refuses new sends.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (const int fd : fds) close_conn(fd);
    done.set_value();
  });
  done.get_future().wait();
  loop_.stop();
}

TcpTransport::Counters TcpTransport::counters() const {
  Counters c;
  c.connects = connects_.load(std::memory_order_relaxed);
  c.reconnects = reconnects_.load(std::memory_order_relaxed);
  c.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  c.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  c.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  c.frames_dropped = frames_dropped_.load(std::memory_order_relaxed);
  c.backpressure_events = backpressure_events_.load(std::memory_order_relaxed);
  c.backpressure_rejects = backpressure_rejects_.load(std::memory_order_relaxed);
  c.backpressure_drops = backpressure_drops_.load(std::memory_order_relaxed);
  c.wqueue_peak = wqueue_peak_.load(std::memory_order_relaxed);
  c.circuit_opens = circuit_opens_.load(std::memory_order_relaxed);
  c.circuit_fast_fails = circuit_fast_fails_.load(std::memory_order_relaxed);
  c.connections_active = connections_active_.load(std::memory_order_relaxed);
  c.writev_calls = writev_calls_.load(std::memory_order_relaxed);
  c.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  if (c.writev_calls > 0) {
    c.frames_per_writev =
        static_cast<double>(c.frames_sent) / static_cast<double>(c.writev_calls);
    c.bytes_per_syscall =
        static_cast<double>(c.bytes_tx) / static_cast<double>(c.writev_calls);
  }
  return c;
}

void TcpTransport::count(std::atomic<std::uint64_t>& counter, obs::Counter* ObsProbes::* probe,
                         std::uint64_t n) {
  counter.fetch_add(n, std::memory_order_relaxed);
  if (auto* probes = probes_.load(std::memory_order_acquire)) (probes->*probe)->add(n);
}

}  // namespace spcache::rpc
