// A minimal epoll reactor for the TCP transport.
//
// One thread owns epoll_wait and runs every I/O callback; other threads
// interact only through post(), which queues a closure and wakes the loop
// via an eventfd. That single-threaded discipline is what keeps the
// TcpTransport's connection state lock-light: sockets, buffers, and the
// connection table are touched exclusively on the loop thread, so the
// only shared state is the post queue and the (rarely written) routing
// maps the send path consults.
//
// fd registration (add_fd / modify_fd / remove_fd) is safe from any
// thread: the callback table is mutex-guarded and epoll_ctl is itself
// thread-safe against a concurrent epoll_wait. Callbacks may remove their
// own fd (or another's) mid-dispatch — events for an fd deregistered
// earlier in the same wait batch are skipped, never delivered stale.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace spcache::rpc {

class EventLoop {
 public:
  // Receives the raw epoll event mask (EPOLLIN | EPOLLOUT | EPOLLERR...).
  using FdCallback = std::function<void(std::uint32_t)>;

  EventLoop();
  ~EventLoop();  // stops and joins if still running

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Spawn the loop thread. Call once; fds may be added before or after.
  void start();
  // Signal the loop to exit and join it. Idempotent. Posted closures not
  // yet run are discarded.
  void stop();
  bool running() const { return started_ && !stopping_.load(std::memory_order_acquire); }

  // Register `fd` for `events` (EPOLLIN / EPOLLOUT). The callback runs on
  // the loop thread for every readiness notification.
  void add_fd(int fd, std::uint32_t events, FdCallback callback);
  void modify_fd(int fd, std::uint32_t events);
  // Deregister; pending events for the fd are dropped. Does not close it.
  void remove_fd(int fd);

  // Run `fn` on the loop thread as soon as possible. Safe from any thread
  // including the loop thread itself (runs after the current dispatch).
  void post(std::function<void()> fn);

  bool on_loop_thread() const { return std::this_thread::get_id() == loop_thread_id_; }

 private:
  void run();
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: post()/stop() nudge epoll_wait
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  std::atomic<std::thread::id> loop_thread_id_{};

  std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<FdCallback>> callbacks_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace spcache::rpc
