// TCP backend for the Transport seam: real sockets, framed envelopes.
//
// One TcpTransport serves one process (one Bus). It hosts any number of
// local nodes (a daemon's master or worker services, a client's reply
// endpoint) and reaches remote nodes two ways:
//
//   * the address book — add_peer(id, host, port) names where a daemon
//     node listens. The first send to that node opens a non-blocking
//     connection; the connection is pooled per peer and reused for every
//     later envelope (requests and replies alike).
//   * learned reply routes — a frame arriving from node X binds X to the
//     connection it arrived on, so replies to clients (which listen on
//     nothing) travel back over the caller's own connection, exactly like
//     a real RPC server. The newest connection for a node wins.
//
// Loss semantics match the in-process backend's contract: send() returns
// false only for a node that is neither local, addressed, nor learned —
// the immediate-error path. Everything else returns true ("the network
// accepted it"); a connection that then fails drops its queued frames and
// the caller's timeout fires (RpcNode pairs every bounded wait with
// forget(), so lost replies are counted no-ops, never hangs). The next
// send to an addressed peer opens a fresh connection — that is the
// reconnect-on-failure path, visible as transport.reconnects.
//
// Concurrency: all socket and connection state is owned by the epoll
// EventLoop thread; send() does a locked reachability check, then posts
// the envelope to the loop. The routing maps (locals, address book,
// learned routes) are the only cross-thread state and sit under one
// mutex. Counters are relaxed atomics, mirrored into the MetricsRegistry
// (transport.*) when observability is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/event_loop.h"
#include "rpc/frame.h"
#include "rpc/transport.h"

namespace spcache::obs {
class Counter;
}  // namespace spcache::obs

namespace spcache::rpc {

class TcpTransport final : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  // Daemon side: bind + listen on host:port (port 0 = kernel-assigned) and
  // start the event loop. Returns the bound port. SO_REUSEADDR is set, so
  // a restarted daemon rebinds its old port immediately.
  std::uint16_t listen(const std::string& host, std::uint16_t port);
  // Client side: start the event loop with no listening socket.
  void start();

  // Address-book entry for a remote daemon node. Call before traffic to
  // that node; replies need no entry (routes are learned per connection).
  void add_peer(NodeId id, std::string host, std::uint16_t port);

  void attach(NodeId id, RpcNode& node) override;
  void detach(NodeId id) override;
  bool send(Envelope envelope) override;
  void attach_observability(obs::MetricsRegistry* registry) override;

  // Graceful shutdown: best-effort flush of every connection's pending
  // bytes, close all sockets, stop the loop. Idempotent; the destructor
  // calls it.
  void shutdown() override;

  struct Counters {
    std::uint64_t connects = 0;        // connections successfully established
    std::uint64_t reconnects = 0;      // of those, re-establishments after a failure
    std::uint64_t framing_errors = 0;  // malformed inbound streams (connection dropped)
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t frames_dropped = 0;  // undeliverable frames (dead peer / unknown node)
  };
  Counters counters() const;

 private:
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    bool ever_connected = false;  // loop thread; distinguishes re-connects
  };

  struct Conn {
    int fd = -1;
    NodeId peer = 0;            // 0 = not yet known (inbound, pre-first-frame)
    bool peer_known = false;
    bool connecting = false;    // connect() in flight (EINPROGRESS)
    bool inbound = false;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;  // pending write bytes
    std::size_t out_pos = 0;
  };

  struct ObsProbes {
    obs::Counter* connects = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* framing_errors = nullptr;
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* frames_dropped = nullptr;
  };

  // --- loop-thread only ------------------------------------------------
  void send_on_loop(Envelope envelope);
  Conn* connect_peer(NodeId id);
  void on_connected(Conn& conn);
  void handle_listen_ready();
  void handle_conn_event(int fd, std::uint32_t events);
  void read_conn(Conn& conn);
  void flush_conn(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(int fd);
  void deliver_inbound(Envelope envelope, int via_fd);

  void count(std::atomic<std::uint64_t>& counter, obs::Counter* ObsProbes::* probe,
             std::uint64_t n = 1);

  EventLoop loop_;
  int listen_fd_ = -1;
  std::atomic<bool> stopped_{false};
  bool loop_started_ = false;

  // Cross-thread routing state (send() reachability check vs. loop-thread
  // updates). locals_ deliveries hold mu_ so detach() waits them out, the
  // same guarantee InprocTransport gives RpcNode teardown.
  mutable std::mutex mu_;
  std::unordered_map<NodeId, RpcNode*> locals_;
  std::unordered_map<NodeId, Peer> addrs_;
  std::unordered_map<NodeId, int> route_;  // node -> live connection fd

  // Loop-thread-only connection table.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;

  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};

  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

}  // namespace spcache::rpc
