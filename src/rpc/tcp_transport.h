// TCP backend for the Transport seam: real sockets, framed envelopes.
//
// One TcpTransport serves one process (one Bus). It hosts any number of
// local nodes (a daemon's master or worker services, a client's reply
// endpoint) and reaches remote nodes two ways:
//
//   * the address book — add_peer(id, host, port) names where a daemon
//     node listens. The first send to that node opens a non-blocking
//     connection; the connection is pooled per peer and reused for every
//     later envelope (requests and replies alike).
//   * learned reply routes — a frame arriving from node X binds X to the
//     connection it arrived on, so replies to clients (which listen on
//     nothing) travel back over the caller's own connection, exactly like
//     a real RPC server. The newest connection for a node wins.
//
// Loss semantics match the in-process backend's contract: send() returns
// kNoRoute only for a node that is neither local, addressed, nor learned
// — the immediate-error path. An accepted envelope ("the network took
// it") may still be lost if its connection then fails; the caller's
// timeout fires (RpcNode pairs every bounded wait with forget(), so lost
// replies are counted no-ops, never hangs). The next send to an addressed
// peer opens a fresh connection — that is the reconnect-on-failure path,
// visible as transport.reconnects.
//
// Overload and failure isolation (send() can also *refuse*):
//
//   * Bounded write queues: each connection's pending-byte queue has a
//     high/low watermark. Crossing high flags the peer overloaded —
//     send() to it fails fast with kOverloaded until the queue drains
//     below low (hysteresis, so the flag does not flap per byte). A queue
//     that still reaches 2x high (envelopes already in flight through the
//     loop when the flag rose) drops further frames at the cap, so a
//     slow-draining peer bounds this process's memory instead of growing
//     a buffer without limit.
//   * Per-peer circuit breaker: `breaker_threshold` consecutive
//     connection failures (refused connects, or closes that stranded
//     queued bytes) open the circuit for `breaker_open`; sends fail fast
//     with kCircuitOpen instead of burning a timeout per call. After the
//     open window one send is let through as a half-open probe — success
//     (a completed connect) closes the circuit, failure re-arms it.
//
// Write path: each connection keeps an iovec-based frame queue — queued
// frames hold their payload by reference (shared with the boxed envelope
// the sender posted), and flush drains many frames per syscall through
// writev with partial-write resume across iovec boundaries. No payload
// byte is copied between the handler's serialization and the socket.
// Senders stage envelopes in an MPSC queue and wake the loop once per
// burst (not once per envelope); the loop enqueues the whole burst, then
// flushes each touched connection exactly once — so a burst of replies
// costs one eventfd wake and one writev, not one of each per frame.
//
// Chaos: set_fault_injector() arms seeded socket-level faults, decided on
// the loop thread so the schedule is deterministic per seed even over
// real sockets — partial writes (a flush pass clamps its gather list to a
// few bytes, splitting frames across segments), connection resets (close
// with SO_LINGER{1,0}, so the peer sees a hard RST), and pre-flush delays
// (a brief loop-thread stall, modelling a congested link).
//
// Concurrency: all socket and connection state is owned by the epoll
// EventLoop thread; send() does a locked reachability/overload check,
// then posts the envelope to the loop. The routing maps (locals, address
// book with per-peer breaker/backpressure state, learned routes) are the
// only cross-thread state and sit under one mutex. Counters are relaxed
// atomics, mirrored into the MetricsRegistry (transport.*) when
// observability is attached.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/event_loop.h"
#include "rpc/frame.h"
#include "rpc/transport.h"

namespace spcache::fault {
class FaultInjector;
}  // namespace spcache::fault

namespace spcache::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace spcache::obs

namespace spcache::rpc {

struct TcpTransportConfig {
  // Per-connection write-queue watermarks, in bytes. Crossing high flags
  // the peer overloaded (send() fails fast); draining to low clears it.
  // The hard cap — where queued frames are dropped outright — is 2x high.
  std::size_t wqueue_high = 8 * 1024 * 1024;
  std::size_t wqueue_low = 2 * 1024 * 1024;
  // Circuit breaker: open after this many consecutive connection
  // failures to a peer (0 disables), for `breaker_open` per arming.
  std::uint32_t breaker_threshold = 5;
  std::chrono::milliseconds breaker_open{250};
  // Scatter-gather write batching (the default): queued frames keep their
  // payload by reference and drain many-per-syscall through writev. Off,
  // the transport reproduces the pre-batching write path — each send pays
  // a flat-buffer payload copy and each syscall carries at most one frame
  // — kept as the measurable baseline arm for bench_tcp_scale.
  bool batch_writes = true;
  // Graceful-shutdown drain budget: shutdown() retries flush passes until
  // every connection's queue empties or this deadline expires, so final
  // replies under load are not silently dropped by a single-pass flush.
  std::chrono::milliseconds shutdown_drain{250};
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportConfig config = TcpTransportConfig{});
  ~TcpTransport() override;

  // Daemon side: bind + listen on host:port (port 0 = kernel-assigned) and
  // start the event loop. Returns the bound port. SO_REUSEADDR is set, so
  // a restarted daemon rebinds its old port immediately.
  std::uint16_t listen(const std::string& host, std::uint16_t port);
  // Client side: start the event loop with no listening socket.
  void start();

  // Address-book entry for a remote daemon node. Call before traffic to
  // that node; replies need no entry (routes are learned per connection).
  void add_peer(NodeId id, std::string host, std::uint16_t port);

  // Arm seeded socket-level chaos (null detaches). The injector must
  // outlive the transport or be detached first.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  const TcpTransportConfig& config() const { return config_; }

  void attach(NodeId id, RpcNode& node) override;
  void detach(NodeId id) override;
  SendStatus send(Envelope envelope) override;
  void attach_observability(obs::MetricsRegistry* registry) override;

  // Graceful shutdown: flush passes retry until every connection's frame
  // queue drains or config().shutdown_drain expires, then close all
  // sockets and stop the loop. Idempotent; the destructor calls it.
  void shutdown() override;

  struct Counters {
    std::uint64_t connects = 0;        // connections successfully established
    std::uint64_t reconnects = 0;      // of those, re-establishments after a failure
    std::uint64_t framing_errors = 0;  // malformed inbound streams (connection dropped)
    std::uint64_t bytes_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t frames_dropped = 0;  // undeliverable frames (dead peer / unknown node)
    // Backpressure on the bounded write queues.
    std::uint64_t backpressure_events = 0;   // queues that crossed the high watermark
    std::uint64_t backpressure_rejects = 0;  // sends refused while a peer was flagged
    std::uint64_t backpressure_drops = 0;    // frames discarded at the 2x-high hard cap
    std::uint64_t wqueue_peak = 0;           // deepest any write queue ever got (bytes)
    // Per-peer circuit breaker.
    std::uint64_t circuit_opens = 0;       // closed -> open transitions
    std::uint64_t circuit_fast_fails = 0;  // sends refused while a circuit was open
    std::uint64_t connections_active = 0;  // live sockets right now
    // Syscall budget of the write path: gather syscalls issued and frames
    // fully drained by them. frames_sent / writev_calls is the mean batch
    // depth (> 1 means scatter-gather is amortizing syscalls); bytes_tx /
    // writev_calls is the mean bytes per syscall.
    std::uint64_t writev_calls = 0;
    std::uint64_t frames_sent = 0;
    double frames_per_writev = 0.0;   // derived: frames_sent / writev_calls
    double bytes_per_syscall = 0.0;   // derived: bytes_tx / writev_calls
  };
  Counters counters() const;

 private:
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    bool ever_connected = false;  // loop thread; distinguishes re-connects
    // Backpressure flag, set/cleared by the loop thread at the write-queue
    // watermarks and read by send() for the fast-fail path. Under mu_.
    bool backpressured = false;
    // Circuit breaker (under mu_). consecutive_failures counts connection
    // attempts that ended badly since the last success; once the circuit
    // opens, sends fail fast until open_until, then one probe is allowed
    // through (half_open_inflight) before the next verdict.
    std::uint32_t consecutive_failures = 0;
    bool circuit_open = false;
    bool half_open_inflight = false;
    std::chrono::steady_clock::time_point open_until{};
    obs::Gauge* circuit_gauge = nullptr;  // "transport.peer.<id>.circuit_open"
  };

  // One queued outbound frame: the 32-byte header owned inline, the
  // payload held by reference (shared with the boxed envelope send()
  // created) — nothing is copied between send() and the socket.
  struct OutFrame {
    std::array<std::uint8_t, kFrameHeaderSize> header;
    std::shared_ptr<const std::vector<std::uint8_t>> payload;  // null = empty

    std::size_t size() const {
      return kFrameHeaderSize + (payload ? payload->size() : 0);
    }
  };

  struct Conn {
    int fd = -1;
    NodeId peer = 0;            // 0 = not yet known (inbound, pre-first-frame)
    bool peer_known = false;
    bool connecting = false;    // connect() in flight (EINPROGRESS)
    bool inbound = false;
    FrameDecoder decoder;
    // Pending frames, oldest first. out_offset is how far into the front
    // frame the socket has advanced (may sit mid-header or mid-payload
    // after a partial write); out_bytes is the total queued across the
    // deque — the write-queue depth the watermarks measure.
    std::deque<OutFrame> outq;
    std::size_t out_offset = 0;
    std::size_t out_bytes = 0;
  };

  struct ObsProbes {
    obs::Counter* connects = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* framing_errors = nullptr;
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* frames_dropped = nullptr;
    obs::Counter* backpressure_events = nullptr;
    obs::Counter* backpressure_rejects = nullptr;
    obs::Counter* backpressure_drops = nullptr;
    obs::Counter* circuit_opens = nullptr;
    obs::Counter* circuit_fast_fails = nullptr;
    obs::Counter* writev_calls = nullptr;
    obs::Counter* frames_sent = nullptr;
    obs::Gauge* wqueue_peak = nullptr;
    obs::Gauge* connections_active = nullptr;
  };

  // --- loop-thread only ------------------------------------------------
  // Route + frame one staged envelope onto its connection's queue (no
  // flush). Returns the fd the frame landed on, or -1 (unroutable or
  // dropped at the hard cap) — the caller flushes touched fds.
  int enqueue_on_loop(std::shared_ptr<Envelope> boxed);
  // Drain the staged-send queue: enqueue the whole burst, then flush each
  // touched connection once.
  void drain_staged();
  Conn* connect_peer(NodeId id);
  void on_connected(Conn& conn);
  void handle_listen_ready();
  void handle_conn_event(int fd, std::uint32_t events);
  void read_conn(Conn& conn);
  void flush_conn(Conn& conn);
  void update_interest(Conn& conn);
  void close_conn(int fd);
  void deliver_inbound(Envelope envelope, int via_fd);
  // Watermark hysteresis + peak tracking for conn's write queue.
  void update_backpressure(Conn& conn);
  // Breaker bookkeeping after a connection to `id` failed (loop thread).
  void note_peer_failure(NodeId id);
  void register_conn(int fd);
  void unregister_conn();
  // Sets the per-peer circuit gauge (lazily resolved). Caller holds mu_.
  void set_circuit_gauge(NodeId id, Peer& peer, std::int64_t value);

  void count(std::atomic<std::uint64_t>& counter, obs::Counter* ObsProbes::* probe,
             std::uint64_t n = 1);

  TcpTransportConfig config_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::atomic<bool> stopped_{false};
  bool loop_started_ = false;

  // Cross-thread routing state (send() reachability check vs. loop-thread
  // updates). locals_ deliveries hold mu_ so detach() waits them out, the
  // same guarantee InprocTransport gives RpcNode teardown.
  mutable std::mutex mu_;
  std::unordered_map<NodeId, RpcNode*> locals_;
  std::unordered_map<NodeId, Peer> addrs_;
  std::unordered_map<NodeId, int> route_;  // node -> live connection fd

  // Loop-thread-only connection table.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;

  // Staged sends (batched write path): producers push under stage_mu_ and
  // post the drain closure only when none is pending — one wake per burst.
  std::mutex stage_mu_;
  std::vector<std::shared_ptr<Envelope>> staged_;
  bool stage_sweep_pending_ = false;  // guarded by stage_mu_

  std::atomic<fault::FaultInjector*> injector_{nullptr};

  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> backpressure_events_{0};
  std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<std::uint64_t> backpressure_drops_{0};
  std::atomic<std::uint64_t> wqueue_peak_{0};
  std::atomic<std::uint64_t> circuit_opens_{0};
  std::atomic<std::uint64_t> circuit_fast_fails_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::uint64_t> frames_sent_{0};

  std::atomic<obs::MetricsRegistry*> registry_{nullptr};
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

}  // namespace spcache::rpc
