#include "rpc/repartitioner_service.h"

#include <stdexcept>

#include "common/crc32.h"
#include "erasure/rs_code.h"

namespace spcache::rpc {

RepartitionerService::RepartitionerService(Bus& bus, NodeId node_id, std::uint32_t server_id,
                                           NodeId master_node,
                                           std::vector<NodeId> worker_of_server)
    : server_id_(server_id),
      master_node_(master_node),
      worker_of_server_(std::move(worker_of_server)) {
  // Two endpoints: the service node receives REPARTITION_FILE requests; a
  // sibling client node issues the GET/PUT/REGISTER calls from inside the
  // handler. (A node cannot await replies on its own service thread — the
  // same reason real services separate server and client sockets.)
  node_ = std::make_unique<RpcNode>(bus, node_id, "repartitioner-" + std::to_string(server_id));
  client_ = std::make_unique<RpcNode>(bus, node_id + 10000,
                                      "repartitioner-client-" + std::to_string(server_id));
  node_->handle(kRepartitionFile, [this](BufferReader& r) { return handle_repartition(r); });
  node_->handle(kDeltaRepartitionFile,
                [this](BufferReader& r) { return handle_delta_repartition(r); });
  node_->start();
  client_->start();
}

std::vector<std::uint8_t> RepartitionerService::handle_repartition(BufferReader& r) {
  const auto file = static_cast<FileId>(r.u32());
  const std::uint32_t old_n = r.u32();
  std::vector<std::uint32_t> old_servers(old_n);
  for (auto& s : old_servers) s = r.u32();
  const std::uint32_t new_n = r.u32();
  std::vector<std::uint32_t> new_servers(new_n);
  for (auto& s : new_servers) s = r.u32();

  Bytes moved = 0;

  // Propose the next layout generation up front: the re-placed pieces are
  // PUT under it, so a caching client that multi-GETs with the *old*
  // layout's epoch is told kWrongEpoch instead of being served a torn mix
  // of generations.
  std::uint64_t current_epoch = 0;
  {
    BufferWriter w;
    w.u32(file);
    const auto reply = client_->call_sync(master_node_, kFileEpoch, w.take());
    if (reply.ok()) {
      BufferReader er(reply.payload);
      current_epoch = er.u64();
    }
  }
  const std::uint64_t proposed = current_epoch + 1;

  // Assemble: GET every old piece; pieces already on this executor's
  // co-located worker are free (Fig. 9b's locality optimization).
  std::vector<std::future<Reply>> gets;
  gets.reserve(old_n);
  for (std::uint32_t i = 0; i < old_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    gets.push_back(client_->call(worker_of_server_.at(old_servers[i]), kGetBlock, w.take()));
  }
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < old_n; ++i) {
    const auto reply = gets[i].get();
    if (!reply.ok()) throw std::runtime_error("repartition GET failed: " + reply.error_text());
    BufferReader pr(reply.payload);
    const auto piece = pr.bytes();
    if (old_servers[i] != server_id_) moved += piece.size();
    data.insert(data.end(), piece.begin(), piece.end());
  }

  // Drop the old layout.
  for (std::uint32_t i = 0; i < old_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    const auto reply =
        client_->call_sync(worker_of_server_.at(old_servers[i]), kEraseBlock, w.take());
    if (!reply.ok()) throw std::runtime_error("repartition ERASE failed");
  }

  // Re-split and scatter.
  const auto pieces = split_plain(data, new_n);
  std::vector<std::future<Reply>> puts;
  puts.reserve(new_n);
  for (std::uint32_t i = 0; i < new_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    w.bytes(pieces[i]);
    w.u64(proposed);
    if (new_servers[i] != server_id_) moved += pieces[i].size();
    puts.push_back(client_->call(worker_of_server_.at(new_servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("repartition PUT failed: " + reply.error_text());
  }

  // Publish the new layout.
  BufferWriter reg;
  reg.u32(file);
  reg.u64(data.size());
  reg.u32(crc32(data));
  reg.u64(proposed);
  reg.u32(new_n);
  for (std::uint32_t i = 0; i < new_n; ++i) {
    reg.u32(new_servers[i]);
    reg.u64(pieces[i].size());
  }
  const auto reply = client_->call_sync(master_node_, kRegisterFile, reg.take());
  if (!reply.ok()) throw std::runtime_error("repartition REGISTER failed");

  BufferWriter out;
  out.u64(moved);
  return out.take();
}

std::vector<std::uint8_t> RepartitionerService::handle_delta_repartition(BufferReader& r) {
  const auto file = static_cast<FileId>(r.u32());
  const std::uint32_t new_n = r.u32();
  std::vector<std::uint32_t> new_servers(new_n);
  for (auto& s : new_servers) s = r.u32();

  // Authoritative current layout — sizes and epoch — straight from the
  // master; the coordinator only chose the destination.
  FileMeta meta;
  {
    BufferWriter w;
    w.u32(file);
    const auto reply = client_->call_sync(master_node_, kLookupFile, w.take());
    if (!reply.ok()) {
      throw std::runtime_error("delta repartition LOOKUP failed: " + reply.error_text());
    }
    BufferReader mr(reply.payload);
    meta = read_meta(mr);
  }
  const std::uint64_t staging_epoch = meta.epoch + 1;
  const auto rplan = plan_range_transfer(meta.size, meta.piece_sizes, meta.servers, new_servers);

  // Common kStagePiece request header.
  const auto stage_header = [&](BufferWriter& w, std::uint32_t piece, std::uint8_t op) {
    w.u32(file);
    w.u32(piece);
    w.u64(staging_epoch);
    w.u8(op);
  };
  const auto discard_all = [&] {
    for (const auto& piece : rplan.pieces) {
      BufferWriter w;
      stage_header(w, piece.new_piece, kStageOpDiscard);
      client_->call_sync(worker_of_server_.at(piece.dst_server), kStagePiece, w.take());
    }
  };

  Bytes moved = 0;
  Bytes saved = 0;
  try {
    // Phase 1: stage every new piece, range by range. Only remote ranges
    // carry payload — and each is relayed straight from its source worker
    // to its destination worker, never accumulated here.
    for (const auto& piece : rplan.pieces) {
      const NodeId dst = worker_of_server_.at(piece.dst_server);
      Bytes filled = 0;
      for (const auto& range : piece.sources) {
        if (range.local) {
          BufferWriter w;
          stage_header(w, piece.new_piece, kStageOpLocalCopy);
          w.u64(piece.piece_size);
          w.u64(filled);
          w.u32(range.old_piece);
          w.u64(range.offset_in_piece);
          w.u64(range.length);
          const auto reply = client_->call_sync(dst, kStagePiece, w.take());
          if (!reply.ok()) {
            throw std::runtime_error("stage local-copy failed: " + reply.error_text());
          }
          saved += range.length;
        } else {
          BufferWriter g;
          g.u32(file);
          g.u32(range.old_piece);
          g.u64(range.offset_in_piece);
          g.u64(range.length);
          const auto got =
              client_->call_sync(worker_of_server_.at(range.src_server), kGetRange, g.take());
          if (!got.ok()) {
            throw std::runtime_error("GET_RANGE failed: " + got.error_text());
          }
          BufferReader pr(got.payload);
          const auto bytes = pr.bytes_view();
          BufferWriter w;
          w.reserve(4 + 4 + 8 + 1 + 8 + 8 + 4 + bytes.size());
          stage_header(w, piece.new_piece, kStageOpAppend);
          w.u64(piece.piece_size);
          w.u64(filled);
          w.bytes(bytes);
          const auto reply = client_->call_sync(dst, kStagePiece, w.take());
          if (!reply.ok()) {
            throw std::runtime_error("stage append failed: " + reply.error_text());
          }
          moved += range.length;
        }
        filled += range.length;
      }
      // Seal now (completeness + CRC) so the publishes below are pure map
      // splices.
      BufferWriter w;
      stage_header(w, piece.new_piece, kStageOpFinalize);
      const auto reply = client_->call_sync(dst, kStagePiece, w.take());
      bool sealed = reply.ok();
      if (sealed) {
        BufferReader fr(reply.payload);
        sealed = fr.u8() != 0;
      }
      if (!sealed) throw std::runtime_error("finalize of staged piece failed");
    }

    // Phase 2: optimistic cutover. Abort if another writer landed a layout
    // since we planned — our staged bytes describe a stale file.
    {
      BufferWriter w;
      w.u32(file);
      const auto reply = client_->call_sync(master_node_, kFileEpoch, w.take());
      if (!reply.ok()) throw std::runtime_error("delta repartition epoch check failed");
      BufferReader er(reply.payload);
      if (er.u64() != meta.epoch) {
        throw std::runtime_error("delta repartition lost the race (epoch moved)");
      }
    }
    for (const auto& piece : rplan.pieces) {
      BufferWriter w;
      stage_header(w, piece.new_piece, kStageOpPublish);
      const auto reply =
          client_->call_sync(worker_of_server_.at(piece.dst_server), kStagePiece, w.take());
      bool published = reply.ok();
      if (published) {
        BufferReader fr(reply.payload);
        published = fr.u8() != 0;
      }
      if (!published) throw std::runtime_error("publish of staged piece failed");
    }
    FileMeta new_meta;
    new_meta.size = meta.size;
    new_meta.file_crc = meta.file_crc;  // content is unchanged, only its cut
    new_meta.epoch = staging_epoch;
    new_meta.servers = new_servers;
    new_meta.piece_sizes.reserve(rplan.pieces.size());
    for (const auto& piece : rplan.pieces) new_meta.piece_sizes.push_back(piece.piece_size);
    BufferWriter reg;
    reg.u32(file);
    write_meta(reg, new_meta);
    const auto reply = client_->call_sync(master_node_, kRegisterFile, reg.take());
    if (!reply.ok()) throw std::runtime_error("delta repartition REGISTER failed");
  } catch (const std::exception&) {
    discard_all();
    throw;
  }

  // Phase 3: lazy GC. An old piece whose index and server survive into the
  // new layout was overwritten by the publish (same block key) — everything
  // else is unreachable through the master now and can go. Best effort: a
  // failed erase leaves a harmless orphan, not an inconsistency.
  for (std::uint32_t i = 0; i < meta.partitions(); ++i) {
    const bool reused_in_place = i < new_n && meta.servers[i] == new_servers[i];
    if (reused_in_place) continue;
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    client_->call_sync(worker_of_server_.at(meta.servers[i]), kEraseBlock, w.take());
  }

  BufferWriter out;
  out.u64(moved);
  out.u64(saved);
  return out.take();
}

RpcRepartitionStats rpc_execute_repartition(
    RpcNode& coordinator, const RepartitionPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& old_servers,
    const std::vector<NodeId>& repartitioner_of_server) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(plan.changed_files.size());
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId file = plan.changed_files[j];
    BufferWriter w;
    w.u32(file);
    const auto& old = old_servers[file];
    w.u32(static_cast<std::uint32_t>(old.size()));
    for (auto s : old) w.u32(s);
    const auto& fresh = plan.new_servers[j];
    w.u32(static_cast<std::uint32_t>(fresh.size()));
    for (auto s : fresh) w.u32(s);
    futures.push_back(coordinator.call(repartitioner_of_server.at(plan.executor[j]),
                                       kRepartitionFile, w.take()));
  }
  RpcRepartitionStats stats;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (!reply.ok()) {
      throw std::runtime_error("rpc repartition failed: " + reply.error_text());
    }
    BufferReader r(reply.payload);
    stats.bytes_moved += r.u64();
    ++stats.files_touched;
  }
  return stats;
}

RpcRepartitionStats rpc_execute_delta_repartition(
    RpcNode& coordinator, const RepartitionPlan& plan,
    const std::vector<NodeId>& repartitioner_of_server) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(plan.changed_files.size());
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    BufferWriter w;
    w.u32(plan.changed_files[j]);
    const auto& fresh = plan.new_servers[j];
    w.u32(static_cast<std::uint32_t>(fresh.size()));
    for (auto s : fresh) w.u32(s);
    futures.push_back(coordinator.call(repartitioner_of_server.at(plan.executor[j]),
                                       kDeltaRepartitionFile, w.take()));
  }
  RpcRepartitionStats stats;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (!reply.ok()) {
      throw std::runtime_error("rpc delta repartition failed: " + reply.error_text());
    }
    BufferReader r(reply.payload);
    stats.bytes_moved += r.u64();
    stats.bytes_saved += r.u64();
    ++stats.files_touched;
  }
  return stats;
}

}  // namespace spcache::rpc
