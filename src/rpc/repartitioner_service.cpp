#include "rpc/repartitioner_service.h"

#include <stdexcept>

#include "common/crc32.h"
#include "erasure/rs_code.h"

namespace spcache::rpc {

RepartitionerService::RepartitionerService(Bus& bus, NodeId node_id, std::uint32_t server_id,
                                           NodeId master_node,
                                           std::vector<NodeId> worker_of_server)
    : server_id_(server_id),
      master_node_(master_node),
      worker_of_server_(std::move(worker_of_server)) {
  // Two endpoints: the service node receives REPARTITION_FILE requests; a
  // sibling client node issues the GET/PUT/REGISTER calls from inside the
  // handler. (A node cannot await replies on its own service thread — the
  // same reason real services separate server and client sockets.)
  node_ = std::make_unique<RpcNode>(bus, node_id, "repartitioner-" + std::to_string(server_id));
  client_ = std::make_unique<RpcNode>(bus, node_id + 10000,
                                      "repartitioner-client-" + std::to_string(server_id));
  node_->handle(kRepartitionFile, [this](BufferReader& r) { return handle_repartition(r); });
  node_->start();
  client_->start();
}

std::vector<std::uint8_t> RepartitionerService::handle_repartition(BufferReader& r) {
  const auto file = static_cast<FileId>(r.u32());
  const std::uint32_t old_n = r.u32();
  std::vector<std::uint32_t> old_servers(old_n);
  for (auto& s : old_servers) s = r.u32();
  const std::uint32_t new_n = r.u32();
  std::vector<std::uint32_t> new_servers(new_n);
  for (auto& s : new_servers) s = r.u32();

  Bytes moved = 0;

  // Propose the next layout generation up front: the re-placed pieces are
  // PUT under it, so a caching client that multi-GETs with the *old*
  // layout's epoch is told kWrongEpoch instead of being served a torn mix
  // of generations.
  std::uint64_t current_epoch = 0;
  {
    BufferWriter w;
    w.u32(file);
    const auto reply = client_->call_sync(master_node_, kFileEpoch, w.take());
    if (reply.ok()) {
      BufferReader er(reply.payload);
      current_epoch = er.u64();
    }
  }
  const std::uint64_t proposed = current_epoch + 1;

  // Assemble: GET every old piece; pieces already on this executor's
  // co-located worker are free (Fig. 9b's locality optimization).
  std::vector<std::future<Reply>> gets;
  gets.reserve(old_n);
  for (std::uint32_t i = 0; i < old_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    gets.push_back(client_->call(worker_of_server_.at(old_servers[i]), kGetBlock, w.take()));
  }
  std::vector<std::uint8_t> data;
  for (std::uint32_t i = 0; i < old_n; ++i) {
    const auto reply = gets[i].get();
    if (!reply.ok()) throw std::runtime_error("repartition GET failed: " + reply.error_text());
    BufferReader pr(reply.payload);
    const auto piece = pr.bytes();
    if (old_servers[i] != server_id_) moved += piece.size();
    data.insert(data.end(), piece.begin(), piece.end());
  }

  // Drop the old layout.
  for (std::uint32_t i = 0; i < old_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    const auto reply =
        client_->call_sync(worker_of_server_.at(old_servers[i]), kEraseBlock, w.take());
    if (!reply.ok()) throw std::runtime_error("repartition ERASE failed");
  }

  // Re-split and scatter.
  const auto pieces = split_plain(data, new_n);
  std::vector<std::future<Reply>> puts;
  puts.reserve(new_n);
  for (std::uint32_t i = 0; i < new_n; ++i) {
    BufferWriter w;
    w.u32(file);
    w.u32(i);
    w.bytes(pieces[i]);
    w.u64(proposed);
    if (new_servers[i] != server_id_) moved += pieces[i].size();
    puts.push_back(client_->call(worker_of_server_.at(new_servers[i]), kPutBlock, w.take()));
  }
  for (auto& f : puts) {
    const auto reply = f.get();
    if (!reply.ok()) throw std::runtime_error("repartition PUT failed: " + reply.error_text());
  }

  // Publish the new layout.
  BufferWriter reg;
  reg.u32(file);
  reg.u64(data.size());
  reg.u32(crc32(data));
  reg.u64(proposed);
  reg.u32(new_n);
  for (std::uint32_t i = 0; i < new_n; ++i) {
    reg.u32(new_servers[i]);
    reg.u64(pieces[i].size());
  }
  const auto reply = client_->call_sync(master_node_, kRegisterFile, reg.take());
  if (!reply.ok()) throw std::runtime_error("repartition REGISTER failed");

  BufferWriter out;
  out.u64(moved);
  return out.take();
}

RpcRepartitionStats rpc_execute_repartition(
    RpcNode& coordinator, const RepartitionPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& old_servers,
    const std::vector<NodeId>& repartitioner_of_server) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(plan.changed_files.size());
  for (std::size_t j = 0; j < plan.changed_files.size(); ++j) {
    const FileId file = plan.changed_files[j];
    BufferWriter w;
    w.u32(file);
    const auto& old = old_servers[file];
    w.u32(static_cast<std::uint32_t>(old.size()));
    for (auto s : old) w.u32(s);
    const auto& fresh = plan.new_servers[j];
    w.u32(static_cast<std::uint32_t>(fresh.size()));
    for (auto s : fresh) w.u32(s);
    futures.push_back(coordinator.call(repartitioner_of_server.at(plan.executor[j]),
                                       kRepartitionFile, w.take()));
  }
  RpcRepartitionStats stats;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (!reply.ok()) {
      throw std::runtime_error("rpc repartition failed: " + reply.error_text());
    }
    BufferReader r(reply.payload);
    stats.bytes_moved += r.u64();
    ++stats.files_touched;
  }
  return stats;
}

}  // namespace spcache::rpc
