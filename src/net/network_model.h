// Network and codec cost models.
//
// Three effects dominate read/write time in the paper's evaluation:
//
//  1. Transfer time: a partition of b bytes over a link of bandwidth B is
//     modelled as exponentially distributed with mean b / B (Section 5.3),
//     matching the paper's analytic model ("to account for the possible
//     network jitters").
//
//  2. Goodput degradation with connection count (Fig. 6): reading a file
//     through c parallel TCP connections wastes protocol overhead and
//     triggers incast, shrinking useful throughput. We model the
//     normalized goodput as
//
//         g(c) = max(floor, 1 - a*ln(c) - b*(c-1)),
//
//     with (a, b) calibrated so that at 1 Gbps g(20) ~ 0.8 and
//     g(100) ~ 0.6 — the paper's measured drops of 20% and 40%.
//
//  3. Erasure-codec cost (Fig. 4): EC-Cache decode (encode) time scales
//     with file size; rates are calibrated so that decoding delays reads
//     of >= 100 MB files by ~15-30% at 1 Gbps, as the paper measures with
//     ISA-L.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/units.h"

namespace spcache {

struct GoodputModel {
  double a = 0.0582;    // logarithmic per-connection protocol overhead
  double b = 0.001335;  // linear incast pressure
  double floor = 0.30;  // goodput never collapses below this fraction

  // Normalized goodput for `connections` parallel streams (>= 1).
  double factor(std::size_t connections) const;

  // Calibrated instance for a given link speed. Slower links amortize the
  // per-connection overhead over longer transfers, softening the curve
  // (paper Fig. 6: the 500 Mbps curve decays more gradually).
  static GoodputModel calibrated(Bandwidth link);
};

// Samples partition transfer times.
struct TransferModel {
  Bandwidth bandwidth = gbps(1.0);
  GoodputModel goodput{};
  bool exponential_jitter = true;

  // Mean transfer time of `bytes` when the reader holds `connections`
  // parallel streams: bytes / (bandwidth * g(connections)).
  Seconds mean_transfer(Bytes bytes, std::size_t connections) const;

  // One sampled transfer (exponential around the mean when jitter is on).
  Seconds sample(Bytes bytes, std::size_t connections, Rng& rng) const;
};

// Erasure-codec timing for the simulator; the real codec (src/erasure) is
// used where actual bytes flow (threaded cluster, Fig. 22).
struct CodecModel {
  double decode_bytes_per_sec = 500e6;
  double encode_bytes_per_sec = 700e6;
  Seconds fixed_overhead = 2e-3;  // matrix inversion + dispatch

  Seconds decode_time(Bytes file_bytes) const;
  Seconds encode_time(Bytes file_bytes) const;

  // A compute-optimized profile (paper Section 7.3, c4.4xlarge with AVX2):
  // roughly 2x coding throughput.
  static CodecModel compute_optimized();
};

}  // namespace spcache
