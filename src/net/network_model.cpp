#include "net/network_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache {

double GoodputModel::factor(std::size_t connections) const {
  assert(connections >= 1);
  const auto c = static_cast<double>(connections);
  const double g = 1.0 - a * std::log(c) - b * (c - 1.0);
  return std::clamp(g, floor, 1.0);
}

GoodputModel GoodputModel::calibrated(Bandwidth link) {
  GoodputModel m;
  // Reference calibration at 1 Gbps; scale overhead sublinearly with link
  // speed so slower links see a gentler decay (Fig. 6).
  const double rel = link / gbps(1.0);
  const double scale = std::pow(std::max(rel, 1e-3), 0.3);
  m.a *= scale;
  m.b *= scale;
  return m;
}

Seconds TransferModel::mean_transfer(Bytes bytes, std::size_t connections) const {
  const double effective = bandwidth * goodput.factor(connections);
  return static_cast<double>(bytes) / effective;
}

Seconds TransferModel::sample(Bytes bytes, std::size_t connections, Rng& rng) const {
  const Seconds mean = mean_transfer(bytes, connections);
  if (!exponential_jitter || mean <= 0.0) return mean;
  return rng.exponential(mean);
}

Seconds CodecModel::decode_time(Bytes file_bytes) const {
  return fixed_overhead + static_cast<double>(file_bytes) / decode_bytes_per_sec;
}

Seconds CodecModel::encode_time(Bytes file_bytes) const {
  return fixed_overhead + static_cast<double>(file_bytes) / encode_bytes_per_sec;
}

CodecModel CodecModel::compute_optimized() {
  CodecModel m;
  m.decode_bytes_per_sec = 1000e6;
  m.encode_bytes_per_sec = 1400e6;
  m.fixed_overhead = 1e-3;
  return m;
}

}  // namespace spcache
