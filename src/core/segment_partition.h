// Finer-grained partition within structured files (Section 8
// "Finer-Grained Partition").
//
// For formats with clear internal semantics — e.g. Parquet, where some
// columns are read far more often than others — splitting or replicating
// the *whole* file uniformly wastes effort: the paper proposes extending
// SP-Cache to examine "the popularities of different parts of the file".
//
// A `SegmentedFile` describes such a file as a sequence of segments, each
// with its own size and access rate. `plan_segment_partition` applies
// Eq. 1 *per segment*: segment j of file i gets
//
//     k_ij = ceil(alpha * S_ij * P_ij)
//
// partitions, so a hot column group is split finely while cold column
// groups stay whole — strictly fewer pieces (and less metadata, fewer
// connections) than whole-file splitting at the same per-partition load.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace spcache {

struct FileSegment {
  Bytes size = 0;
  double request_rate = 0.0;  // accesses/second touching this segment
};

struct SegmentedFile {
  std::vector<FileSegment> segments;

  Bytes total_bytes() const;
  double total_rate() const;
  // Expected load of segment j under the file's own access mix:
  //   L_j = S_j * (rate_j / total_rate).
  double segment_load(std::size_t j) const;
};

struct SegmentPlan {
  // Partition count per segment (Eq. 1 applied segment-wise).
  std::vector<std::size_t> partitions;
  // Placement: for each segment, the distinct servers holding its pieces.
  std::vector<std::vector<std::uint32_t>> servers;

  std::size_t total_pieces() const;
};

// Apply selective partition within the file. `alpha` plays the same role as
// the file-level scale factor; counts are clamped to [1, n_servers].
SegmentPlan plan_segment_partition(const SegmentedFile& file, double alpha,
                                   std::size_t n_servers, Rng& rng);

// Whole-file equivalent for comparison: split the file uniformly into
// ceil(alpha * S * 1) pieces regardless of internal skew (every piece then
// contains a slice of every segment).
std::size_t whole_file_partitions(const SegmentedFile& file, double alpha,
                                  std::size_t n_servers);

// Diagnostic used by tests and the ablation bench: the maximum
// per-partition load under a plan (lower = better balanced). For the
// segment plan this is max_j L_j / k_j; for whole-file splitting it is
// (sum_j L_j) / k.
double max_partition_load(const SegmentedFile& file, const SegmentPlan& plan);
double max_partition_load_whole(const SegmentedFile& file, std::size_t k);

}  // namespace spcache
