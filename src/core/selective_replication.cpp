#include "core/selective_replication.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace spcache {

SelectiveReplicationScheme::SelectiveReplicationScheme(SelectiveReplicationConfig config)
    : config_(config) {}

void SelectiveReplicationScheme::place(const Catalog& catalog,
                                       const std::vector<Bandwidth>& bandwidth, Rng& rng) {
  const std::size_t n_servers = bandwidth.size();
  assert(n_servers >= config_.replicas);

  // Rank files by expected load L_i = S_i * P_i, hottest first.
  std::vector<std::size_t> order(catalog.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&catalog](std::size_t a, std::size_t b) {
    return catalog.load(static_cast<FileId>(a)) > catalog.load(static_cast<FileId>(b));
  });
  const auto hot_count = static_cast<std::size_t>(config_.top_fraction *
                                                  static_cast<double>(catalog.size()));
  std::vector<std::size_t> replicas(catalog.size(), 1);
  for (std::size_t r = 0; r < hot_count; ++r) replicas[order[r]] = config_.replicas;

  placements_.clear();
  placements_.resize(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Bytes size = catalog.file(static_cast<FileId>(i)).size;
    FilePlacement p;
    p.data_pieces = 1;  // each replica is the whole file
    const auto servers = rng.sample_without_replacement(n_servers, replicas[i]);
    p.servers.reserve(servers.size());
    p.piece_bytes.assign(servers.size(), size);
    for (std::size_t s : servers) p.servers.push_back(static_cast<std::uint32_t>(s));
    placements_[i] = std::move(p);
  }
}

ReadPlan SelectiveReplicationScheme::plan_read(FileId file, Rng& rng) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  const std::size_t pick = static_cast<std::size_t>(rng.uniform_index(p.servers.size()));
  ReadPlan plan;
  plan.fetches.push_back(PartitionFetch{p.servers[pick], p.piece_bytes[pick]});
  plan.needed = 1;
  return plan;
}

WritePlan SelectiveReplicationScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  return plan;
}

}  // namespace spcache
