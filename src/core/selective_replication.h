// Selective replication baseline (Scarlett [9]; paper Sections 3.1, 7.1).
//
// The most popular files get extra full replicas; a read picks one replica
// uniformly at random. The paper's comparison setting replicates the top
// 10% of files (by load) 4x, for an aggregate memory overhead of ~40% under
// equal file sizes — matching EC-Cache's (10,14) overhead.
#pragma once

#include "core/scheme.h"

namespace spcache {

struct SelectiveReplicationConfig {
  double top_fraction = 0.10;  // fraction of files (by load rank) replicated
  std::size_t replicas = 4;    // copies for the replicated files
};

class SelectiveReplicationScheme : public CachingScheme {
 public:
  explicit SelectiveReplicationScheme(SelectiveReplicationConfig config = {});

  std::string name() const override { return "Selective replication"; }

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

  std::size_t replica_count(FileId file) const { return placements_[file].servers.size(); }

 private:
  SelectiveReplicationConfig config_;
};

}  // namespace spcache
