// Fixed-size chunking baseline (Section 4.3, Fig. 14).
//
// Files are split into chunks of a constant pre-specified size (HDFS /
// Azure / Alluxio style), irrespective of popularity. A file of S bytes
// yields ceil(S / chunk_size) chunks; reads fetch all chunks. If a file has
// more chunks than servers, chunks wrap round-robin over a random distinct
// server set (a server may then hold several chunks of the same file).
#pragma once

#include "core/scheme.h"

namespace spcache {

struct FixedChunkingConfig {
  Bytes chunk_size = 8 * kMB;
};

class FixedChunkingScheme : public CachingScheme {
 public:
  explicit FixedChunkingScheme(FixedChunkingConfig config = {});

  std::string name() const override;

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

  Bytes chunk_size() const { return config_.chunk_size; }

 private:
  FixedChunkingConfig config_;
};

}  // namespace spcache
