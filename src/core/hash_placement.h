// Consistent-hashing placement baseline (Section 9 "Data Placement").
//
// Prevalent caches map files to servers with consistent hashing. The paper
// argues this cannot fix skew: even a "perfect" hash that equalizes file
// *counts* is agnostic to file popularity, so the server that happens to
// receive a hot file becomes a hot spot. This module provides a classic
// virtual-node hash ring and a no-partition placement scheme built on it,
// used by the ablation bench to quantify that argument against SP-Cache's
// load-proportional splitting.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/scheme.h"

namespace spcache {

// A consistent-hash ring with virtual nodes. Deterministic: the mapping
// depends only on (server id, vnode index, key), so adding or removing a
// server reassigns only the keys adjacent to its vnodes.
class ConsistentHashRing {
 public:
  // `n_servers` physical servers, each projected to `vnodes` points.
  ConsistentHashRing(std::size_t n_servers, std::size_t vnodes = 64);

  std::size_t n_servers() const { return n_servers_; }

  // The server owning `key` (first vnode clockwise from hash(key)).
  std::uint32_t server_for(std::uint64_t key) const;

  // The `count` distinct servers clockwise from hash(key) — used for
  // replica chains or multi-piece placements.
  std::vector<std::uint32_t> servers_for(std::uint64_t key, std::size_t count) const;

 private:
  std::size_t n_servers_;
  std::map<std::uint64_t, std::uint32_t> ring_;  // hash point -> server
};

// No-partition placement via consistent hashing: each file lives, whole, on
// the ring owner of its id. Popularity-agnostic by construction.
class HashPlacementScheme : public CachingScheme {
 public:
  explicit HashPlacementScheme(std::size_t vnodes = 64);

  std::string name() const override { return "Consistent hashing (no partition)"; }

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

 private:
  std::size_t vnodes_;
};

}  // namespace spcache
