// The caching-scheme abstraction.
//
// A scheme decides, for every file in a catalog, (a) how the file is
// materialized in the cluster (how many pieces, with or without parity or
// replicas, on which servers) and (b) how a read/write request translates
// into partition fetches/stores (a ReadPlan/WritePlan for the simulator or
// the threaded cluster).
//
// Implementations:
//   * SpCacheScheme            — the paper's contribution (Section 5)
//   * EcCacheScheme            — (k, n) erasure coding with late binding [8]
//   * SelectiveReplicationScheme — popularity-based replication [9]
//   * FixedChunkingScheme      — constant chunk size (Section 4.3)
//   * SimplePartitionScheme    — uniform partition count (Section 4.1);
//                                k = 1 is the stock, no-partition layout
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/read_plan.h"
#include "workload/file_catalog.h"

namespace spcache {

// Where one file's pieces live.
struct FilePlacement {
  std::vector<std::uint32_t> servers;  // one entry per stored piece, distinct
  std::vector<Bytes> piece_bytes;      // parallel to `servers`
  std::size_t data_pieces = 1;         // k_i (pieces needed to reconstruct)

  Bytes footprint() const {
    Bytes total = 0;
    for (Bytes b : piece_bytes) total += b;
    return total;
  }
};

class CachingScheme {
 public:
  virtual ~CachingScheme() = default;

  virtual std::string name() const = 0;

  // Compute placements for the whole catalog over the given servers.
  // Must be called before plan_read/plan_write. `bandwidth` has one entry
  // per server (schemes that ignore bandwidth only use its size).
  virtual void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                     Rng& rng) = 0;

  // Translate a read request into partition fetches + join rule.
  virtual ReadPlan plan_read(FileId file, Rng& rng) const = 0;

  // Translate a write of the file into stores + client-side pre-processing.
  virtual WritePlan plan_write(FileId file, Rng& rng) const = 0;

  // Bytes this scheme keeps in cluster memory for the file (redundancy
  // included). Drives the memory-overhead accounting (Figs. 3, 20).
  virtual Bytes footprint(FileId file) const;

  const FilePlacement& placement(FileId file) const { return placements_[file]; }
  const std::vector<FilePlacement>& placements() const { return placements_; }
  bool placed() const { return !placements_.empty(); }

  // Total cached bytes across the catalog.
  Bytes total_footprint() const;

  // Memory overhead relative to the raw catalog bytes: cached/raw - 1.
  double memory_overhead(const Catalog& catalog) const;

 protected:
  // Helper shared by implementations: split `size` into `k` near-equal
  // pieces (matching split_plain's sizes) on `k` random distinct servers.
  FilePlacement make_plain_placement(Bytes size, std::size_t k, std::size_t n_servers,
                                     Rng& rng) const;

  // Variant for heterogeneous clusters: servers are drawn without
  // replacement with probability proportional to `weights` (their NIC
  // bandwidths), and piece sizes are made proportional to the chosen
  // servers' weights — every piece then transfers in the same time and a
  // slow server neither bottlenecks the fork-join nor carries
  // disproportionate utilization.
  FilePlacement make_weighted_placement(Bytes size, std::size_t k,
                                        const std::vector<double>& weights, Rng& rng) const;

  std::vector<FilePlacement> placements_;
};

}  // namespace spcache
