// Periodic load re-balancing with parallel repartition (Section 6.2,
// Algorithm 2).
//
// When file popularities shift, the SP-Master recomputes the scale factor
// (Algorithm 1) and the partition counts k_i. Files whose k_i is unchanged
// stay put, but their load is *recorded* per server so the greedy placement
// of the changed files balances against it. Each changed file is then
// assigned:
//   * a set of k_i new servers — greedily, the least-loaded servers that do
//     not already hold a piece of this file (load measured by the number of
//     recorded partitions, which is proportional to real load because every
//     partition carries ~1/alpha);
//   * an executing SP-Repartitioner — a random server among the file's
//     *old* holders, so at least one partition needs no network transfer.
//
// The plan is pure metadata; execution (actually moving the bytes,
// sequentially via the master or in parallel on the repartitioners) lives
// in src/cluster/repartition_exec.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "math/scale_factor.h"
#include "workload/file_catalog.h"

namespace spcache {

struct RepartitionPlan {
  double alpha = 0.0;                   // the new scale factor
  std::vector<std::size_t> new_k;       // per file
  std::vector<FileId> changed_files;    // files with new_k != old_k
  // Parallel to changed_files: the new server set (k_i distinct servers)
  // and the server executing the repartition.
  std::vector<std::vector<std::uint32_t>> new_servers;
  std::vector<std::uint32_t> executor;

  double changed_fraction(std::size_t n_files) const {
    return n_files == 0 ? 0.0
                        : static_cast<double>(changed_files.size()) / static_cast<double>(n_files);
  }
};

// Algorithm 2. `old_k[i]` / `old_servers[i]` describe the current layout.
RepartitionPlan plan_repartition(const Catalog& updated_catalog,
                                 const std::vector<Bandwidth>& bandwidth,
                                 const std::vector<std::size_t>& old_k,
                                 const std::vector<std::vector<std::uint32_t>>& old_servers,
                                 const ScaleFactorConfig& search_config, Rng& rng);

// Variant with a caller-supplied scale factor (skips Algorithm 1): used
// when the epoch's alpha should be held fixed across the re-balance, and
// by A/B experiments that must not conflate alpha changes with placement
// changes.
RepartitionPlan plan_repartition_with_alpha(
    const Catalog& updated_catalog, std::size_t n_servers, double alpha,
    const std::vector<std::size_t>& old_k,
    const std::vector<std::vector<std::uint32_t>>& old_servers, Rng& rng);

}  // namespace spcache
