// Periodic load re-balancing with parallel repartition (Section 6.2,
// Algorithm 2).
//
// When file popularities shift, the SP-Master recomputes the scale factor
// (Algorithm 1) and the partition counts k_i. Files whose k_i is unchanged
// stay put, but their load is *recorded* per server so the greedy placement
// of the changed files balances against it. Each changed file is then
// assigned:
//   * a set of k_i new servers — greedily, the least-loaded servers that do
//     not already hold a piece of this file (load measured by the number of
//     recorded partitions, which is proportional to real load because every
//     partition carries ~1/alpha);
//   * an executing SP-Repartitioner — a random server among the file's
//     *old* holders, so at least one partition needs no network transfer.
//
// The plan is pure metadata; execution (actually moving the bytes,
// sequentially via the master or in parallel on the repartitioners) lives
// in src/cluster/repartition_exec.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "math/scale_factor.h"
#include "workload/file_catalog.h"

namespace spcache {

struct RepartitionPlan {
  double alpha = 0.0;                   // the new scale factor
  std::vector<std::size_t> new_k;       // per file
  std::vector<FileId> changed_files;    // files with new_k != old_k
  // Parallel to changed_files: the new server set (k_i distinct servers)
  // and the server executing the repartition.
  std::vector<std::vector<std::uint32_t>> new_servers;
  std::vector<std::uint32_t> executor;

  double changed_fraction(std::size_t n_files) const {
    return n_files == 0 ? 0.0
                        : static_cast<double>(changed_files.size()) / static_cast<double>(n_files);
  }
};

// --- Delta repartitioning: byte-range transfer plans -------------------
//
// Re-splitting a file from k_old to k_new pieces does not need the whole
// file to move: the new piece boundaries overlap the old ones, so each new
// piece is a concatenation of byte ranges of old pieces. A RangeTransferPlan
// spells that algebra out — per new piece, the ordered source ranges that
// assemble it — and classifies each range as local (source server ==
// destination server: the bytes are already resident, zero network cost)
// or remote (one direct server-to-server transfer). This generalizes the
// executor's "one free local piece" rule to per-range granularity: for the
// common online-adjust case (small k-delta, placements largely reused) most
// bytes never cross a NIC.
//
// Old piece sizes are taken as given (heterogeneous write_sized layouts
// repartition correctly); new piece sizes follow split_plain's rule — the
// first (size % k_new) pieces get one extra byte.

// One contiguous byte range of an old piece feeding a new piece.
struct RangeSource {
  std::uint32_t old_piece = 0;   // source piece index in the old layout
  std::uint32_t src_server = 0;  // where that piece lives
  Bytes offset_in_piece = 0;     // range start within the old piece
  Bytes offset_in_file = 0;      // range start within the whole file
  Bytes length = 0;
  bool local = false;            // src_server == destination server (free)
};

// One new piece: its destination and the ordered ranges that assemble it
// (concatenated in order, they are exactly the piece's bytes).
struct PieceAssembly {
  std::uint32_t new_piece = 0;
  std::uint32_t dst_server = 0;
  Bytes piece_size = 0;
  std::vector<RangeSource> sources;
};

struct RangeTransferPlan {
  Bytes file_size = 0;
  Bytes bytes_moved = 0;  // sum of remote range lengths (each counted once)
  Bytes bytes_saved = 0;  // sum of local range lengths (== file_size - moved)
  std::vector<PieceAssembly> pieces;  // one per new piece, in piece order
};

// Byte offset where piece `i` of a k-way split_plain layout starts.
Bytes plain_piece_offset(Bytes size, std::size_t k, std::size_t i);

// Compute the range transfer plan from the current layout
// (old_piece_sizes[i] bytes of piece i on old_servers[i]) to a
// split_plain(new_servers.size()) layout on `new_servers`. O(k_old + k_new).
RangeTransferPlan plan_range_transfer(Bytes size, const std::vector<Bytes>& old_piece_sizes,
                                      const std::vector<std::uint32_t>& old_servers,
                                      const std::vector<std::uint32_t>& new_servers);

// Algorithm 2. `old_k[i]` / `old_servers[i]` describe the current layout.
RepartitionPlan plan_repartition(const Catalog& updated_catalog,
                                 const std::vector<Bandwidth>& bandwidth,
                                 const std::vector<std::size_t>& old_k,
                                 const std::vector<std::vector<std::uint32_t>>& old_servers,
                                 const ScaleFactorConfig& search_config, Rng& rng);

// Variant with a caller-supplied scale factor (skips Algorithm 1): used
// when the epoch's alpha should be held fixed across the re-balance, and
// by A/B experiments that must not conflate alpha changes with placement
// changes.
RepartitionPlan plan_repartition_with_alpha(
    const Catalog& updated_catalog, std::size_t n_servers, double alpha,
    const std::vector<std::size_t>& old_k,
    const std::vector<std::vector<std::uint32_t>>& old_servers, Rng& rng);

}  // namespace spcache
