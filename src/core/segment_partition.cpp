#include "core/segment_partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache {

Bytes SegmentedFile::total_bytes() const {
  Bytes total = 0;
  for (const auto& s : segments) total += s.size;
  return total;
}

double SegmentedFile::total_rate() const {
  double total = 0.0;
  for (const auto& s : segments) total += s.request_rate;
  return total;
}

double SegmentedFile::segment_load(std::size_t j) const {
  assert(j < segments.size());
  const double total = total_rate();
  if (total <= 0.0) return 0.0;
  return static_cast<double>(segments[j].size) * (segments[j].request_rate / total);
}

std::size_t SegmentPlan::total_pieces() const {
  std::size_t total = 0;
  for (auto k : partitions) total += k;
  return total;
}

SegmentPlan plan_segment_partition(const SegmentedFile& file, double alpha,
                                   std::size_t n_servers, Rng& rng) {
  assert(alpha > 0.0 && n_servers > 0);
  SegmentPlan plan;
  plan.partitions.reserve(file.segments.size());
  plan.servers.reserve(file.segments.size());
  for (std::size_t j = 0; j < file.segments.size(); ++j) {
    const double load = file.segment_load(j);
    const double raw = std::ceil(alpha * load);
    const std::size_t k =
        std::clamp<std::size_t>(raw <= 1.0 ? 1 : static_cast<std::size_t>(raw), 1, n_servers);
    plan.partitions.push_back(k);
    const auto picks = rng.sample_without_replacement(n_servers, k);
    std::vector<std::uint32_t> servers;
    servers.reserve(k);
    for (std::size_t s : picks) servers.push_back(static_cast<std::uint32_t>(s));
    plan.servers.push_back(std::move(servers));
  }
  return plan;
}

std::size_t whole_file_partitions(const SegmentedFile& file, double alpha,
                                  std::size_t n_servers) {
  // Whole-file Eq. 1: the file's load is the sum of its segments' loads.
  double load = 0.0;
  for (std::size_t j = 0; j < file.segments.size(); ++j) load += file.segment_load(j);
  const double raw = std::ceil(alpha * load);
  return std::clamp<std::size_t>(raw <= 1.0 ? 1 : static_cast<std::size_t>(raw), 1, n_servers);
}

double max_partition_load(const SegmentedFile& file, const SegmentPlan& plan) {
  assert(plan.partitions.size() == file.segments.size());
  double mx = 0.0;
  for (std::size_t j = 0; j < file.segments.size(); ++j) {
    mx = std::max(mx, file.segment_load(j) / static_cast<double>(plan.partitions[j]));
  }
  return mx;
}

double max_partition_load_whole(const SegmentedFile& file, std::size_t k) {
  assert(k >= 1);
  // Uniform whole-file pieces each contain 1/k of every segment, so each
  // piece carries 1/k of the total load.
  double load = 0.0;
  for (std::size_t j = 0; j < file.segments.size(); ++j) load += file.segment_load(j);
  return load / static_cast<double>(k);
}

}  // namespace spcache
