// EC-Cache baseline (Rashmi et al., OSDI'16; paper Section 3.2).
//
// Every file is encoded with a (k, n) Reed-Solomon code: k data partitions
// of S_i/k bytes plus n-k parity partitions of the same size, on n distinct
// servers. Reads use *late binding*: fetch k+1 randomly chosen partitions
// and join on the k fastest, then pay the decode cost. Memory overhead is
// (n-k)/k — 40% for the (10, 14) code the paper evaluates.
//
// The simulator charges decode time through `CodecModel`; the threaded
// cluster (src/cluster) runs the real GF(256) codec from src/erasure.
#pragma once

#include "core/scheme.h"
#include "net/network_model.h"

namespace spcache {

struct EcCacheConfig {
  std::size_t k = 10;
  std::size_t n = 14;
  CodecModel codec{};
  // Extra partitions fetched beyond k (the paper's EC-Cache uses 1).
  std::size_t late_binding_extra = 1;
};

class EcCacheScheme : public CachingScheme {
 public:
  explicit EcCacheScheme(EcCacheConfig config = {});

  std::string name() const override { return "EC-Cache"; }

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

  const EcCacheConfig& config() const { return config_; }
  double code_overhead() const {
    return static_cast<double>(config_.n - config_.k) / static_cast<double>(config_.k);
  }

 private:
  EcCacheConfig config_;
  std::vector<Bytes> file_sizes_;  // for decode-cost accounting
};

}  // namespace spcache
