#include "core/ec_cache.h"

#include <cassert>
#include <stdexcept>

namespace spcache {

EcCacheScheme::EcCacheScheme(EcCacheConfig config) : config_(config) {
  if (config_.k < 1 || config_.n < config_.k) {
    throw std::invalid_argument("EcCacheScheme: require 1 <= k <= n");
  }
}

void EcCacheScheme::place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                          Rng& rng) {
  const std::size_t n_servers = bandwidth.size();
  if (config_.n > n_servers) {
    throw std::invalid_argument("EcCacheScheme: n exceeds the number of servers");
  }
  placements_.clear();
  placements_.reserve(catalog.size());
  file_sizes_.clear();
  file_sizes_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Bytes size = catalog.file(static_cast<FileId>(i)).size;
    file_sizes_.push_back(size);
    FilePlacement p;
    p.data_pieces = config_.k;
    // All n shards have the padded size ceil(S/k) (RS shards are equal).
    const Bytes shard = (size + config_.k - 1) / config_.k;
    const auto servers = rng.sample_without_replacement(n_servers, config_.n);
    p.servers.reserve(config_.n);
    p.piece_bytes.assign(config_.n, shard);
    for (std::size_t s : servers) p.servers.push_back(static_cast<std::uint32_t>(s));
    placements_.push_back(std::move(p));
  }
}

ReadPlan EcCacheScheme::plan_read(FileId file, Rng& rng) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  const std::size_t fetch_count =
      std::min(config_.k + config_.late_binding_extra, p.servers.size());
  const auto picks = rng.sample_without_replacement(p.servers.size(), fetch_count);
  ReadPlan plan;
  plan.fetches.reserve(fetch_count);
  for (std::size_t idx : picks) {
    plan.fetches.push_back(PartitionFetch{p.servers[idx], p.piece_bytes[idx]});
  }
  plan.needed = config_.k;  // join on the k fastest of k+1 (late binding)
  plan.post_process = config_.codec.decode_time(file_sizes_[file]);
  return plan;
}

WritePlan EcCacheScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  plan.pre_process = config_.codec.encode_time(file_sizes_[file]);
  return plan;
}

}  // namespace spcache
