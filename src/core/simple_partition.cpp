#include "core/simple_partition.h"

#include <cassert>
#include <sstream>

namespace spcache {

SimplePartitionScheme::SimplePartitionScheme(std::size_t k) : k_(k) { assert(k >= 1); }

std::string SimplePartitionScheme::name() const {
  std::ostringstream os;
  os << "Simple partition (k=" << k_ << ")";
  return os.str();
}

void SimplePartitionScheme::place(const Catalog& catalog,
                                  const std::vector<Bandwidth>& bandwidth, Rng& rng) {
  const std::size_t n_servers = bandwidth.size();
  assert(k_ <= n_servers);
  placements_.clear();
  placements_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    placements_.push_back(
        make_plain_placement(catalog.file(static_cast<FileId>(i)).size, k_, n_servers, rng));
  }
}

ReadPlan SimplePartitionScheme::plan_read(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  ReadPlan plan;
  plan.fetches.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.fetches.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  plan.needed = plan.fetches.size();
  return plan;
}

WritePlan SimplePartitionScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  return plan;
}

}  // namespace spcache
