#include "core/fixed_chunking.h"

#include <cassert>
#include <sstream>

namespace spcache {

FixedChunkingScheme::FixedChunkingScheme(FixedChunkingConfig config) : config_(config) {
  assert(config_.chunk_size > 0);
}

std::string FixedChunkingScheme::name() const {
  std::ostringstream os;
  os << "Fixed chunking (" << config_.chunk_size / kMB << " MB)";
  return os.str();
}

void FixedChunkingScheme::place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                                Rng& rng) {
  const std::size_t n_servers = bandwidth.size();
  placements_.clear();
  placements_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Bytes size = catalog.file(static_cast<FileId>(i)).size;
    const std::size_t chunks =
        std::max<std::size_t>(1, (size + config_.chunk_size - 1) / config_.chunk_size);
    FilePlacement p;
    p.data_pieces = chunks;
    const std::size_t distinct = std::min(chunks, n_servers);
    const auto servers = rng.sample_without_replacement(n_servers, distinct);
    p.servers.reserve(chunks);
    p.piece_bytes.reserve(chunks);
    Bytes remaining = size;
    for (std::size_t c = 0; c < chunks; ++c) {
      const Bytes piece = std::min<Bytes>(config_.chunk_size, remaining);
      remaining -= piece;
      p.servers.push_back(static_cast<std::uint32_t>(servers[c % distinct]));
      p.piece_bytes.push_back(piece);
    }
    placements_.push_back(std::move(p));
  }
}

ReadPlan FixedChunkingScheme::plan_read(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  ReadPlan plan;
  plan.fetches.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.fetches.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  plan.needed = plan.fetches.size();
  return plan;
}

WritePlan FixedChunkingScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  return plan;
}

}  // namespace spcache
