#include "core/hash_placement.h"

#include <cassert>

#include "common/rng.h"

namespace spcache {

namespace {

// SplitMix64 as a 64-bit mixing hash (deterministic across runs).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t n_servers, std::size_t vnodes)
    : n_servers_(n_servers) {
  assert(n_servers > 0 && vnodes > 0);
  for (std::size_t s = 0; s < n_servers; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Hash (server, vnode) to a ring point; collisions are vanishingly
      // rare and harmless (last writer wins).
      ring_[mix(mix(s) ^ (v * 0x9e3779b97f4a7c15ULL + 1))] = static_cast<std::uint32_t>(s);
    }
  }
}

std::uint32_t ConsistentHashRing::server_for(std::uint64_t key) const {
  const std::uint64_t h = mix(key);
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<std::uint32_t> ConsistentHashRing::servers_for(std::uint64_t key,
                                                           std::size_t count) const {
  assert(count <= n_servers_);
  std::vector<std::uint32_t> out;
  std::vector<bool> taken(n_servers_, false);
  const std::uint64_t h = mix(key);
  auto it = ring_.lower_bound(h);
  while (out.size() < count) {
    if (it == ring_.end()) it = ring_.begin();
    if (!taken[it->second]) {
      taken[it->second] = true;
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

HashPlacementScheme::HashPlacementScheme(std::size_t vnodes) : vnodes_(vnodes) {}

void HashPlacementScheme::place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                                Rng& /*rng*/) {
  const ConsistentHashRing ring(bandwidth.size(), vnodes_);
  placements_.clear();
  placements_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    FilePlacement p;
    p.data_pieces = 1;
    p.servers = {ring.server_for(i)};
    p.piece_bytes = {catalog.file(static_cast<FileId>(i)).size};
    placements_.push_back(std::move(p));
  }
}

ReadPlan HashPlacementScheme::plan_read(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  ReadPlan plan;
  plan.fetches.push_back(PartitionFetch{p.servers[0], p.piece_bytes[0]});
  plan.needed = 1;
  return plan;
}

WritePlan HashPlacementScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.push_back(PartitionFetch{p.servers[0], p.piece_bytes[0]});
  return plan;
}

}  // namespace spcache
