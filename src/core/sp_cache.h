// SP-Cache: selective partition (the paper's contribution, Section 5).
//
// For each file i, k_i = ceil(alpha * S_i * P_i) partitions (Eq. 1), where
// alpha is chosen by Algorithm 1 (exponential search over the fork-join
// latency upper bound). Partitions are placed on k_i distinct servers
// chosen uniformly at random; since every partition then carries roughly
// the same load ~1/alpha, random placement suffices for balance
// (Section 5.1). Reads fork to all k_i partitions and join on the slowest;
// there is no decode step and no cache redundancy.
#pragma once

#include <optional>

#include "core/scheme.h"
#include "math/scale_factor.h"

namespace spcache {

struct SpCacheConfig {
  // Forwarded to Algorithm 1.
  ScaleFactorConfig search{};
  // If set, skips Algorithm 1 and uses this scale factor directly (used by
  // the Fig. 8 alpha sweep and by tests).
  std::optional<double> fixed_alpha;
  // Heterogeneous-cluster extension: draw each file's servers with
  // probability proportional to their bandwidth, so faster NICs host
  // proportionally more partitions. Off by default (the paper's clusters
  // are homogeneous and use uniform random placement).
  bool bandwidth_weighted_placement = false;
};

class SpCacheScheme : public CachingScheme {
 public:
  explicit SpCacheScheme(SpCacheConfig config = {});

  std::string name() const override { return "SP-Cache"; }

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;

  // Fig. 22 note: the write benchmark configures SP-Cache "to enforce file
  // splitting upon write based on the provided file popularity"; we store
  // the k_i pieces computed at placement time. (The production write path
  // of Section 6.1 — one unsplit copy for a brand-new file whose popularity
  // is unknown — is modelled by plan_initial_write.)
  WritePlan plan_write(FileId file, Rng& rng) const override;

  // A new file enters the cluster unsplit on one random server
  // (Section 6.1 "Writes").
  WritePlan plan_initial_write(Bytes size, std::size_t n_servers, Rng& rng) const;

  // The scale factor chosen by Algorithm 1 (or the fixed override).
  double alpha() const { return alpha_; }
  // k_i per file, after placement.
  const std::vector<std::size_t>& partition_counts() const { return partition_counts_; }
  // Full Algorithm 1 result (empty when fixed_alpha was used).
  const std::optional<ScaleFactorResult>& search_result() const { return search_result_; }

 private:
  SpCacheConfig config_;
  double alpha_ = 0.0;
  std::vector<std::size_t> partition_counts_;
  std::optional<ScaleFactorResult> search_result_;
};

}  // namespace spcache
