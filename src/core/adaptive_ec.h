// Adaptive EC-Cache (Section 7.1 "Baselines").
//
// The EC-Cache paper claims an adaptive coding strategy that varies
// redundancy with popularity at a total memory overhead of ~15%, but
// neither the paper nor the released code specify it; the SP-Cache authors
// therefore evaluated the uniform (10,14) configuration. We implement the
// natural reconstruction so the comparison can be run both ways:
//
//   * every file is split into k data shards (like EC-Cache);
//   * parity shards are allocated greedily by expected load L_i = S_i P_i
//     — the hottest files first, one parity shard at a time up to
//     `max_parity` each — until the global byte budget (overhead_budget x
//     catalog bytes) is exhausted;
//   * reads of files with parity use k+1-of-n late binding plus decode;
//     files without parity degrade to plain (k, k) splitting — no hedge,
//     no decode.
#pragma once

#include "core/scheme.h"
#include "net/network_model.h"

namespace spcache {

struct AdaptiveEcConfig {
  std::size_t k = 10;
  std::size_t max_parity = 4;     // cap per file (the (10,14) geometry)
  double overhead_budget = 0.15;  // fraction of raw catalog bytes
  CodecModel codec{};
};

class AdaptiveEcScheme : public CachingScheme {
 public:
  explicit AdaptiveEcScheme(AdaptiveEcConfig config = {});

  std::string name() const override { return "Adaptive EC-Cache"; }

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

  std::size_t parity_count(FileId file) const { return parity_[file]; }
  const AdaptiveEcConfig& config() const { return config_; }

 private:
  AdaptiveEcConfig config_;
  std::vector<std::size_t> parity_;
  std::vector<Bytes> file_sizes_;
};

}  // namespace spcache
