// Simple (uniform) partition baseline (Section 4.1, Fig. 5).
//
// Every file — regardless of size or popularity — is split into the same
// number k of partitions on k random distinct servers ("EC-Cache in a
// coding-free (k, k) mode"). k = 1 degenerates to the stock, no-partition
// layout used for the caching-on/off motivation experiment (Fig. 2).
#pragma once

#include "core/scheme.h"

namespace spcache {

class SimplePartitionScheme : public CachingScheme {
 public:
  explicit SimplePartitionScheme(std::size_t k);

  std::string name() const override;

  void place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
             Rng& rng) override;

  ReadPlan plan_read(FileId file, Rng& rng) const override;
  WritePlan plan_write(FileId file, Rng& rng) const override;

  std::size_t partition_count() const { return k_; }

 private:
  std::size_t k_;
};

// Convenience alias for the no-partition stock layout.
class StockScheme : public SimplePartitionScheme {
 public:
  StockScheme() : SimplePartitionScheme(1) {}
  std::string name() const override { return "Stock (no partition)"; }
};

}  // namespace spcache
