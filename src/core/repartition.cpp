#include "core/repartition.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace spcache {

Bytes plain_piece_offset(Bytes size, std::size_t k, std::size_t i) {
  assert(k >= 1);
  assert(i <= k);
  const Bytes base = size / k;
  const Bytes extra = size % k;
  return static_cast<Bytes>(i) * base + std::min<Bytes>(i, extra);
}

RangeTransferPlan plan_range_transfer(Bytes size, const std::vector<Bytes>& old_piece_sizes,
                                      const std::vector<std::uint32_t>& old_servers,
                                      const std::vector<std::uint32_t>& new_servers) {
  assert(old_piece_sizes.size() == old_servers.size());
  assert(!old_servers.empty());
  assert(!new_servers.empty());
#ifndef NDEBUG
  {
    Bytes total = 0;
    for (Bytes s : old_piece_sizes) total += s;
    assert(total == size);
  }
#endif

  RangeTransferPlan plan;
  plan.file_size = size;
  const std::size_t k_new = new_servers.size();
  plan.pieces.reserve(k_new);

  // Walk the file once, keeping a cursor into the old layout. New piece
  // boundaries follow split_plain; every crossing of an old boundary inside
  // a new piece starts a fresh source range.
  std::size_t old_piece = 0;
  Bytes old_start = 0;  // file offset where old_piece begins
  for (std::size_t j = 0; j < k_new; ++j) {
    PieceAssembly assembly;
    assembly.new_piece = static_cast<std::uint32_t>(j);
    assembly.dst_server = new_servers[j];
    const Bytes lo = plain_piece_offset(size, k_new, j);
    const Bytes hi = plain_piece_offset(size, k_new, j + 1);
    assembly.piece_size = hi - lo;
    Bytes pos = lo;
    while (pos < hi) {
      // Advance the old cursor past zero-length pieces and pieces that end
      // at or before `pos` (possible when size < k_old leaves empty tails).
      while (old_piece < old_piece_sizes.size() &&
             old_start + old_piece_sizes[old_piece] <= pos) {
        old_start += old_piece_sizes[old_piece];
        ++old_piece;
      }
      assert(old_piece < old_piece_sizes.size());
      const Bytes old_end = old_start + old_piece_sizes[old_piece];
      RangeSource range;
      range.old_piece = static_cast<std::uint32_t>(old_piece);
      range.src_server = old_servers[old_piece];
      range.offset_in_piece = pos - old_start;
      range.offset_in_file = pos;
      range.length = std::min(hi, old_end) - pos;
      range.local = range.src_server == assembly.dst_server;
      if (range.local) {
        plan.bytes_saved += range.length;
      } else {
        plan.bytes_moved += range.length;
      }
      pos += range.length;
      assembly.sources.push_back(range);
    }
    plan.pieces.push_back(std::move(assembly));
  }
  return plan;
}

RepartitionPlan plan_repartition(const Catalog& updated_catalog,
                                 const std::vector<Bandwidth>& bandwidth,
                                 const std::vector<std::size_t>& old_k,
                                 const std::vector<std::vector<std::uint32_t>>& old_servers,
                                 const ScaleFactorConfig& search_config, Rng& rng) {
  // Line 3: recompute alpha against the updated popularities.
  const auto search = find_scale_factor(updated_catalog, bandwidth, search_config, rng);
  return plan_repartition_with_alpha(updated_catalog, bandwidth.size(), search.alpha, old_k,
                                     old_servers, rng);
}

RepartitionPlan plan_repartition_with_alpha(
    const Catalog& updated_catalog, std::size_t n_servers, double alpha,
    const std::vector<std::size_t>& old_k,
    const std::vector<std::vector<std::uint32_t>>& old_servers, Rng& rng) {
  assert(old_k.size() == updated_catalog.size());
  assert(old_servers.size() == updated_catalog.size());

  RepartitionPlan plan;
  plan.alpha = alpha;
  // Line 4: new partition counts per Eq. 1.
  plan.new_k = partition_counts_for_alpha(updated_catalog, plan.alpha, n_servers);

  // Lines 5-9: initialize per-server load with the partitions of files that
  // keep their partition count (they stay in place untouched).
  std::vector<std::size_t> server_load(n_servers, 0);
  for (std::size_t i = 0; i < updated_catalog.size(); ++i) {
    if (plan.new_k[i] == old_k[i]) {
      for (std::uint32_t s : old_servers[i]) {
        assert(s < n_servers);
        ++server_load[s];
      }
    }
  }

  // Lines 10-15: greedily place each changed file's k_i partitions on the
  // least-loaded servers not already holding one of its new pieces.
  for (std::size_t i = 0; i < updated_catalog.size(); ++i) {
    if (plan.new_k[i] == old_k[i]) continue;
    const std::size_t k = plan.new_k[i];
    assert(k <= n_servers);
    std::vector<bool> used(n_servers, false);
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    for (std::size_t piece = 0; piece < k; ++piece) {
      std::size_t best = n_servers;
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (!used[s] && server_load[s] < best_load) {
          best = s;
          best_load = server_load[s];
        }
      }
      assert(best < n_servers);
      used[best] = true;
      ++server_load[best];
      chosen.push_back(static_cast<std::uint32_t>(best));
    }
    // Executor: a random server among the file's old holders, so one
    // partition is already local (Section 6.2, Fig. 9b).
    const auto& old = old_servers[i];
    const std::uint32_t executor =
        old.empty() ? chosen.front()
                    : old[static_cast<std::size_t>(rng.uniform_index(old.size()))];
    plan.changed_files.push_back(static_cast<FileId>(i));
    plan.new_servers.push_back(std::move(chosen));
    plan.executor.push_back(executor);
  }
  return plan;
}

}  // namespace spcache
