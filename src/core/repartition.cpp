#include "core/repartition.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace spcache {

RepartitionPlan plan_repartition(const Catalog& updated_catalog,
                                 const std::vector<Bandwidth>& bandwidth,
                                 const std::vector<std::size_t>& old_k,
                                 const std::vector<std::vector<std::uint32_t>>& old_servers,
                                 const ScaleFactorConfig& search_config, Rng& rng) {
  // Line 3: recompute alpha against the updated popularities.
  const auto search = find_scale_factor(updated_catalog, bandwidth, search_config, rng);
  return plan_repartition_with_alpha(updated_catalog, bandwidth.size(), search.alpha, old_k,
                                     old_servers, rng);
}

RepartitionPlan plan_repartition_with_alpha(
    const Catalog& updated_catalog, std::size_t n_servers, double alpha,
    const std::vector<std::size_t>& old_k,
    const std::vector<std::vector<std::uint32_t>>& old_servers, Rng& rng) {
  assert(old_k.size() == updated_catalog.size());
  assert(old_servers.size() == updated_catalog.size());

  RepartitionPlan plan;
  plan.alpha = alpha;
  // Line 4: new partition counts per Eq. 1.
  plan.new_k = partition_counts_for_alpha(updated_catalog, plan.alpha, n_servers);

  // Lines 5-9: initialize per-server load with the partitions of files that
  // keep their partition count (they stay in place untouched).
  std::vector<std::size_t> server_load(n_servers, 0);
  for (std::size_t i = 0; i < updated_catalog.size(); ++i) {
    if (plan.new_k[i] == old_k[i]) {
      for (std::uint32_t s : old_servers[i]) {
        assert(s < n_servers);
        ++server_load[s];
      }
    }
  }

  // Lines 10-15: greedily place each changed file's k_i partitions on the
  // least-loaded servers not already holding one of its new pieces.
  for (std::size_t i = 0; i < updated_catalog.size(); ++i) {
    if (plan.new_k[i] == old_k[i]) continue;
    const std::size_t k = plan.new_k[i];
    assert(k <= n_servers);
    std::vector<bool> used(n_servers, false);
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    for (std::size_t piece = 0; piece < k; ++piece) {
      std::size_t best = n_servers;
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < n_servers; ++s) {
        if (!used[s] && server_load[s] < best_load) {
          best = s;
          best_load = server_load[s];
        }
      }
      assert(best < n_servers);
      used[best] = true;
      ++server_load[best];
      chosen.push_back(static_cast<std::uint32_t>(best));
    }
    // Executor: a random server among the file's old holders, so one
    // partition is already local (Section 6.2, Fig. 9b).
    const auto& old = old_servers[i];
    const std::uint32_t executor =
        old.empty() ? chosen.front()
                    : old[static_cast<std::size_t>(rng.uniform_index(old.size()))];
    plan.changed_files.push_back(static_cast<FileId>(i));
    plan.new_servers.push_back(std::move(chosen));
    plan.executor.push_back(executor);
  }
  return plan;
}

}  // namespace spcache
