#include "core/scheme.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace spcache {

Bytes CachingScheme::footprint(FileId file) const {
  assert(file < placements_.size());
  return placements_[file].footprint();
}

Bytes CachingScheme::total_footprint() const {
  Bytes total = 0;
  for (const auto& p : placements_) total += p.footprint();
  return total;
}

double CachingScheme::memory_overhead(const Catalog& catalog) const {
  const Bytes raw = catalog.total_bytes();
  if (raw == 0) return 0.0;
  return static_cast<double>(total_footprint()) / static_cast<double>(raw) - 1.0;
}

namespace {

void fill_piece_sizes(FilePlacement& p, Bytes size, std::size_t k) {
  // Same piece sizes as split_plain: the first (size % k) pieces get one
  // extra byte.
  const Bytes base = size / k;
  const Bytes extra = size % k;
  p.piece_bytes.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    p.piece_bytes.push_back(base + (i < extra ? 1 : 0));
  }
}

}  // namespace

FilePlacement CachingScheme::make_plain_placement(Bytes size, std::size_t k,
                                                  std::size_t n_servers, Rng& rng) const {
  assert(k >= 1 && k <= n_servers);
  FilePlacement p;
  p.data_pieces = k;
  const auto servers = rng.sample_without_replacement(n_servers, k);
  p.servers.reserve(k);
  for (std::size_t s : servers) p.servers.push_back(static_cast<std::uint32_t>(s));
  fill_piece_sizes(p, size, k);
  return p;
}

FilePlacement CachingScheme::make_weighted_placement(Bytes size, std::size_t k,
                                                     const std::vector<double>& weights,
                                                     Rng& rng) const {
  assert(k >= 1 && k <= weights.size());
  FilePlacement p;
  p.data_pieces = k;
  const auto servers = rng.sample_weighted_without_replacement(weights, k);
  p.servers.reserve(k);
  double chosen_weight = 0.0;
  for (std::size_t s : servers) {
    p.servers.push_back(static_cast<std::uint32_t>(s));
    chosen_weight += weights[s];
  }
  // Piece sizes proportional to the chosen servers' weights, distributed
  // exactly (largest-remainder rounding) so they sum to `size`.
  p.piece_bytes.assign(k, 0);
  std::vector<std::pair<double, std::size_t>> remainders(k);
  Bytes assigned = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const double exact = static_cast<double>(size) * weights[servers[i]] / chosen_weight;
    p.piece_bytes[i] = static_cast<Bytes>(exact);
    assigned += p.piece_bytes[i];
    remainders[i] = {exact - static_cast<double>(p.piece_bytes[i]), i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t j = 0; assigned < size; ++j, ++assigned) {
    ++p.piece_bytes[remainders[j % k].second];
  }
  return p;
}

}  // namespace spcache
