#include "core/sp_cache.h"

#include <cassert>

namespace spcache {

SpCacheScheme::SpCacheScheme(SpCacheConfig config) : config_(std::move(config)) {}

void SpCacheScheme::place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                          Rng& rng) {
  assert(!catalog.empty() && !bandwidth.empty());
  const std::size_t n_servers = bandwidth.size();
  if (config_.fixed_alpha) {
    alpha_ = *config_.fixed_alpha;
    search_result_.reset();
  } else {
    search_result_ = find_scale_factor(catalog, bandwidth, config_.search, rng);
    alpha_ = search_result_->alpha;
  }
  partition_counts_ = partition_counts_for_alpha(catalog, alpha_, n_servers);

  placements_.clear();
  placements_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Bytes size = catalog.file(static_cast<FileId>(i)).size;
    if (config_.bandwidth_weighted_placement) {
      placements_.push_back(
          make_weighted_placement(size, partition_counts_[i], bandwidth, rng));
    } else {
      placements_.push_back(make_plain_placement(size, partition_counts_[i], n_servers, rng));
    }
  }
}

ReadPlan SpCacheScheme::plan_read(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  ReadPlan plan;
  plan.fetches.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.fetches.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  plan.needed = plan.fetches.size();  // join on all partitions
  plan.post_process = 0.0;            // redundancy-free: nothing to decode
  return plan;
}

WritePlan SpCacheScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  plan.pre_process = 0.0;  // splitting is a pointer-arithmetic operation
  return plan;
}

WritePlan SpCacheScheme::plan_initial_write(Bytes size, std::size_t n_servers, Rng& rng) const {
  WritePlan plan;
  plan.stores.push_back(
      PartitionFetch{static_cast<std::uint32_t>(rng.uniform_index(n_servers)), size});
  return plan;
}

}  // namespace spcache
