#include "core/adaptive_ec.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <utility>
#include <stdexcept>

namespace spcache {

AdaptiveEcScheme::AdaptiveEcScheme(AdaptiveEcConfig config) : config_(config) {
  if (config_.k < 1) throw std::invalid_argument("AdaptiveEcScheme: k >= 1 required");
}

void AdaptiveEcScheme::place(const Catalog& catalog, const std::vector<Bandwidth>& bandwidth,
                             Rng& rng) {
  const std::size_t n_servers = bandwidth.size();
  if (config_.k + config_.max_parity > n_servers) {
    throw std::invalid_argument("AdaptiveEcScheme: k + max_parity exceeds server count");
  }

  // Greedy parity allocation by marginal benefit per shard: the next parity
  // shard goes to the file with the highest L_i / (parity_i + 1) — each
  // extra shard on the same file hedges a smaller slice of its load — until
  // the byte budget is exhausted. The head of the load ranking is fully
  // provisioned before the tail sees any redundancy.
  parity_.assign(catalog.size(), 0);
  double budget = config_.overhead_budget * static_cast<double>(catalog.total_bytes());
  using Entry = std::pair<double, std::size_t>;  // (marginal benefit, file)
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const double load = catalog.load(static_cast<FileId>(i));
    if (load > 0.0) heap.emplace(load, i);
  }
  while (!heap.empty() && budget > 0.0) {
    const auto [benefit, idx] = heap.top();
    heap.pop();
    const double shard_bytes = static_cast<double>(
        (catalog.file(static_cast<FileId>(idx)).size + config_.k - 1) / config_.k);
    if (shard_bytes > budget) continue;  // this file no longer fits; try others
    ++parity_[idx];
    budget -= shard_bytes;
    if (parity_[idx] < config_.max_parity) {
      heap.emplace(catalog.load(static_cast<FileId>(idx)) /
                       static_cast<double>(parity_[idx] + 1),
                   idx);
    }
  }

  placements_.clear();
  placements_.reserve(catalog.size());
  file_sizes_.clear();
  file_sizes_.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const Bytes size = catalog.file(static_cast<FileId>(i)).size;
    file_sizes_.push_back(size);
    const std::size_t n_i = config_.k + parity_[i];
    FilePlacement p;
    p.data_pieces = config_.k;
    const Bytes shard = (size + config_.k - 1) / config_.k;
    const auto servers = rng.sample_without_replacement(n_servers, n_i);
    p.piece_bytes.assign(n_i, shard);
    p.servers.reserve(n_i);
    for (std::size_t s : servers) p.servers.push_back(static_cast<std::uint32_t>(s));
    placements_.push_back(std::move(p));
  }
}

ReadPlan AdaptiveEcScheme::plan_read(FileId file, Rng& rng) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  ReadPlan plan;
  if (parity_[file] == 0) {
    // Plain (k, k): read everything, nothing to decode.
    plan.fetches.reserve(p.servers.size());
    for (std::size_t i = 0; i < p.servers.size(); ++i) {
      plan.fetches.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
    }
    plan.needed = plan.fetches.size();
    return plan;
  }
  // Late binding over the coded shards.
  const std::size_t fetch_count = std::min(config_.k + 1, p.servers.size());
  const auto picks = rng.sample_without_replacement(p.servers.size(), fetch_count);
  plan.fetches.reserve(fetch_count);
  for (std::size_t idx : picks) {
    plan.fetches.push_back(PartitionFetch{p.servers[idx], p.piece_bytes[idx]});
  }
  plan.needed = config_.k;
  plan.post_process = config_.codec.decode_time(file_sizes_[file]);
  return plan;
}

WritePlan AdaptiveEcScheme::plan_write(FileId file, Rng& /*rng*/) const {
  assert(placed() && file < placements_.size());
  const auto& p = placements_[file];
  WritePlan plan;
  plan.stores.reserve(p.servers.size());
  for (std::size_t i = 0; i < p.servers.size(); ++i) {
    plan.stores.push_back(PartitionFetch{p.servers[i], p.piece_bytes[i]});
  }
  if (parity_[file] > 0) {
    // Encoding cost scales with the parity fraction actually computed.
    plan.pre_process = config_.codec.encode_time(file_sizes_[file]) *
                       static_cast<double>(parity_[file]) /
                       static_cast<double>(config_.max_parity);
  }
  return plan;
}

}  // namespace spcache
