// Online partition adjustment (Section 8 "Short-Term Popularity
// Variation").
//
// When a file turns hot (or cold) within a re-balancing period, SP-Cache
// can adjust its granularity immediately by *splitting and combining the
// existing partitions in a distributed manner*: a split halves one cached
// piece, shipping only the new half to a fresh server; a merge pulls one
// piece onto its neighbour's server. Either way the data transferred is a
// single partition — far cheaper than EC-Cache's full re-encode or
// replication's extra full copy (the comparison the paper draws).
//
// `plan_online_adjust` compares each file's live target k (Eq. 1 on the
// tracker's rate estimate) against its current partition count, with
// hysteresis so small fluctuations don't thrash, and emits a bounded batch
// of split/merge operations. `execute_online_adjust` applies them to the
// threaded cluster: real bytes move, piece indices are re-threaded with
// metadata renames (pieces are contiguous byte ranges, so splits/merges at
// an index keep the file reconstructible by concatenation).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "common/rng.h"
#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

struct OnlineAdjustConfig {
  // Current scale factor (from Algorithm 1 / the online AlphaController).
  // MANDATORY: plan_online_adjust throws std::invalid_argument if left at
  // the default 0.0, which would silently disable Eq. 1 targeting and
  // merge every file down to one partition.
  double alpha = 0.0;
  double split_factor = 2.0;     // split when target_k >= factor * current_k
  double merge_factor = 0.5;     // merge when target_k <= factor * current_k
  std::size_t max_ops_per_file = 8;  // gradual adjustment per invocation
};

struct SplitOp {
  FileId file = 0;
  PieceIndex piece = 0;           // piece to halve
  std::uint32_t target_server = 0;  // receives the second half (piece+1)
};

struct MergeOp {
  FileId file = 0;
  PieceIndex piece = 0;  // piece (piece+1) is pulled onto piece's server
};

struct OnlineAdjustPlan {
  std::vector<SplitOp> splits;
  std::vector<MergeOp> merges;

  bool empty() const { return splits.empty() && merges.empty(); }
  std::size_t size() const { return splits.size() + merges.size(); }
};

// Decide the adjustment batch from the live catalog (sizes + tracked rates)
// and the master's current layouts. Split targets are chosen least-loaded
// (by resident pieces) among servers not already holding the file.
OnlineAdjustPlan plan_online_adjust(const Catalog& live_catalog, const Master& master,
                                    std::size_t n_servers, const OnlineAdjustConfig& config);

struct OnlineAdjustStats {
  std::size_t splits = 0;
  std::size_t merges = 0;
  Bytes bytes_moved = 0;       // network traffic (one piece per op at most)
  Seconds modelled_time = 0.0; // serial transfer time at cluster bandwidth
};

// Apply one split / merge / whole plan against the cluster + master.
// Throws std::runtime_error on inconsistent state (missing pieces).
OnlineAdjustStats execute_split(Cluster& cluster, Master& master, const SplitOp& op);
OnlineAdjustStats execute_merge(Cluster& cluster, Master& master, const MergeOp& op);
OnlineAdjustStats execute_online_adjust(Cluster& cluster, Master& master,
                                        const OnlineAdjustPlan& plan);

}  // namespace spcache
