#include "cluster/alpha_controller.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace spcache {

namespace {

// Drop every op touching a file with a dead holder (or a dead split
// target): per-file ops are sequential — each assumes the previous op's
// piece re-indexing — so a file is adjusted either wholly or not at all.
// Files skipped here are retried naturally on the next trigger, after
// repair moves them back onto live servers.
OnlineAdjustPlan filter_plan_for_liveness(const OnlineAdjustPlan& plan, const Cluster& cluster,
                                          const Master& master) {
  std::unordered_set<FileId> skip;
  const auto file_live = [&](FileId id) {
    const auto meta = master.peek(id);
    if (!meta) return false;
    for (const std::uint32_t s : meta->servers) {
      if (!cluster.is_alive(s)) return false;
    }
    return true;
  };
  for (const auto& op : plan.splits) {
    if (skip.count(op.file)) continue;
    if (!file_live(op.file) || !cluster.is_alive(op.target_server)) skip.insert(op.file);
  }
  for (const auto& op : plan.merges) {
    if (skip.count(op.file)) continue;
    if (!file_live(op.file)) skip.insert(op.file);
  }
  if (skip.empty()) return plan;
  OnlineAdjustPlan filtered;
  for (const auto& op : plan.splits) {
    if (!skip.count(op.file)) filtered.splits.push_back(op);
  }
  for (const auto& op : plan.merges) {
    if (!skip.count(op.file)) filtered.merges.push_back(op);
  }
  return filtered;
}

}  // namespace

AlphaController::AlphaController(Cluster& cluster, Master& master, PopularityTracker& tracker,
                                 AlphaControllerConfig config, double initial_alpha,
                                 std::uint64_t placement_seed)
    : cluster_(cluster),
      master_(master),
      tracker_(tracker),
      config_(config),
      alpha_(initial_alpha),
      placement_seed_(placement_seed) {
  if (!(initial_alpha > 0.0)) {
    throw std::invalid_argument("AlphaController: initial_alpha must be > 0");
  }
}

void AlphaController::attach_observability(obs::MetricsRegistry* registry,
                                           obs::TraceRecorder* trace) {
  trace_ = trace;
  if (registry == nullptr) {
    triggers_ = adaptations_ = skipped_cooldown_ = skipped_deadband_ = nullptr;
    splits_ = merges_ = bytes_moved_ = search_iterations_ = nullptr;
    alpha_gauge_ = eta_gauge_ = nullptr;
    return;
  }
  triggers_ = &registry->counter(obs::names::kControllerTriggers);
  adaptations_ = &registry->counter(obs::names::kControllerAdaptations);
  skipped_cooldown_ = &registry->counter(obs::names::kControllerSkippedCooldown);
  skipped_deadband_ = &registry->counter(obs::names::kControllerSkippedDeadband);
  splits_ = &registry->counter(obs::names::kControllerSplits);
  merges_ = &registry->counter(obs::names::kControllerMerges);
  bytes_moved_ = &registry->counter(obs::names::kControllerBytesMoved);
  search_iterations_ = &registry->counter(obs::names::kControllerSearchIterations);
  alpha_gauge_ = &registry->gauge(obs::names::kControllerAlphaMicro);
  eta_gauge_ = &registry->gauge(obs::names::kControllerEtaMicro);
  alpha_gauge_->set(static_cast<std::int64_t>(alpha_ * 1e6));
}

AdaptOutcome AlphaController::observe(const std::vector<double>& cumulative_loads,
                                      const std::vector<Bytes>& file_sizes, Seconds now) {
  AdaptOutcome outcome;
  outcome.eta = window_.update(cumulative_loads);
  outcome.alpha_before = alpha_;
  outcome.alpha_after = alpha_;
  if (eta_gauge_ != nullptr) {
    eta_gauge_->set(static_cast<std::int64_t>(outcome.eta * 1e6));
  }
  if (outcome.eta < config_.eta_trigger) return outcome;

  outcome.triggered = true;
  if (triggers_ != nullptr) triggers_->add();
  if (trace_ != nullptr) {
    trace_->record(obs::TraceKind::kAlphaTrigger, 0, 0, 0, 0, outcome.eta);
  }
  // Cooldown hysteresis: an adaptation just happened; give its splits time
  // to show up in the next windows before re-deciding.
  if (ever_adapted_ && now - last_adaptation_ < config_.cooldown) {
    if (skipped_cooldown_ != nullptr) skipped_cooldown_->add();
    return outcome;
  }
  const AdaptOutcome acted = run_adaptation(file_sizes, now, outcome.eta);
  outcome.adapted = acted.adapted;
  outcome.alpha_after = acted.alpha_after;
  outcome.search_iterations = acted.search_iterations;
  outcome.splits = acted.splits;
  outcome.merges = acted.merges;
  outcome.bytes_moved = acted.bytes_moved;
  return outcome;
}

AdaptOutcome AlphaController::adapt_now(const std::vector<Bytes>& file_sizes, Seconds now) {
  return run_adaptation(file_sizes, now, window_.last_eta());
}

AdaptOutcome AlphaController::run_adaptation(const std::vector<Bytes>& file_sizes, Seconds now,
                                             double eta) {
  AdaptOutcome outcome;
  outcome.eta = eta;
  outcome.alpha_before = alpha_;

  // Decide: incremental Algorithm 1 over the tracker's live rates.
  const Catalog live = tracker_.snapshot(file_sizes, now, config_.min_rate);
  const auto bandwidths = cluster_.bandwidths();
  const ScaleFactorResult refined =
      refine_scale_factor(live, bandwidths, config_.search, placement_seed_, alpha_);
  outcome.search_iterations = refined.iterations;
  if (search_iterations_ != nullptr) search_iterations_->add(refined.iterations);

  if (refined.alpha > 0.0 &&
      std::abs(refined.alpha - alpha_) > config_.alpha_deadband * alpha_) {
    alpha_ = refined.alpha;
    if (trace_ != nullptr) {
      trace_->record(obs::TraceKind::kAlphaAdapted, 0, 0, 0, 0, alpha_);
    }
  } else if (skipped_deadband_ != nullptr) {
    // The elbow didn't move: keep the current alpha stable (no churn), but
    // still re-plan below — the *distribution* of load may have shifted
    // under an unchanged elbow (e.g. the hot rank rotated).
    skipped_deadband_->add();
  }
  outcome.alpha_after = alpha_;
  if (alpha_gauge_ != nullptr) {
    alpha_gauge_->set(static_cast<std::int64_t>(alpha_ * 1e6));
  }

  // Act: split/merge toward Eq. 1 targets at the (possibly new) alpha.
  OnlineAdjustConfig adjust;
  adjust.alpha = alpha_;
  adjust.split_factor = config_.split_factor;
  adjust.merge_factor = config_.merge_factor;
  adjust.max_ops_per_file = config_.max_ops_per_file;
  const OnlineAdjustPlan plan = filter_plan_for_liveness(
      plan_online_adjust(live, master_, cluster_.size(), adjust), cluster_, master_);
  const OnlineAdjustStats stats = execute_online_adjust(cluster_, master_, plan);
  outcome.splits = stats.splits;
  outcome.merges = stats.merges;
  outcome.bytes_moved = stats.bytes_moved;
  outcome.adapted = true;
  last_adaptation_ = now;
  ever_adapted_ = true;

  if (adaptations_ != nullptr) adaptations_->add();
  if (splits_ != nullptr) splits_->add(stats.splits);
  if (merges_ != nullptr) merges_->add(stats.merges);
  if (bytes_moved_ != nullptr) bytes_moved_->add(stats.bytes_moved);
  return outcome;
}

}  // namespace spcache
