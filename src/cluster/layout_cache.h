// Client-side metadata for the metadata-light read path.
//
// Under the paper's Zipf skew the SP-Master — not the cache servers Eq. 1
// balances — becomes the throughput ceiling once every read pays a
// synchronous LOOKUP. Real deployments keep the metadata/query path off
// the hot loop (DistCache; Aktaş & Soljanin's access-load control): the
// client caches layouts and only falls back to the master when the cached
// layout proves stale. Two pieces implement that here, shared by the
// in-process SpClient and the RPC RpcSpClient:
//
//   * LayoutCache — a bounded, sharded FileId -> FileMeta map with epoch
//     validation. put() keeps the *newer* epoch on a race, so a slow
//     LOOKUP reply can never clobber a fresher layout; invalidate() is the
//     client's reaction to a piece-level fetch/CRC failure or a server's
//     kWrongEpoch reply. Eviction is FIFO per shard (layouts are tiny and
//     re-fetchable; recency tracking isn't worth a hot-path write).
//   * AccessAccumulator — per-file access-count deltas accumulated
//     locally and drained on a size threshold, feeding the master's
//     report_access / kReportAccess batch RPC so popularity tracking (the
//     P_i input to Eq. 1) survives clients that no longer LOOKUP per read.
//
// Both are thread-safe; stats counters are relaxed atomics (statistical
// tallies, never synchronizers).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/master.h"
#include "common/hash_mix.h"

namespace spcache {

// Knobs for the metadata-light read path, shared by the in-process
// SpClient and the RPC RpcSpClient. Defaults keep the master off the
// steady-state read loop; `layout_cache = false` restores the
// always-LOOKUP behaviour (the bench baseline). `coalesce` and
// `single_flight` only apply to the RPC client (the in-process client
// has no envelopes to save).
struct ClientCacheConfig {
  bool layout_cache = true;
  bool coalesce = true;      // kGetBlockMulti per worker instead of per piece
  bool single_flight = true;  // concurrent same-file reads share one fetch
  std::size_t cache_capacity = 4096;
  // Pending cache-served accesses that trigger a batched report to the
  // master (Master::report_access_batch / kReportAccess).
  std::size_t report_flush_threshold = 32;
};

class LayoutCache {
 public:
  static constexpr std::size_t kShards = 16;

  // `capacity` bounds the total number of cached layouts (rounded up to a
  // multiple of kShards; at least one entry per shard).
  explicit LayoutCache(std::size_t capacity = 4096);

  // Cached layout, or nullopt on a miss. Counts the hit/miss.
  std::optional<FileMeta> get(FileId id);

  // Allocation-light variant for the steady-state read path: copy-assigns
  // the cached layout into caller-owned storage (a warmed `out` reuses its
  // vectors' capacity, so a hit allocates nothing). Returns false on a
  // miss, leaving `out` untouched. Counts the hit/miss like get().
  bool get_into(FileId id, FileMeta& out);

  // Insert or refresh. On a race the newer epoch wins; an equal-epoch put
  // refreshes the entry (idempotent). Evicts FIFO when the shard is full.
  void put(FileId id, FileMeta meta);

  // Drop a layout the read path proved stale (fetch failure, whole-file
  // CRC mismatch, kWrongEpoch reply). Returns true if an entry was
  // dropped; counts the invalidation either way (the *decision* to
  // re-LOOKUP is what the metric tracks).
  bool invalidate(FileId id);

  // Presence check without touching the hit/miss tallies (tests, probes).
  bool contains(FileId id) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<FileId, FileMeta> entries;
    std::deque<FileId> fifo;  // insertion order, for eviction
  };

  Shard& shard_for(FileId id) { return shards_[shard_of<kShards>(id)]; }
  const Shard& shard_for(FileId id) const { return shards_[shard_of<kShards>(id)]; }

  std::size_t capacity_;
  std::size_t per_shard_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

class AccessAccumulator {
 public:
  // `flush_threshold` is the pending-access total that makes record()
  // signal "drain me now"; 0 disables accumulation entirely (record()
  // always signals, drain() returns the single access).
  explicit AccessAccumulator(std::size_t flush_threshold = 32);

  // Record one local (cache-served) access. Returns true when the pending
  // total has reached the flush threshold — the caller should drain() and
  // ship the deltas to the master.
  bool record(FileId id, std::uint64_t n = 1);

  // Take everything pending. Safe to call concurrently with record();
  // counts racing in land in this drain or the next.
  std::vector<std::pair<FileId, std::uint64_t>> drain();

  std::uint64_t pending() const { return pending_.load(std::memory_order_relaxed); }
  std::size_t flush_threshold() const { return flush_threshold_; }

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    std::mutex mu;
    std::unordered_map<FileId, std::uint64_t> deltas;
  };

  std::size_t flush_threshold_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace spcache
