#include "cluster/client.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "cluster/stable_store.h"
#include "common/hash_mix.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache {

namespace {

// Client NICs are provisioned like server NICs in the paper's clusters; the
// write path is bottlenecked by the client's uplink shared across its
// parallel streams, the read path by the slowest piece transfer.
Seconds modelled_write_time(const Cluster& cluster, const std::vector<std::uint32_t>& servers,
                            Bytes total_bytes, const GoodputModel& goodput) {
  assert(!servers.empty());
  const Bandwidth client_bw = cluster.server(servers.front()).bandwidth();
  return static_cast<double>(total_bytes) / (client_bw * goodput.factor(servers.size()));
}

double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

SpClient::SpClient(Cluster& cluster, Master& master, ThreadPool& pool, GoodputModel goodput)
    : SpClient(cluster, master, pool, nullptr, fault::RetryPolicy{}, goodput) {}

SpClient::SpClient(Cluster& cluster, Master& master, ThreadPool& pool, StableStore* stable,
                   fault::RetryPolicy retry, GoodputModel goodput, ClientCacheConfig cache)
    : cluster_(cluster),
      master_(master),
      pool_(pool),
      stable_(stable),
      retry_(retry),
      goodput_(goodput),
      cache_config_(cache),
      layout_cache_(cache.cache_capacity),
      access_acc_(cache.report_flush_threshold) {}

SpClient::~SpClient() { flush_access_reports(); }

std::uint64_t SpClient::flush_access_reports() {
  const auto deltas = access_acc_.drain();
  if (deltas.empty()) return 0;
  return master_.report_access_batch(deltas);
}

void SpClient::cache_own_write(FileId id) {
  if (!cache_config_.layout_cache) return;
  // The master assigned the epoch during register/update; re-read it so
  // the cached entry carries the authoritative layout.
  if (auto meta = master_.peek(id)) layout_cache_.put(id, std::move(*meta));
}

bool SpClient::layout_for_pass(FileId id, std::size_t pass, bool& from_cache,
                               FileMeta& out) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  from_cache = false;
  if (cache_config_.layout_cache && pass == 1) {
    if (layout_cache_.get_into(id, out)) {
      from_cache = true;
      if (probes) probes->layout_hits->add(1);
      if (access_acc_.record(id)) flush_access_reports();
      return true;
    }
    if (probes) probes->layout_misses->add(1);
  }
  auto meta = master_.lookup_for_read(id);
  if (!meta) return false;
  if (cache_config_.layout_cache) layout_cache_.put(id, *meta);
  out = std::move(*meta);
  return true;
}

IoResult SpClient::write_sized(FileId id, std::span<const std::uint8_t> data,
                               const std::vector<std::uint32_t>& servers,
                               const std::vector<Bytes>& piece_sizes) {
  assert(servers.size() == piece_sizes.size());
  // Pieces are views into `data`: each piece's only copy is the fused
  // copy+CRC pass inside put_copy, straight into the server's block.
  std::vector<std::span<const std::uint8_t>> pieces(piece_sizes.size());
  split_sized_views(data, piece_sizes, pieces);
  FileMeta meta;
  meta.size = data.size();
  meta.servers = servers;
  meta.piece_sizes = piece_sizes;
  meta.file_crc = crc32(data);

  pool_.parallel_for(pieces.size(), [&](std::size_t i) {
    cluster_.server(servers[i]).put_copy(BlockKey{id, static_cast<PieceIndex>(i)},
                                         pieces[i]);
  });
  if (master_.peek(id).has_value()) {
    master_.update_file(id, std::move(meta));
  } else {
    master_.register_file(id, std::move(meta));
  }
  cache_own_write(id);
  IoResult result;
  result.network_time = modelled_write_time(cluster_, servers, data.size(), goodput_);
  return result;
}

IoResult SpClient::write(FileId id, std::span<const std::uint8_t> data,
                         const std::vector<std::uint32_t>& servers) {
  assert(!servers.empty());
  std::vector<std::span<const std::uint8_t>> pieces(servers.size());
  split_plain_views(data, servers.size(), pieces);
  FileMeta meta;
  meta.size = data.size();
  meta.servers = servers;
  meta.piece_sizes.reserve(pieces.size());
  for (const auto& p : pieces) meta.piece_sizes.push_back(p.size());
  meta.file_crc = crc32(data);

  pool_.parallel_for(pieces.size(), [&](std::size_t i) {
    cluster_.server(servers[i]).put_copy(BlockKey{id, static_cast<PieceIndex>(i)},
                                         pieces[i]);
  });

  if (master_.peek(id).has_value()) {
    master_.update_file(id, std::move(meta));
  } else {
    master_.register_file(id, std::move(meta));
  }
  cache_own_write(id);

  IoResult result;
  result.network_time = modelled_write_time(cluster_, servers, data.size(), goodput_);
  return result;
}

// One pass of the degraded-read state machine:
//   fetch (per-piece retries) -> failover (stable restore) -> verify.
// A false return means "retry the whole read with a fresh layout": either
// pieces stayed unfetchable with no usable stable copy, or the end-to-end
// CRC failed (racing repartition, injected wire flip) — both heal on a
// later pass once the layout settles or the flip doesn't recur.
bool SpClient::read_pass(FileId id, std::size_t pass, std::uint64_t op,
                         ReadScratch& scratch, std::string& error) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  const FileMeta& meta = scratch.meta;
  IoResult& result = scratch.result;
  const std::size_t k = meta.partitions();
  // Per-pass bookkeeping lives in the scratch arena: no vector allocations
  // on the hot path, and reset() makes the next pass start from a clean
  // bump pointer.
  scratch.arena.reset();
  auto offsets = scratch.arena.make_span<Bytes>(k);
  auto fetched = scratch.arena.make_span<std::uint8_t>(k);
  auto piece_crcs = scratch.arena.make_span<std::uint32_t>(k);
  Bytes total = 0;
  for (std::size_t i = 0; i < k; ++i) {
    offsets[i] = total;
    total += meta.piece_sizes[i];
    fetched[i] = 0;
  }

  // resize, not assign(total, 0): every byte of the live range is written
  // by a piece copy (or the stable-store restore) before the pass can
  // succeed, so pre-zeroing is pure overhead; a warmed buffer reuses its
  // capacity and allocates nothing.
  result.bytes.resize(total);
  // Zero-copy reassembly: each shared block's bytes are copied exactly
  // once, directly into their final offset in the output buffer — through
  // the fused crc32_copy kernel, which also yields the piece's CRC for the
  // O(k·32) whole-file combine below. Fetch outcomes are per-piece; a
  // thread never throws out of the pool.
  std::atomic<std::size_t> refetches{0};
  pool_.parallel_for(k, [&](std::size_t i) {
    const BlockKey key{id, static_cast<PieceIndex>(i)};
    for (std::size_t attempt = 1; attempt <= retry_.piece_attempts; ++attempt) {
      try {
        auto block = cluster_.server(meta.servers[i]).get(key);
        if (block && block->bytes.size() == meta.piece_sizes[i]) {
          piece_crcs[i] = crc32_copy(
              std::span<std::uint8_t>(result.bytes.data() + offsets[i],
                                      meta.piece_sizes[i]),
              block->bytes);
          fetched[i] = 1;
          if (trace) {
            trace->record(obs::TraceKind::kPieceFetch, op, id, meta.servers[i],
                          static_cast<std::uint32_t>(i),
                          static_cast<double>(meta.piece_sizes[i]));
          }
          return;
        }
      } catch (const std::exception&) {
        // Dead server, injected fetch failure, or a block-level checksum
        // trip: all retryable.
      }
      if (attempt < retry_.piece_attempts) {
        refetches.fetch_add(1, std::memory_order_relaxed);
        if (trace) {
          trace->record(obs::TraceKind::kPieceRetry, op, id, meta.servers[i],
                        static_cast<std::uint32_t>(i), static_cast<double>(attempt));
        }
        fault::backoff_sleep(retry_, attempt, fault::retry_token(id, i, pass));
      }
    }
  });
  result.retries += refetches.load(std::memory_order_relaxed);

  auto failed = scratch.arena.make_span<std::size_t>(k);
  std::size_t n_failed = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!fetched[i]) failed[n_failed++] = i;
  }
  failed = failed.first(n_failed);
  std::size_t degraded = 0;
  if (!failed.empty()) {
    // Failover: restore the checkpointed file inline and serve the
    // unfetchable pieces from it (the read completes degraded while the
    // HealthMonitor/RecoveryManager repair catches up in the background).
    bool restored = false;
    if (stable_ != nullptr) {
      const auto bytes = stable_->restore(id);
      if (bytes && bytes->size() == total && crc32(*bytes) == meta.file_crc) {
        for (std::size_t i : failed) {
          std::copy(bytes->begin() + static_cast<std::ptrdiff_t>(offsets[i]),
                    bytes->begin() + static_cast<std::ptrdiff_t>(offsets[i] + meta.piece_sizes[i]),
                    result.bytes.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
          ++degraded;
          if (trace) {
            trace->record(obs::TraceKind::kPieceDegraded, op, id, meta.servers[i],
                          static_cast<std::uint32_t>(i));
          }
        }
        restored = true;
      }
    }
    if (!restored) {
      error = "piece(s) unfetchable and no usable stable copy";
      return false;
    }
  }

  // Whole-file verification. Clean pass: stitch the per-piece CRCs from
  // the fused copies into crc32(result.bytes) via the combiner — O(k·32)
  // xors, the reassembled buffer is never rescanned. Degraded pass: some
  // ranges came from the stable restore (no fused CRC), so fall back to
  // one full pass.
  std::uint32_t whole_crc;
  if (degraded == 0 && k > 0) {
    whole_crc = piece_crcs[0];
    for (std::size_t i = 1; i < k; ++i) {
      whole_crc = scratch.combiner.combine(whole_crc, piece_crcs[i], meta.piece_sizes[i]);
    }
  } else {
    whole_crc = crc32(result.bytes);
  }
  if (whole_crc != meta.file_crc) {
    error = "whole-file checksum mismatch";
    return false;
  }
  result.degraded_pieces += degraded;
  result.degraded = result.degraded_pieces > 0;

  // Parallel fetch: modelled time is the slowest piece at its server's
  // goodput-degraded bandwidth (queueing effects belong to the simulator);
  // a degraded read additionally pays the whole-file restore at the
  // stable store's (slow) recovery bandwidth.
  Seconds slowest = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (!fetched[i]) continue;
    const Bandwidth bw = cluster_.server(meta.servers[i]).bandwidth();
    slowest =
        std::max(slowest, static_cast<double>(meta.piece_sizes[i]) / (bw * goodput_.factor(k)));
  }
  if (degraded > 0 && stable_ != nullptr) {
    slowest = std::max(slowest, static_cast<double>(total) / stable_->bandwidth());
  }
  result.network_time = slowest;
  return true;
}

IoResult SpClient::read(FileId id) {
  // Compatibility wrapper: one-shot scratch. Hot callers (benches, the
  // adversarial scenario readers) hold a ReadScratch per thread and call
  // the allocation-free overload directly.
  ReadScratch scratch;
  return std::move(read(id, scratch));
}

IoResult& SpClient::read(FileId id, ReadScratch& scratch) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  const std::uint64_t op = trace ? trace->begin_op() : 0;
  if (trace) trace->record(obs::TraceKind::kReadStart, op, id);
  const auto start = std::chrono::steady_clock::now();

  IoResult& result = scratch.result;
  result.network_time = 0.0;
  result.compute_time = 0.0;
  result.retries = 0;
  result.degraded_pieces = 0;
  result.degraded = false;
  result.layout_cached = false;
  std::string error = "unknown file";
  for (std::size_t pass = 1; pass <= retry_.read_attempts; ++pass) {
    if (pass > 1) {
      ++result.retries;
      if (trace) {
        trace->record(obs::TraceKind::kReadRepeatPass, op, id, 0, 0,
                      static_cast<double>(pass));
      }
      fault::backoff_sleep(retry_, pass, fault::retry_token(id, 0, pass));
    }
    bool from_cache = false;
    if (!layout_for_pass(id, pass, from_cache, scratch.meta)) {
      if (probes) probes->read_failures->add(1);
      if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
      throw std::runtime_error("SpClient::read: unknown file");
    }
    if (read_pass(id, pass, op, scratch, error)) {
      result.layout_cached = from_cache;
      if (result.degraded && cache_config_.layout_cache) {
        // A degraded success means this layout references pieces that are
        // gone. Drop it so the next read re-LOOKUPs and picks up a
        // repair's re-placement, instead of replaying the stale layout
        // and paying the stable-store failover on every read forever.
        layout_cache_.invalidate(id);
        if (probes) probes->layout_invalidations->add(1);
      }
      if (probes) {
        const double wall = elapsed_seconds(start);
        probes->reads->add(1);
        probes->retries->add(result.retries);
        if (result.degraded) probes->degraded_reads->add(1);
        probes->degraded_pieces->add(result.degraded_pieces);
        probes->read_wall->record(wall);
        probes->read_model->record(result.network_time + result.compute_time);
        probes->arena_high_water->set(
            static_cast<std::int64_t>(scratch.arena.high_water()));
        probes->arena_fallbacks->set(
            static_cast<std::int64_t>(scratch.arena.fallback_allocs()));
        if (trace) trace->record(obs::TraceKind::kReadDone, op, id, 0, 0, wall);
      }
      return result;
    }
    // The pass failed against this layout: drop it from the cache so the
    // next pass (and concurrent readers) re-LOOKUP instead of replaying a
    // stale layout.
    if (cache_config_.layout_cache) {
      layout_cache_.invalidate(id);
      if (probes) probes->layout_invalidations->add(1);
    }
  }
  if (probes) {
    probes->read_failures->add(1);
    probes->retries->add(result.retries);
    if (trace) trace->record(obs::TraceKind::kReadFailed, op, id);
  }
  throw std::runtime_error("SpClient::read: " + error + " after " +
                           std::to_string(retry_.read_attempts) + " attempts");
}

void SpClient::attach_observability(obs::MetricsRegistry* registry,
                                    obs::TraceRecorder* trace) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->reads = &registry->counter(n::kClientReads);
  probes->read_failures = &registry->counter(n::kClientReadFailures);
  probes->retries = &registry->counter(n::kClientRetries);
  probes->degraded_reads = &registry->counter(n::kClientDegradedReads);
  probes->degraded_pieces = &registry->counter(n::kClientDegradedPieces);
  probes->layout_hits = &registry->counter(n::kClientLayoutHits);
  probes->layout_misses = &registry->counter(n::kClientLayoutMisses);
  probes->layout_invalidations = &registry->counter(n::kClientLayoutInvalidations);
  probes->read_wall = &registry->histogram(n::kClientReadLatency);
  probes->read_model = &registry->histogram(n::kClientReadModelled);
  probes->arena_high_water = &registry->gauge(n::kArenaHighWater);
  probes->arena_fallbacks = &registry->gauge(n::kArenaFallbackAllocs);
  probes->trace = trace;
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

EcClient::EcClient(Cluster& cluster, Master& master, ThreadPool& pool, std::size_t k,
                   std::size_t n, GoodputModel goodput)
    : cluster_(cluster), master_(master), pool_(pool), rs_(k, n), goodput_(goodput) {}

IoResult EcClient::write(FileId id, std::span<const std::uint8_t> data,
                         const std::vector<std::uint32_t>& servers) {
  if (servers.size() != rs_.total_shards()) {
    throw std::invalid_argument("EcClient::write: need exactly n servers");
  }
  const auto encode_start = std::chrono::steady_clock::now();
  auto shards = rs_.encode(data);
  const double encode_time = elapsed_seconds(encode_start);
  if (auto* probes = probes_.load(std::memory_order_acquire)) {
    probes->encode_bytes->add(data.size());
    if (encode_time > 0.0) {
      probes->encode_gbps->set(static_cast<std::int64_t>(
          static_cast<double>(data.size()) / encode_time / 1e6));  // x1e3 GB/s
    }
  }

  FileMeta meta;
  meta.size = data.size();
  meta.servers = servers;
  meta.piece_sizes.reserve(shards.size());
  for (const auto& s : shards) meta.piece_sizes.push_back(s.bytes.size());
  meta.file_crc = crc32(data);

  Bytes total = 0;
  for (const auto& s : shards) total += s.bytes.size();
  pool_.parallel_for(shards.size(), [&](std::size_t i) {
    cluster_.server(servers[i]).put(BlockKey{id, static_cast<PieceIndex>(i)},
                                    std::move(shards[i].bytes));
  });

  if (master_.peek(id).has_value()) {
    master_.update_file(id, std::move(meta));
  } else {
    master_.register_file(id, std::move(meta));
  }

  IoResult result;
  result.network_time = modelled_write_time(cluster_, servers, total, goodput_);
  result.compute_time = encode_time;
  return result;
}

IoResult EcClient::read(FileId id, Rng& rng) {
  const auto meta = master_.lookup_for_read(id);
  if (!meta) throw std::runtime_error("EcClient::read: unknown file");
  const std::size_t k = rs_.data_shards();
  const std::size_t n = rs_.total_shards();
  if (meta->partitions() != n) throw std::runtime_error("EcClient::read: layout mismatch");

  // Late binding: sample k+1 distinct shards; decode from the first k of
  // the sample (in the real system, the k fastest to arrive).
  const std::size_t fetch_count = std::min(k + 1, n);
  const auto picks = rng.sample_without_replacement(n, fetch_count);

  // Zero-copy shard access: the fetched BlockRefs stay alive for the whole
  // decode, and the decoder reads the cached bytes through non-owning
  // ShardViews — the old path copied every shard into a working Shard
  // first, which doubled the read's memory traffic.
  std::vector<BlockRef> blocks(fetch_count);
  std::vector<ShardView> views(fetch_count);
  pool_.parallel_for(fetch_count, [&](std::size_t j) {
    const std::size_t piece = picks[j];
    auto block = cluster_.server(meta->servers[piece])
                     .get(BlockKey{id, static_cast<PieceIndex>(piece)});
    if (!block) throw std::runtime_error("EcClient::read: missing shard");
    views[j] = ShardView{piece, block->bytes};
    blocks[j] = std::move(block);
  });

  const auto decode_start = std::chrono::steady_clock::now();
  IoResult result;
  result.bytes.resize(meta->size);
  RsScratch scratch;
  // Decode from the first k of the sample (the k "fastest").
  rs_.decode_into(std::span<const ShardView>(views.data(), k), meta->size, result.bytes,
                  scratch);
  result.compute_time = elapsed_seconds(decode_start);
  if (auto* probes = probes_.load(std::memory_order_acquire)) {
    probes->decode_bytes->add(meta->size);
    if (result.compute_time > 0.0) {
      probes->decode_gbps->set(static_cast<std::int64_t>(
          static_cast<double>(meta->size) / result.compute_time / 1e6));  // x1e3 GB/s
    }
  }
  if (crc32(result.bytes) != meta->file_crc) {
    throw std::runtime_error("EcClient::read: whole-file checksum mismatch");
  }
  Seconds slowest = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const Bandwidth bw = cluster_.server(meta->servers[views[j].index]).bandwidth();
    slowest = std::max(slowest, static_cast<double>(views[j].bytes.size()) /
                                    (bw * goodput_.factor(fetch_count)));
  }
  result.network_time = slowest;
  return result;
}

void EcClient::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<CodecProbes>();
  probes->encode_bytes = &registry->counter(n::kCodecEncodeBytes);
  probes->decode_bytes = &registry->counter(n::kCodecDecodeBytes);
  probes->encode_gbps = &registry->gauge(n::kCodecEncodeGbps);
  probes->decode_gbps = &registry->gauge(n::kCodecDecodeGbps);
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

}  // namespace spcache
