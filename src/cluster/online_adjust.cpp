#include "cluster/online_adjust.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace spcache {

namespace {

std::size_t target_partitions(double alpha, double load, std::size_t n_servers) {
  const double raw = std::ceil(alpha * load);
  return std::clamp<std::size_t>(raw <= 1.0 ? 1 : static_cast<std::size_t>(raw), 1, n_servers);
}

}  // namespace

OnlineAdjustPlan plan_online_adjust(const Catalog& live_catalog, const Master& master,
                                    std::size_t n_servers, const OnlineAdjustConfig& config) {
  if (!(config.alpha > 0.0)) {
    // The default-constructed config has alpha = 0, under which every
    // target_k degenerates to 1 and the plan silently merges the whole
    // cluster down to unpartitioned files. Refuse loudly instead.
    throw std::invalid_argument(
        "plan_online_adjust: config.alpha must be > 0 (supply Algorithm 1's "
        "scale factor; the default 0.0 disables Eq. 1 targeting)");
  }
  OnlineAdjustPlan plan;

  // Current per-server piece counts, for least-loaded split targets.
  std::vector<std::size_t> server_pieces(n_servers, 0);
  const auto ids = master.file_ids();
  for (FileId id : ids) {
    const auto meta = master.peek(id);
    for (std::uint32_t s : meta->servers) ++server_pieces[s];
  }

  for (FileId id : ids) {
    if (id >= live_catalog.size()) continue;
    const auto meta = master.peek(id);
    const std::size_t current_k = meta->partitions();
    const std::size_t target_k =
        target_partitions(config.alpha, live_catalog.load(id), n_servers);

    if (static_cast<double>(target_k) >=
        config.split_factor * static_cast<double>(current_k)) {
      // Grow gradually toward the target: repeatedly halve the largest
      // piece, simulating the evolving piece sizes within this plan.
      std::vector<Bytes> sizes = meta->piece_sizes;
      std::vector<std::uint32_t> holders = meta->servers;
      const std::size_t ops =
          std::min(config.max_ops_per_file, target_k > current_k ? target_k - current_k : 0);
      for (std::size_t op = 0; op < ops && sizes.size() < n_servers; ++op) {
        const auto largest = static_cast<std::size_t>(
            std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
        if (sizes[largest] < 2) break;  // nothing left to halve
        // Least-loaded server not already holding a piece of this file.
        std::size_t best = n_servers;
        std::size_t best_load = std::numeric_limits<std::size_t>::max();
        for (std::size_t s = 0; s < n_servers; ++s) {
          if (std::find(holders.begin(), holders.end(), static_cast<std::uint32_t>(s)) !=
              holders.end()) {
            continue;
          }
          if (server_pieces[s] < best_load) {
            best = s;
            best_load = server_pieces[s];
          }
        }
        if (best == n_servers) break;
        plan.splits.push_back(SplitOp{id, static_cast<PieceIndex>(largest),
                                      static_cast<std::uint32_t>(best)});
        ++server_pieces[best];
        const Bytes half = sizes[largest] / 2;
        sizes.insert(sizes.begin() + static_cast<std::ptrdiff_t>(largest) + 1,
                     sizes[largest] - half);
        sizes[largest] = half;
        holders.insert(holders.begin() + static_cast<std::ptrdiff_t>(largest) + 1,
                       static_cast<std::uint32_t>(best));
      }
    } else if (current_k > 1 &&
               static_cast<double>(target_k) <=
                   config.merge_factor * static_cast<double>(current_k)) {
      // Shrink gradually: merge the last piece into its predecessor.
      const std::size_t ops =
          std::min(config.max_ops_per_file, current_k > target_k ? current_k - target_k : 0);
      std::size_t k = current_k;
      for (std::size_t op = 0; op < ops && k > 1 && k > target_k; ++op) {
        plan.merges.push_back(MergeOp{id, static_cast<PieceIndex>(k - 2)});
        --k;
      }
    }
  }
  return plan;
}

OnlineAdjustStats execute_split(Cluster& cluster, Master& master, const SplitOp& op) {
  // Per-file linearizability: the split's read-modify-write of the layout
  // cannot interleave with a concurrent repartition/merge of the same file.
  const auto guard = master.lock_file(op.file);
  auto meta = master.peek(op.file);
  if (!meta || op.piece >= meta->partitions()) {
    throw std::runtime_error("execute_split: bad file/piece");
  }
  auto& holder = cluster.server(meta->servers[op.piece]);
  auto block = holder.get(BlockKey{op.file, op.piece});
  if (!block) throw std::runtime_error("execute_split: piece missing");

  const Bytes half = block->bytes.size() / 2;
  std::vector<std::uint8_t> first(block->bytes.begin(),
                                  block->bytes.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::uint8_t> second(block->bytes.begin() + static_cast<std::ptrdiff_t>(half),
                                   block->bytes.end());
  const Bytes shipped = second.size();

  // Re-thread indices above the split point, from the top down so renames
  // never collide.
  const auto old_k = static_cast<PieceIndex>(meta->partitions());
  for (PieceIndex i = old_k; i > op.piece + 1; --i) {
    cluster.server(meta->servers[i - 1]).rename(BlockKey{op.file, static_cast<PieceIndex>(i - 1)},
                                                BlockKey{op.file, i});
  }
  // The holder keeps the first half in place; the second half ships to the
  // target server as piece op.piece + 1.
  holder.put(BlockKey{op.file, op.piece}, std::move(first));
  cluster.server(op.target_server)
      .put(BlockKey{op.file, static_cast<PieceIndex>(op.piece + 1)}, std::move(second));

  meta->servers.insert(meta->servers.begin() + op.piece + 1, op.target_server);
  meta->piece_sizes[op.piece] = half;
  meta->piece_sizes.insert(meta->piece_sizes.begin() + op.piece + 1, shipped);
  master.update_file(op.file, *meta);

  OnlineAdjustStats stats;
  stats.splits = 1;
  stats.bytes_moved = shipped;  // only the second half crosses the network
  stats.modelled_time =
      static_cast<double>(stats.bytes_moved) / cluster.server(op.target_server).bandwidth();
  return stats;
}

OnlineAdjustStats execute_merge(Cluster& cluster, Master& master, const MergeOp& op) {
  const auto guard = master.lock_file(op.file);
  auto meta = master.peek(op.file);
  if (!meta || op.piece + 1 >= meta->partitions()) {
    throw std::runtime_error("execute_merge: bad file/piece");
  }
  auto& keeper = cluster.server(meta->servers[op.piece]);
  auto left = keeper.get(BlockKey{op.file, op.piece});
  auto right = cluster.server(meta->servers[op.piece + 1])
                   .get(BlockKey{op.file, static_cast<PieceIndex>(op.piece + 1)});
  if (!left || !right) throw std::runtime_error("execute_merge: piece missing");

  const Bytes moved = right->bytes.size();
  // Shared blocks are immutable: build the combined piece in a fresh
  // buffer rather than appending to the cached one.
  std::vector<std::uint8_t> combined;
  combined.reserve(left->bytes.size() + right->bytes.size());
  combined.insert(combined.end(), left->bytes.begin(), left->bytes.end());
  combined.insert(combined.end(), right->bytes.begin(), right->bytes.end());
  keeper.put(BlockKey{op.file, op.piece}, std::move(combined));
  cluster.server(meta->servers[op.piece + 1])
      .erase(BlockKey{op.file, static_cast<PieceIndex>(op.piece + 1)});

  // Close the index gap from below.
  const auto old_k = static_cast<PieceIndex>(meta->partitions());
  for (PieceIndex i = op.piece + 2; i < old_k; ++i) {
    cluster.server(meta->servers[i]).rename(BlockKey{op.file, i},
                                            BlockKey{op.file, static_cast<PieceIndex>(i - 1)});
  }

  meta->piece_sizes[op.piece] += meta->piece_sizes[op.piece + 1];
  meta->piece_sizes.erase(meta->piece_sizes.begin() + op.piece + 1);
  meta->servers.erase(meta->servers.begin() + op.piece + 1);
  master.update_file(op.file, *meta);

  OnlineAdjustStats stats;
  stats.merges = 1;
  stats.bytes_moved = moved;
  stats.modelled_time = static_cast<double>(moved) / keeper.bandwidth();
  return stats;
}

OnlineAdjustStats execute_online_adjust(Cluster& cluster, Master& master,
                                        const OnlineAdjustPlan& plan) {
  OnlineAdjustStats total;
  auto fold = [&total](const OnlineAdjustStats& s) {
    total.splits += s.splits;
    total.merges += s.merges;
    total.bytes_moved += s.bytes_moved;
    total.modelled_time += s.modelled_time;
  };
  for (const auto& op : plan.splits) fold(execute_split(cluster, master, op));
  for (const auto& op : plan.merges) fold(execute_merge(cluster, master, op));
  return total;
}

}  // namespace spcache
