// In-memory cache servers: the Alluxio-worker stand-in.
//
// Each server owns a thread-safe block store holding real byte buffers,
// checksummed with CRC-32 on ingest and verified on every read — the same
// integrity discipline a networked cache worker applies to partition
// transfers. Network cost is *accounted virtually* (see DESIGN.md): the
// store tracks bytes in/out, and callers convert byte volumes to seconds
// through TransferModel, so experiments measuring hours of simulated
// traffic run in milliseconds while the data path stays real.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/crc32.h"
#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

using PieceIndex = std::uint32_t;

struct BlockKey {
  FileId file = 0;
  PieceIndex piece = 0;

  bool operator==(const BlockKey&) const = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.file) << 32) | k.piece);
  }
};

struct Block {
  std::vector<std::uint8_t> bytes;
  std::uint32_t crc = 0;
};

class CacheServer {
 public:
  CacheServer(std::uint32_t id, Bandwidth bandwidth);

  std::uint32_t id() const { return id_; }
  Bandwidth bandwidth() const { return bandwidth_; }

  // Store a block (checksummed). Overwrites an existing piece.
  void put(BlockKey key, std::vector<std::uint8_t> bytes);

  // Copy a block out, verifying its checksum. nullopt if absent. Throws
  // std::runtime_error on checksum mismatch (corruption).
  std::optional<Block> get(const BlockKey& key) const;

  bool contains(const BlockKey& key) const;
  bool erase(const BlockKey& key);

  // Metadata-only rename of a stored block (no byte movement) — used by the
  // online partition adjuster when piece indices shift after a local
  // split/merge. Returns false if `from` is absent; overwrites `to`.
  bool rename(const BlockKey& from, const BlockKey& to);

  // Drop every block (simulates a server crash for the recovery tests).
  void clear();

  Bytes bytes_stored() const;
  std::size_t blocks_stored() const;

  // Cumulative outbound bytes (load, for Figs. 12/18-style accounting).
  double bytes_served() const;
  void reset_load_counters();

 private:
  std::uint32_t id_;
  Bandwidth bandwidth_;
  mutable std::mutex mu_;
  std::unordered_map<BlockKey, Block, BlockKeyHash> store_;
  Bytes bytes_stored_ = 0;
  mutable double bytes_served_ = 0.0;
};

// A fixed-size fleet of cache servers.
class Cluster {
 public:
  Cluster(std::size_t n_servers, Bandwidth bandwidth);

  std::size_t size() const { return servers_.size(); }
  CacheServer& server(std::size_t i) { return *servers_[i]; }
  const CacheServer& server(std::size_t i) const { return *servers_[i]; }

  std::vector<Bandwidth> bandwidths() const;
  // Per-server cumulative outbound bytes.
  std::vector<double> served_bytes() const;
  // Per-server resident bytes.
  std::vector<double> stored_bytes() const;
  void reset_load_counters();

 private:
  std::vector<std::unique_ptr<CacheServer>> servers_;
};

}  // namespace spcache
