// In-memory cache servers: the Alluxio-worker stand-in.
//
// Each server owns a thread-safe block store holding real byte buffers,
// checksummed with CRC-32 on ingest and verified on every read — the same
// integrity discipline a networked cache worker applies to partition
// transfers. Network cost is *accounted virtually* (see DESIGN.md): the
// store tracks bytes in/out, and callers convert byte volumes to seconds
// through TransferModel, so experiments measuring hours of simulated
// traffic run in milliseconds while the data path stays real.
//
// Concurrency: the store is striped kStripes ways by the SplitMix64 mix
// of the block key (common/hash_mix.h — the same mixer the master uses
// for metadata sharding), so concurrent readers and writers of different
// blocks rarely share a lock. Reads are zero-copy: get() hands back a
// shared_ptr<const Block> to the resident buffer and drops the stripe
// lock before CRC verification, so the lock is held only for the map
// probe, never for byte-sized work. Callers MUST NOT mutate a shared
// block; an overwrite via put() publishes a fresh block while in-flight
// readers keep the old one alive. Load counters are lock-free atomics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/crc32.h"
#include "common/hash_mix.h"
#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache::fault {
class FaultInjector;
}  // namespace spcache::fault

namespace spcache::obs {
class Counter;
class Gauge;
class LatencyHistogram;
class MetricsRegistry;
class TraceRecorder;
}  // namespace spcache::obs

namespace spcache {

using PieceIndex = std::uint32_t;

struct BlockKey {
  FileId file = 0;
  PieceIndex piece = 0;

  bool operator==(const BlockKey&) const = default;

  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(file) << 32) | piece;
  }
};

// SplitMix64-mixed: std::hash<uint64_t> is the identity on libstdc++, so
// hashing the packed key directly would cluster consecutive FileIds into
// the same buckets/stripes.
struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return static_cast<std::size_t>(mix64(k.packed()));
  }
};

struct Block {
  std::vector<std::uint8_t> bytes;
  std::uint32_t crc = 0;
};

// An immutable, shareable reference to a resident block. Readers get the
// actual cached buffer, not a copy; the contract is look-don't-touch.
using BlockRef = std::shared_ptr<const Block>;

class CacheServer {
 public:
  static constexpr std::size_t kStripes = 16;

  CacheServer(std::uint32_t id, Bandwidth bandwidth);

  std::uint32_t id() const { return id_; }
  Bandwidth bandwidth() const { return bandwidth_; }

  // Store a block (checksummed). Overwrites an existing piece; readers
  // already holding the old block keep a consistent snapshot.
  void put(BlockKey key, std::vector<std::uint8_t> bytes);

  // Fused-copy ingest for callers holding a view (RPC payloads, write-path
  // piece slices): copies `bytes` into a fresh block with the CRC computed
  // in the same pass (crc32_copy), instead of copy-then-rescan. Same
  // semantics as put() otherwise.
  void put_copy(BlockKey key, std::span<const std::uint8_t> bytes);

  // Zero-copy read: returns a shared reference to the resident block,
  // verifying its checksum (outside the stripe lock). nullptr if absent.
  // Throws std::runtime_error on checksum mismatch (corruption), on a
  // dead server, or when the fault injector fires a fetch failure. An
  // injected read corruption returns a bit-flipped *copy* (the resident
  // block stays pristine), modelling a post-checksum wire flip that only
  // the client's whole-file CRC can catch.
  BlockRef get(const BlockKey& key) const;

  // get() for serve paths that fuse verification into their outbound copy:
  // identical lookup/liveness/chaos semantics, but the separate CRC scan
  // is skipped — the caller MUST compare its fused copy's CRC against
  // block->crc (crc32_copy makes that free). An injected read corruption
  // hands back a bit-flipped copy whose crc field matches the flipped
  // bytes, so the flip rides through the worker's fused check and only the
  // client's whole-file verification catches it — the same post-checksum
  // wire-flip model get() exposes.
  BlockRef get_for_serve(const BlockKey& key) const;

  // Range read for the delta repartition pipeline: a checksummed copy of
  // `length` bytes of the resident block starting at `offset` (the whole
  // block's CRC is verified outside the stripe lock, like get()). Bytes-
  // served accounting charges only the range, not the whole block. Throws
  // on a dead server, injected fetch failure, absent block, checksum
  // mismatch, or an out-of-range request — migration errors are loud.
  std::vector<std::uint8_t> get_range(const BlockKey& key, Bytes offset, Bytes length) const;

  bool contains(const BlockKey& key) const;
  bool erase(const BlockKey& key);

  // --- Staged piece assembly (delta repartition, two-phase cutover) ----
  // New-layout pieces are assembled out of band in a staging area keyed by
  // (block, layout epoch) while readers keep serving the old layout from
  // the live store. Ranges must arrive in offset order (offset == bytes
  // staged so far); the first range allocates the full piece buffer.
  //
  //   stage_range     append one range of the piece under construction
  //   finalize_staged verify the piece is complete and checksum it —
  //                   called OUTSIDE the cutover critical section so the
  //                   CRC pass never extends the publish window
  //   publish_staged  swap the finalized piece into the live store (an
  //                   O(1) map splice — safe inside the short cutover
  //                   critical section); overwrites any same-key old block
  //   discard_staged  drop a staged piece without publishing (abort path)
  //
  // kill() discards all staged pieces along with the live blocks.
  void stage_range(const BlockKey& key, std::uint64_t epoch, Bytes piece_size, Bytes offset,
                   std::span<const std::uint8_t> bytes);
  // Returns false if nothing is staged under (key, epoch) or the piece is
  // incomplete (the caller aborts the cutover for this file).
  bool finalize_staged(const BlockKey& key, std::uint64_t epoch);
  // Requires a finalize_staged first; throws if the piece was not
  // finalized (publishing an unchecksummed buffer would be a silent bug).
  bool publish_staged(const BlockKey& key, std::uint64_t epoch);
  bool discard_staged(const BlockKey& key, std::uint64_t epoch);
  std::size_t staged_count() const;

  // --- Crash/restart lifecycle (fault-injection substrate) -----------
  // kill() drops every block and marks the server down: subsequent put/get
  // throw, contains() reports false — exactly what a crashed worker looks
  // like to its peers. revive() brings the (empty) server back.
  void kill();
  void revive();
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  // Optional chaos hook consulted on every get(); nullptr disables.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

  // --- Observability (src/obs) ----------------------------------------
  // Resolve this server's metrics ("server.<id>.gets|misses|get_errors|
  // puts|service_s|in_flight") in `registry` once and start recording
  // per-request service time, outcome counts, and in-flight depth.
  // Detached (the default) the hot path pays one relaxed pointer load and
  // a branch — nothing else. Pass nullptr to detach again.
  void attach_observability(obs::MetricsRegistry* registry);

  // Metric handles resolved at attach time so recording is free of any
  // name lookup or registry lock (public for the .cpp's timing scope).
  struct ObsProbes {
    obs::Counter* gets = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* puts = nullptr;
    obs::LatencyHistogram* service = nullptr;
    obs::Gauge* in_flight = nullptr;
  };

  // Metadata-only rename of a stored block (no byte movement) — used by the
  // online partition adjuster when piece indices shift after a local
  // split/merge. Returns false if `from` is absent; overwrites `to`.
  bool rename(const BlockKey& from, const BlockKey& to);

  // Drop every block (simulates a server crash for the recovery tests).
  void clear();

  Bytes bytes_stored() const;
  std::size_t blocks_stored() const;

  // Cumulative outbound bytes (load, for Figs. 12/18-style accounting).
  double bytes_served() const;
  void reset_load_counters();

 private:
  // Cache-line aligned: adjacent stripes' mutexes otherwise share a line,
  // so 16 threads hitting 16 different stripes still bounce the same cache
  // lines (measured as part of the 16-thread scaling sag; see DESIGN.md
  // §"Data plane kernels").
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<BlockKey, BlockRef, BlockKeyHash> blocks;
  };

  Stripe& stripe_for(const BlockKey& key) const {
    return stripes_[shard_of<kStripes>(key.packed())];
  }

  // Shared publish tail of put()/put_copy(): swap the checksummed block
  // into its stripe and settle the stored-bytes accounting.
  void insert_block(const BlockKey& key, std::shared_ptr<Block> block);

  // Shared body of get()/get_for_serve(): probes, liveness, chaos, stripe
  // lookup; `verify` gates the standalone CRC scan.
  BlockRef lookup_block(const BlockKey& key, bool verify) const;

  // (block, epoch) -> piece under construction. Staging is off the read
  // path entirely: one mutex is plenty (a handful of repartitioners, not
  // thousands of readers), and nothing here is visible to get().
  struct StageKey {
    BlockKey key;
    std::uint64_t epoch = 0;
    bool operator==(const StageKey&) const = default;
  };
  struct StageKeyHash {
    std::size_t operator()(const StageKey& k) const {
      return static_cast<std::size_t>(mix64(k.key.packed() ^ mix64(k.epoch)));
    }
  };
  struct StagedPiece {
    std::shared_ptr<Block> block;  // bytes sized up front; crc set at finalize
    Bytes filled = 0;
    // Running CRC accumulated range-by-range as bytes are staged (fused
    // with the copy). The in-order assembly contract makes the incremental
    // state exactly the whole-piece CRC, so finalize_staged is O(1).
    std::uint32_t crc_state = 0xFFFFFFFFu;
    bool finalized = false;
  };

  std::uint32_t id_;
  Bandwidth bandwidth_;
  mutable std::array<Stripe, kStripes> stripes_;
  mutable std::mutex stage_mu_;
  std::unordered_map<StageKey, StagedPiece, StageKeyHash> staged_;
  // Write-hot atomics each get their own cache line: bytes_served_ is
  // bumped by every concurrent reader and must not share a line with
  // bytes_stored_ (writers) or the read-mostly flags below it.
  alignas(64) std::atomic<Bytes> bytes_stored_{0};
  alignas(64) mutable std::atomic<std::uint64_t> bytes_served_{0};
  alignas(64) std::atomic<bool> alive_{true};
  std::atomic<fault::FaultInjector*> injector_{nullptr};
  std::unique_ptr<ObsProbes> probes_storage_;
  mutable std::atomic<ObsProbes*> probes_{nullptr};
};

// A fixed-size fleet of cache servers.
class Cluster {
 public:
  Cluster(std::size_t n_servers, Bandwidth bandwidth);

  std::size_t size() const { return servers_.size(); }
  CacheServer& server(std::size_t i) { return *servers_[i]; }
  const CacheServer& server(std::size_t i) const { return *servers_[i]; }

  // Crash/restart lifecycle, used by the fault-injection substrate and
  // the HealthMonitor's kill/revive chaos drivers.
  void kill(std::size_t i) { servers_[i]->kill(); }
  void revive(std::size_t i) { servers_[i]->revive(); }
  bool is_alive(std::size_t i) const { return servers_[i]->alive(); }
  std::size_t alive_count() const;

  // Install (or clear, with nullptr) the chaos hook on every server.
  void set_fault_injector(fault::FaultInjector* injector);

  // Attach (or detach, with nullptr) per-server metrics on every server.
  void attach_observability(obs::MetricsRegistry* registry);

  std::vector<Bandwidth> bandwidths() const;
  // Per-server cumulative outbound bytes.
  std::vector<double> served_bytes() const;
  // Per-server resident bytes.
  std::vector<double> stored_bytes() const;
  void reset_load_counters();

 private:
  std::vector<std::unique_ptr<CacheServer>> servers_;
};

}  // namespace spcache
