#include "cluster/stable_store.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/log.h"
#include "erasure/rs_code.h"
#include "obs/metrics.h"

namespace spcache {

StableStore::StableStore(Bandwidth bandwidth) : bandwidth_(bandwidth) {
  assert(bandwidth > 0.0);
}

void StableStore::checkpoint(FileId id, std::span<const std::uint8_t> bytes) {
  Block block;
  block.bytes.assign(bytes.begin(), bytes.end());
  block.crc = crc32(block.bytes);
  std::lock_guard lock(mu_);
  files_[id] = std::move(block);
}

bool StableStore::contains(FileId id) const {
  std::lock_guard lock(mu_);
  return files_.count(id) > 0;
}

std::optional<std::vector<std::uint8_t>> StableStore::restore(FileId id) const {
  Block copy;
  {
    std::lock_guard lock(mu_);
    const auto it = files_.find(id);
    if (it == files_.end()) return std::nullopt;
    copy = it->second;
  }
  if (crc32(copy.bytes) != copy.crc) {
    throw std::runtime_error("StableStore::restore: corrupted stable copy");
  }
  return copy.bytes;
}

std::size_t StableStore::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

Bytes StableStore::bytes_stored() const {
  std::lock_guard lock(mu_);
  Bytes total = 0;
  for (const auto& [id, block] : files_) total += block.bytes.size();
  return total;
}

RecoveryManager::RecoveryManager(Cluster& cluster, Master& master, StableStore& stable)
    : cluster_(cluster), master_(master), stable_(stable) {}

RecoveryStats RecoveryManager::repair_file(FileId id) {
  // Serialize against concurrent layout mutations (repartition, online
  // split/merge) of the same file while pieces are re-created.
  const auto guard = master_.lock_file(id);
  if (!guard) throw std::runtime_error("repair_file: unknown file");
  const auto stats = repair_pieces(id);
  record_repair(stats);
  return stats;
}

void RecoveryManager::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->pieces = &registry->counter(n::kRecoveryPieces);
  probes->bytes = &registry->counter(n::kRecoveryBytes);
  probes->repair_time = &registry->histogram(n::kRecoveryRepairTime);
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

void RecoveryManager::record_repair(const RecoveryStats& stats) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  if (probes == nullptr) return;
  probes->pieces->add(stats.pieces_recovered);
  probes->bytes->add(stats.bytes_restored);
  if (stats.pieces_recovered > 0) probes->repair_time->record(stats.modelled_time);
}

namespace {

// Byte range of piece i under the layout's (possibly heterogeneous —
// write_sized) piece sizes. The write path stores contiguous slices, so
// slicing the restored file by the recorded sizes reproduces each piece
// exactly, replication of split_plain's rounding included.
std::vector<std::uint8_t> piece_slice(const std::vector<std::uint8_t>& bytes,
                                      const std::vector<Bytes>& piece_sizes, std::size_t i) {
  Bytes offset = 0;
  for (std::size_t j = 0; j < i; ++j) offset += piece_sizes[j];
  const auto begin = bytes.begin() + static_cast<std::ptrdiff_t>(offset);
  return std::vector<std::uint8_t>(begin, begin + static_cast<std::ptrdiff_t>(piece_sizes[i]));
}

}  // namespace

RecoveryStats RecoveryManager::repair_pieces(FileId id) {
  RecoveryStats stats;
  const auto meta = master_.peek(id);
  if (!meta) throw std::runtime_error("repair_file: unknown file");

  // Which pieces are gone? A piece whose server is down cannot be
  // re-placed in place — that is a server-loss repair, not a piece repair.
  std::vector<std::size_t> missing;
  bool on_dead_server = false;
  for (std::size_t i = 0; i < meta->partitions(); ++i) {
    if (!cluster_.server(meta->servers[i]).alive()) {
      on_dead_server = true;
      continue;
    }
    if (!cluster_.server(meta->servers[i]).contains(BlockKey{id, static_cast<PieceIndex>(i)})) {
      missing.push_back(i);
    }
  }
  if (on_dead_server) {
    SPCACHE_LOG(kWarn) << "repair_file: file " << id
                       << " has piece(s) on a dead server; run repair_after_server_loss";
    ++stats.files_skipped;
  }
  if (missing.empty()) return stats;

  const auto bytes = stable_.restore(id);
  if (!bytes) throw std::runtime_error("repair_file: file was never checkpointed");
  if (crc32(*bytes) != meta->file_crc) {
    throw std::runtime_error("repair_file: stable copy does not match the cached file");
  }

  // Re-slice exactly as the write path stored and re-place the lost pieces.
  Bytes rewritten = 0;
  for (std::size_t i : missing) {
    auto piece = piece_slice(*bytes, meta->piece_sizes, i);
    rewritten += piece.size();
    cluster_.server(meta->servers[i]).put(BlockKey{id, static_cast<PieceIndex>(i)},
                                          std::move(piece));
    ++stats.pieces_recovered;
  }
  stats.bytes_restored = bytes->size();
  // Restore pulls the whole file from stable storage; re-placing the lost
  // pieces rides the (fast) cluster network.
  stats.modelled_time = static_cast<double>(stats.bytes_restored) / stable_.bandwidth() +
                        static_cast<double>(rewritten) / cluster_.server(0).bandwidth();
  SPCACHE_LOG(kInfo) << "recovered " << stats.pieces_recovered << " piece(s) of file " << id
                     << " from stable storage (" << stats.bytes_restored / kKB << " kB)";
  return stats;
}

RecoveryStats RecoveryManager::repair_after_server_loss(std::uint32_t failed_server) {
  SPCACHE_LOG(kWarn) << "repairing after loss of server " << failed_server;
  RecoveryStats total;
  // Current per-server piece counts (for least-loaded re-placement). The
  // scan is advisory — layouts move underneath it — but each file's actual
  // mutation happens under its guard below, so a stale count only costs
  // balance, never correctness.
  std::vector<std::size_t> load(cluster_.size(), 0);
  const auto ids = master_.file_ids();
  for (FileId id : ids) {
    const auto meta = master_.peek(id);
    if (!meta) continue;
    for (std::uint32_t s : meta->servers) ++load[s];
  }

  for (FileId id : ids) {
    const auto guard = master_.lock_file(id);
    if (!guard) continue;  // removed since the scan
    auto meta = master_.peek(id);
    if (!meta) continue;

    // Slots still on the failed server. None ⇒ already repaired (by an
    // earlier or concurrent run) — idempotent skip.
    std::vector<std::size_t> slots;
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      if (meta->servers[i] == failed_server) slots.push_back(i);
    }
    if (slots.empty()) continue;

    const auto bytes = stable_.restore(id);
    if (!bytes || bytes->size() != meta->size || crc32(*bytes) != meta->file_crc) {
      SPCACHE_LOG(kWarn) << "repair_after_server_loss: no usable stable copy of file " << id
                         << " — skipped";
      ++total.files_skipped;
      continue;
    }

    // Choose the least-loaded live replacement for each lost slot.
    bool placed = true;
    auto new_meta = *meta;
    for (std::size_t i : slots) {
      std::size_t best = cluster_.size();
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < cluster_.size(); ++s) {
        if (s == failed_server || !cluster_.is_alive(s)) continue;
        if (std::find(new_meta.servers.begin(), new_meta.servers.end(),
                      static_cast<std::uint32_t>(s)) != new_meta.servers.end()) {
          continue;
        }
        if (load[s] < best_load) {
          best = s;
          best_load = load[s];
        }
      }
      if (best == cluster_.size()) {
        placed = false;
        break;
      }
      if (load[failed_server] > 0) --load[failed_server];
      ++load[best];
      new_meta.servers[i] = static_cast<std::uint32_t>(best);
    }
    if (!placed) {
      SPCACHE_LOG(kWarn) << "repair_after_server_loss: no live replacement server for file " << id
                         << " — skipped";
      ++total.files_skipped;
      continue;
    }

    // Write the replacement pieces first, publish the layout second:
    // readers holding the new layout always find the bytes; readers
    // holding the old one fail, retry, and pick up the new layout.
    Bytes rewritten = 0;
    for (std::size_t i : slots) {
      auto piece = piece_slice(*bytes, new_meta.piece_sizes, i);
      rewritten += piece.size();
      cluster_.server(new_meta.servers[i])
          .put(BlockKey{id, static_cast<PieceIndex>(i)}, std::move(piece));
      ++total.pieces_recovered;
    }
    master_.update_file(id, new_meta);
    total.bytes_restored += bytes->size();
    // Repartitioned files recover in parallel in a real deployment; we
    // report the aggregate serial time as a conservative upper bound.
    total.modelled_time += static_cast<double>(bytes->size()) / stable_.bandwidth() +
                           static_cast<double>(rewritten) / cluster_.server(0).bandwidth();
  }
  record_repair(total);
  return total;
}

}  // namespace spcache
