#include "cluster/stable_store.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "common/log.h"
#include "erasure/rs_code.h"

namespace spcache {

StableStore::StableStore(Bandwidth bandwidth) : bandwidth_(bandwidth) {
  assert(bandwidth > 0.0);
}

void StableStore::checkpoint(FileId id, std::span<const std::uint8_t> bytes) {
  Block block;
  block.bytes.assign(bytes.begin(), bytes.end());
  block.crc = crc32(block.bytes);
  std::lock_guard lock(mu_);
  files_[id] = std::move(block);
}

bool StableStore::contains(FileId id) const {
  std::lock_guard lock(mu_);
  return files_.count(id) > 0;
}

std::optional<std::vector<std::uint8_t>> StableStore::restore(FileId id) const {
  Block copy;
  {
    std::lock_guard lock(mu_);
    const auto it = files_.find(id);
    if (it == files_.end()) return std::nullopt;
    copy = it->second;
  }
  if (crc32(copy.bytes) != copy.crc) {
    throw std::runtime_error("StableStore::restore: corrupted stable copy");
  }
  return copy.bytes;
}

std::size_t StableStore::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

Bytes StableStore::bytes_stored() const {
  std::lock_guard lock(mu_);
  Bytes total = 0;
  for (const auto& [id, block] : files_) total += block.bytes.size();
  return total;
}

RecoveryManager::RecoveryManager(Cluster& cluster, Master& master, StableStore& stable)
    : cluster_(cluster), master_(master), stable_(stable) {}

RecoveryStats RecoveryManager::repair_file(FileId id) {
  // Serialize against concurrent layout mutations (repartition, online
  // split/merge) of the same file while pieces are re-created.
  const auto guard = master_.lock_file(id);
  if (!guard) throw std::runtime_error("repair_file: unknown file");
  return repair_pieces(id);
}

RecoveryStats RecoveryManager::repair_pieces(FileId id) {
  RecoveryStats stats;
  const auto meta = master_.peek(id);
  if (!meta) throw std::runtime_error("repair_file: unknown file");

  // Which pieces are gone?
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < meta->partitions(); ++i) {
    if (!cluster_.server(meta->servers[i]).contains(BlockKey{id, static_cast<PieceIndex>(i)})) {
      missing.push_back(i);
    }
  }
  if (missing.empty()) return stats;

  const auto bytes = stable_.restore(id);
  if (!bytes) throw std::runtime_error("repair_file: file was never checkpointed");
  if (crc32(*bytes) != meta->file_crc) {
    throw std::runtime_error("repair_file: stable copy does not match the cached file");
  }

  // Re-split exactly as the write path did and re-place the lost pieces.
  const auto pieces = split_plain(*bytes, meta->partitions());
  Bytes rewritten = 0;
  for (std::size_t i : missing) {
    cluster_.server(meta->servers[i]).put(BlockKey{id, static_cast<PieceIndex>(i)}, pieces[i]);
    rewritten += pieces[i].size();
    ++stats.pieces_recovered;
  }
  stats.bytes_restored = bytes->size();
  // Restore pulls the whole file from stable storage; re-placing the lost
  // pieces rides the (fast) cluster network.
  stats.modelled_time = static_cast<double>(stats.bytes_restored) / stable_.bandwidth() +
                        static_cast<double>(rewritten) / cluster_.server(0).bandwidth();
  SPCACHE_LOG(kInfo) << "recovered " << stats.pieces_recovered << " piece(s) of file " << id
                     << " from stable storage (" << stats.bytes_restored / kKB << " kB)";
  return stats;
}

RecoveryStats RecoveryManager::repair_after_server_loss(std::uint32_t failed_server) {
  SPCACHE_LOG(kWarn) << "repairing after loss of server " << failed_server;
  RecoveryStats total;
  // Current per-server piece counts (for least-loaded re-placement).
  std::vector<std::size_t> load(cluster_.size(), 0);
  const auto ids = master_.file_ids();
  for (FileId id : ids) {
    const auto meta = master_.peek(id);
    for (std::uint32_t s : meta->servers) ++load[s];
  }

  for (FileId id : ids) {
    const auto guard = master_.lock_file(id);
    if (!guard) continue;
    auto meta = master_.peek(id);
    bool touched = false;
    for (std::size_t i = 0; i < meta->partitions(); ++i) {
      if (meta->servers[i] != failed_server) continue;
      // Move the slot to the least-loaded live server not already holding a
      // piece of this file.
      std::size_t best = cluster_.size();
      std::size_t best_load = std::numeric_limits<std::size_t>::max();
      for (std::size_t s = 0; s < cluster_.size(); ++s) {
        if (s == failed_server) continue;
        if (std::find(meta->servers.begin(), meta->servers.end(),
                      static_cast<std::uint32_t>(s)) != meta->servers.end()) {
          continue;
        }
        if (load[s] < best_load) {
          best = s;
          best_load = load[s];
        }
      }
      if (best == cluster_.size()) {
        throw std::runtime_error("repair_after_server_loss: no replacement server available");
      }
      --load[failed_server];
      ++load[best];
      meta->servers[i] = static_cast<std::uint32_t>(best);
      touched = true;
    }
    if (touched) {
      master_.update_file(id, *meta);
      const auto stats = repair_pieces(id);  // guard already held
      total.pieces_recovered += stats.pieces_recovered;
      total.bytes_restored += stats.bytes_restored;
      // Repartitioned files recover in parallel in a real deployment; we
      // report the aggregate serial time as a conservative upper bound.
      total.modelled_time += stats.modelled_time;
    }
  }
  return total;
}

}  // namespace spcache
