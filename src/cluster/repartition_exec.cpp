#include "cluster/repartition_exec.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include <chrono>

#include "common/log.h"
#include "erasure/rs_code.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache {

namespace {

// Brackets one repartition epoch with the kRepartitionStart/Done event
// pair and the master-side epoch metrics. Wall time, not modelled time:
// the histogram answers "how long was the metadata/data path busy".
class RepartitionScope {
 public:
  RepartitionScope(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                   std::size_t files_planned)
      : registry_(registry), trace_(trace) {
    if (trace_) {
      op_ = trace_->begin_op();
      trace_->record(obs::TraceKind::kRepartitionStart, op_, 0, 0, 0,
                     static_cast<double>(files_planned));
    }
    if (registry_ || trace_) start_ = std::chrono::steady_clock::now();
  }

  void finish(const RepartitionStats& stats) {
    if (registry_ == nullptr && trace_ == nullptr) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (registry_) {
      registry_->counter(obs::names::kMasterRepartitions).add(1);
      registry_->histogram(obs::names::kMasterRepartitionLatency).record(wall);
    }
    if (trace_) {
      trace_->record(obs::TraceKind::kRepartitionDone, op_, 0, 0, 0, stats.modelled_time);
    }
  }

 private:
  obs::MetricsRegistry* registry_;
  obs::TraceRecorder* trace_;
  std::uint64_t op_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

// Fetch all pieces of a file and reassemble. Returns the raw bytes and the
// number of remote bytes pulled (pieces on `local_server` are free;
// pass a sentinel >= cluster size to count everything as remote).
// Zero-copy fetch: each shared block is copied exactly once, into its
// final offset of the reassembled file.
std::vector<std::uint8_t> assemble_file(Cluster& cluster, const FileMeta& meta, FileId id,
                                        std::uint32_t local_server, Bytes* remote_bytes) {
  std::vector<std::uint8_t> out(meta.size);
  Bytes offset = 0;
  for (std::size_t i = 0; i < meta.partitions(); ++i) {
    auto block = cluster.server(meta.servers[i]).get(BlockKey{id, static_cast<PieceIndex>(i)});
    if (!block) throw std::runtime_error("repartition: missing piece during assembly");
    if (offset + block->bytes.size() > out.size()) {
      throw std::runtime_error("repartition: pieces exceed recorded file size");
    }
    if (meta.servers[i] != local_server) *remote_bytes += block->bytes.size();
    std::copy(block->bytes.begin(), block->bytes.end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += block->bytes.size();
  }
  if (offset != out.size()) {
    throw std::runtime_error("repartition: pieces shorter than recorded file size");
  }
  return out;
}

// Remove the old layout's blocks.
void erase_old_pieces(Cluster& cluster, const FileMeta& meta, FileId id) {
  for (std::size_t i = 0; i < meta.partitions(); ++i) {
    cluster.server(meta.servers[i]).erase(BlockKey{id, static_cast<PieceIndex>(i)});
  }
}

// Split `data` into `servers.size()` pieces and store them; returns the
// new meta and accumulates remote write bytes (writes to `local_server`
// are free).
FileMeta scatter_file(Cluster& cluster, FileId id, const std::vector<std::uint8_t>& data,
                      const std::vector<std::uint32_t>& servers, std::uint32_t local_server,
                      std::uint32_t file_crc, Bytes* remote_bytes) {
  auto pieces = split_plain(data, servers.size());
  FileMeta meta;
  meta.size = data.size();
  meta.servers = servers;
  meta.file_crc = file_crc;
  meta.piece_sizes.reserve(pieces.size());
  for (const auto& p : pieces) meta.piece_sizes.push_back(p.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (servers[i] != local_server) *remote_bytes += pieces[i].size();
    cluster.server(servers[i]).put(BlockKey{id, static_cast<PieceIndex>(i)},
                                   std::move(pieces[i]));
  }
  return meta;
}

constexpr std::uint32_t kNoLocalServer = 0xFFFFFFFFu;

}  // namespace

RepartitionStats execute_sequential_repartition(Cluster& cluster, Master& master,
                                                const RepartitionPlan& plan,
                                                Bandwidth master_bandwidth, Rng& rng,
                                                obs::MetricsRegistry* registry,
                                                obs::TraceRecorder* trace) {
  assert(master_bandwidth > 0.0);
  RepartitionScope scope(registry, trace, plan.new_k.size());
  RepartitionStats stats;
  const auto ids = master.file_ids();
  assert(ids.size() == plan.new_k.size());
  for (FileId id : ids) {
    // Per-file guard: the read-modify-write below is linearizable against
    // any concurrent layout mutation of the same file.
    const auto guard = master.lock_file(id);
    if (!guard) continue;
    const auto meta = master.peek(id);
    if (!meta) continue;
    // The master pulls every piece over its own NIC and pushes every new
    // piece back out — nothing is local to the master.
    Bytes moved = 0;
    const auto data = assemble_file(cluster, *meta, id, kNoLocalServer, &moved);
    erase_old_pieces(cluster, *meta, id);
    const std::size_t k = plan.new_k[id];
    const auto picks = rng.sample_without_replacement(cluster.size(), k);
    std::vector<std::uint32_t> servers;
    servers.reserve(k);
    for (std::size_t s : picks) servers.push_back(static_cast<std::uint32_t>(s));
    auto new_meta =
        scatter_file(cluster, id, data, servers, kNoLocalServer, meta->file_crc, &moved);
    master.update_file(id, std::move(new_meta));
    stats.bytes_moved += moved;
    ++stats.files_touched;
  }
  stats.modelled_time = static_cast<double>(stats.bytes_moved) / master_bandwidth;
  scope.finish(stats);
  SPCACHE_LOG(kInfo) << "sequential repartition: " << stats.files_touched << " files, "
                     << stats.bytes_moved / kMB << " MB via master, modelled "
                     << stats.modelled_time << " s";
  return stats;
}

RepartitionStats execute_parallel_repartition(Cluster& cluster, Master& master,
                                              const RepartitionPlan& plan, ThreadPool& pool,
                                              obs::MetricsRegistry* registry,
                                              obs::TraceRecorder* trace) {
  RepartitionScope scope(registry, trace, plan.changed_files.size());
  RepartitionStats stats;
  const std::size_t n_changed = plan.changed_files.size();
  stats.files_touched = n_changed;
  if (n_changed == 0) {
    scope.finish(stats);
    return stats;
  }

  // Group the changed files by executing repartitioner so per-executor
  // traffic can be accumulated (the fleet finishes when the busiest
  // repartitioner does).
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_executor;
  for (std::size_t j = 0; j < n_changed; ++j) by_executor[plan.executor[j]].push_back(j);

  std::mutex stats_mu;
  Seconds max_executor_time = 0.0;
  Bytes total_moved = 0;

  std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> groups(by_executor.begin(),
                                                                         by_executor.end());
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    const std::uint32_t executor = groups[g].first;
    const Bandwidth bw = cluster.server(executor).bandwidth();
    Bytes moved = 0;
    for (std::size_t j : groups[g].second) {
      const FileId id = plan.changed_files[j];
      // Algorithm 2's read-modify-write stays linearizable per file under
      // the sharded master: the guard serializes this repartitioner against
      // any concurrent layout mutation of the same file, while other files
      // proceed in parallel.
      const auto guard = master.lock_file(id);
      if (!guard) throw std::runtime_error("parallel repartition: file vanished");
      const auto meta = master.peek(id);
      if (!meta) throw std::runtime_error("parallel repartition: file vanished");
      const auto data = assemble_file(cluster, *meta, id, executor, &moved);
      erase_old_pieces(cluster, *meta, id);
      auto new_meta = scatter_file(cluster, id, data, plan.new_servers[j], executor,
                                   meta->file_crc, &moved);
      master.update_file(id, std::move(new_meta));
    }
    const Seconds t = static_cast<double>(moved) / bw;
    std::lock_guard lock(stats_mu);
    max_executor_time = std::max(max_executor_time, t);
    total_moved += moved;
  });

  stats.modelled_time = max_executor_time;
  stats.bytes_moved = total_moved;
  scope.finish(stats);
  SPCACHE_LOG(kInfo) << "parallel repartition: " << stats.files_touched << " files across "
                     << by_executor.size() << " executors, " << stats.bytes_moved / kMB
                     << " MB moved, modelled " << stats.modelled_time << " s";
  return stats;
}

}  // namespace spcache
