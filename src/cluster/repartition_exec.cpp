#include "cluster/repartition_exec.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>
#include <span>
#include <stdexcept>
#include <unordered_map>

#include <chrono>

#include "common/log.h"
#include "erasure/rs_code.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache {

namespace {

// Brackets one repartition epoch with the kRepartitionStart/Done event
// pair and the master-side epoch metrics. Wall time, not modelled time:
// the histogram answers "how long was the metadata/data path busy".
class RepartitionScope {
 public:
  RepartitionScope(obs::MetricsRegistry* registry, obs::TraceRecorder* trace,
                   std::size_t files_planned)
      : registry_(registry), trace_(trace) {
    if (trace_) {
      op_ = trace_->begin_op();
      trace_->record(obs::TraceKind::kRepartitionStart, op_, 0, 0, 0,
                     static_cast<double>(files_planned));
    }
    if (registry_ || trace_) start_ = std::chrono::steady_clock::now();
  }

  void finish(const RepartitionStats& stats) {
    if (registry_ == nullptr && trace_ == nullptr) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    if (registry_) {
      registry_->counter(obs::names::kMasterRepartitions).add(1);
      registry_->histogram(obs::names::kMasterRepartitionLatency).record(wall);
    }
    if (trace_) {
      trace_->record(obs::TraceKind::kRepartitionDone, op_, 0, 0, 0, stats.modelled_time);
    }
  }

 private:
  obs::MetricsRegistry* registry_;
  obs::TraceRecorder* trace_;
  std::uint64_t op_ = 0;
  std::chrono::steady_clock::time_point start_{};
};

// Fetch all pieces of a file and reassemble. Returns the raw bytes and the
// number of remote bytes pulled (pieces on `local_server` are free;
// pass a sentinel >= cluster size to count everything as remote).
// Zero-copy fetch: each shared block is copied exactly once, into its
// final offset of the reassembled file.
std::vector<std::uint8_t> assemble_file(Cluster& cluster, const FileMeta& meta, FileId id,
                                        std::uint32_t local_server, Bytes* remote_bytes) {
  std::vector<std::uint8_t> out(meta.size);
  Bytes offset = 0;
  for (std::size_t i = 0; i < meta.partitions(); ++i) {
    auto block = cluster.server(meta.servers[i]).get(BlockKey{id, static_cast<PieceIndex>(i)});
    if (!block) throw std::runtime_error("repartition: missing piece during assembly");
    if (offset + block->bytes.size() > out.size()) {
      throw std::runtime_error("repartition: pieces exceed recorded file size");
    }
    if (meta.servers[i] != local_server) *remote_bytes += block->bytes.size();
    std::copy(block->bytes.begin(), block->bytes.end(),
              out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += block->bytes.size();
  }
  if (offset != out.size()) {
    throw std::runtime_error("repartition: pieces shorter than recorded file size");
  }
  return out;
}

// Remove the old layout's blocks.
void erase_old_pieces(Cluster& cluster, const FileMeta& meta, FileId id) {
  for (std::size_t i = 0; i < meta.partitions(); ++i) {
    cluster.server(meta.servers[i]).erase(BlockKey{id, static_cast<PieceIndex>(i)});
  }
}

// Split `data` into `servers.size()` pieces and store them; returns the
// new meta and accumulates remote write bytes (writes to `local_server`
// are free).
FileMeta scatter_file(Cluster& cluster, FileId id, const std::vector<std::uint8_t>& data,
                      const std::vector<std::uint32_t>& servers, std::uint32_t local_server,
                      std::uint32_t file_crc, Bytes* remote_bytes) {
  auto pieces = split_plain(data, servers.size());
  FileMeta meta;
  meta.size = data.size();
  meta.servers = servers;
  meta.file_crc = file_crc;
  meta.piece_sizes.reserve(pieces.size());
  for (const auto& p : pieces) meta.piece_sizes.push_back(p.size());
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (servers[i] != local_server) *remote_bytes += pieces[i].size();
    cluster.server(servers[i]).put(BlockKey{id, static_cast<PieceIndex>(i)},
                                   std::move(pieces[i]));
  }
  return meta;
}

constexpr std::uint32_t kNoLocalServer = 0xFFFFFFFFu;

// Range fetch with a small retry budget: a transient injected fault should
// not abort a whole file's migration. Persistent failures still throw —
// the caller discards the staged pieces and leaves the old layout serving.
std::vector<std::uint8_t> fetch_range_with_retry(CacheServer& src, const BlockKey& key,
                                                 Bytes offset, Bytes length) {
  constexpr int kAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    try {
      return src.get_range(key, offset, length);
    } catch (const std::exception&) {
      if (attempt >= kAttempts) throw;
    }
  }
}

}  // namespace

RepartitionStats execute_sequential_repartition(Cluster& cluster, Master& master,
                                                const RepartitionPlan& plan,
                                                Bandwidth master_bandwidth, Rng& rng,
                                                obs::MetricsRegistry* registry,
                                                obs::TraceRecorder* trace) {
  assert(master_bandwidth > 0.0);
  RepartitionScope scope(registry, trace, plan.new_k.size());
  RepartitionStats stats;
  const auto ids = master.file_ids();
  assert(ids.size() == plan.new_k.size());
  for (FileId id : ids) {
    // Per-file guard: the read-modify-write below is linearizable against
    // any concurrent layout mutation of the same file.
    const auto guard = master.lock_file(id);
    if (!guard) continue;
    const auto meta = master.peek(id);
    if (!meta) continue;
    // The master pulls every piece over its own NIC and pushes every new
    // piece back out — nothing is local to the master.
    Bytes moved = 0;
    const auto data = assemble_file(cluster, *meta, id, kNoLocalServer, &moved);
    erase_old_pieces(cluster, *meta, id);
    const std::size_t k = plan.new_k[id];
    const auto picks = rng.sample_without_replacement(cluster.size(), k);
    std::vector<std::uint32_t> servers;
    servers.reserve(k);
    for (std::size_t s : picks) servers.push_back(static_cast<std::uint32_t>(s));
    auto new_meta =
        scatter_file(cluster, id, data, servers, kNoLocalServer, meta->file_crc, &moved);
    master.update_file(id, std::move(new_meta));
    stats.bytes_moved += moved;
    ++stats.files_touched;
  }
  stats.modelled_time = static_cast<double>(stats.bytes_moved) / master_bandwidth;
  scope.finish(stats);
  SPCACHE_LOG(kInfo) << "sequential repartition: " << stats.files_touched << " files, "
                     << stats.bytes_moved / kMB << " MB via master, modelled "
                     << stats.modelled_time << " s";
  return stats;
}

RepartitionStats execute_parallel_repartition(Cluster& cluster, Master& master,
                                              const RepartitionPlan& plan, ThreadPool& pool,
                                              obs::MetricsRegistry* registry,
                                              obs::TraceRecorder* trace) {
  RepartitionScope scope(registry, trace, plan.changed_files.size());
  RepartitionStats stats;
  const std::size_t n_changed = plan.changed_files.size();
  stats.files_touched = n_changed;
  if (n_changed == 0) {
    scope.finish(stats);
    return stats;
  }

  // Group the changed files by executing repartitioner so per-executor
  // traffic can be accumulated (the fleet finishes when the busiest
  // repartitioner does).
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_executor;
  for (std::size_t j = 0; j < n_changed; ++j) by_executor[plan.executor[j]].push_back(j);

  std::mutex stats_mu;
  Seconds max_executor_time = 0.0;
  Bytes total_moved = 0;

  std::vector<std::pair<std::uint32_t, std::vector<std::size_t>>> groups(by_executor.begin(),
                                                                         by_executor.end());
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    const std::uint32_t executor = groups[g].first;
    const Bandwidth bw = cluster.server(executor).bandwidth();
    Bytes moved = 0;
    for (std::size_t j : groups[g].second) {
      const FileId id = plan.changed_files[j];
      // Algorithm 2's read-modify-write stays linearizable per file under
      // the sharded master: the guard serializes this repartitioner against
      // any concurrent layout mutation of the same file, while other files
      // proceed in parallel.
      const auto guard = master.lock_file(id);
      if (!guard) throw std::runtime_error("parallel repartition: file vanished");
      const auto meta = master.peek(id);
      if (!meta) throw std::runtime_error("parallel repartition: file vanished");
      const auto data = assemble_file(cluster, *meta, id, executor, &moved);
      erase_old_pieces(cluster, *meta, id);
      auto new_meta = scatter_file(cluster, id, data, plan.new_servers[j], executor,
                                   meta->file_crc, &moved);
      master.update_file(id, std::move(new_meta));
    }
    const Seconds t = static_cast<double>(moved) / bw;
    std::lock_guard lock(stats_mu);
    max_executor_time = std::max(max_executor_time, t);
    total_moved += moved;
  });

  stats.modelled_time = max_executor_time;
  stats.bytes_moved = total_moved;
  scope.finish(stats);
  SPCACHE_LOG(kInfo) << "parallel repartition: " << stats.files_touched << " files across "
                     << by_executor.size() << " executors, " << stats.bytes_moved / kMB
                     << " MB moved, modelled " << stats.modelled_time << " s";
  return stats;
}

RepartitionStats execute_delta_repartition(Cluster& cluster, Master& master,
                                           const RepartitionPlan& plan, ThreadPool& pool,
                                           obs::MetricsRegistry* registry,
                                           obs::TraceRecorder* trace) {
  RepartitionScope scope(registry, trace, plan.changed_files.size());
  RepartitionStats stats;
  const std::size_t n_changed = plan.changed_files.size();
  if (n_changed == 0) {
    scope.finish(stats);
    return stats;
  }

  // Shared accumulators: per-NIC traffic for the modelled time, plus the
  // headline byte counts. One mutex, taken once per file.
  std::mutex stats_mu;
  std::vector<double> tx(cluster.size(), 0.0);
  std::vector<double> rx(cluster.size(), 0.0);

  pool.parallel_for(n_changed, [&](std::size_t j) {
    const FileId id = plan.changed_files[j];
    const auto& new_servers = plan.new_servers[j];
    const auto meta = master.peek(id);
    if (!meta) return;
    const std::uint64_t epoch0 = meta->epoch;
    const std::uint64_t staging_epoch = epoch0 + 1;
    const auto rplan =
        plan_range_transfer(meta->size, meta->piece_sizes, meta->servers, new_servers);

    const auto discard_all = [&] {
      for (const auto& piece : rplan.pieces) {
        cluster.server(piece.dst_server)
            .discard_staged(BlockKey{id, piece.new_piece}, staging_epoch);
      }
    };

    // Phase 1 — stage every new piece out of band. Readers keep hitting the
    // old layout; nothing here is visible to them. Any persistent failure
    // (dead server, exhausted retries) aborts just this file: staged pieces
    // are discarded and the old layout keeps serving.
    try {
      for (const auto& piece : rplan.pieces) {
        auto& dst = cluster.server(piece.dst_server);
        const BlockKey key{id, piece.new_piece};
        Bytes filled = 0;
        for (const auto& range : piece.sources) {
          auto bytes = fetch_range_with_retry(cluster.server(range.src_server),
                                              BlockKey{id, range.old_piece},
                                              range.offset_in_piece, range.length);
          dst.stage_range(key, staging_epoch, piece.piece_size, filled,
                          std::span<const std::uint8_t>(bytes));
          filled += bytes.size();
        }
        // Completeness + CRC now, so the publish below is a pure map splice.
        if (!dst.finalize_staged(key, staging_epoch)) {
          throw std::runtime_error("delta repartition: staged piece incomplete");
        }
      }
    } catch (const std::exception&) {
      discard_all();
      return;
    }

    // Phase 2 — cutover. The guard + epoch check make this optimistic: if
    // any other writer landed a layout since we planned, our staged bytes
    // describe a stale file and are discarded.
    Seconds cutover = 0.0;
    {
      const auto guard = master.lock_file(id);
      if (!guard) {
        discard_all();
        return;
      }
      const auto current = master.peek(id);
      if (!current || current->epoch != epoch0) {
        discard_all();
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      bool ok = true;
      for (const auto& piece : rplan.pieces) {
        try {
          if (!cluster.server(piece.dst_server)
                   .publish_staged(BlockKey{id, piece.new_piece}, staging_epoch)) {
            ok = false;
          }
        } catch (const std::exception&) {
          ok = false;  // destination died between finalize and publish
        }
        if (!ok) break;
      }
      if (!ok) {
        // A partial publish may have overwritten same-key old pieces;
        // readers detect the size mismatch and fall back to stable storage
        // until the next repartition or repair lands a consistent layout.
        discard_all();
        return;
      }
      FileMeta new_meta;
      new_meta.size = meta->size;
      new_meta.servers = new_servers;
      new_meta.piece_sizes.reserve(rplan.pieces.size());
      for (const auto& piece : rplan.pieces) new_meta.piece_sizes.push_back(piece.piece_size);
      new_meta.file_crc = meta->file_crc;
      new_meta.epoch = staging_epoch;
      master.update_file(id, std::move(new_meta));
      cutover = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }  // guard released: readers converge on the new layout from here on

    if (registry) {
      registry->counter(obs::names::kRepartitionBytesMoved).add(rplan.bytes_moved);
      registry->counter(obs::names::kRepartitionBytesSaved).add(rplan.bytes_saved);
      registry->histogram(obs::names::kRepartitionCutover).record(cutover * 1e6);
    }
    if (trace) {
      trace->record(obs::TraceKind::kRepartitionCutover, 0, id, 0, 0, cutover);
    }

    // Phase 3 — lazy GC, outside the critical section. An old piece whose
    // index AND server survive into the new layout was overwritten by the
    // publish above (same BlockKey) and must not be erased; everything else
    // is now unreachable through the master and can go. A reader still
    // holding the old layout either sees unchanged bytes (CRC passes) or a
    // missing/mis-sized piece — both funnel into the invalidate/retry path.
    for (std::size_t i = 0; i < meta->servers.size(); ++i) {
      const bool reused_in_place =
          i < new_servers.size() && meta->servers[i] == new_servers[i];
      if (!reused_in_place) {
        cluster.server(meta->servers[i]).erase(BlockKey{id, static_cast<PieceIndex>(i)});
      }
    }

    std::lock_guard lock(stats_mu);
    stats.bytes_moved += rplan.bytes_moved;
    stats.bytes_saved += rplan.bytes_saved;
    stats.max_cutover_time = std::max(stats.max_cutover_time, cutover);
    ++stats.files_touched;
    for (const auto& piece : rplan.pieces) {
      for (const auto& range : piece.sources) {
        if (range.local) continue;
        tx[range.src_server] += static_cast<double>(range.length);
        rx[piece.dst_server] += static_cast<double>(range.length);
      }
    }
  });

  // Per-NIC completion: every remote range occupies its source's TX and its
  // destination's RX; the migration finishes when the busiest NIC drains.
  for (std::size_t s = 0; s < cluster.size(); ++s) {
    stats.modelled_time =
        std::max(stats.modelled_time, (tx[s] + rx[s]) / cluster.server(s).bandwidth());
  }
  scope.finish(stats);
  SPCACHE_LOG(kInfo) << "delta repartition: " << stats.files_touched << " files, "
                     << stats.bytes_moved / kMB << " MB moved, " << stats.bytes_saved / kMB
                     << " MB saved in place, modelled " << stats.modelled_time
                     << " s, max cutover " << stats.max_cutover_time * 1e6 << " us";
  return stats;
}

}  // namespace spcache
