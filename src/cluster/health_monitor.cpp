#include "cluster/health_monitor.h"

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spcache {

HealthMonitor::HealthMonitor(std::size_t n_servers, ProbeFn probe, RepairFn repair,
                             HealthMonitorConfig config)
    : n_servers_(n_servers),
      probe_(std::move(probe)),
      repair_(std::move(repair)),
      config_(config),
      states_(n_servers) {}

HealthMonitor::HealthMonitor(Cluster& cluster, RecoveryManager& recovery,
                             HealthMonitorConfig config)
    : HealthMonitor(
          cluster.size(),
          [&cluster](std::uint32_t s) { return cluster.is_alive(s); },
          [&recovery](std::uint32_t s) { return recovery.repair_after_server_loss(s); },
          config) {}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard lock(wake_mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void HealthMonitor::stop() {
  {
    std::lock_guard lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void HealthMonitor::loop() {
  for (;;) {
    {
      std::unique_lock lock(wake_mu_);
      wake_cv_.wait_for(lock, config_.heartbeat_interval, [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    heartbeat_round();
  }
}

void HealthMonitor::heartbeat_round() {
  const auto* probes = probes_.load(std::memory_order_acquire);
  obs::TraceRecorder* trace = probes ? probes->trace : nullptr;
  // The heartbeat is the liveness probe of the real deployment: a live
  // server answers, a crashed one stays silent. Probe first with no lock
  // held (an RPC probe blocks up to its timeout), then run the state
  // machine; the (slow) repairs happen outside the state lock too.
  std::vector<char> alive(n_servers_, 0);
  for (std::size_t s = 0; s < n_servers_; ++s) alive[s] = probe_(static_cast<std::uint32_t>(s));
  std::vector<std::uint32_t> newly_dead;
  {
    std::lock_guard lock(mu_);
    for (std::size_t s = 0; s < n_servers_; ++s) {
      auto& state = states_[s];
      state.alive = alive[s] != 0;
      if (state.alive) {
        if (state.declared_dead) {
          ++stats_.revivals_observed;
          if (trace) {
            trace->record(obs::TraceKind::kServerRejoined, 0, 0, static_cast<std::uint32_t>(s));
          }
          SPCACHE_LOG(kInfo) << "health: server " << s << " rejoined (empty)";
        }
        state.missed = 0;
        state.declared_dead = false;
      } else {
        ++state.missed;
        if (!state.declared_dead && state.missed >= config_.missed_beats_to_declare_dead) {
          state.declared_dead = true;
          ++stats_.deaths_declared;
          newly_dead.push_back(static_cast<std::uint32_t>(s));
        }
      }
    }
    ++stats_.beats;
  }

  for (const std::uint32_t s : newly_dead) {
    // The detection timestamp anchors the detection-to-repaired span.
    const auto declared_at = std::chrono::steady_clock::now();
    if (probes) probes->deaths->add(1);
    if (trace) trace->record(obs::TraceKind::kServerDeclaredDead, 0, 0, s);
    SPCACHE_LOG(kWarn) << "health: server " << s << " missed "
                       << config_.missed_beats_to_declare_dead << " beats — declared dead";
    if (!config_.auto_repair) continue;
    repair_in_flight_.store(true, std::memory_order_release);
    if (trace) trace->record(obs::TraceKind::kRepairStart, 0, 0, s);
    try {
      const auto stats = repair_(s);
      const double span =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - declared_at).count();
      if (probes) {
        probes->repairs->add(1);
        probes->repair_span->record(span);
      }
      if (trace) trace->record(obs::TraceKind::kRepairDone, 0, 0, s, 0, span);
      std::lock_guard lock(mu_);
      ++stats_.repairs_completed;
      stats_.pieces_recovered += stats.pieces_recovered;
      stats_.modelled_repair_time += stats.modelled_time;
    } catch (const std::exception& e) {
      SPCACHE_LOG(kError) << "health: repair after loss of server " << s
                          << " failed: " << e.what();
      std::lock_guard lock(mu_);
      ++stats_.repair_failures;
    }
    repair_in_flight_.store(false, std::memory_order_release);
  }
}

void HealthMonitor::attach_observability(obs::MetricsRegistry* registry,
                                         obs::TraceRecorder* trace) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->deaths = &registry->counter(n::kMonitorDeaths);
  probes->repairs = &registry->counter(n::kMonitorRepairs);
  probes->repair_span = &registry->histogram(n::kMonitorRepairSpan);
  probes->trace = trace;
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

HealthStats HealthMonitor::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

bool HealthMonitor::server_healthy(std::uint32_t server) const {
  std::lock_guard lock(mu_);
  return server < states_.size() && !states_[server].declared_dead &&
         states_[server].missed == 0 && states_[server].alive;
}

bool HealthMonitor::all_healthy() const {
  if (repair_in_flight_.load(std::memory_order_acquire)) return false;
  std::lock_guard lock(mu_);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (states_[s].declared_dead || states_[s].missed > 0 || !states_[s].alive) return false;
  }
  return true;
}

bool HealthMonitor::wait_all_healthy(std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (all_healthy()) return true;
    std::this_thread::sleep_for(config_.heartbeat_interval);
  }
  return all_healthy();
}

}  // namespace spcache
