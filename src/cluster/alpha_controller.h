// Online alpha controller: the closed observe -> decide -> act loop.
//
// PRs 1-7 built every mechanism Section 8 needs — a live popularity
// tracker, Algorithm 1's elbow search, split/merge online adjust, delta
// repartition, Eq. 15 imbalance in the observer — but they were only ever
// driven offline, by hand, from benches. This controller closes the loop:
//
//   observe  ImbalanceWindow differences the cluster's cumulative
//            per-server loads into a recent-traffic window and computes
//            its Eq. 15 eta;
//   decide   when eta crosses `eta_trigger` (and the cooldown has
//            elapsed), re-run Algorithm 1 *incrementally* —
//            refine_scale_factor warm-started at the current alpha over
//            the tracker's live rate snapshot — and apply a relative
//            deadband so a near-identical elbow doesn't churn alpha;
//   act      feed the (possibly updated) alpha into plan_online_adjust
//            and execute the split/merge batch against the cluster.
//
// Triggering on observed imbalance rather than a timer is the point: a
// flash crowd fires the loop within one observation window, while a
// balanced diurnal drift never pays a repartition at all. Hysteresis is
// two-fold — a cooldown (min virtual time between adaptations) and the
// alpha deadband — so oscillating rates cannot thrash the layout (the
// alpha-controller property test pins both).
//
// Determinism: the controller holds the placement seed fixed across
// re-runs (Algorithm 1 line 3 draws it once), takes virtual time from the
// caller, and touches no wall clock — a seeded scenario replays to an
// identical adaptation sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "cluster/online_adjust.h"
#include "common/units.h"
#include "math/scale_factor.h"
#include "obs/cluster_observer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/popularity_tracker.h"

namespace spcache {

struct AlphaControllerConfig {
  // Windowed Eq. 15 eta at or above which the loop fires. Random placement
  // of a skewed catalog sits well under 1 in steady state; a flash crowd
  // pushes the window's eta to several.
  double eta_trigger = 1.0;
  // Relative deadband: a re-run whose alpha is within this fraction of the
  // current alpha keeps the current alpha (the split/merge plan still runs
  // on the fresh catalog — popularity may have shifted under a stable
  // elbow). One grid step of Algorithm 1 is 1.5x, so 0.2 absorbs
  // elbow-adjacent wobble without suppressing real moves.
  double alpha_deadband = 0.2;
  // Minimum virtual time between adaptations (cooldown hysteresis).
  Seconds cooldown = 5.0;
  // Algorithm 1 parameters for the incremental re-run.
  ScaleFactorConfig search;
  // Rate floor handed to PopularityTracker::snapshot for never-seen files.
  double min_rate = 1e-6;
  // Split/merge thresholds forwarded to plan_online_adjust.
  double split_factor = 2.0;
  double merge_factor = 0.5;
  std::size_t max_ops_per_file = 8;
};

// What one observe() call did, for tests and the scenario driver's
// per-phase reports.
struct AdaptOutcome {
  bool triggered = false;   // eta crossed the threshold
  bool adapted = false;     // Algorithm 1 re-ran and the plan executed
  double eta = 0.0;         // windowed Eq. 15 eta of this observation
  double alpha_before = 0.0;
  double alpha_after = 0.0;
  std::size_t search_iterations = 0;  // grid points refine touched
  std::size_t splits = 0;
  std::size_t merges = 0;
  Bytes bytes_moved = 0;
};

class AlphaController {
 public:
  // `initial_alpha` is the offline Algorithm 1 result the cluster was laid
  // out with; `placement_seed` the seed that run drew (held fixed so every
  // incremental bound is comparable to the original).
  AlphaController(Cluster& cluster, Master& master, PopularityTracker& tracker,
                  AlphaControllerConfig config, double initial_alpha,
                  std::uint64_t placement_seed);

  // One tick of the loop: window the cumulative loads, fire on imbalance.
  // `cumulative_loads` is Cluster::served_bytes(); `file_sizes` the catalog
  // sizes (file id == index); `now` virtual time (non-decreasing).
  AdaptOutcome observe(const std::vector<double>& cumulative_loads,
                       const std::vector<Bytes>& file_sizes, Seconds now);

  // Force the decide+act step regardless of trigger/cooldown (tests, and
  // scenario phase boundaries that want a clean baseline).
  AdaptOutcome adapt_now(const std::vector<Bytes>& file_sizes, Seconds now);

  double alpha() const { return alpha_; }
  std::uint64_t placement_seed() const { return placement_seed_; }
  const obs::ImbalanceWindow& window() const { return window_; }

  // Counters/gauges land in `registry` under the controller.* names;
  // trigger/adaptation events in `trace` (both optional, nullptr detaches).
  void attach_observability(obs::MetricsRegistry* registry, obs::TraceRecorder* trace);

 private:
  AdaptOutcome run_adaptation(const std::vector<Bytes>& file_sizes, Seconds now, double eta);

  Cluster& cluster_;
  Master& master_;
  PopularityTracker& tracker_;
  AlphaControllerConfig config_;
  double alpha_;
  std::uint64_t placement_seed_;

  obs::ImbalanceWindow window_;
  Seconds last_adaptation_ = 0.0;
  bool ever_adapted_ = false;

  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* triggers_ = nullptr;
  obs::Counter* adaptations_ = nullptr;
  obs::Counter* skipped_cooldown_ = nullptr;
  obs::Counter* skipped_deadband_ = nullptr;
  obs::Counter* splits_ = nullptr;
  obs::Counter* merges_ = nullptr;
  obs::Counter* bytes_moved_ = nullptr;
  obs::Counter* search_iterations_ = nullptr;
  obs::Gauge* alpha_gauge_ = nullptr;
  obs::Gauge* eta_gauge_ = nullptr;
};

}  // namespace spcache
