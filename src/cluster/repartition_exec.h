// Repartition execution: sequential baseline vs. SP-Cache's parallel
// scheme (Section 6.2, Fig. 9b; evaluated in Figs. 16-18).
//
// Sequential ("naive") — the conference-version behaviour the journal paper
// improves on: the SP-Master collects EVERY file over its own NIC,
// re-splits it, and writes the new partitions back out, one file at a time.
// Modelled time = (bytes read + bytes written) / master bandwidth, summed
// over all files.
//
// Parallel — only the files whose partition count changed are touched; each
// is handled by an SP-Repartitioner on a server that already holds one of
// its pieces (that piece moves for free). Repartitioners run concurrently;
// modelled time = max over repartitioners of their remote traffic divided
// by their NIC bandwidth.
//
// Both executors move the real blocks and update the master, so the test
// suite can verify post-conditions (every file reassembles bit-exactly
// after repartition; old pieces are gone).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "core/repartition.h"

namespace spcache::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace spcache::obs

namespace spcache {

struct RepartitionStats {
  Seconds modelled_time = 0.0;  // virtual completion time of the data movement
  Bytes bytes_moved = 0;        // remote traffic (excludes free local pieces)
  std::size_t files_touched = 0;
};

// Sequential baseline: re-splits every file in `plan.new_k` through the
// master (bandwidth `master_bandwidth`), placing partitions on random
// distinct servers. With `registry`/`trace` non-null the run records
// "master.repartitions" / "master.repartition_s" (wall time of the epoch)
// and a kRepartitionStart/kRepartitionDone event pair.
RepartitionStats execute_sequential_repartition(Cluster& cluster, Master& master,
                                                const RepartitionPlan& plan,
                                                Bandwidth master_bandwidth, Rng& rng,
                                                obs::MetricsRegistry* registry = nullptr,
                                                obs::TraceRecorder* trace = nullptr);

// Parallel scheme: executes only plan.changed_files on their assigned
// executors, concurrently via `pool`. Same optional observability hooks.
RepartitionStats execute_parallel_repartition(Cluster& cluster, Master& master,
                                              const RepartitionPlan& plan, ThreadPool& pool,
                                              obs::MetricsRegistry* registry = nullptr,
                                              obs::TraceRecorder* trace = nullptr);

}  // namespace spcache
