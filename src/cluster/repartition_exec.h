// Repartition execution: sequential baseline vs. SP-Cache's parallel
// scheme (Section 6.2, Fig. 9b; evaluated in Figs. 16-18).
//
// Sequential ("naive") — the conference-version behaviour the journal paper
// improves on: the SP-Master collects EVERY file over its own NIC,
// re-splits it, and writes the new partitions back out, one file at a time.
// Modelled time = (bytes read + bytes written) / master bandwidth, summed
// over all files.
//
// Parallel — only the files whose partition count changed are touched; each
// is handled by an SP-Repartitioner on a server that already holds one of
// its pieces (that piece moves for free). Repartitioners run concurrently;
// modelled time = max over repartitioners of their remote traffic divided
// by their NIC bandwidth.
//
// Both executors move the real blocks and update the master, so the test
// suite can verify post-conditions (every file reassembles bit-exactly
// after repartition; old pieces are gone).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "core/repartition.h"

namespace spcache::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace spcache::obs

namespace spcache {

struct RepartitionStats {
  Seconds modelled_time = 0.0;  // virtual completion time of the data movement
  Bytes bytes_moved = 0;        // remote traffic (excludes free local pieces)
  // Delta scheme only: bytes already resident on their destination server
  // (never sent), and the widest per-file publish critical section (wall).
  Bytes bytes_saved = 0;
  Seconds max_cutover_time = 0.0;
  std::size_t files_touched = 0;
};

// Sequential baseline: re-splits every file in `plan.new_k` through the
// master (bandwidth `master_bandwidth`), placing partitions on random
// distinct servers. With `registry`/`trace` non-null the run records
// "master.repartitions" / "master.repartition_s" (wall time of the epoch)
// and a kRepartitionStart/kRepartitionDone event pair.
RepartitionStats execute_sequential_repartition(Cluster& cluster, Master& master,
                                                const RepartitionPlan& plan,
                                                Bandwidth master_bandwidth, Rng& rng,
                                                obs::MetricsRegistry* registry = nullptr,
                                                obs::TraceRecorder* trace = nullptr);

// Parallel scheme: executes only plan.changed_files on their assigned
// executors, concurrently via `pool`. Same optional observability hooks.
RepartitionStats execute_parallel_repartition(Cluster& cluster, Master& master,
                                              const RepartitionPlan& plan, ThreadPool& pool,
                                              obs::MetricsRegistry* registry = nullptr,
                                              obs::TraceRecorder* trace = nullptr);

// Delta scheme: per changed file, computes the range transfer plan
// (core/repartition) and moves ONLY the byte ranges whose source server
// differs from their destination — ranges already resident on the
// destination never cross a NIC. Pieces migrate server-to-server via
// get_range/stage_range; no repartitioner ever materializes the whole
// file. Reads keep serving the old layout the entire time: new pieces are
// staged under epoch+1 out of band, then published in one short critical
// section (O(k) map splices + the master's layout swap), and the old
// pieces are garbage-collected lazily after the guard is released —
// readers racing the cutover converge via the size-mismatch/invalidate
// retry path. A file whose layout changes underneath the staging phase
// (epoch moved on) is skipped, staged pieces discarded: delta repartition
// is optimistic and never blocks a concurrent writer.
//
// Modelled time is per-NIC: every remote range charges its length to the
// source's TX and the destination's RX, and the fleet finishes when the
// busiest NIC drains — max over servers of (tx + rx) / bandwidth.
//
// With `registry` non-null also bumps repartition.bytes_moved/bytes_saved
// and records repartition.cutover_us per published file; with `trace`
// non-null emits one kRepartitionCutover event per file.
RepartitionStats execute_delta_repartition(Cluster& cluster, Master& master,
                                           const RepartitionPlan& plan, ThreadPool& pool,
                                           obs::MetricsRegistry* registry = nullptr,
                                           obs::TraceRecorder* trace = nullptr);

}  // namespace spcache
