// Heartbeat-driven failure detection and self-healing recovery
// (Section 8 "Fault Tolerance").
//
// The paper's master learns about dead Alluxio workers from missed
// heartbeats and re-creates their partitions from checkpointed stable
// storage. `HealthMonitor` closes that loop: a monitor thread next to the
// Master pings every cache server once per `heartbeat_interval`; a server
// that misses `missed_beats_to_declare_dead` consecutive beats is
// declared dead, and (with auto_repair on) the monitor immediately runs
// the repair endpoint so the lost partitions are re-placed on live
// servers while readers ride through on retries and degraded
// (stable-store) reads. A revived server rejoins empty and is simply
// marked healthy again — its former partitions already live elsewhere.
//
// The probe and the repair are pluggable endpoints, so the same detection
// state machine drives both deployments: the threaded cluster probes
// `Cluster::is_alive` and repairs through `RecoveryManager` (the
// convenience constructor), while spcache_masterd probes workers with a
// kPing RPC over TCP and repairs through the RpcRecoveryCoordinator —
// real missed heartbeats from a really dead process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/stable_store.h"

namespace spcache {

struct HealthMonitorConfig {
  std::chrono::milliseconds heartbeat_interval{2};
  int missed_beats_to_declare_dead = 3;  // K
  bool auto_repair = true;
};

struct HealthStats {
  std::uint64_t beats = 0;  // heartbeat rounds completed
  std::uint64_t deaths_declared = 0;
  std::uint64_t revivals_observed = 0;
  std::uint64_t repairs_completed = 0;
  std::uint64_t repair_failures = 0;
  std::uint64_t pieces_recovered = 0;
  double modelled_repair_time = 0.0;  // aggregate RecoveryStats seconds
};

class HealthMonitor {
 public:
  // Liveness probe for one server: true = it answered this heartbeat.
  // Called off the monitor thread with no lock held, so an RPC probe with
  // a bounded timeout is fine.
  using ProbeFn = std::function<bool(std::uint32_t server)>;
  // Repair endpoint for a declared-dead server; may throw (counted as
  // repair_failures).
  using RepairFn = std::function<RecoveryStats(std::uint32_t server)>;

  HealthMonitor(std::size_t n_servers, ProbeFn probe, RepairFn repair,
                HealthMonitorConfig config = HealthMonitorConfig{});
  // Threaded-cluster convenience: probe Cluster::is_alive, repair through
  // RecoveryManager::repair_after_server_loss.
  HealthMonitor(Cluster& cluster, RecoveryManager& recovery,
                HealthMonitorConfig config = HealthMonitorConfig{});
  ~HealthMonitor();  // stops and joins

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  const HealthMonitorConfig& config() const { return config_; }
  HealthStats stats() const;

  // A server is healthy when it answered its latest heartbeat (cached
  // from the last round — no probe is issued here).
  bool server_healthy(std::uint32_t server) const;
  // Every server answering heartbeats and no repair in flight.
  bool all_healthy() const;
  // Poll until all_healthy() (true) or the deadline passes (false).
  bool wait_all_healthy(std::chrono::milliseconds timeout) const;

  // --- Observability (src/obs) ----------------------------------------
  // Resolve "monitor.deaths_declared|repairs_completed|detect_to_repair_s"
  // in `registry` once; with `trace` non-null each declaration/repair also
  // records kServerDeclaredDead/kServerRejoined/kRepairStart/kRepairDone
  // events. The detect_to_repair_s histogram measures the wall span from
  // declaring a server dead to its repair completing — the paper's
  // detection-to-repaired recovery window. Detached by default.
  void attach_observability(obs::MetricsRegistry* registry,
                            obs::TraceRecorder* trace = nullptr);

  struct ObsProbes {
    obs::Counter* deaths = nullptr;
    obs::Counter* repairs = nullptr;
    obs::LatencyHistogram* repair_span = nullptr;
    obs::TraceRecorder* trace = nullptr;
  };

 private:
  void loop();
  void heartbeat_round();

  std::size_t n_servers_;
  ProbeFn probe_;
  RepairFn repair_;
  HealthMonitorConfig config_;

  struct ServerState {
    int missed = 0;
    bool declared_dead = false;
    bool alive = true;  // last probe verdict (optimistic before round 1)
  };

  mutable std::mutex mu_;  // guards states_ and stats_
  std::vector<ServerState> states_;
  HealthStats stats_;
  std::atomic<bool> repair_in_flight_{false};

  std::atomic<bool> running_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

}  // namespace spcache
