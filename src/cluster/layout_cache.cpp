#include "cluster/layout_cache.h"

#include <algorithm>

namespace spcache {

LayoutCache::LayoutCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, kShards)),
      per_shard_(std::max<std::size_t>(1, (capacity_ + kShards - 1) / kShards)) {}

std::optional<FileMeta> LayoutCache::get(FileId id) {
  auto& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  const auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool LayoutCache::get_into(FileId id, FileMeta& out) {
  auto& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  const auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Copy-assignment (not a fresh FileMeta): the servers/piece_sizes vectors
  // in `out` keep their capacity, so steady-state hits never allocate.
  out = it->second;
  return true;
}

void LayoutCache::put(FileId id, FileMeta meta) {
  auto& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  const auto it = shard.entries.find(id);
  if (it != shard.entries.end()) {
    // Newer epoch wins: a slow LOOKUP reply must not clobber the layout a
    // concurrent reader already refreshed past it.
    if (meta.epoch >= it->second.epoch) it->second = std::move(meta);
    return;
  }
  while (shard.entries.size() >= per_shard_ && !shard.fifo.empty()) {
    shard.entries.erase(shard.fifo.front());
    shard.fifo.pop_front();
  }
  shard.fifo.push_back(id);
  shard.entries.emplace(id, std::move(meta));
}

bool LayoutCache::invalidate(FileId id) {
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  auto& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  // The fifo keeps the id; the eviction loop skips ids already erased
  // (erase of an absent key is a no-op), so no O(n) fifo scan here.
  return shard.entries.erase(id) > 0;
}

bool LayoutCache::contains(FileId id) const {
  const auto& shard = shard_for(id);
  std::lock_guard lock(shard.mu);
  return shard.entries.find(id) != shard.entries.end();
}

std::size_t LayoutCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

AccessAccumulator::AccessAccumulator(std::size_t flush_threshold)
    : flush_threshold_(flush_threshold) {}

bool AccessAccumulator::record(FileId id, std::uint64_t n) {
  if (n == 0) return false;
  auto& shard = shards_[shard_of<kShards>(id)];
  {
    std::lock_guard lock(shard.mu);
    shard.deltas[id] += n;
  }
  const auto pending = pending_.fetch_add(n, std::memory_order_relaxed) + n;
  return pending >= flush_threshold_;
}

std::vector<std::pair<FileId, std::uint64_t>> AccessAccumulator::drain() {
  std::vector<std::pair<FileId, std::uint64_t>> out;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (auto& [id, delta] : shard.deltas) {
      out.emplace_back(id, delta);
      pending_.fetch_sub(delta, std::memory_order_relaxed);
    }
    shard.deltas.clear();
  }
  return out;
}

}  // namespace spcache
