#include "cluster/cache_server.h"

#include <stdexcept>

namespace spcache {

CacheServer::CacheServer(std::uint32_t id, Bandwidth bandwidth)
    : id_(id), bandwidth_(bandwidth) {}

void CacheServer::put(BlockKey key, std::vector<std::uint8_t> bytes) {
  const std::uint32_t crc = crc32(bytes);
  std::lock_guard lock(mu_);
  auto [it, inserted] = store_.try_emplace(key);
  if (!inserted) bytes_stored_ -= it->second.bytes.size();
  bytes_stored_ += bytes.size();
  it->second = Block{std::move(bytes), crc};
}

std::optional<Block> CacheServer::get(const BlockKey& key) const {
  Block copy;
  {
    std::lock_guard lock(mu_);
    const auto it = store_.find(key);
    if (it == store_.end()) return std::nullopt;
    copy = it->second;
    bytes_served_ += static_cast<double>(copy.bytes.size());
  }
  if (crc32(copy.bytes) != copy.crc) {
    throw std::runtime_error("CacheServer::get: checksum mismatch (corrupted block)");
  }
  return copy;
}

bool CacheServer::contains(const BlockKey& key) const {
  std::lock_guard lock(mu_);
  return store_.count(key) > 0;
}

bool CacheServer::rename(const BlockKey& from, const BlockKey& to) {
  std::lock_guard lock(mu_);
  const auto it = store_.find(from);
  if (it == store_.end()) return false;
  if (from == to) return true;
  Block block = std::move(it->second);
  const auto replaced = store_.find(to);
  if (replaced != store_.end()) {
    bytes_stored_ -= replaced->second.bytes.size();
    store_.erase(replaced);
  }
  store_.erase(from);
  store_.emplace(to, std::move(block));
  return true;
}

void CacheServer::clear() {
  std::lock_guard lock(mu_);
  store_.clear();
  bytes_stored_ = 0;
}

bool CacheServer::erase(const BlockKey& key) {
  std::lock_guard lock(mu_);
  const auto it = store_.find(key);
  if (it == store_.end()) return false;
  bytes_stored_ -= it->second.bytes.size();
  store_.erase(it);
  return true;
}

Bytes CacheServer::bytes_stored() const {
  std::lock_guard lock(mu_);
  return bytes_stored_;
}

std::size_t CacheServer::blocks_stored() const {
  std::lock_guard lock(mu_);
  return store_.size();
}

double CacheServer::bytes_served() const {
  std::lock_guard lock(mu_);
  return bytes_served_;
}

void CacheServer::reset_load_counters() {
  std::lock_guard lock(mu_);
  bytes_served_ = 0.0;
}

Cluster::Cluster(std::size_t n_servers, Bandwidth bandwidth) {
  servers_.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    servers_.push_back(std::make_unique<CacheServer>(static_cast<std::uint32_t>(i), bandwidth));
  }
}

std::vector<Bandwidth> Cluster::bandwidths() const {
  std::vector<Bandwidth> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->bandwidth());
  return out;
}

std::vector<double> Cluster::served_bytes() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->bytes_served());
  return out;
}

std::vector<double> Cluster::stored_bytes() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(static_cast<double>(s->bytes_stored()));
  return out;
}

void Cluster::reset_load_counters() {
  for (auto& s : servers_) s->reset_load_counters();
}

}  // namespace spcache
