#include "cluster/cache_server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "fault/fault_injector.h"
#include "obs/metrics.h"

namespace spcache {

namespace {

// Times one request and records service time + in-flight depth on exit —
// including the throwing exits, so error paths are measured too.
class ServeScope {
 public:
  explicit ServeScope(const CacheServer::ObsProbes* probes) : probes_(probes) {
    if (probes_ == nullptr) return;
    probes_->in_flight->add(1);
    start_ = std::chrono::steady_clock::now();
  }
  ~ServeScope() {
    if (probes_ == nullptr) return;
    probes_->in_flight->sub(1);
    probes_->service->record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count());
  }

 private:
  const CacheServer::ObsProbes* probes_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

CacheServer::CacheServer(std::uint32_t id, Bandwidth bandwidth)
    : id_(id), bandwidth_(bandwidth) {}

void CacheServer::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->gets = &registry->counter(n::server_metric(id_, n::kServerGets));
  probes->misses = &registry->counter(n::server_metric(id_, n::kServerMisses));
  probes->errors = &registry->counter(n::server_metric(id_, n::kServerErrors));
  probes->puts = &registry->counter(n::server_metric(id_, n::kServerPuts));
  probes->service = &registry->histogram(n::server_metric(id_, n::kServerServiceTime));
  probes->in_flight = &registry->gauge(n::server_metric(id_, n::kServerInFlight));
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

void CacheServer::insert_block(const BlockKey& key, std::shared_ptr<Block> block) {
  const Bytes incoming = block->bytes.size();
  Bytes replaced = 0;
  {
    auto& stripe = stripe_for(key);
    std::lock_guard lock(stripe.mu);
    auto [it, inserted] = stripe.blocks.try_emplace(key);
    if (!inserted) replaced = it->second->bytes.size();
    it->second = std::move(block);
  }
  if (replaced > 0) bytes_stored_.fetch_sub(replaced, std::memory_order_relaxed);
  bytes_stored_.fetch_add(incoming, std::memory_order_relaxed);
}

void CacheServer::put(BlockKey key, std::vector<std::uint8_t> bytes) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  ServeScope scope(probes);
  if (probes) probes->puts->add(1);
  if (!alive()) {
    throw std::runtime_error("CacheServer::put: server " + std::to_string(id_) + " is down");
  }
  // Checksum and allocation happen before the stripe lock; the critical
  // section is just the map probe and pointer swap.
  auto block = std::make_shared<Block>(Block{std::move(bytes), 0});
  block->crc = crc32(block->bytes);
  insert_block(key, std::move(block));
}

void CacheServer::put_copy(BlockKey key, std::span<const std::uint8_t> bytes) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  ServeScope scope(probes);
  if (probes) probes->puts->add(1);
  if (!alive()) {
    throw std::runtime_error("CacheServer::put: server " + std::to_string(id_) + " is down");
  }
  // The ingest copy and the checksum are one fused pass over the payload
  // (crc32_copy): the source view is read once, never rescanned.
  auto block = std::make_shared<Block>();
  block->bytes.resize(bytes.size());
  block->crc = crc32_copy(block->bytes, bytes);
  insert_block(key, std::move(block));
}

BlockRef CacheServer::get(const BlockKey& key) const { return lookup_block(key, true); }

BlockRef CacheServer::get_for_serve(const BlockKey& key) const {
  return lookup_block(key, false);
}

BlockRef CacheServer::lookup_block(const BlockKey& key, bool verify) const {
  // Probes are loaded before the alive-check so requests against a dead
  // server still count as attempts (and as errors).
  const auto* probes = probes_.load(std::memory_order_acquire);
  ServeScope scope(probes);
  if (probes) probes->gets->add(1);
  if (!alive()) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get: server " + std::to_string(id_) + " is down");
  }
  auto* injector = injector_.load(std::memory_order_acquire);
  if (injector && injector->fail_fetch(id_)) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get: injected fetch failure (server " +
                             std::to_string(id_) + ")");
  }
  BlockRef block;
  {
    auto& stripe = stripe_for(key);
    std::lock_guard lock(stripe.mu);
    const auto it = stripe.blocks.find(key);
    if (it == stripe.blocks.end()) {
      if (probes) probes->misses->add(1);
      return nullptr;
    }
    block = it->second;
  }
  bytes_served_.fetch_add(block->bytes.size(), std::memory_order_relaxed);
  if (injector && !block->bytes.empty() && injector->corrupt_read(id_)) {
    // Post-checksum wire flip: hand back a bit-flipped copy carrying the
    // original CRC. The resident block stays pristine; only the caller's
    // end-to-end verification can notice. A fused-verify server (get_for_
    // serve) would catch the flip against the original CRC, so for that
    // path the copy's crc field is restamped to match the flipped bytes —
    // the flip happened "after" the worker's checksum, by construction.
    auto corrupted = std::make_shared<Block>(*block);
    corrupted->bytes[corrupted->bytes.size() / 2] ^= 0x40;
    if (!verify) corrupted->crc = crc32(corrupted->bytes);
    return corrupted;
  }
  if (!verify) return block;  // the caller's fused copy+CRC is the scan
  // Verify outside the lock: CRC over the payload is the expensive part of
  // a read and must not serialize the stripe. The block is immutable once
  // published, so the check is race-free.
  if (crc32(block->bytes) != block->crc) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get: checksum mismatch (corrupted block)");
  }
  return block;
}

std::vector<std::uint8_t> CacheServer::get_range(const BlockKey& key, Bytes offset,
                                                 Bytes length) const {
  const auto* probes = probes_.load(std::memory_order_acquire);
  ServeScope scope(probes);
  if (probes) probes->gets->add(1);
  if (!alive()) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get_range: server " + std::to_string(id_) +
                             " is down");
  }
  auto* injector = injector_.load(std::memory_order_acquire);
  if (injector && injector->fail_fetch(id_)) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get_range: injected fetch failure (server " +
                             std::to_string(id_) + ")");
  }
  BlockRef block;
  {
    auto& stripe = stripe_for(key);
    std::lock_guard lock(stripe.mu);
    const auto it = stripe.blocks.find(key);
    if (it == stripe.blocks.end()) {
      if (probes) probes->misses->add(1);
      throw std::runtime_error("CacheServer::get_range: block not found");
    }
    block = it->second;
  }
  if (offset + length > block->bytes.size()) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get_range: range out of bounds");
  }
  // Same discipline as get(): the CRC pass runs outside the stripe lock,
  // over the immutable published block. The whole block is verified — a
  // migrated range must never launder a corrupted byte into a new piece.
  if (crc32(block->bytes) != block->crc) {
    if (probes) probes->errors->add(1);
    throw std::runtime_error("CacheServer::get_range: checksum mismatch (corrupted block)");
  }
  bytes_served_.fetch_add(length, std::memory_order_relaxed);
  return std::vector<std::uint8_t>(
      block->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
      block->bytes.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

void CacheServer::stage_range(const BlockKey& key, std::uint64_t epoch, Bytes piece_size,
                              Bytes offset, std::span<const std::uint8_t> bytes) {
  if (!alive()) {
    throw std::runtime_error("CacheServer::stage_range: server " + std::to_string(id_) +
                             " is down");
  }
  if (offset + bytes.size() > piece_size) {
    throw std::runtime_error("CacheServer::stage_range: range exceeds piece size");
  }
  std::lock_guard lock(stage_mu_);
  auto [it, inserted] = staged_.try_emplace(StageKey{key, epoch});
  auto& piece = it->second;
  if (inserted) {
    piece.block = std::make_shared<Block>();
    piece.block->bytes.resize(piece_size);
  } else if (piece.block->bytes.size() != piece_size) {
    throw std::runtime_error("CacheServer::stage_range: piece size disagreement");
  }
  // In-order assembly contract: each range lands exactly where the
  // previous one ended, so `filled` alone proves completeness.
  if (offset != piece.filled) {
    throw std::runtime_error("CacheServer::stage_range: out-of-order range (staged " +
                             std::to_string(piece.filled) + ", got offset " +
                             std::to_string(offset) + ")");
  }
  // Fused copy+CRC: the range lands in the piece buffer with the running
  // checksum advanced in the same pass. Because ranges arrive strictly in
  // offset order, the accumulated state at completion IS the whole-piece
  // CRC — finalize never rescans a byte.
  piece.crc_state = crc32_copy_update(
      piece.crc_state,
      std::span<std::uint8_t>(piece.block->bytes.data() + offset, bytes.size()), bytes);
  piece.filled += bytes.size();
  piece.finalized = false;
}

bool CacheServer::finalize_staged(const BlockKey& key, std::uint64_t epoch) {
  // O(1): the CRC was accumulated range-by-range during staging, so the
  // seal is a completeness check plus a finalize of the running state —
  // no byte pass, one lock acquisition. (The pre-fusion implementation
  // rescanned the whole piece here, outside the lock; keeping the seal
  // cheap matters because the executor calls it right before the cutover
  // critical section.)
  std::lock_guard lock(stage_mu_);
  const auto it = staged_.find(StageKey{key, epoch});
  if (it == staged_.end()) return false;
  auto& piece = it->second;
  if (piece.filled != piece.block->bytes.size()) return false;
  piece.block->crc = crc32_final(piece.crc_state);
  piece.finalized = true;
  return true;
}

bool CacheServer::publish_staged(const BlockKey& key, std::uint64_t epoch) {
  if (!alive()) {
    throw std::runtime_error("CacheServer::publish_staged: server " + std::to_string(id_) +
                             " is down");
  }
  std::shared_ptr<Block> block;
  {
    std::lock_guard lock(stage_mu_);
    const auto it = staged_.find(StageKey{key, epoch});
    if (it == staged_.end()) return false;
    if (!it->second.finalized) {
      throw std::runtime_error("CacheServer::publish_staged: piece not finalized");
    }
    block = std::move(it->second.block);
    staged_.erase(it);
  }
  const Bytes incoming = block->bytes.size();
  Bytes replaced = 0;
  {
    auto& stripe = stripe_for(key);
    std::lock_guard lock(stripe.mu);
    auto [it, inserted] = stripe.blocks.try_emplace(key);
    if (!inserted) replaced = it->second->bytes.size();
    it->second = std::move(block);
  }
  if (replaced > 0) bytes_stored_.fetch_sub(replaced, std::memory_order_relaxed);
  bytes_stored_.fetch_add(incoming, std::memory_order_relaxed);
  return true;
}

bool CacheServer::discard_staged(const BlockKey& key, std::uint64_t epoch) {
  std::lock_guard lock(stage_mu_);
  return staged_.erase(StageKey{key, epoch}) > 0;
}

std::size_t CacheServer::staged_count() const {
  std::lock_guard lock(stage_mu_);
  return staged_.size();
}

bool CacheServer::contains(const BlockKey& key) const {
  if (!alive()) return false;
  auto& stripe = stripe_for(key);
  std::lock_guard lock(stripe.mu);
  return stripe.blocks.count(key) > 0;
}

void CacheServer::kill() {
  alive_.store(false, std::memory_order_release);
  clear();  // a crash loses every in-memory block
  std::lock_guard lock(stage_mu_);
  staged_.clear();  // ...and every piece still under construction
}

void CacheServer::revive() {
  alive_.store(true, std::memory_order_release);
}

bool CacheServer::rename(const BlockKey& from, const BlockKey& to) {
  if (from == to) {
    return contains(from);
  }
  auto& src = stripe_for(from);
  auto& dst = stripe_for(to);
  // Two stripes: lock in address order so concurrent renames can't deadlock.
  std::unique_lock<std::mutex> first;
  std::unique_lock<std::mutex> second;
  if (&src == &dst) {
    first = std::unique_lock(src.mu);
  } else if (&src < &dst) {
    first = std::unique_lock(src.mu);
    second = std::unique_lock(dst.mu);
  } else {
    first = std::unique_lock(dst.mu);
    second = std::unique_lock(src.mu);
  }
  const auto it = src.blocks.find(from);
  if (it == src.blocks.end()) return false;
  BlockRef block = std::move(it->second);
  src.blocks.erase(it);
  const auto replaced = dst.blocks.find(to);
  if (replaced != dst.blocks.end()) {
    bytes_stored_.fetch_sub(replaced->second->bytes.size(), std::memory_order_relaxed);
    replaced->second = std::move(block);
  } else {
    dst.blocks.emplace(to, std::move(block));
  }
  return true;
}

void CacheServer::clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard lock(stripe.mu);
    stripe.blocks.clear();
  }
  bytes_stored_.store(0, std::memory_order_relaxed);
}

bool CacheServer::erase(const BlockKey& key) {
  Bytes dropped = 0;
  {
    auto& stripe = stripe_for(key);
    std::lock_guard lock(stripe.mu);
    const auto it = stripe.blocks.find(key);
    if (it == stripe.blocks.end()) return false;
    dropped = it->second->bytes.size();
    stripe.blocks.erase(it);
  }
  bytes_stored_.fetch_sub(dropped, std::memory_order_relaxed);
  return true;
}

Bytes CacheServer::bytes_stored() const {
  return bytes_stored_.load(std::memory_order_relaxed);
}

std::size_t CacheServer::blocks_stored() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe.mu);
    n += stripe.blocks.size();
  }
  return n;
}

double CacheServer::bytes_served() const {
  return static_cast<double>(bytes_served_.load(std::memory_order_relaxed));
}

void CacheServer::reset_load_counters() {
  bytes_served_.store(0, std::memory_order_relaxed);
}

Cluster::Cluster(std::size_t n_servers, Bandwidth bandwidth) {
  servers_.reserve(n_servers);
  for (std::size_t i = 0; i < n_servers; ++i) {
    servers_.push_back(std::make_unique<CacheServer>(static_cast<std::uint32_t>(i), bandwidth));
  }
}

std::vector<Bandwidth> Cluster::bandwidths() const {
  std::vector<Bandwidth> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->bandwidth());
  return out;
}

std::vector<double> Cluster::served_bytes() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(s->bytes_served());
  return out;
}

std::vector<double> Cluster::stored_bytes() const {
  std::vector<double> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back(static_cast<double>(s->bytes_stored()));
  return out;
}

void Cluster::reset_load_counters() {
  for (auto& s : servers_) s->reset_load_counters();
}

std::size_t Cluster::alive_count() const {
  std::size_t n = 0;
  for (const auto& s : servers_) n += s->alive() ? 1 : 0;
  return n;
}

void Cluster::set_fault_injector(fault::FaultInjector* injector) {
  for (auto& s : servers_) s->set_fault_injector(injector);
}

void Cluster::attach_observability(obs::MetricsRegistry* registry) {
  for (auto& s : servers_) s->attach_observability(registry);
}

}  // namespace spcache
