#include "cluster/master.h"

#include <algorithm>
#include <cassert>

namespace spcache {

void Master::register_file(FileId id, FileMeta meta) {
  assert(meta.servers.size() == meta.piece_sizes.size());
  std::lock_guard lock(mu_);
  files_[id] = std::move(meta);
  access_counts_.try_emplace(id, 0);
}

void Master::update_file(FileId id, FileMeta meta) {
  assert(meta.servers.size() == meta.piece_sizes.size());
  std::lock_guard lock(mu_);
  assert(files_.count(id) > 0);
  files_[id] = std::move(meta);
}

bool Master::remove_file(FileId id) {
  std::lock_guard lock(mu_);
  access_counts_.erase(id);
  return files_.erase(id) > 0;
}

std::optional<FileMeta> Master::lookup_for_read(FileId id) {
  std::lock_guard lock(mu_);
  const auto it = files_.find(id);
  if (it == files_.end()) return std::nullopt;
  ++access_counts_[id];
  return it->second;
}

std::optional<FileMeta> Master::peek(FileId id) const {
  std::lock_guard lock(mu_);
  const auto it = files_.find(id);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Master::access_count(FileId id) const {
  std::lock_guard lock(mu_);
  const auto it = access_counts_.find(id);
  return it == access_counts_.end() ? 0 : it->second;
}

void Master::reset_access_counts() {
  std::lock_guard lock(mu_);
  for (auto& [id, count] : access_counts_) count = 0;
}

std::size_t Master::file_count() const {
  std::lock_guard lock(mu_);
  return files_.size();
}

std::vector<FileId> Master::file_ids() const {
  std::lock_guard lock(mu_);
  std::vector<FileId> ids;
  ids.reserve(files_.size());
  for (const auto& [id, meta] : files_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Catalog Master::snapshot_catalog(Seconds window, double min_rate) const {
  assert(window > 0.0);
  std::lock_guard lock(mu_);
  // FileIds are expected to be dense (0..n-1) as produced by the workload
  // generators; the catalog is indexed by id.
  FileId max_id = 0;
  for (const auto& [id, meta] : files_) max_id = std::max(max_id, id);
  std::vector<FileInfo> infos(files_.empty() ? 0 : max_id + 1);
  for (const auto& [id, meta] : files_) {
    const auto it = access_counts_.find(id);
    const double count = it == access_counts_.end() ? 0.0 : static_cast<double>(it->second);
    infos[id].size = meta.size;
    infos[id].request_rate = std::max(min_rate, count / window);
  }
  return Catalog(std::move(infos));
}

}  // namespace spcache
