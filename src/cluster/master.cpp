#include "cluster/master.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/hash_mix.h"
#include "obs/metrics.h"

namespace spcache {

Master::Shard& Master::shard_for(FileId id) { return shards_[shard_of<kShards>(id)]; }

const Master::Shard& Master::shard_for(FileId id) const {
  return shards_[shard_of<kShards>(id)];
}

namespace {

// Layout epochs are strictly monotone per file no matter what the writer
// proposed: a stale or unset (0) proposal still lands above the previous
// epoch, so cached-layout clients can always order two layouts.
std::uint64_t next_epoch(std::uint64_t proposed, std::uint64_t current) {
  return std::max(proposed, current + 1);
}

}  // namespace

void Master::register_file(FileId id, FileMeta meta) {
  assert(meta.servers.size() == meta.piece_sizes.size());
  auto& shard = shard_for(id);
  std::unique_lock lock(shard.mu);
  auto [it, inserted] = shard.files.try_emplace(id);
  if (inserted) it->second = std::make_shared<MasterFileEntry>();
  // Re-registering keeps the existing access count (matches the pre-shard
  // behaviour of try_emplace on the counter map).
  meta.epoch = next_epoch(meta.epoch, inserted ? 0 : it->second->meta.epoch);
  it->second->meta = std::move(meta);
}

void Master::update_file(FileId id, FileMeta meta) {
  assert(meta.servers.size() == meta.piece_sizes.size());
  if (const auto* probes = probes_.load(std::memory_order_acquire)) {
    probes->updates->add(1);
  }
  auto& shard = shard_for(id);
  std::unique_lock lock(shard.mu);
  const auto it = shard.files.find(id);
  assert(it != shard.files.end());
  meta.epoch = next_epoch(meta.epoch, it->second->meta.epoch);
  it->second->meta = std::move(meta);
}

bool Master::remove_file(FileId id) {
  auto& shard = shard_for(id);
  std::unique_lock lock(shard.mu);
  return shard.files.erase(id) > 0;
}

std::optional<FileMeta> Master::lookup_for_read(FileId id) {
  const auto* probes = probes_.load(std::memory_order_acquire);
  if (probes == nullptr) {
    // Uninstrumented fast path: identical to the pre-observability code.
    auto& shard = shard_for(id);
    std::shared_lock lock(shard.mu);
    const auto it = shard.files.find(id);
    if (it == shard.files.end()) return std::nullopt;
    it->second->access_count.fetch_add(1, std::memory_order_relaxed);
    return it->second->meta;
  }
  probes->lookups->add(1);
  const auto start = std::chrono::steady_clock::now();
  auto& shard = shard_for(id);
  // try_lock first purely to observe contention; on failure fall back to
  // the normal blocking acquire and count the stall.
  std::shared_lock lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    probes->contention->add(1);
    lock.lock();
  }
  std::optional<FileMeta> out;
  const auto it = shard.files.find(id);
  if (it != shard.files.end()) {
    it->second->access_count.fetch_add(1, std::memory_order_relaxed);
    out = it->second->meta;
  }
  lock.unlock();
  probes->lookup_latency->record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  return out;
}

std::optional<FileMeta> Master::peek(FileId id) const {
  const auto& shard = shard_for(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.files.find(id);
  if (it == shard.files.end()) return std::nullopt;
  return it->second->meta;
}

std::uint64_t Master::file_epoch(FileId id) const {
  const auto& shard = shard_for(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.files.find(id);
  return it == shard.files.end() ? 0 : it->second->meta.epoch;
}

std::uint64_t Master::report_access(FileId id, std::uint64_t delta) {
  if (delta == 0) return 0;
  auto& shard = shard_for(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.files.find(id);
  if (it == shard.files.end()) return 0;
  it->second->access_count.fetch_add(delta, std::memory_order_relaxed);
  if (const auto* probes = probes_.load(std::memory_order_acquire)) {
    probes->lookups_saved->add(delta);
  }
  return delta;
}

std::uint64_t Master::report_access_batch(
    const std::vector<std::pair<FileId, std::uint64_t>>& deltas) {
  std::uint64_t applied = 0;
  for (const auto& [id, delta] : deltas) applied += report_access(id, delta);
  return applied;
}

std::uint64_t Master::access_count(FileId id) const {
  const auto& shard = shard_for(id);
  std::shared_lock lock(shard.mu);
  const auto it = shard.files.find(id);
  return it == shard.files.end() ? 0
                                 : it->second->access_count.load(std::memory_order_relaxed);
}

void Master::reset_access_counts() {
  for (auto& shard : shards_) {
    // Shared lock: the map is not mutated, only the (atomic) counters.
    std::shared_lock lock(shard.mu);
    for (auto& [id, entry] : shard.files) {
      entry->access_count.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Master::file_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard.mu);
    n += shard.files.size();
  }
  return n;
}

std::vector<FileId> Master::file_ids() const {
  std::vector<FileId> ids;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, entry] : shard.files) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

Catalog Master::snapshot_catalog(Seconds window, double min_rate) const {
  assert(window > 0.0);
  // FileIds are expected to be dense (0..n-1) as produced by the workload
  // generators; the catalog is indexed by id. Collect (id, size, count)
  // shard by shard, then build the dense table.
  struct Row {
    FileId id;
    Bytes size;
    std::uint64_t count;
  };
  std::vector<Row> rows;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [id, entry] : shard.files) {
      rows.push_back(
          Row{id, entry->meta.size, entry->access_count.load(std::memory_order_relaxed)});
    }
  }
  FileId max_id = 0;
  for (const auto& r : rows) max_id = std::max(max_id, r.id);
  std::vector<FileInfo> infos(rows.empty() ? 0 : max_id + 1);
  for (const auto& r : rows) {
    infos[r.id].size = r.size;
    infos[r.id].request_rate = std::max(min_rate, static_cast<double>(r.count) / window);
  }
  return Catalog(std::move(infos));
}

void Master::attach_observability(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    probes_.store(nullptr, std::memory_order_release);
    return;
  }
  namespace n = obs::names;
  auto probes = std::make_unique<ObsProbes>();
  probes->lookups = &registry->counter(n::kMasterLookups);
  probes->updates = &registry->counter(n::kMasterUpdates);
  probes->contention = &registry->counter(n::kMasterShardContention);
  probes->lookups_saved = &registry->counter(n::kMasterLookupsSaved);
  probes->lookup_latency = &registry->histogram(n::kMasterLookupLatency);
  probes_storage_ = std::move(probes);
  probes_.store(probes_storage_.get(), std::memory_order_release);
}

Master::FileGuard Master::lock_file(FileId id) {
  std::shared_ptr<MasterFileEntry> entry;
  {
    auto& shard = shard_for(id);
    std::shared_lock lock(shard.mu);
    const auto it = shard.files.find(id);
    if (it == shard.files.end()) return {};
    entry = it->second;
  }
  // Lock outside the shard lock: a guard holder blocking on op_mu must not
  // stall unrelated lookups in the same shard.
  FileGuard guard;
  guard.lock_ = std::unique_lock(entry->op_mu);
  guard.entry_ = std::move(entry);
  return guard;
}

}  // namespace spcache
