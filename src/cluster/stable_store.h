// Stable backing storage and failure recovery (Section 8 "Fault
// Tolerance").
//
// SP-Cache is redundancy-free, so a crashed cache server loses its
// partitions. The paper's answer: the *underlying* storage system (HDFS /
// S3, cross-rack replicated) already holds every file durably — Alluxio
// periodically checkpoints cached files there — so SP-Cache recovers lost
// partitions from stable storage rather than keeping cache-level replicas.
//
// `StableStore` models that checkpointed tier: a durable, checksummed
// file-level store with a (slow) recovery bandwidth. `RecoveryManager`
// repairs a file whose pieces went missing: it restores the bytes from the
// stable store, re-splits them per the master's current layout, re-places
// the lost pieces (least-loaded distinct servers), and returns the volume
// moved plus the modelled recovery time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/cache_server.h"
#include "cluster/master.h"
#include "common/units.h"

namespace spcache {

class StableStore {
 public:
  // `bandwidth` is the effective restore throughput from stable storage —
  // disk/cross-rack, far below memory speed.
  explicit StableStore(Bandwidth bandwidth = mbps(400));

  Bandwidth bandwidth() const { return bandwidth_; }

  // Durably record a full file (Alluxio-style checkpoint).
  void checkpoint(FileId id, std::span<const std::uint8_t> bytes);

  bool contains(FileId id) const;

  // Restore a full file; nullopt if never checkpointed. Throws on
  // checksum mismatch (corrupted stable copy — should never happen).
  std::optional<std::vector<std::uint8_t>> restore(FileId id) const;

  std::size_t file_count() const;
  Bytes bytes_stored() const;

 private:
  Bandwidth bandwidth_;
  mutable std::mutex mu_;
  std::unordered_map<FileId, Block> files_;
};

struct RecoveryStats {
  std::size_t pieces_recovered = 0;
  std::size_t files_skipped = 0;  // no stable copy / no live replacement server
  Bytes bytes_restored = 0;       // pulled from stable storage
  Seconds modelled_time = 0;      // restore transfer + re-placement writes
};

class RecoveryManager {
 public:
  RecoveryManager(Cluster& cluster, Master& master, StableStore& stable);

  // Scan the file's layout and re-create any missing pieces from stable
  // storage. Keeps surviving pieces in place; lost pieces are rewritten to
  // their original servers if alive (a piece whose server is down is
  // skipped — that is repair_after_server_loss territory). Returns the
  // stats; throws std::runtime_error if the file was never checkpointed.
  RecoveryStats repair_file(FileId id);

  // Handle a whole-server loss: for every file with a piece on `server`,
  // move that piece's slot to the least-loaded *live* server not already
  // holding the file, then repair from stable storage.
  //
  // Safe to run while readers are in flight and safe to run twice (e.g.
  // two HealthMonitor ticks racing): each file is handled under its
  // master-side mutation guard (Master::lock_file); a file with no slot
  // left on the failed server — already repaired by a concurrent run — is
  // skipped; and replacement pieces are written to their new servers
  // *before* the layout is published, so a reader holding the new layout
  // always finds the bytes (readers holding the old layout retry and pick
  // up the new one). Files without a matching stable copy, or with no
  // live replacement server, are skipped and counted in files_skipped
  // rather than aborting the sweep.
  RecoveryStats repair_after_server_loss(std::uint32_t failed_server);

  // --- Observability (src/obs) ----------------------------------------
  // Resolve "recovery.pieces_recovered|bytes_restored|repair_model_s" in
  // `registry` once; every successful repair adds its RecoveryStats to the
  // counters and records the modelled repair time. Detached by default.
  void attach_observability(obs::MetricsRegistry* registry);

  struct ObsProbes {
    obs::Counter* pieces = nullptr;
    obs::Counter* bytes = nullptr;
    obs::LatencyHistogram* repair_time = nullptr;
  };

 private:
  // Body of repair_file, run while the caller already holds the file's
  // master-side mutation guard.
  RecoveryStats repair_pieces(FileId id);
  // Fold one repair's stats into the attached probes (no-op when detached).
  void record_repair(const RecoveryStats& stats);

  Cluster& cluster_;
  Master& master_;
  StableStore& stable_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

}  // namespace spcache
