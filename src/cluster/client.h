// SP-Client and EC-Client: the application-facing read/write paths
// (Section 6.1, Fig. 9a).
//
// SpClient implements selective partition I/O on real bytes:
//   * write: split the file into k contiguous pieces, store each piece on
//     its assigned server, register the layout (incl. whole-file CRC) with
//     the master;
//   * read: look up the layout, fetch all pieces in parallel through the
//     thread pool, verify per-block and whole-file checksums, reassemble.
//     Fetches are zero-copy (shared BlockRefs into the stores); each
//     piece's bytes are copied exactly once, into their final offset in
//     the reassembled file.
//
// EcClient does the same through the (k, n) Reed-Solomon codec, fetching
// k + 1 shards (late binding) and decoding from the k that arrive first —
// here deterministically the first k of the sampled set.
//
// Both return the *modelled* network time of the operation alongside the
// data (see cache_server.h on virtual-time accounting).
//
// Degraded reads (Section 8 "Fault Tolerance"): SpClient::read no longer
// dies on the first missing piece or failed fetch. Each piece is retried
// with capped exponential backoff + jitter (fault::RetryPolicy); a piece
// that stays unfetchable fails over to an inline StableStore restore when
// a stable store is attached; and a whole-file checksum mismatch (e.g. a
// read racing a repartition, or an injected wire flip) triggers a fresh
// pass with a re-fetched layout — which is how readers ride through a
// concurrent HealthMonitor/RecoveryManager repair. IoResult reports the
// retry count and whether (and how many pieces of) the read was served
// degraded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "cluster/cache_server.h"
#include "cluster/layout_cache.h"
#include "cluster/master.h"
#include "erasure/rs_code.h"
#include "fault/retry.h"
#include "net/network_model.h"

namespace spcache {

class StableStore;

struct IoResult {
  std::vector<std::uint8_t> bytes;  // empty for writes
  Seconds network_time = 0.0;       // modelled transfer time of the op
  Seconds compute_time = 0.0;       // modelled codec time (EC only)
  std::size_t retries = 0;          // piece refetches + extra whole-read passes
  std::size_t degraded_pieces = 0;  // pieces served from stable storage
  bool degraded = false;            // true iff any piece failed over to stable
  bool layout_cached = false;       // read served without a master LOOKUP
};

// Reusable read workspace for SpClient::read(id, scratch) — everything a
// read needs that would otherwise be heap-allocated per call: the
// reassembly buffer (result.bytes), the layout copy, the per-pass
// bookkeeping arrays (arena-backed), and the CRC combine operators. After
// one warming read, a cached-layout read of a same-or-smaller file is
// allocation-free end to end (asserted by tests/test_cluster_read_alloc).
//
// Not thread-safe: one ReadScratch per reader thread, and the IoResult
// reference returned by read(id, scratch) aliases scratch.result — it is
// valid until the next read against the same scratch.
struct ReadScratch {
  IoResult result;           // result.bytes doubles as the reassembly buffer
  FileMeta meta;             // layout storage (vectors keep their capacity)
  Arena arena{16 * kKB};     // offsets / fetch flags / per-piece CRCs
  Crc32Combiner combiner;    // stitches piece CRCs into the whole-file CRC
};

class SpClient {
 public:
  SpClient(Cluster& cluster, Master& master, ThreadPool& pool,
           GoodputModel goodput = GoodputModel{});

  // Fault-tolerant variant: `stable` (may be nullptr) enables per-piece
  // failover to an inline stable-storage restore; `retry` tunes the
  // backoff schedule; `cache` tunes (or disables) the layout cache.
  SpClient(Cluster& cluster, Master& master, ThreadPool& pool, StableStore* stable,
           fault::RetryPolicy retry, GoodputModel goodput = GoodputModel{},
           ClientCacheConfig cache = ClientCacheConfig{});

  // Flushes pending batched access reports (best effort).
  ~SpClient();

  // Write `data` as `servers.size()` near-equal pieces, one per listed
  // server (distinct). Registers/updates the file at the master.
  IoResult write(FileId id, std::span<const std::uint8_t> data,
                 const std::vector<std::uint32_t>& servers);

  // Heterogeneous variant: explicit piece sizes (must sum to data.size(),
  // parallel to `servers`) — used with bandwidth-weighted placements whose
  // pieces follow server speeds.
  IoResult write_sized(FileId id, std::span<const std::uint8_t> data,
                       const std::vector<std::uint32_t>& servers,
                       const std::vector<Bytes>& piece_sizes);

  // Parallel read + reassembly + verification, with per-piece retry,
  // stable-store failover, and whole-read repair-aware passes (see the
  // header comment). Throws std::runtime_error only once the file is
  // unknown or every pass of the retry budget is exhausted.
  //
  // Metadata-light: pass 1 serves the layout from the client cache when
  // present (no master LOOKUP; the access is tallied locally and shipped
  // via Master::report_access_batch on the flush threshold). Any pass
  // failure invalidates the cached layout, and passes >= 2 always
  // re-LOOKUP — so stale layouts converge through the existing retry
  // machinery.
  IoResult read(FileId id);

  // Allocation-free variant: identical semantics to read(id), but every
  // per-read buffer lives in `scratch` and is reused across calls. The
  // returned reference aliases scratch.result (valid until the next read
  // with the same scratch). This is the steady-state hot path: with a
  // warmed scratch and a cached layout, a read performs zero heap
  // allocations — the piece copies run through the fused crc32_copy kernel
  // and the whole-file CRC is stitched from the per-piece CRCs (O(k·32))
  // instead of rescanning the reassembled bytes.
  IoResult& read(FileId id, ReadScratch& scratch);

  // Ship pending cache-served access counts to the master now. Returns
  // the number of accesses reported. Called automatically on the flush
  // threshold and from the destructor.
  std::uint64_t flush_access_reports();

  const fault::RetryPolicy& retry_policy() const { return retry_; }
  const LayoutCache& layout_cache() const { return layout_cache_; }

  // --- Observability (src/obs) ----------------------------------------
  // Resolve the shared "client.*" metrics in `registry` once and start
  // recording end-to-end read latency (wall + modelled), outcome counters,
  // and — when `trace` is non-null — per-op structured events:
  // kReadStart/kReadDone/kReadFailed/kReadRepeatPass at the read level and
  // kPieceFetch/kPieceRetry/kPieceDegraded per piece. The event counts
  // mirror IoResult exactly: #kPieceRetry + #kReadRepeatPass == retries,
  // #kPieceDegraded == degraded_pieces (the trace-completeness test pins
  // this). Detached (default): one relaxed pointer load + branch.
  void attach_observability(obs::MetricsRegistry* registry,
                            obs::TraceRecorder* trace = nullptr);

  struct ObsProbes {
    obs::Counter* reads = nullptr;
    obs::Counter* read_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* degraded_reads = nullptr;
    obs::Counter* degraded_pieces = nullptr;
    obs::Counter* layout_hits = nullptr;
    obs::Counter* layout_misses = nullptr;
    obs::Counter* layout_invalidations = nullptr;
    obs::LatencyHistogram* read_wall = nullptr;
    obs::LatencyHistogram* read_model = nullptr;
    // Read-scratch arena telemetry (most recent read): occupancy high-water
    // and lifetime heap-spill count. fallbacks staying 0 is the
    // allocation-free invariant, exported so the observer can flag it.
    obs::Gauge* arena_high_water = nullptr;
    obs::Gauge* arena_fallbacks = nullptr;
    obs::TraceRecorder* trace = nullptr;  // may stay null (metrics only)
  };

 private:
  // One full read pass against the layout in scratch.meta. Returns true on
  // success; false means retryable failure (missing pieces without a
  // usable stable copy, or a whole-file checksum mismatch). `op` is the
  // trace op-id of the enclosing read (0 when tracing is detached).
  bool read_pass(FileId id, std::size_t pass, std::uint64_t op, ReadScratch& scratch,
                 std::string& error);

  // Layout for pass `pass`, written into `out`: cache on pass 1 (when
  // enabled; a hit copy-assigns into out's warmed vectors), fresh master
  // LOOKUP otherwise (write-through to the cache). Sets `from_cache` and
  // handles the hit/miss tallies + batched reporting. False: unknown file.
  bool layout_for_pass(FileId id, std::size_t pass, bool& from_cache, FileMeta& out);

  // Write-through helper: publish the just-registered layout to the cache.
  void cache_own_write(FileId id);

  Cluster& cluster_;
  Master& master_;
  ThreadPool& pool_;
  StableStore* stable_ = nullptr;
  fault::RetryPolicy retry_;
  GoodputModel goodput_;
  ClientCacheConfig cache_config_;
  LayoutCache layout_cache_;
  AccessAccumulator access_acc_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

class EcClient {
 public:
  EcClient(Cluster& cluster, Master& master, ThreadPool& pool, std::size_t k, std::size_t n,
           GoodputModel goodput = GoodputModel{});

  // Encode into n shards and store them on the n listed (distinct) servers.
  IoResult write(FileId id, std::span<const std::uint8_t> data,
                 const std::vector<std::uint32_t>& servers);

  // Late-binding read: sample k+1 of the n shards, decode from k.
  IoResult read(FileId id, Rng& rng);

  const ReedSolomon& codec() const { return rs_; }

  // Resolve the shared "codec.*" metrics in `registry` and start recording
  // bytes through the encoder/decoder plus the most recent single-op
  // throughput (gauges in x1e3 GB/s). nullptr detaches.
  void attach_observability(obs::MetricsRegistry* registry);

  struct CodecProbes {
    obs::Counter* encode_bytes = nullptr;
    obs::Counter* decode_bytes = nullptr;
    obs::Gauge* encode_gbps = nullptr;
    obs::Gauge* decode_gbps = nullptr;
  };

 private:
  Cluster& cluster_;
  Master& master_;
  ThreadPool& pool_;
  ReedSolomon rs_;
  GoodputModel goodput_;
  std::unique_ptr<CodecProbes> probes_storage_;
  std::atomic<CodecProbes*> probes_{nullptr};
};

}  // namespace spcache
