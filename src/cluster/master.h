// SP-Master metadata service (Section 6.1).
//
// Tracks, for every file: its size, partition layout (which server holds
// which piece), a whole-file CRC for end-to-end verification, and the
// access count used to estimate popularity for the periodic re-balancing
// (Section 6.2). Thread-safe: concurrent SP-Clients bump access counts
// while repartitioners rewrite layouts.
//
// Per Section 6.4, the master's state is deliberately tiny — partition
// count plus server list per file.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

struct FileMeta {
  Bytes size = 0;
  std::vector<std::uint32_t> servers;    // piece i lives on servers[i]
  std::vector<Bytes> piece_sizes;        // parallel to servers
  std::uint32_t file_crc = 0;            // CRC of the whole file

  std::size_t partitions() const { return servers.size(); }
};

class Master {
 public:
  void register_file(FileId id, FileMeta meta);
  // Replace the layout after a repartition.
  void update_file(FileId id, FileMeta meta);
  bool remove_file(FileId id);

  // Layout lookup for a read; bumps the access count (the master "updates
  // the access count for the requested file", Section 6.1).
  std::optional<FileMeta> lookup_for_read(FileId id);

  // Metadata access without touching counters.
  std::optional<FileMeta> peek(FileId id) const;

  std::uint64_t access_count(FileId id) const;
  void reset_access_counts();

  std::size_t file_count() const;
  std::vector<FileId> file_ids() const;

  // Popularity snapshot: builds a Catalog whose request rates are the
  // recorded access counts divided by `window` seconds — the input to
  // Algorithm 1 at each re-balancing epoch ("based on the access count
  // measured in the past 24 hours", Section 6.2). Files with no recorded
  // access get rate `min_rate` so the optimizer stays well-defined.
  Catalog snapshot_catalog(Seconds window, double min_rate = 1e-6) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<FileId, FileMeta> files_;
  std::unordered_map<FileId, std::uint64_t> access_counts_;
};

}  // namespace spcache
