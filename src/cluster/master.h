// SP-Master metadata service (Section 6.1).
//
// Tracks, for every file: its size, partition layout (which server holds
// which piece), a whole-file CRC for end-to-end verification, and the
// access count used to estimate popularity for the periodic re-balancing
// (Section 6.2). Thread-safe: concurrent SP-Clients bump access counts
// while repartitioners rewrite layouts.
//
// Per Section 6.4, the master's state is deliberately tiny — partition
// count plus server list per file — and the paper keeps it that way
// precisely so the metadata path never bottlenecks. This implementation
// honors that with shard-per-core concurrency instead of one global lock:
//
//   * metadata lives in kShards shards, selected by the SplitMix64 mix of
//     the FileId (common/hash_mix.h — the same mixer the block store uses
//     for stripe selection), each guarded by its own std::shared_mutex;
//     lookups take the shard's shared lock, layout writes its unique lock;
//   * access counters are std::atomic<uint64_t> bumped with relaxed
//     ordering, so a counter bump never contends with other lookups —
//     the counters feed a statistical popularity estimate (Section 6.2)
//     and need totals, not ordering;
//   * snapshot_catalog / file_ids iterate shard by shard instead of
//     stalling the world; a snapshot is therefore per-shard-consistent,
//     which is all the periodic re-balancer needs;
//   * lock_file(id) hands out a per-file guard serializing the
//     read-modify-write sequences of Algorithm 2 (peek → move blocks →
//     update_file), keeping layout updates linearizable *per file* while
//     unrelated files proceed in parallel.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache::obs {
class Counter;
class LatencyHistogram;
class MetricsRegistry;
}  // namespace spcache::obs

namespace spcache {

struct FileMeta {
  Bytes size = 0;
  std::vector<std::uint32_t> servers;    // piece i lives on servers[i]
  std::vector<Bytes> piece_sizes;        // parallel to servers
  std::uint32_t file_crc = 0;            // CRC of the whole file
  // Layout generation, monotonically increasing per file. Every mutation
  // that can move bytes (register/overwrite, repartition, online
  // split/merge, repair re-placement) lands a strictly larger epoch, so a
  // client-side layout cache can tell "same layout" from "stale layout"
  // without comparing server lists. The Master enforces monotonicity on
  // register_file/update_file; writers may propose an epoch (the RPC write
  // path stamps pieces with it) and the master keeps max(proposed, old+1).
  std::uint64_t epoch = 0;

  std::size_t partitions() const { return servers.size(); }
};

class Master {
 public:
  static constexpr std::size_t kShards = 64;

  void register_file(FileId id, FileMeta meta);
  // Replace the layout after a repartition.
  void update_file(FileId id, FileMeta meta);
  bool remove_file(FileId id);

  // Layout lookup for a read; bumps the access count (the master "updates
  // the access count for the requested file", Section 6.1). Takes only the
  // shard's shared lock: concurrent lookups — and their counter bumps —
  // never serialize against each other.
  std::optional<FileMeta> lookup_for_read(FileId id);

  // Metadata access without touching counters.
  std::optional<FileMeta> peek(FileId id) const;

  // Current layout epoch; 0 for an unknown file.
  std::uint64_t file_epoch(FileId id) const;

  // Batched popularity report (the metadata-light read path): a client
  // that served `delta` reads of `id` from its layout cache reports them
  // here instead of paying `delta` LOOKUP round-trips. Feeds the same
  // access counters as lookup_for_read, so Eq. 1's popularity input is
  // unchanged; counts for unknown files are dropped (the file was removed
  // since the client cached it). Returns the number of accesses applied.
  std::uint64_t report_access(FileId id, std::uint64_t delta);
  std::uint64_t report_access_batch(
      const std::vector<std::pair<FileId, std::uint64_t>>& deltas);

  std::uint64_t access_count(FileId id) const;
  void reset_access_counts();

  std::size_t file_count() const;
  std::vector<FileId> file_ids() const;

  // Popularity snapshot: builds a Catalog whose request rates are the
  // recorded access counts divided by `window` seconds — the input to
  // Algorithm 1 at each re-balancing epoch ("based on the access count
  // measured in the past 24 hours", Section 6.2). Files with no recorded
  // access get rate `min_rate` so the optimizer stays well-defined.
  // Iterates shard by shard; counts racing in during the walk land in
  // either this epoch or the next, which the estimate tolerates.
  Catalog snapshot_catalog(Seconds window, double min_rate = 1e-6) const;

  // Per-file mutation guard for read-modify-write sequences (Algorithm 2's
  // repartition, online split/merge, recovery re-placement):
  //
  //   auto guard = master.lock_file(id);
  //   auto meta = master.peek(id);        // read
  //   ... move blocks around ...          // modify
  //   master.update_file(id, new_meta);   // write
  //
  // While held, no other guard holder can interleave its own RMW on the
  // same file, making layout updates linearizable per file; lookups and
  // RMWs on other files are unaffected. The guard keeps the file's entry
  // alive even across a concurrent remove_file. Evaluates to false if the
  // file is unknown.
  class FileGuard {
   public:
    FileGuard() = default;
    explicit operator bool() const { return entry_ != nullptr; }

   private:
    friend class Master;
    std::shared_ptr<struct MasterFileEntry> entry_;
    std::unique_lock<std::mutex> lock_;
  };
  FileGuard lock_file(FileId id);

  // --- Observability (src/obs) ----------------------------------------
  // Resolve "master.lookups|updates|shard_contention|lookup_s" in
  // `registry` once and start recording lookup latency, mutation counts,
  // and shard-lock contention (lookups that found their shard's shared
  // lock busy). Detached (the default) the hot path pays one relaxed
  // pointer load and a branch. Pass nullptr to detach.
  void attach_observability(obs::MetricsRegistry* registry);

  struct ObsProbes {
    obs::Counter* lookups = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* contention = nullptr;
    obs::Counter* lookups_saved = nullptr;  // accesses applied via report_access
    obs::LatencyHistogram* lookup_latency = nullptr;
  };

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<FileId, std::shared_ptr<MasterFileEntry>> files;
  };

  Shard& shard_for(FileId id);
  const Shard& shard_for(FileId id) const;

  std::array<Shard, kShards> shards_;
  std::unique_ptr<ObsProbes> probes_storage_;
  std::atomic<ObsProbes*> probes_{nullptr};
};

// One file's master-side state. Entries are heap-allocated and shared so
// FileGuard can pin one across shard-map mutations; the access counter is
// lock-free (relaxed — it is a statistical tally, not a synchronizer).
struct MasterFileEntry {
  FileMeta meta;
  std::atomic<std::uint64_t> access_count{0};
  std::mutex op_mu;  // serializes per-file read-modify-write sequences
};

}  // namespace spcache
