#include "common/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace spcache {

namespace {

std::atomic<LogLevel> g_level{[]() {
  if (const char* env = std::getenv("SPCACHE_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kOff;
}()};

std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace detail {
void log_write(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace spcache
