// 64-bit hash finalizer shared by every sharded container in the hot
// path (master metadata shards, cache-server stripes, BlockKeyHash).
//
// `std::hash<uint64_t>` is the identity on libstdc++, so feeding it
// structured keys — e.g. `(file << 32) | piece` — clusters consecutive
// FileIds into the same buckets/stripes and defeats sharding entirely.
// SplitMix64's finalizer (Steele, Lea & Flood; the same mixer rng.h uses
// for seeding) is a cheap bijection whose output bits all depend on all
// input bits, so both the low bits (hash-table buckets) and the high
// bits (shard/stripe selection) are uniformly distributed.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace spcache {

// SplitMix64 finalizer: bijective avalanche mix of a 64-bit key.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Shard selector for a power-of-two shard count. Uses the *high* bits of
// the mix so the low bits remain independent for intra-shard hash-table
// bucketing.
template <std::size_t NShards>
constexpr std::size_t shard_of(std::uint64_t key) {
  static_assert(NShards > 0 && (NShards & (NShards - 1)) == 0,
                "shard count must be a power of two");
  if constexpr (NShards == 1) {
    return 0;
  } else {
    return static_cast<std::size_t>(mix64(key) >> (64 - std::bit_width(NShards - 1)));
  }
}

}  // namespace spcache
