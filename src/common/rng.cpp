#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <utility>

namespace spcache {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  have_spare_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = -n % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // guard against -inf
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mu + sigma * u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload-generation use cases here (mean >= 30).
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::pareto(double x_m, double a) {
  assert(x_m > 0.0 && a > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / a);
}

std::size_t Rng::sample_cumulative(const std::vector<double>& cum) {
  assert(!cum.empty() && cum.back() > 0.0);
  const double x = uniform() * cum.back();
  // Binary search for the first cumulative weight > x.
  std::size_t lo = 0, hi = cum.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cum[mid] > x) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense draws, partial Fisher-Yates is cheapest; for sparse draws from
  // a huge range, Floyd's algorithm avoids materializing [0, n).
  if (n <= 4 * k || n <= 1024) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(uniform_index(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  // Floyd's algorithm yields a set; shuffle for a uniformly random order.
  shuffle(out);
  return out;
}

std::vector<std::size_t> Rng::sample_weighted_without_replacement(
    const std::vector<double>& weights, std::size_t k) {
  // Efraimidis-Spirakis: key_i = -log(u_i) / w_i; the k smallest keys form
  // a weighted sample without replacement with successive-draw semantics.
  std::vector<std::pair<double, std::size_t>> keys;
  keys.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    keys.emplace_back(-std::log(u) / weights[i], i);
  }
  assert(k <= keys.size());
  std::partial_sort(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k), keys.end());
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = 0; j < k; ++j) out.push_back(keys[j].second);
  return out;
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace spcache
