// CRC-32 (IEEE 802.3 polynomial, reflected) for block integrity checks.
//
// The threaded cluster substrate (src/cluster) checksums every cached block
// on write and verifies it on read/reassembly, mirroring how real cluster
// caches detect corruption during partition transfer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace spcache {

// One-shot CRC of a byte buffer.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental interface: crc32_update(crc32_init(), chunk) ... then
// crc32_final. Allows checksumming a file across partition boundaries.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t state);

}  // namespace spcache
