// CRC-32 (IEEE 802.3 polynomial, reflected) for block integrity checks.
//
// The threaded cluster substrate (src/cluster) checksums every cached block
// on write and verifies it on read/reassembly, mirroring how real cluster
// caches detect corruption during partition transfer.
//
// The byte-crunching itself is delegated to src/simd (PCLMULQDQ folding
// where the CPU has it, slicing-by-8 otherwise; see simd/simd.h for the
// dispatch policy). This header adds the fused and parallel-combine
// primitives the data plane is built on:
//   - crc32_copy: checksum computed in the same pass as the memcpy, so hot
//     reads touch each byte once instead of twice.
//   - crc32_combine: stitch per-piece CRCs into the whole-file CRC without
//     rescanning the reassembled buffer (pieces are checksummed in parallel
//     while they are copied, then combined in O(k) instead of O(bytes)).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace spcache {

// One-shot CRC of a byte buffer.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental interface: crc32_update(crc32_init(), chunk) ... then
// crc32_final. Allows checksumming a file across partition boundaries.
std::uint32_t crc32_init();
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data);
std::uint32_t crc32_final(std::uint32_t state);

// Fused copy+checksum: copies src into dst (same length, non-overlapping)
// and advances the CRC state over those bytes in the same pass.
std::uint32_t crc32_copy_update(std::uint32_t state, std::span<std::uint8_t> dst,
                                std::span<const std::uint8_t> src);

// One-shot fused copy: copies src into dst and returns the finalized CRC of
// the copied bytes.
std::uint32_t crc32_copy(std::span<std::uint8_t> dst,
                         std::span<const std::uint8_t> src);

// ---------------------------------------------------------------------------
// CRC combination (GF(2) matrix method, as in zlib's crc32_combine).
//
// If crc_a = crc32(A) and crc_b = crc32(B) (both finalized), then
// crc32_combine(crc_a, crc_b, B.size()) == crc32(A || B). Appending len_b
// zero *bytes* to A is a linear operator on the 32-bit CRC; the operator is
// built once per distinct length (≈64 matrix squarings) and applying it is
// 32 xors.

struct Crc32ShiftOp {
  std::array<std::uint32_t, 32> mat;  // column i = operator applied to bit i
  std::size_t len = 0;                // zero-byte count this operator appends
};

// Builds the operator for appending `len` zero bytes.
Crc32ShiftOp crc32_zeros_op(std::size_t len);

// Applies a prebuilt operator to a finalized CRC.
std::uint32_t crc32_shift(const Crc32ShiftOp& op, std::uint32_t crc);

// One-off combine (builds the operator internally; prefer Crc32Combiner on
// hot paths where lengths repeat).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b);

// Caches shift operators by length in a small fixed-capacity ring, so
// steady-state combining (pieces of a file share at most two distinct
// lengths) never allocates and never rebuilds the matrix.
class Crc32Combiner {
 public:
  std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b,
                        std::size_t len_b);

 private:
  static constexpr std::size_t kSlots = 8;
  std::array<Crc32ShiftOp, kSlots> ops_{};
  std::array<bool, kSlots> valid_{};
  std::size_t next_ = 0;  // round-robin eviction
};

}  // namespace spcache
