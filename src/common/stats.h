// Statistics helpers used by every experiment harness.
//
// The paper reports three families of metrics (Section 7.1):
//   * mean and tail (95th percentile) read latency,
//   * coefficient of variation CV = stddev / mean (Tables 1-3),
//   * the load imbalance factor eta = (L_max - L_avg) / L_avg (Eq. 15).
//
// `RunningStats` accumulates count/mean/variance in one pass (Welford);
// `Sample` keeps the raw observations for percentiles and CDFs.
#pragma once

#include <cstddef>
#include <vector>

namespace spcache {

// One-pass mean/variance accumulator (Welford's algorithm). Numerically
// stable; O(1) memory. Suitable for streams of millions of observations.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  // Sample variance (divides by n-1); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  // Coefficient of variation: stddev / mean; 0 when the mean is 0.
  double cv() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Raw-sample container with percentile queries. Percentiles use the
// nearest-rank-with-linear-interpolation definition (type 7, the numpy /
// Excel default) so "95th percentile latency" matches common tooling.
class Sample {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stddev() const;
  double cv() const;
  double min() const;
  double max() const;

  // q in [0, 1]; e.g. percentile(0.95) is the tail latency metric.
  double percentile(double q) const;

  // Empirical CDF evaluated at x: fraction of observations <= x.
  double cdf(double x) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Load imbalance factor over per-server loads (paper Eq. 15):
//   eta = (max - avg) / avg.     Returns 0 for empty or all-zero loads.
double imbalance_factor(const std::vector<double>& loads);

// Latency improvement of `ours` over `baseline` in percent (paper Eq. 14):
//   (D - D_SP) / D * 100.
double latency_improvement_percent(double baseline, double ours);

}  // namespace spcache
