// Minimal leveled logger.
//
// The library itself is quiet by default (benchmarks should print only
// their tables); set SPCACHE_LOG=debug|info|warn|error, or call
// set_log_level(), to surface diagnostics from the cluster substrate
// (evictions, repartition plans, straggler injections).
#pragma once

#include <sstream>
#include <string>

namespace spcache {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Parses "debug"/"info"/"warn"/"error"/"off"; returns kOff for anything else.
LogLevel parse_log_level(const std::string& s);

namespace detail {
void log_write(LogLevel level, const std::string& message);
}  // namespace detail

// Stream-style logging that only materializes the message when enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= log_level()) {}
  ~LogLine() {
    if (enabled_) detail::log_write(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

#define SPCACHE_LOG(level) ::spcache::LogLine(::spcache::LogLevel::level)

}  // namespace spcache
