// A small fixed-size thread pool.
//
// Used by the threaded cluster substrate for (a) the per-server worker
// threads' sibling tasks, (b) the SP-Client's parallel partition fetches,
// and (c) the parallel repartitioner (Algorithm 2), where one repartition
// task per SP-Repartitioner runs concurrently.
//
// Design notes (following the C++ Core Guidelines concurrency rules):
//   * tasks are std::move_only_function-style packaged jobs; results flow
//     back through std::future so no shared mutable state is needed,
//   * the destructor joins all workers (CP.23/CP.25: threads are scoped,
//     never detached),
//   * submission after shutdown throws, making lifetime bugs loud.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace spcache {

class ThreadPool {
 public:
  // `threads` == 0 picks hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a callable; returns a future for its result. Throws
  // std::runtime_error if the pool is shutting down.
  template <typename F, typename... Args>
  auto submit(F&& f, Args&&... args) -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(f), ... as = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(as)...);
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      jobs_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  // Exceptions from tasks are rethrown (the first one encountered).
  //
  // Allocation-free: the batch control block lives on the caller's stack,
  // workers claim indices one at a time under the pool lock, and the caller
  // participates until the batch drains — no per-item std::function,
  // promise/future, or queue-node allocations. Because the caller always
  // helps, nested parallel_for calls complete even with zero free workers.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    if (n == 0) return;
    if (n == 1) {  // common degenerate case: skip all locking
      fn(static_cast<std::size_t>(0));
      return;
    }
    using Fn = std::remove_reference_t<F>;
    run_batch(
        n, [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  // One in-flight parallel_for. Lives on the calling thread's stack; all
  // fields are guarded by the pool mutex, and the caller cannot return
  // until done == n, so workers never touch a dead batch.
  struct Batch {
    void (*fn)(void*, std::size_t);
    void* ctx;
    std::size_t n;
    std::size_t next = 0;
    std::size_t done = 0;
    std::exception_ptr error = nullptr;
    Batch* link = nullptr;  // intrusive list of active batches
  };

  void run_batch(std::size_t n, void (*thunk)(void*, std::size_t), void* ctx);
  Batch* find_batch_locked();
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  Batch* batches_ = nullptr;
  std::mutex mu_;
  std::condition_variable cv_;       // work available (jobs or batch items)
  std::condition_variable done_cv_;  // batch items completed
  bool stopping_ = false;
};

}  // namespace spcache
