// Units and strong-ish typedefs shared across the SP-Cache codebase.
//
// Conventions (used consistently by every module):
//   * sizes        : bytes, stored in `Bytes` (uint64_t)
//   * bandwidth    : bytes per second, stored in `Bandwidth` (double)
//   * virtual time : seconds, stored in `Seconds` (double)
//
// The paper quotes sizes in MB and bandwidths in Gbps; the helpers below
// perform those conversions in one place so experiment code reads like the
// paper ("100 MB files", "1 Gbps links").
#pragma once

#include <cstdint>

namespace spcache {

using Bytes = std::uint64_t;
using Bandwidth = double;  // bytes per second
using Seconds = double;    // virtual time

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// The paper uses decimal MB for file sizes (40 MB, 100 MB files).
inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;

constexpr Bytes megabytes(double mb) { return static_cast<Bytes>(mb * static_cast<double>(kMB)); }

// Network bandwidths are quoted in bits per second (1 Gbps NICs).
constexpr Bandwidth gbps(double g) { return g * 1e9 / 8.0; }
constexpr Bandwidth mbps(double m) { return m * 1e6 / 8.0; }

// Transfer time of `size` bytes over a link of bandwidth `bw`.
constexpr Seconds transfer_seconds(Bytes size, Bandwidth bw) {
  return static_cast<double>(size) / bw;
}

}  // namespace spcache
