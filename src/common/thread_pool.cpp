#include "common/thread_pool.h"

#include <algorithm>

namespace spcache {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Batch* ThreadPool::find_batch_locked() {
  for (Batch* b = batches_; b != nullptr; b = b->link) {
    if (b->next < b->n) return b;
  }
  return nullptr;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] {
      return stopping_ || !jobs_.empty() || find_batch_locked() != nullptr;
    });
    if (Batch* b = find_batch_locked()) {
      const std::size_t i = b->next++;
      lock.unlock();
      std::exception_ptr err;
      try {
        b->fn(b->ctx, i);
      } catch (...) {
        err = std::current_exception();
      }
      lock.lock();
      if (err && !b->error) b->error = err;
      if (++b->done == b->n) done_cv_.notify_all();
      continue;
    }
    if (!jobs_.empty()) {
      std::function<void()> job = std::move(jobs_.front());
      jobs_.pop_front();
      lock.unlock();
      job();
      continue;
    }
    if (stopping_) return;
  }
}

void ThreadPool::run_batch(std::size_t n, void (*thunk)(void*, std::size_t),
                           void* ctx) {
  if (workers_.size() == 1) {
    // One-worker pools run the batch serially on the caller, in index
    // order. This keeps parallel_for on a ThreadPool(1) deterministic —
    // the seeded chaos-replay tests depend on it — and matches the old
    // future-based semantics (every item runs; the first error is
    // rethrown after the batch).
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        thunk(ctx, i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  Batch b{thunk, ctx, n};
  std::unique_lock lock(mu_);
  b.link = batches_;
  batches_ = &b;
  cv_.notify_all();
  // The caller claims and runs items alongside the workers.
  while (b.next < n) {
    const std::size_t i = b.next++;
    lock.unlock();
    std::exception_ptr err;
    try {
      thunk(ctx, i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !b.error) b.error = err;
    ++b.done;
  }
  // Unlink so workers stop scanning it, then wait out any items still
  // running on workers. All batch state is mutated under mu_, so once
  // done == n no thread can touch `b` again.
  Batch** pp = &batches_;
  while (*pp != &b) pp = &(*pp)->link;
  *pp = b.link;
  done_cv_.wait(lock, [&b] { return b.done == b.n; });
  lock.unlock();
  if (b.error) std::rethrow_exception(b.error);
}

}  // namespace spcache
