// Bump-pointer arena and pooled byte buffers for the allocation-free
// steady-state data plane.
//
// Ownership/lifetime rules (also documented in DESIGN.md §"Data plane
// kernels"):
//   - An Arena owns one slab, allocated at construction and never resized.
//     allocate() hands out sub-spans of it; reset() rewinds the bump pointer
//     and invalidates every span handed out since the previous reset.
//   - Spans returned by allocate()/make_span() are *uninitialized* storage:
//     write before read. Only trivially-copyable element types are allowed.
//   - Requests that do not fit the remaining slab spill to the heap (and are
//     freed on reset()); each spill bumps fallback_allocs(). A correctly
//     sized arena shows fallback_allocs() == 0 in steady state — the
//     read-path allocation test asserts exactly that.
//   - Arenas are single-threaded: each worker/scratch owns its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace spcache {

class Arena {
 public:
  explicit Arena(std::size_t capacity)
      : slab_(new std::uint8_t[capacity]), capacity_(capacity) {
    fallbacks_.reserve(4);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  std::span<std::uint8_t> allocate(std::size_t n, std::size_t align = 16) {
    const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
    if (aligned + n <= capacity_) {
      used_ = aligned + n;
      high_water_ = used_ > high_water_ ? used_ : high_water_;
      return {slab_.get() + aligned, n};
    }
    // Spill: correctness is preserved, the allocation counter records the
    // miss so tests and metrics can flag an undersized arena.
    ++fallback_allocs_;
    fallback_bytes_ += n;
    fallbacks_.emplace_back(n);
    return {fallbacks_.back().data(), n};
  }

  template <typename T>
  std::span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto raw = allocate(count * sizeof(T), alignof(T) > 16 ? alignof(T) : 16);
    return {reinterpret_cast<T*>(raw.data()), count};
  }

  // Rewinds the bump pointer and frees any heap spills. Every span handed
  // out since the last reset() is invalidated.
  void reset() {
    used_ = 0;
    fallback_bytes_ = 0;
    if (!fallbacks_.empty()) fallbacks_.clear();
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t bytes_in_use() const { return used_ + fallback_bytes_; }
  std::size_t high_water() const { return high_water_; }
  std::uint64_t fallback_allocs() const { return fallback_allocs_; }

 private:
  std::unique_ptr<std::uint8_t[]> slab_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  std::size_t fallback_bytes_ = 0;
  std::uint64_t fallback_allocs_ = 0;  // lifetime count, never reset
  std::vector<std::vector<std::uint8_t>> fallbacks_;
};

// Size-bucketed pool of byte vectors for buffers that must *own* their
// storage (e.g. staged pieces that later become cached blocks). acquire()
// reuses a released vector's capacity when one is big enough; release()
// returns a vector to the pool. Single-threaded, like Arena.
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 16) : max_pooled_(max_pooled) {
    pool_.reserve(max_pooled);
  }

  std::vector<std::uint8_t> acquire(std::size_t n) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].capacity() >= n) {
        std::vector<std::uint8_t> out = std::move(pool_[i]);
        pool_[i] = std::move(pool_.back());
        pool_.pop_back();
        out.resize(n);
        return out;
      }
    }
    std::vector<std::uint8_t> out;
    out.resize(n);
    return out;
  }

  void release(std::vector<std::uint8_t>&& buf) {
    if (pool_.size() < max_pooled_) {
      buf.clear();
      pool_.push_back(std::move(buf));
    }
  }

  std::size_t pooled() const { return pool_.size(); }

 private:
  std::size_t max_pooled_;
  std::vector<std::vector<std::uint8_t>> pool_;
};

}  // namespace spcache
