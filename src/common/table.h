// Console table / CSV printers for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// helper keeps their output uniform: an aligned human-readable table plus an
// optional machine-readable CSV block, with a titled header naming the paper
// artifact being reproduced.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace spcache {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  // Number of significant digits printed for floating-point cells.
  void set_precision(int digits) { precision_ = digits; }

  void add_row(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  // Aligned fixed-width rendering for the console.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV rendering.
  void print_csv(std::ostream& os) const;

 private:
  std::string render_cell(const Cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

// Prints the standard banner for a reproduced experiment:
//   === Fig. 13: Mean and tail latencies under skewed popularity ===
//   <description>
void print_experiment_header(std::ostream& os, const std::string& artifact,
                             const std::string& description);

}  // namespace spcache
