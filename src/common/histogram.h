// Fixed-bin and logarithmic histograms for experiment reporting.
//
// Used by the benchmark harnesses to print the distribution plots the paper
// shows as figures (e.g. Fig. 1 access-count distribution, Fig. 21 latency
// CDFs) as ASCII tables/series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spcache {

// Linear-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin so totals are conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const { return 0.5 * (bin_lo(i) + bin_hi(i)); }
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  // Fraction of total weight in bin i (0 when empty).
  double fraction(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

// Power-of-`base` bucketed histogram, for heavy-tailed quantities such as
// file access counts (Fig. 1: buckets <10, 10-100, >=100 accesses).
class LogHistogram {
 public:
  // Buckets: [0, base^1), [base^1, base^2), ... up to `buckets` buckets;
  // the last bucket is open-ended.
  LogHistogram(double base, std::size_t buckets);

  void add(double x, double weight = 1.0);

  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;  // +inf for the last bucket
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  double fraction(std::size_t i) const;
  std::string bucket_label(std::size_t i) const;

 private:
  double base_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace spcache
