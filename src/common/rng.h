// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (workload generators, the
// discrete-event simulator, placement policies, straggler injection) draws
// from an explicitly seeded `Rng` so that experiments and tests are
// reproducible bit-for-bit across runs.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64,
// which is the de-facto standard for fast, high-quality non-cryptographic
// generation. It satisfies the C++ UniformRandomBitGenerator requirements,
// so it can also be plugged into <random> distributions when convenient —
// but the distribution helpers below are preferred because libstdc++'s
// distributions are not guaranteed reproducible across versions.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace spcache {

// SplitMix64: used to expand a single 64-bit seed into the xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** 1.0 with seeding via SplitMix64 and distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5f3759df) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection to
  // avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Bernoulli trial with success probability p.
  bool bernoulli(double p);

  // Exponential with mean `mean` (rate 1/mean). mean must be > 0.
  double exponential(double mean);

  // Standard normal via Marsaglia polar method.
  double normal(double mu = 0.0, double sigma = 1.0);

  // Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation with rounding for large means).
  std::uint64_t poisson(double mean);

  // Pareto with scale x_m > 0 and shape a > 0.
  double pareto(double x_m, double a);

  // Sample an index from a discrete distribution given cumulative weights
  // (cum.back() must be the total weight, strictly positive).
  std::size_t sample_cumulative(const std::vector<double>& cum);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) uniformly at random (k <= n).
  // Returned in random order. Uses a partial Fisher-Yates over an index
  // vector for small n and Floyd's algorithm for large n with small k.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // Weighted sampling without replacement (k <= #positive weights):
  // successive-draw semantics — each draw picks index i with probability
  // proportional to weights[i] among the not-yet-chosen. Implemented with
  // the Efraimidis-Spirakis exponential-key trick. Zero-weight indices are
  // never selected.
  std::vector<std::size_t> sample_weighted_without_replacement(
      const std::vector<double>& weights, std::size_t k);

  // Derive an independent child generator (for per-thread / per-entity
  // streams) without correlating sequences.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace spcache
