#include "common/histogram.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace spcache {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
  }
  counts_[i] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::fraction(std::size_t i) const {
  return total_ == 0.0 ? 0.0 : counts_[i] / total_;
}

LogHistogram::LogHistogram(double base, std::size_t buckets)
    : base_(base), counts_(buckets, 0.0) {
  assert(base > 1.0 && buckets > 0);
}

void LogHistogram::add(double x, double weight) {
  std::size_t i = 0;
  if (x >= base_) {
    i = static_cast<std::size_t>(std::floor(std::log(x) / std::log(base_)));
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  counts_[i] += weight;
  total_ += weight;
}

double LogHistogram::bucket_lo(std::size_t i) const {
  return i == 0 ? 0.0 : std::pow(base_, static_cast<double>(i));
}

double LogHistogram::bucket_hi(std::size_t i) const {
  if (i + 1 == counts_.size()) return std::numeric_limits<double>::infinity();
  return std::pow(base_, static_cast<double>(i + 1));
}

double LogHistogram::fraction(std::size_t i) const {
  return total_ == 0.0 ? 0.0 : counts_[i] / total_;
}

std::string LogHistogram::bucket_label(std::size_t i) const {
  std::ostringstream os;
  if (i + 1 == counts_.size()) {
    os << ">=" << bucket_lo(i);
  } else {
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ")";
  }
  return os.str();
}

}  // namespace spcache
