#include "common/crc32.h"

#include "simd/simd.h"

namespace spcache {

namespace {

// Appending one zero *bit* to a reflected CRC state is the linear map
// state -> (state >> 1) ^ (poly if the low bit was set). Column i of that
// matrix is the image of the unit vector with bit i set.
Crc32ShiftOp one_zero_bit_op() {
  Crc32ShiftOp op;
  op.mat[0] = 0xEDB88320u;
  for (int i = 1; i < 32; ++i) op.mat[i] = 1u << (i - 1);
  return op;
}

std::uint32_t gf2_times(const Crc32ShiftOp& op, std::uint32_t vec) {
  std::uint32_t sum = 0;
  for (int i = 0; vec != 0; ++i, vec >>= 1) {
    if (vec & 1u) sum ^= op.mat[i];
  }
  return sum;
}

// out = a ∘ b (apply b, then a). All operators here are powers of the same
// "append one zero bit" map, so composition commutes.
Crc32ShiftOp gf2_compose(const Crc32ShiftOp& a, const Crc32ShiftOp& b) {
  Crc32ShiftOp out;
  for (int i = 0; i < 32; ++i) out.mat[i] = gf2_times(a, b.mat[i]);
  return out;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  return simd::kernels().crc32_update(state, data.data(), data.size());
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

std::uint32_t crc32_copy_update(std::uint32_t state, std::span<std::uint8_t> dst,
                                std::span<const std::uint8_t> src) {
  return simd::kernels().crc32_copy_update(state, dst.data(), src.data(),
                                           src.size());
}

std::uint32_t crc32_copy(std::span<std::uint8_t> dst,
                         std::span<const std::uint8_t> src) {
  return crc32_final(crc32_copy_update(crc32_init(), dst, src));
}

Crc32ShiftOp crc32_zeros_op(std::size_t len) {
  Crc32ShiftOp result;
  result.len = len;
  for (int i = 0; i < 32; ++i) result.mat[i] = 1u << i;  // identity
  if (len == 0) return result;

  // power = operator for appending 8 * 2^j zero bits; start at one byte.
  Crc32ShiftOp power = one_zero_bit_op();       // 1 bit
  power = gf2_compose(power, power);            // 2 bits
  power = gf2_compose(power, power);            // 4 bits
  power = gf2_compose(power, power);            // 8 bits = 1 byte
  for (std::size_t rem = len;;) {
    if (rem & 1u) result = gf2_compose(power, result);
    rem >>= 1;
    if (rem == 0) break;
    power = gf2_compose(power, power);
  }
  // gf2_compose only fills mat, so the assignments above reset len to 0 —
  // restore it, or Crc32Combiner's by-length cache never matches and every
  // combine silently rebuilds the matrix.
  result.len = len;
  return result;
}

std::uint32_t crc32_shift(const Crc32ShiftOp& op, std::uint32_t crc) {
  return gf2_times(op, crc);
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b) {
  if (len_b == 0) return crc_a ^ crc_b;  // crc32 of an empty buffer is 0
  return crc32_shift(crc32_zeros_op(len_b), crc_a) ^ crc_b;
}

std::uint32_t Crc32Combiner::combine(std::uint32_t crc_a, std::uint32_t crc_b,
                                     std::size_t len_b) {
  if (len_b == 0) return crc_a ^ crc_b;
  for (std::size_t i = 0; i < kSlots; ++i) {
    if (valid_[i] && ops_[i].len == len_b) {
      return crc32_shift(ops_[i], crc_a) ^ crc_b;
    }
  }
  const std::size_t slot = next_;
  next_ = (next_ + 1) % kSlots;
  ops_[slot] = crc32_zeros_op(len_b);
  valid_[slot] = true;
  return crc32_shift(ops_[slot], crc_a) ^ crc_b;
}

}  // namespace spcache
