#include "common/crc32.h"

#include <array>

namespace spcache {

namespace {

// Slicing-by-8 tables for the reflected IEEE polynomial 0xEDB88320,
// generated at startup. Table 0 is the classic byte-at-a-time table;
// table k advances a byte's contribution k extra positions, letting the
// inner loop fold 8 input bytes per iteration. Same polynomial, same
// results as the byte-wise form — only the throughput changes (the block
// store verifies every cached piece, so this is squarely on the hot read
// path).
using Crc32Tables = std::array<std::array<std::uint32_t, 256>, 8>;

Crc32Tables make_tables() {
  Crc32Tables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

const Crc32Tables& tables() {
  static const auto t = make_tables();
  return t;
}

}  // namespace

std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  const auto& t = tables();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // Explicit byte loads keep this endian-agnostic.
  while (n >= 8) {
    const std::uint32_t lo = state ^ (static_cast<std::uint32_t>(p[0]) |
                                      static_cast<std::uint32_t>(p[1]) << 8 |
                                      static_cast<std::uint32_t>(p[2]) << 16 |
                                      static_cast<std::uint32_t>(p[3]) << 24);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
            t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    state = t[0][(state ^ *p) & 0xFFu] ^ (state >> 8);
    ++p;
    --n;
  }
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace spcache
