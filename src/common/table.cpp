#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace spcache {

void Table::add_row(std::vector<Cell> row) {
  assert(row.size() == columns_.size());
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render_cell(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i ? "  " : "") << std::setw(static_cast<int>(widths[i])) << cells[i];
    }
    os << '\n';
  };
  print_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? "," : "") << escape(columns_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << escape(render_cell(row[i]));
    }
    os << '\n';
  }
}

void print_experiment_header(std::ostream& os, const std::string& artifact,
                             const std::string& description) {
  os << "=== " << artifact << " ===\n" << description << "\n\n";
}

}  // namespace spcache
