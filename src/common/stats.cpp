#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spcache {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void Sample::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

double Sample::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Sample::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Sample::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Sample::cdf(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

void Sample::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double imbalance_factor(const std::vector<double>& loads) {
  if (loads.empty()) return 0.0;
  double sum = 0.0, mx = loads.front();
  for (double l : loads) {
    sum += l;
    mx = std::max(mx, l);
  }
  const double avg = sum / static_cast<double>(loads.size());
  if (avg == 0.0) return 0.0;
  return (mx - avg) / avg;
}

double latency_improvement_percent(double baseline, double ours) {
  if (baseline == 0.0) return 0.0;
  return (baseline - ours) / baseline * 100.0;
}

}  // namespace spcache
