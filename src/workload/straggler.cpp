#include "workload/straggler.h"

#include <cassert>

namespace spcache {

StragglerModel::StragglerModel(double probability, std::vector<Entry> profile)
    : probability_(probability), profile_(std::move(profile)) {
  assert(probability >= 0.0 && probability <= 1.0);
  double cum = 0.0;
  cum_weights_.reserve(profile_.size());
  for (const auto& e : profile_) {
    assert(e.slowdown >= 1.0 && e.weight >= 0.0);
    cum += e.weight;
    cum_weights_.push_back(cum);
  }
  assert(profile_.empty() || cum > 0.0);
}

StragglerModel StragglerModel::bing(double probability) {
  // Mantri-like shape: the bulk of stragglers run 1.5-3x slower; a thin
  // tail reaches 10x.
  return StragglerModel(probability, {
                                         {1.5, 0.30},
                                         {2.0, 0.25},
                                         {2.5, 0.15},
                                         {3.0, 0.12},
                                         {4.0, 0.08},
                                         {5.0, 0.05},
                                         {6.0, 0.03},
                                         {8.0, 0.01},
                                         {10.0, 0.01},
                                     });
}

StragglerModel StragglerModel::none() { return StragglerModel(0.0, {}); }

double StragglerModel::sample_slowdown(Rng& rng) const {
  if (probability_ <= 0.0 || profile_.empty() || !rng.bernoulli(probability_)) {
    return 1.0;
  }
  const std::size_t i = rng.sample_cumulative(cum_weights_);
  return profile_[i].slowdown;
}

double StragglerModel::conditional_mean_slowdown() const {
  if (profile_.empty()) return 1.0;
  double total = 0.0, weighted = 0.0;
  for (const auto& e : profile_) {
    total += e.weight;
    weighted += e.weight * e.slowdown;
  }
  return total == 0.0 ? 1.0 : weighted / total;
}

}  // namespace spcache
