#include "workload/popularity_tracker.h"

#include <cassert>
#include <cmath>

namespace spcache {

PopularityTracker::PopularityTracker(Seconds half_life) : half_life_(half_life) {
  assert(half_life > 0.0);
  lambda_ = std::log(2.0) / half_life;
}

double PopularityTracker::decayed(const Entry& e, Seconds now) const {
  const Seconds dt = now > e.last ? now - e.last : 0.0;
  return e.weight * std::exp(-lambda_ * dt);
}

void PopularityTracker::record(FileId id, Seconds now) {
  auto& e = entries_[id];
  e.weight = decayed(e, now) + 1.0;
  e.last = std::max(e.last, now);
}

double PopularityTracker::rate(FileId id, Seconds now) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return 0.0;
  return decayed(it->second, now) * lambda_;
}

Catalog PopularityTracker::snapshot(const std::vector<Bytes>& sizes, Seconds now,
                                    double min_rate) const {
  std::vector<FileInfo> files(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    files[i].size = sizes[i];
    files[i].request_rate = std::max(min_rate, rate(static_cast<FileId>(i), now));
  }
  return Catalog(std::move(files));
}

}  // namespace spcache
