// Straggler injection model.
//
// Section 4.2 / 7.5: "for each partition read, we slept the server thread
// with probability 0.05 and delayed the read completion by a factor
// randomly drawn from the distribution profiled in the Microsoft Bing
// cluster trace [Mantri]". The Bing profile itself is not public; we use a
// discrete slowdown distribution with the shape reported by Mantri — most
// stragglers are 1.5-3x slower, with a thin tail out to 10x (see DESIGN.md
// substitution table).
#pragma once

#include <vector>

#include "common/rng.h"

namespace spcache {

class StragglerModel {
 public:
  struct Entry {
    double slowdown;  // multiplicative factor >= 1
    double weight;    // relative probability mass
  };

  // `probability` is the per-partition-read chance of hitting a straggler.
  StragglerModel(double probability, std::vector<Entry> profile);

  // The default profile used throughout the benchmarks: Mantri-like shape,
  // p = 0.05 ("intensive stragglers").
  static StragglerModel bing(double probability = 0.05);

  // A disabled model (factor always 1).
  static StragglerModel none();

  double probability() const { return probability_; }
  bool enabled() const { return probability_ > 0.0; }

  // Returns 1.0 with probability (1 - p); otherwise a slowdown factor drawn
  // from the profile.
  double sample_slowdown(Rng& rng) const;

  // Mean slowdown conditioned on being a straggler.
  double conditional_mean_slowdown() const;

 private:
  double probability_;
  std::vector<Entry> profile_;
  std::vector<double> cum_weights_;
};

}  // namespace spcache
