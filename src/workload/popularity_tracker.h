// Online popularity estimation (Section 8 "Short-Term Popularity
// Variation").
//
// The periodic 12-hour re-balancing of Section 6.2 cannot react to bursts.
// The online extension needs a *live* request-rate estimate per file; this
// tracker maintains an exponentially-decayed access counter
//
//     S(now) = sum_i exp(-lambda (now - t_i)),   lambda = ln2 / half_life,
//
// whose expectation for a Poisson stream of rate r is r / lambda — so
// rate(now) = S(now) * lambda is an unbiased rate estimate that forgets the
// past with the configured half-life.
#pragma once

#include <unordered_map>

#include "common/units.h"
#include "workload/file_catalog.h"

namespace spcache {

class PopularityTracker {
 public:
  explicit PopularityTracker(Seconds half_life = 300.0);

  Seconds half_life() const { return half_life_; }

  // Record one access to `id` at virtual time `now` (must be non-decreasing
  // per file; out-of-order times within a batch are tolerated by clamping).
  void record(FileId id, Seconds now);

  // Estimated request rate of `id` at time `now` (0 for never-seen files).
  double rate(FileId id, Seconds now) const;

  // Build a Catalog from the tracked rates for the given file sizes (file
  // id == index); never-seen files get `min_rate` so downstream Eq. 1 math
  // stays well-defined.
  Catalog snapshot(const std::vector<Bytes>& sizes, Seconds now, double min_rate = 1e-6) const;

  std::size_t tracked_files() const { return entries_.size(); }

 private:
  struct Entry {
    double weight = 0.0;  // S at time `last`
    Seconds last = 0.0;
  };
  double decayed(const Entry& e, Seconds now) const;

  Seconds half_life_;
  double lambda_;
  std::unordered_map<FileId, Entry> entries_;
};

}  // namespace spcache
